/* Jacobi-style smoothing over a shared vector, with a convergence-
   style reduction each sweep.  The same kernel as the quickstart
   example, as a standalone SlipC file for the CLI:

       python -m repro run examples/jacobi.c --mode slipstream
       python -m repro profile run examples/jacobi.c --mode slipstream \
           --top 15 --collapsed jacobi.folded
*/
double a[8192];
double b[8192];
double delta;
int i;

void main() {
    #pragma omp parallel
    {
        int it;
        #pragma omp for
        for (i = 0; i < 8192; i = i + 1) a[i] = (i % 17) * 0.25;
        for (it = 0; it < 4; it = it + 1) {
            #pragma omp for
            for (i = 1; i < 8191; i = i + 1)
                b[i] = (a[i-1] + a[i] + a[i+1]) / 3.0;
            #pragma omp for reduction(+: delta)
            for (i = 1; i < 8191; i = i + 1) {
                delta = delta + fabs(b[i] - a[i]);
                a[i] = b[i];
            }
        }
    }
    print("total delta", delta);
}
