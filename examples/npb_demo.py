#!/usr/bin/env python
"""Run a mini-NAS benchmark end to end, paper-style.

Picks one of the mini-NPB kernels (default CG), compiles its SlipC
source, runs it in the three execution modes on a paper-configured
machine, verifies every run against the NumPy reference, and prints a
Figure-2-style summary row plus the Figure-3-style request breakdown.

Run:  python examples/npb_demo.py [bt|cg|lu|mg|sp] [--size test|bench]
"""

import argparse

from repro import PAPER_MACHINE, run_program
from repro.npb import REGISTRY
from repro.runtime import RuntimeEnv


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench", nargs="?", default="cg",
                    choices=sorted(REGISTRY))
    ap.add_argument("--size", default="test", choices=["test", "bench"])
    ap.add_argument("--cmps", type=int, default=8)
    args = ap.parse_args()

    spec = REGISTRY[args.bench]
    cfg = PAPER_MACHINE.with_(n_cmps=args.cmps)
    print(f"mini-{args.bench.upper()}: {spec.description}")
    print(f"parameters: {spec.params(args.size)}, "
          f"machine: {args.cmps} CMPs\n")
    image = spec.compile(args.size)

    runs = {}
    for label, mode, env in [
            ("single", "single", None),
            ("double", "double", None),
            ("slip-G0", "slipstream",
             RuntimeEnv(slipstream=("GLOBAL_SYNC", 0), slipstream_set=True)),
            ("slip-L1", "slipstream",
             RuntimeEnv(slipstream=("LOCAL_SYNC", 1), slipstream_set=True))]:
        r = run_program(image, cfg=cfg, mode=mode, env=env)
        spec.verify(r.store, args.size)       # NumPy oracle, every run
        runs[label] = r
        frac = r.breakdown_fractions()
        print(f"{label:>8}: {r.cycles:>12,.0f} cycles  "
              f"(busy {frac.get('busy', 0):.2f}, "
              f"memory {frac.get('memory', 0):.2f}, "
              f"barrier {frac.get('barrier', 0):.2f}, "
              f"jobwait {frac.get('jobwait', 0):.2f})  verified")

    best_base = min(runs["single"].cycles, runs["double"].cycles)
    best_slip = min(runs["slip-G0"].cycles, runs["slip-L1"].cycles)
    print(f"\nbest slipstream vs best(single, double): "
          f"{best_base / best_slip:.3f}x")

    for label in ("slip-G0", "slip-L1"):
        cls = runs[label].classes
        reads = cls.breakdown("read")
        print(f"{label} shared reads: "
              + " ".join(f"{k}={v:.2f}" for k, v in reads.items() if v)
              + f"   rdex coverage={cls.coverage('rdex'):.2f}")


if __name__ == "__main__":
    main()
