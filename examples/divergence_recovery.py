#!/usr/bin/env python
"""A-stream divergence and recovery, live.

The A-stream is speculative: it skips shared stores, so any control
flow that depends on shared values it would have written can diverge
from the R-stream.  §2.2: "divergence of A-stream ... invoke recovery
routine if needed" -- the R-stream detects the mismatch at a barrier
and re-forks the A-stream from its own architectural state.

This example triggers divergence two ways:

1. deterministically, with the ``astream_probe()`` fault-injection
   intrinsic (the A-stream takes a different barrier path);
2. organically, with a serial-part loop whose counter lives in shared
   memory (the A-master skips the counter stores and loses track).

Both runs finish with correct results -- recovery is repair, not abort.

Run:  python examples/divergence_recovery.py
"""

from repro import PAPER_MACHINE, compile_source, run_program
from repro.runtime import RuntimeEnv

CFG = PAPER_MACHINE.with_(n_cmps=4)

INJECTED = """
double a[512];
int i;
void main() {
    int it;
    for (it = 0; it < 3; it = it + 1) {
        #pragma omp parallel
        {
            if (astream_probe() == 1) {
                /* only A-streams come here: their barrier history
                   diverges from their R-streams' */
                #pragma omp barrier
            }
            #pragma omp for
            for (i = 0; i < 512; i = i + 1) a[i] = a[i] + 1.0;
        }
    }
}
"""

ORGANIC = """
double a[256];
int i;
int counter;   /* file scope => shared: A-master skips its updates */
void main() {
    counter = 0;
    while (counter < 3) {
        /* which region runs depends on the SHARED counter the A-master
           cannot update: once its view goes stale its barrier history
           stops matching the R-master's and recovery kicks in */
        if (counter % 2 == 0) {
            #pragma omp parallel for
            for (i = 0; i < 256; i = i + 1) a[i] = a[i] + 1.0;
        } else {
            #pragma omp parallel for
            for (i = 255; i >= 0; i = i - 1) a[i] = a[i] + 1.0;
        }
        counter = counter + 1;
    }
}
"""


def show(title: str, source: str, expected: float,
         env: RuntimeEnv = None) -> None:
    image = compile_source(source)
    r = run_program(image, cfg=CFG, mode="slipstream", env=env)
    print(f"{title}:")
    print(f"  recoveries: {len(r.recoveries)}")
    for who, reason, site in r.recoveries[:4]:
        at = f" (site {site})" if site is not None else ""
        print(f"    {who}: {reason}{at}")
    ok = all(v == expected for v in r.store.array("a"))
    print(f"  results correct after recovery: {ok} "
          f"(a[*] == {expected})")
    toks = sum(s['tokens_consumed'] for s in r.channel_stats.values())
    print(f"  tokens consumed (A-streams kept working): {toks}\n")
    assert ok


def main() -> None:
    show("injected divergence (astream_probe)", INJECTED, 3.0)
    # Loose sync (two tokens) lets the A-master run two sessions ahead,
    # guaranteeing its read of the shared counter is stale.
    show("organic divergence (shared serial loop counter)", ORGANIC, 3.0,
         env=RuntimeEnv(slipstream=("LOCAL_SYNC", 2), slipstream_set=True))


if __name__ == "__main__":
    main()
