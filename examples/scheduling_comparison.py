#!/usr/bin/env python
"""Static vs dynamic vs guided scheduling, with and without slipstream.

Reproduces the paper's §3.2 interaction in miniature: static scheduling
lets the A-stream compute its assignment independently (least
restrictive), while dynamic/guided scheduling forwards each chunk
decision from the R-stream through the CMP's syscall semaphore --
tightening the effective synchronization and adding the serialized
scheduling overhead §5.2 measures.

Run:  python examples/scheduling_comparison.py
"""

from repro import PAPER_MACHINE, compile_source, run_program
from repro.runtime import RuntimeEnv

CFG = PAPER_MACHINE.with_(n_cmps=8)

# An imbalanced workload: row i costs O(i) work, the textbook case for
# dynamic scheduling.
SOURCE = """
double a[512][32];
double rowsum[512];
int i, j;
void main() {
    #pragma omp parallel
    {
        #pragma omp for schedule(runtime)
        for (i = 0; i < 512; i = i + 1) {
            for (j = 0; j < 32; j = j + 1) a[i][j] = (i * 31 + j) % 7;
        }
        #pragma omp for schedule(runtime)
        for (i = 0; i < 512; i = i + 1) {
            int reps;  int r;
            double s;
            s = 0.0;
            reps = 1 + i / 64;                 /* imbalance: 1..8 passes */
            for (r = 0; r < reps; r = r + 1) {
                for (j = 0; j < 32; j = j + 1) s = s + a[i][j] * 0.125;
            }
            rowsum[i] = s;
        }
    }
}
"""


def main() -> None:
    image = compile_source(SOURCE)
    schedules = [("static", None), ("static", 8),
                 ("dynamic", 8), ("dynamic", 32), ("guided", 4)]
    print(f"{'schedule':>16} {'single':>12} {'slipstream':>12} "
          f"{'slip gain':>10} {'sched frac':>11} {'fwd decisions':>14}")
    for kind, chunk in schedules:
        row = {}
        fwd = 0
        for mode in ("single", "slipstream"):
            env = RuntimeEnv(schedule=(kind, chunk))
            r = run_program(image, cfg=CFG, mode=mode, env=env)
            row[mode] = r
            if mode == "slipstream":
                fwd = sum(s["decisions_forwarded"]
                          for s in r.channel_stats.values())
        single, slip = row["single"], row["slipstream"]
        bd = single.r_breakdown
        frac = bd.get("scheduling", 0.0) / sum(bd.values())
        label = kind + (f",{chunk}" if chunk else "")
        print(f"{label:>16} {single.cycles:>12,.0f} "
              f"{slip.cycles:>12,.0f} "
              f"{single.cycles / slip.cycles:>10.3f} {frac:>11.3f} "
              f"{fwd:>14}")
    print("\nNote how dynamic scheduling adds serialized scheduling time "
          "(the paper's ~11% base overhead), and how every dynamic chunk "
          "decision is forwarded R->A through the pair channel (§3.2.2).")


if __name__ == "__main__":
    main()
