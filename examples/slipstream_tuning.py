#!/usr/bin/env python
"""Tuning slipstream without recompiling: directive + environment.

Demonstrates the paper's §3.3 control surface on one compiled image:

1. the ``OMP_SLIPSTREAM`` environment variable (type, tokens), including
   ``NONE`` to deactivate slipstream entirely;
2. the ``#pragma omp slipstream(...)`` directive as a global setting;
3. a region-scoped directive that takes precedence for one region and
   is restored afterwards;
4. ``RUNTIME_SYNC`` deferring the choice to the environment.

Run:  python examples/slipstream_tuning.py
"""

from repro import PAPER_MACHINE, compile_source, run_program
from repro.npb import REGISTRY
from repro.runtime import RuntimeEnv

CFG = PAPER_MACHINE.with_(n_cmps=8)


def sweep_env() -> None:
    """One binary, many OMP_SLIPSTREAM settings (§5.1: 'We changed the
    synchronization method as well as activating/deactivating slipstream
    at runtime while using the same binary')."""
    spec = REGISTRY["cg"]
    image = spec.compile("test", n=512, nnz=6, iters=3)
    print("mini-CG, 8 CMPs, OMP_SLIPSTREAM sweep")
    base = run_program(image, cfg=CFG, mode="single")
    print(f"  {'single (reference)':>28}: {base.cycles:>10,.0f} cycles")
    for setting in ("NONE", "GLOBAL_SYNC,0", "GLOBAL_SYNC,1",
                    "LOCAL_SYNC,1", "LOCAL_SYNC,2"):
        env = RuntimeEnv.from_mapping({"OMP_SLIPSTREAM": setting})
        r = run_program(image, cfg=CFG, mode="slipstream", env=env)
        spec.verify(r.store, "test", n=512, nnz=6, iters=3)
        toks = sum(s["tokens_consumed"] for s in r.channel_stats.values())
        print(f"  OMP_SLIPSTREAM={setting:>15}: {r.cycles:>10,.0f} cycles  "
              f"(speedup {base.cycles / r.cycles:.3f}, "
              f"tokens consumed {toks})")


def directive_scoping() -> None:
    """Region directive takes precedence; global setting restored."""
    source = """
double a[2048];
double b[2048];
int i;
void main() {
    int it;
    /* global setting for the whole program */
    #pragma omp slipstream(LOCAL_SYNC, 2)
    for (it = 0; it < 2; it = it + 1) {
        /* this region runs with its own, tighter setting ... */
        #pragma omp slipstream(GLOBAL_SYNC, 0)
        #pragma omp parallel for
        for (i = 0; i < 2048; i = i + 1) a[i] = a[i] + it;
        /* ... and this one gets the restored global setting */
        #pragma omp parallel for
        for (i = 0; i < 2048; i = i + 1) b[i] = a[i] * 0.5;
    }
}
"""
    image = compile_source(source)
    r = run_program(image, cfg=CFG, mode="slipstream")
    print("\ndirective scoping demo (LOCAL_SYNC,2 global; GLOBAL_SYNC,0 "
          "region override):")
    print(f"  completed in {r.cycles:,.0f} cycles; "
          f"b[2047] = {r.store.array('b')[2047]:.2f}")


def runtime_sync() -> None:
    """RUNTIME_SYNC defers to OMP_SLIPSTREAM."""
    source = """
double a[2048];
int i;
void main() {
    #pragma omp slipstream(RUNTIME_SYNC)
    #pragma omp parallel for
    for (i = 0; i < 2048; i = i + 1) a[i] = i;
}
"""
    image = compile_source(source)
    print("\nRUNTIME_SYNC resolved from the environment:")
    for setting in ("GLOBAL_SYNC,0", "LOCAL_SYNC,4"):
        env = RuntimeEnv.from_mapping({"OMP_SLIPSTREAM": setting})
        r = run_program(image, cfg=CFG, mode="slipstream", env=env)
        print(f"  OMP_SLIPSTREAM={setting:>15}: {r.cycles:>9,.0f} cycles")


if __name__ == "__main__":
    sweep_env()
    directive_scoping()
    runtime_sync()
