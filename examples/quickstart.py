#!/usr/bin/env python
"""Quickstart: compile one OpenMP program, run it in every execution mode.

This is the paper's core demonstration in miniature: a single compiled
image ("the same binary should run for both normal and slipstream
mode") executed as

* single mode     -- one task per CMP, second processor idle,
* double mode     -- two tasks per CMP (more parallelism),
* slipstream mode -- one task per CMP, run redundantly: the R-stream
  does the real work while the A-stream runs a reduced version ahead,
  prefetching into the shared L2 cache.

Run:  python examples/quickstart.py
"""

from repro import PAPER_MACHINE, compile_source, run_program

SOURCE = """
/* Jacobi-style smoothing over a shared vector, with a convergence-
   style reduction each iteration -- enough communication for the
   machine modes to differ. */
double a[8192];
double b[8192];
double delta;
int i;

void main() {
    #pragma omp parallel
    {
        int it;
        #pragma omp for
        for (i = 0; i < 8192; i = i + 1) a[i] = (i % 17) * 0.25;
        for (it = 0; it < 4; it = it + 1) {
            #pragma omp for
            for (i = 1; i < 8191; i = i + 1)
                b[i] = (a[i-1] + a[i] + a[i+1]) / 3.0;
            #pragma omp for reduction(+: delta)
            for (i = 1; i < 8191; i = i + 1) {
                delta = delta + fabs(b[i] - a[i]);
                a[i] = b[i];
            }
        }
    }
    print("total delta", delta);
}
"""


def main() -> None:
    cfg = PAPER_MACHINE          # 16 dual-processor CMPs, Table-1 latencies
    image = compile_source(SOURCE)
    print(f"compiled: {image.n_instructions} bytecode instructions, "
          f"{len(image.globals)} shared globals, "
          f"{len(image.funcs)} functions "
          f"(incl. outlined parallel regions)\n")

    results = {}
    for mode in ("single", "double", "slipstream"):
        r = run_program(image, cfg=cfg, mode=mode)
        results[mode] = r
        frac = r.breakdown_fractions()
        print(f"{mode:>10}: {r.cycles:>12,.0f} cycles   "
              f"busy={frac.get('busy', 0):.2f} "
              f"memory={frac.get('memory', 0):.2f} "
              f"barrier={frac.get('barrier', 0):.2f}   "
              f"output={r.output}")

    base = min(results["single"].cycles, results["double"].cycles)
    slip = results["slipstream"].cycles
    print(f"\nslipstream vs best(single, double): {base / slip:.3f}x")
    cls = results["slipstream"].classes
    print("A-stream read fills:  "
          + ", ".join(f"{k}={v:.2f}"
                      for k, v in cls.breakdown("read").items()
                      if k.startswith("A")))
    print("A-stream rdex fills:  "
          + ", ".join(f"{k}={v:.2f}"
                      for k, v in cls.breakdown("rdex").items()
                      if k.startswith("A")))


if __name__ == "__main__":
    main()
