"""Tests for the command-line front end."""

import io

import pytest

from repro.cli import main

DEMO = """
double a[64];
double total;
int i;
void main() {
    #pragma omp parallel for reduction(+: total)
    for (i = 0; i < 64; i = i + 1) {
        a[i] = i * 1.0;
        total = total + a[i];
    }
    print("total", total);
}
"""


@pytest.fixture
def demo(tmp_path):
    f = tmp_path / "demo.c"
    f.write_text(DEMO)
    return str(f)


def run_cli(argv):
    out = io.StringIO()
    rc = main(argv, out=out)
    return rc, out.getvalue()


def test_run_functional(demo):
    rc, out = run_cli(["run", demo, "--mode", "functional"])
    assert rc == 0
    assert "total 2016.0" in out


@pytest.mark.parametrize("mode", ["single", "double", "slipstream"])
def test_run_simulated_modes(demo, mode):
    rc, out = run_cli(["run", demo, "--mode", mode, "--cmps", "4"])
    assert rc == 0
    assert "total 2016.0" in out
    assert "cycles on 4 CMPs" in out


def test_run_with_slipstream_policy_and_stats(demo):
    rc, out = run_cli(["run", demo, "--mode", "slipstream", "--cmps", "4",
                       "--slipstream", "LOCAL_SYNC,1", "--stats"])
    assert rc == 0
    assert "fills:" in out
    assert "busy" in out


def test_run_with_schedule(demo, tmp_path):
    f = tmp_path / "sched.c"
    f.write_text(DEMO.replace("parallel for",
                              "parallel for schedule(runtime)"))
    rc, out = run_cli(["run", str(f), "--mode", "single", "--cmps", "4",
                       "--schedule", "dynamic,8"])
    assert rc == 0
    assert "total 2016.0" in out


def test_compile_reports_image(demo):
    rc, out = run_cli(["compile", demo])
    assert rc == 0
    assert "1 outlined regions" in out
    assert "instructions" in out


def test_compile_disasm(demo):
    rc, out = run_cli(["compile", demo, "--disasm"])
    assert rc == 0
    assert "parallel_begin" in out
    assert "sched_init" in out


def test_check_classification(demo):
    rc, out = run_cli(["check", demo])
    assert rc == 0
    assert "shared refs : ['a']" in out
    assert "reduction   : +: ['total']" in out


def test_bench_subcommand():
    rc, out = run_cli(["bench", "cg", "--size", "test", "--cmps", "4"])
    assert rc == 0
    assert "CG" in out and "G0" in out and "L1" in out


def test_bench_unknown_name():
    rc, _ = run_cli(["bench", "nosuch", "--size", "test"])
    assert rc == 2


def test_bench_resume_and_memo_flags(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MEMO_DIR", str(tmp_path / "memo"))
    args = ["bench", "cg", "--size", "test", "--cmps", "4",
            "--resume", str(tmp_path / "journal"), "--memo"]
    rc, out = run_cli(args)
    assert rc == 0
    assert "pipeline:" in out and "memo 0 hit(s) / 4 miss(es)" in out
    # identical sweep: memo-served end to end, resumed from the journal
    rc, out = run_cli(args)
    assert rc == 0
    assert "4 resumed from checkpoint" in out
    assert "0 executed" in out


def test_bench_spool_flag(tmp_path):
    rc, out = run_cli(["bench", "cg", "--size", "test", "--cmps", "4",
                       "--spool", str(tmp_path / "spool")])
    assert rc == 0
    assert "via spool" in out and "4 executed" in out


def test_bench_spool_quarantine_exits_5(tmp_path):
    """A sweep that completes but had to quarantine a poison unit exits
    with the distinct code 5 (outranking pool-degrade's 3), so scripts
    can tell 'done with data loss flagged' from 'done'."""
    from repro.harness.transport import _Spool

    spool_dir = tmp_path / "spool"
    argv = ["bench", "cg", "--size", "test", "--cmps", "4",
            "--spool", str(spool_dir)]
    rc, _ = run_cli(argv)
    assert rc == 0

    # poison one unit: drop its result, fake 3 dead execution attempts
    spool = _Spool(spool_dir)
    key = next(k for k in (p.name[:-4]
                           for p in sorted(spool.results.glob("*.run")))
               if spool.load_spec(k).config == "G0")
    spool.result_path(key).unlink()
    for _ in range(3):
        spool.record_attempt(key)

    rc, out = run_cli(argv)
    assert rc == 5
    assert "1 QUARANTINED (poison)" in out


def test_chaos_harness_subcommand(tmp_path):
    """`repro chaos --harness` runs the execution-layer hazard matrix
    and exits 0 when every scenario merges bit-identical."""
    rc, out = run_cli(["chaos", "--harness", "cg", "--cmps", "4",
                       "--transports", "serial", "--classes", "corrupt",
                       "--workdir", str(tmp_path / "wd")])
    assert rc == 0
    assert "harness chaos matrix" in out
    assert "harness verdict: OK" in out


def test_chaos_harness_rejects_bad_transport(tmp_path):
    rc, _ = run_cli(["chaos", "--harness", "--transports", "nosuch",
                     "--workdir", str(tmp_path / "wd")])
    assert rc == 2


def test_worker_on_empty_spool(tmp_path):
    rc, out = run_cli(["worker", str(tmp_path / "spool")])
    assert rc == 0
    assert "0 unit(s) executed" in out


def test_compile_error_reported(tmp_path):
    f = tmp_path / "bad.c"
    f.write_text("void main() { x = 1; }")
    rc, _ = run_cli(["run", str(f)])
    assert rc == 1


def test_missing_file():
    rc, _ = run_cli(["run", "/nonexistent/prog.c"])
    assert rc == 2


def test_inputs_flag(tmp_path):
    f = tmp_path / "io.c"
    f.write_text("""
double x;
void main() { x = read_input(); print("x", x * 2.0); }
""")
    rc, out = run_cli(["run", str(f), "--mode", "single", "--cmps", "4",
                       "--inputs", "21"])
    assert rc == 0
    assert "x 42.0" in out
