"""Determinism guard for the simulator's hot paths.

The simulated cycle counts below were recorded from the seed simulator
(before the cache tag index, engine fast path and interpreter dispatch
table landed) and pin down the acceptance criterion that performance
work must leave simulated time bit-identical: any optimization that
perturbs event ordering, LRU victim choice, or per-instruction cycle
accounting shows up here as an exact-equality failure, not a tolerance
drift.

The matrix is the full static study (5 benchmarks x 4 configurations)
plus the dynamic study (4 benchmarks x 2 configurations) at test size
on a 4-CMP machine -- every execution mode, both A-R synchronization
policies, and both scheduling styles.
"""

import pytest

from repro.config import PAPER_MACHINE
from repro.harness import run_dynamic_suite, run_static_suite

CFG = PAPER_MACHINE.with_(n_cmps=4)

#: {(suite, bench, config): simulated cycles} recorded from the seed.
GOLDEN_CYCLES = {
    ("static", "bt", "single"): 306917.0,
    ("static", "bt", "double"): 195050.0,
    ("static", "bt", "G0"): 261238.0,
    ("static", "bt", "L1"): 305153.0,
    ("static", "cg", "single"): 81587.0,
    ("static", "cg", "double"): 78462.0,
    ("static", "cg", "G0"): 73175.0,
    ("static", "cg", "L1"): 70587.0,
    ("static", "lu", "single"): 78041.0,
    ("static", "lu", "double"): 88708.0,
    ("static", "lu", "G0"): 67153.0,
    ("static", "lu", "L1"): 71687.0,
    ("static", "mg", "single"): 59876.0,
    ("static", "mg", "double"): 50914.0,
    ("static", "mg", "G0"): 54221.0,
    ("static", "mg", "L1"): 51907.0,
    ("static", "sp", "single"): 153978.0,
    ("static", "sp", "double"): 98806.0,
    ("static", "sp", "G0"): 138917.0,
    ("static", "sp", "L1"): 154287.0,
    ("dynamic", "bt", "single"): 446706.0,
    ("dynamic", "bt", "G0"): 359809.0,
    ("dynamic", "cg", "single"): 209913.0,
    ("dynamic", "cg", "G0"): 197033.0,
    ("dynamic", "mg", "single"): 241899.0,
    ("dynamic", "mg", "G0"): 232333.0,
    ("dynamic", "sp", "single"): 251695.0,
    ("dynamic", "sp", "G0"): 204586.0,
}


@pytest.fixture(scope="module")
def suites():
    return (run_static_suite(cfg=CFG, size="test"),
            run_dynamic_suite(cfg=CFG, size="test"))


def test_static_suite_cycles_match_seed_exactly(suites):
    static, _ = suites
    got = {("static", b, c): run.cycles
           for b, row in static.items() for c, run in row.items()}
    want = {k: v for k, v in GOLDEN_CYCLES.items() if k[0] == "static"}
    assert got == want


def test_dynamic_suite_cycles_match_seed_exactly(suites):
    _, dynamic = suites
    got = {("dynamic", b, c): run.cycles
           for b, row in dynamic.items() for c, run in row.items()}
    want = {k: v for k, v in GOLDEN_CYCLES.items() if k[0] == "dynamic"}
    assert got == want


def test_repeated_run_is_bit_identical(suites):
    """Same spec, same process, fresh machine: identical cycles *and*
    identical per-shell time breakdowns, not just the total."""
    from repro.harness import run_benchmark
    a = run_benchmark("cg", "G0", cfg=CFG, size="test")
    b = run_benchmark("cg", "G0", cfg=CFG, size="test")
    assert a.cycles == b.cycles
    assert a.result.breakdowns == b.result.breakdowns
    assert a.result.r_breakdown == b.result.r_breakdown
