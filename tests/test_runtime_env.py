"""Tests for OMP_* environment handling, including the paper's
OMP_SLIPSTREAM variable."""

import pytest

from repro.runtime.env import RuntimeEnv, parse_slipstream


def test_defaults():
    env = RuntimeEnv()
    assert env.num_threads is None
    assert env.schedule == ("static", None)
    assert env.slipstream == ("GLOBAL_SYNC", 0)
    assert env.slipstream_set is False


def test_from_mapping_full():
    env = RuntimeEnv.from_mapping({
        "OMP_NUM_THREADS": "8",
        "OMP_SCHEDULE": "dynamic, 16",
        "OMP_SLIPSTREAM": "LOCAL_SYNC, 2",
    })
    assert env.num_threads == 8
    assert env.schedule == ("dynamic", 16)
    assert env.slipstream == ("LOCAL_SYNC", 2)
    assert env.slipstream_set is True


def test_from_mapping_ignores_unrelated_vars():
    env = RuntimeEnv.from_mapping({"PATH": "/bin", "OMP_SCHEDULE": "guided"})
    assert env.schedule == ("guided", None)


@pytest.mark.parametrize("text,expect", [
    ("GLOBAL_SYNC", ("GLOBAL_SYNC", 0)),
    ("global_sync,3", ("GLOBAL_SYNC", 3)),
    ("LOCAL_SYNC , 1", ("LOCAL_SYNC", 1)),
    ("NONE", ("NONE", 0)),
])
def test_parse_slipstream_accepts(text, expect):
    assert parse_slipstream(text) == expect


@pytest.mark.parametrize("text", ["SOMETIMES", "LOCAL_SYNC,-1", "", "1,2"])
def test_parse_slipstream_rejects(text):
    with pytest.raises(ValueError):
        parse_slipstream(text)


@pytest.mark.parametrize("sched", ["static", "dynamic,8", "guided,2"])
def test_schedule_parsing(sched):
    env = RuntimeEnv.from_mapping({"OMP_SCHEDULE": sched})
    kind = sched.split(",")[0]
    assert env.schedule[0] == kind


@pytest.mark.parametrize("bad", ["fifo", "dynamic,0", "static,-3"])
def test_bad_schedule_rejected(bad):
    with pytest.raises(ValueError):
        RuntimeEnv.from_mapping({"OMP_SCHEDULE": bad})


def test_bad_num_threads_rejected():
    with pytest.raises(ValueError):
        RuntimeEnv.from_mapping({"OMP_NUM_THREADS": "0"})
