"""Interrupt-safety of simulation primitives: slipstream recovery can
abort an A-stream while it is queued at a server, waiting on a
semaphore, or mid-coherence-transaction; nothing may leak or wedge."""

import pytest

from repro.config import PAPER_MACHINE
from repro.mem import CoherentMemorySystem
from repro.mem.address import SHARED_BASE
from repro.sim import Engine, Interrupt, Semaphore, Server


def test_server_interrupt_while_queued_releases_slot():
    eng = Engine()
    srv = Server(eng, "bus")
    done = []

    def holder():
        yield from srv.serve(100)
        done.append("holder")

    def victim():
        try:
            yield 1
            yield from srv.serve(10)
        except Interrupt:
            done.append("interrupted")

    def third():
        yield 2
        yield from srv.serve(10)
        done.append("third")

    eng.process(holder())
    v = eng.process(victim())

    def killer():
        yield 50
        v.interrupt("test")

    eng.process(third())
    eng.process(killer())
    eng.run()
    # The victim withdrew from the queue; the third client still got
    # served right after the holder finished.
    assert "interrupted" in done
    assert "third" in done
    assert srv.queue_length == 0
    assert srv._busy == 0


def test_server_interrupt_during_service_releases_unit():
    eng = Engine()
    srv = Server(eng, "mc")
    done = []

    def victim():
        try:
            yield from srv.serve(100)
        except Interrupt:
            done.append("interrupted")

    def follower():
        yield 1
        yield from srv.serve(5)
        done.append("follower")

    v = eng.process(victim())
    eng.process(follower())

    def killer():
        yield 10
        v.interrupt()

    eng.process(killer())
    eng.run()
    assert done == ["interrupted", "follower"]
    assert srv._busy == 0


def test_semaphore_interrupt_while_waiting_cleans_queue():
    eng = Engine()
    sem = Semaphore(eng, "tok", initial=0)
    got = []

    def victim():
        try:
            yield from sem.acquire()
            got.append("victim")
        except Interrupt:
            got.append("interrupted")

    v = eng.process(victim())

    def killer():
        yield 5
        v.interrupt()
        yield 5
        sem.release()        # nobody waiting anymore

    eng.process(killer())
    eng.run()
    assert got == ["interrupted"]
    assert sem.waiting == 0
    assert sem.count == 1    # the released token is still available


def test_memsys_transaction_interrupt_releases_mshr_and_lock():
    cfg = PAPER_MACHINE.with_(n_cmps=4, placement="round_robin")
    eng = Engine()
    ms = CoherentMemorySystem(eng, cfg)
    addr = SHARED_BASE + cfg.page_bytes          # remote: long window
    outcome = []

    def victim():
        try:
            yield from ms.load(0, 1, addr, stream="A")
            outcome.append("loaded")
        except Interrupt:
            outcome.append("interrupted")

    v = eng.process(victim())

    def killer():
        yield 50                                  # mid-transaction
        v.interrupt()

    eng.process(killer())
    eng.run()
    assert outcome == ["interrupted"]
    # MSHR cleaned up, directory line lock free:
    assert not ms.nodes[0].mshrs
    la = ms.line_addr(addr)
    assert ms.directory.lock(la).count == 1

    # And the line is still usable: a later load completes normally.
    res = eng.run_process(ms.load(0, 0, addr, stream="R"))
    assert res.level in ("remote", "l2")


def test_memsys_merged_waiter_survives_primary_interrupt():
    """If the primary miss is aborted, a merged secondary requester is
    woken and retries its own transaction."""
    cfg = PAPER_MACHINE.with_(n_cmps=4, placement="round_robin")
    eng = Engine()
    ms = CoherentMemorySystem(eng, cfg)
    addr = SHARED_BASE + cfg.page_bytes
    outcome = []

    def primary():
        try:
            yield from ms.load(0, 1, addr, stream="A")
        except Interrupt:
            outcome.append("primary-aborted")

    def secondary():
        yield 10                                  # merge onto the miss
        res = yield from ms.load(0, 0, addr, stream="R")
        outcome.append(("secondary", res.level))

    p = eng.process(primary())

    def killer():
        yield 60
        p.interrupt()

    eng.process(secondary())
    eng.process(killer())
    eng.run()
    assert "primary-aborted" in outcome
    kinds = [o for o in outcome if isinstance(o, tuple)]
    assert kinds and kinds[0][1] in ("remote", "l2")
