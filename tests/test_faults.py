"""Fault-injection subsystem: FaultConfig/FaultPlan semantics, the
per-layer injection hooks, the watchdog, and channel fault invariants
under region-scoped slipstream settings."""

import pickle

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.config import PAPER_MACHINE
from repro.faults import (CLASS_KINDS, FAULT_CLASSES, FAULT_KINDS,
                          FaultConfig, FaultPlan)
from repro.interp import VM
from repro.interp.events import MemRead, TimeSlice
from repro.obs.probe import NULL_PROBE
from repro.runtime import (DeadlockError, SimDeadlockError, run_program)
from repro.sim import Engine
from repro.sim.resources import Server
from repro.slipstream.channel import PairChannel

CFG4 = PAPER_MACHINE.with_(n_cmps=4)


# ------------------------------------------------------------- FaultConfig

def test_config_validates_classes_and_rate():
    with pytest.raises(ValueError):
        FaultConfig(1, classes=("bogus",))
    with pytest.raises(ValueError):
        FaultConfig(1, rate=0)
    cfg = FaultConfig(1, classes=("vm", "kill", "vm"))
    assert cfg.classes == ("kill", "vm")     # canonical: sorted, deduped


def test_config_is_hashable_and_picklable():
    cfg = FaultConfig(42, classes=("vm", "channel"))
    assert hash(cfg) == hash(FaultConfig(42, classes=("channel", "vm")))
    assert pickle.loads(pickle.dumps(cfg)) == cfg
    assert set(cfg.kinds) == set(CLASS_KINDS["channel"] +
                                 CLASS_KINDS["vm"])


# --------------------------------------------------------------- FaultPlan

def test_plan_schedule_is_seed_deterministic():
    a = FaultPlan(FaultConfig(7))
    b = FaultPlan(FaultConfig(7))
    assert a.schedule == b.schedule
    c = FaultPlan(FaultConfig(8))
    assert a.schedule != c.schedule


def test_plan_draws_rate_entries_per_armed_kind():
    plan = FaultPlan(FaultConfig(3, rate=4))
    for kind in FAULT_KINDS:
        assert len(plan.schedule[kind]) == 4
    vm_only = FaultPlan(FaultConfig(3, classes=("vm",)))
    assert set(vm_only.schedule) == set(CLASS_KINDS["vm"])


def test_fire_counts_opportunities():
    plan = FaultPlan(FaultConfig(11, classes=("kill",), rate=2))
    plan.bind(Engine(), NULL_PROBE)
    idxs = sorted(plan.schedule["a_kill"])
    hits = [i for i in range(max(idxs) + 10)
            if plan.fire("a_kill", "t") is not None]
    assert hits == idxs
    assert [f["index"] for f in plan.fired] == idxs
    assert plan.report()["scheduled"]["a_kill"] == idxs


# ----------------------------------------------------------- VM corruption

def test_vm_corrupt_overwrites_a_numeric_slot():
    img = compile_source("""
double out[4];
void main() {
    int i;
    double s;
    s = 1.5;
    for (i = 0; i < 4; i = i + 1) out[i] = s + i;
}
""")
    vm = VM(img, img.main_index)
    ev = vm.run()                      # run to the first externally
    while isinstance(ev, TimeSlice):   # serviced event: frames are live
        ev = vm.run()
    assert isinstance(ev, MemRead) or ev is not None
    desc = vm.corrupt((5, 999.0))
    assert desc is not None and "999.0" in desc
    frame = vm.frames[-1]
    slots = list(frame.stack) + list(frame.locals)
    assert any(v == 999.0 for v in slots
               if isinstance(v, (int, float)))


def test_vm_corrupt_without_frames_is_a_noop():
    img = compile_source("void main() { }")
    vm = VM(img, img.main_index)
    ev = vm.run()
    while isinstance(ev, TimeSlice):
        ev = vm.run()                   # drain to Done: frames emptied
    assert vm.corrupt((0, 1.0)) is None


# --------------------------------------------------------- channel faults

def _armed_channel(schedule):
    eng = Engine()
    ch = PairChannel(eng, node=0)
    plan = FaultPlan(FaultConfig(1, classes=("channel",)))
    plan.bind(eng, NULL_PROBE)
    plan.schedule.update(schedule)      # pin exact opportunity indices
    ch.faults = plan
    return ch, plan


def test_token_loss_swallows_the_release():
    ch, plan = _armed_channel({"token_loss": {0: True}})
    ch.insert_token()                   # injected: swallowed
    assert ch.tokens.count == 0
    ch.insert_token()                   # next one goes through
    assert ch.tokens.count == 1
    assert [f["kind"] for f in plan.fired] == ["token_loss"]


def test_mailbox_stale_corrupts_the_sequence_tag():
    ch, _ = _armed_channel({"mailbox_stale": {0: 2}})
    ch.publish("chunk", site=3, seq=0, payload=17)
    kind, site, seq, payload = ch.mailbox[0]
    assert (kind, site, payload) == ("chunk", 3, 17)
    assert seq == 2                     # 0 + injected delta


def test_mark_fault_records_site_and_reset_clears_it():
    ch = PairChannel(Engine(), node=0)
    ch.mark_fault("mailbox mismatch", site=5)
    assert ch.a_faulted and ch.a_fault_site == 5
    assert ch.divergence_detected() == "mailbox mismatch"
    ch.reset_after_recovery()
    assert not ch.a_faulted
    assert ch.a_fault_site is None and ch.a_fault_reason is None
    assert ch.recoveries == 1


# ----------------------------------------------------------- network layer

def test_server_jitter_stretches_serve_duration():
    eng = Engine()
    srv = Server(eng, "ni", units=1)
    plan = FaultPlan(FaultConfig(1, classes=("net",)))
    plan.bind(eng, NULL_PROBE)
    plan.schedule["net_jitter"] = {0: 100.0}
    srv.faults = plan

    done = []

    def client():
        yield from srv.serve(10.0)
        done.append(eng.now)

    eng.process(client(), name="client")
    eng.run()
    assert done == [110.0]


# -------------------------------------------------------------- watchdog

def test_watchdog_raises_structured_deadlock_error():
    img = compile_source("""
double a[4096];
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i < 4096; i = i + 1) a[i] = i * 2.0;
}
""")
    with pytest.raises(SimDeadlockError) as exc:
        run_program(img, cfg=CFG4, mode="slipstream", max_cycles=200)
    e = exc.value
    assert e.kind == "watchdog"
    assert e.cycle >= 200
    assert e.blocked, "blocked-process table must not be empty"
    assert all(len(row) == 4 for row in e.blocked)
    assert "\n" not in e.summary
    assert "watchdog expired" in e.summary
    assert "blocked" in str(e)


def test_deadlock_error_alias_and_runtimeerror_compat():
    assert DeadlockError is SimDeadlockError
    assert issubclass(SimDeadlockError, RuntimeError)


# --------------------------------- faults under region-scoped slipstream

NESTED_SRC = """
#pragma omp slipstream(GLOBAL_SYNC, 0)
double a[256];
double b[256];
int i;
void main() {
    int it;
    for (it = 0; it < 20; it = it + 1) {
        #pragma omp slipstream(LOCAL_SYNC, 2)
        #pragma omp parallel for
        for (i = 0; i < 256; i = i + 1) a[i] = a[i] + 1.0;
        #pragma omp parallel for
        for (i = 0; i < 256; i = i + 1) b[i] = a[i] * 2.0;
    }
}
"""


def test_fault_invariants_under_region_scoped_slipstream():
    """Injected A-stream faults must recover cleanly even when regions
    override the slipstream policy: every channel ends re-aligned
    (fault flags cleared) and the output is exact."""
    img = compile_source(NESTED_SRC)
    r = run_program(img, cfg=CFG4, mode="slipstream",
                    faults=FaultConfig(5, classes=("vm", "kill"), rate=3))
    assert np.array_equal(r.store.array("a"), np.full(256, 20.0))
    assert np.array_equal(r.store.array("b"), np.full(256, 40.0))
    assert r.faults is not None and r.faults["fired"]
    assert len(r.recoveries) >= 1
    # every recovery names its shell, reason, and (optional) site
    for who, reason, site in r.recoveries:
        assert who and reason
        assert site is None or isinstance(site, int)


def test_disarmed_runs_report_no_faults():
    img = compile_source(NESTED_SRC)
    r = run_program(img, cfg=CFG4, mode="slipstream")
    assert r.faults is None


def test_same_seed_reproduces_the_campaign():
    img = compile_source(NESTED_SRC)
    kw = dict(cfg=CFG4, mode="slipstream",
              faults=FaultConfig(9, rate=2))
    r1 = run_program(img, **kw)
    r2 = run_program(img, **kw)
    assert r1.faults == r2.faults
    assert r1.recoveries == r2.recoveries
    assert r1.cycles == r2.cycles
