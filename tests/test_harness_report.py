"""Round-trip tests for the CSV/Markdown result exporters."""

import csv
import io

import pytest

from repro.harness import BREAKDOWN_CATEGORIES, breakdown_table, speedup_table
from repro.harness.report import (classification_to_csv, suite_to_csv,
                                  suite_to_markdown)
from repro.harness.runner import BenchRun
from repro.obs import ClassStats, Counter
from repro.runtime import RunResult


def _run(bench, config, cycles, busy, memory, lock):
    r_bd = {"busy": busy, "memory": memory, "lock": lock}
    cls = ClassStats()
    cls.record("A", "read", "timely", 5)
    cls.record("R", "read", "only", 5)
    cls.record("A", "rdex", "late", 2)
    cls.record("R", "rdex", "timely", 2)
    res = RunResult(mode="slipstream", cycles=cycles, result=0.0,
                    output=[], store=None,
                    breakdowns={"R0": dict(r_bd)}, r_breakdown=r_bd,
                    classes=cls, mem_stats=Counter(), recoveries=[])
    return BenchRun(bench=bench, config=config, result=res)


@pytest.fixture()
def suite():
    return {
        "aa": {"single": _run("aa", "single", 1000.0, 600.0, 300.0, 100.0),
               "G0": _run("aa", "G0", 800.0, 500.0, 200.0, 100.0)},
        "bb": {"single": _run("bb", "single", 2000.0, 1000.0, 600.0, 400.0),
               "G0": _run("bb", "G0", 1000.0, 700.0, 200.0, 100.0)},
    }


def test_suite_to_csv_header_tracks_breakdown_categories(suite):
    rows = list(csv.reader(io.StringIO(suite_to_csv(suite))))
    expected = (["benchmark", "config", "cycles", "speedup_vs_single"]
                + [f"t_{c}" for c in BREAKDOWN_CATEGORIES] + ["t_other"])
    assert rows[0] == expected
    assert len(rows) == 1 + 4                       # 2 benches x 2 configs
    assert all(len(r) == len(expected) for r in rows[1:])


def test_suite_to_csv_roundtrips_values(suite):
    rows = list(csv.DictReader(io.StringIO(suite_to_csv(suite))))
    speeds = speedup_table(suite)
    brk = breakdown_table(suite)
    assert len(rows) == 4
    for row in rows:
        bench, cfg = row["benchmark"], row["config"]
        assert float(row["cycles"]) == suite[bench][cfg].cycles
        assert float(row["speedup_vs_single"]) == pytest.approx(
            speeds[bench][cfg], abs=5e-5)
        for c in BREAKDOWN_CATEGORIES:
            assert float(row[f"t_{c}"]) == pytest.approx(
                brk[bench][cfg][c], abs=5e-5)
        assert float(row["t_other"]) == pytest.approx(
            brk[bench][cfg]["other"], abs=5e-5)
    g0 = next(r for r in rows
              if r["benchmark"] == "bb" and r["config"] == "G0")
    assert float(g0["speedup_vs_single"]) == 2.0


def test_classification_to_csv(suite):
    rows = list(csv.reader(io.StringIO(classification_to_csv(suite))))
    labels = ["A-Timely", "A-Late", "A-Only", "R-Timely", "R-Late", "R-Only"]
    assert rows[0] == ["benchmark", "config", "kind"] + labels + [
        "rdex_coverage"]
    # L1 is absent from the fabricated suite and must be skipped, so:
    # 2 benches x 1 config x 2 kinds.
    assert len(rows) == 1 + 4
    body = {(r[0], r[1], r[2]): r[3:] for r in rows[1:]}
    read = body[("aa", "G0", "read")]
    assert [float(v) for v in read[:-1]] == [0.5, 0.0, 0.0, 0.0, 0.0, 0.5]
    rdex = body[("aa", "G0", "rdex")]
    assert [float(v) for v in rdex[:-1]] == [0.0, 0.5, 0.0, 0.5, 0.0, 0.0]
    assert float(rdex[-1]) == 0.5                   # (A-timely+A-late)/total


def test_suite_to_markdown(suite):
    md = suite_to_markdown(suite, title="demo")
    lines = md.splitlines()
    assert lines[0] == "### demo"
    header = lines[2]
    assert header == "| bench | single | G0 | best-slip gain |"
    assert lines[3] == "|---|---|---|---|"
    # Benchmarks are emitted sorted; gain = best base over best slip.
    aa = next(ln for ln in lines if ln.startswith("| AA "))
    bb = next(ln for ln in lines if ln.startswith("| BB "))
    assert lines.index(aa) < lines.index(bb)
    assert aa == "| AA | 1.000 | 1.250 | 1.250 |"
    assert bb == "| BB | 1.000 | 2.000 | 2.000 |"
    assert lines[-1] == "| **average** |  |  | **1.625** |"


def test_suite_to_markdown_without_title(suite):
    md = suite_to_markdown(suite)
    assert md.splitlines()[0].startswith("| bench |")
