"""Unit tests for the observability layer: probes, sinks, trace export."""

import json

import pytest

from repro.obs import (AggregateSink, ClassStats, Counter, NULL_PROBE,
                       NullSink, Probe, Sink, TimeBreakdown, TraceSink,
                       make_sink, merge_traces, trace_json, validate_trace,
                       write_trace)
from repro.obs.trace import main as trace_main


# ----------------------------------------------------------- TimeBreakdown

def test_breakdown_raises_after_close():
    """Regression: accounting calls on a finished clock must fail loudly
    (previously ``_closed`` was set but never checked)."""
    bd = TimeBreakdown(start=0.0)
    bd.push("lock", 5.0)
    bd.pop(8.0)
    bd.close(10.0)
    assert bd.closed
    with pytest.raises(ValueError, match="push on closed"):
        bd.push("memory", 11.0)
    with pytest.raises(ValueError, match="switch on closed"):
        bd.switch("memory", 11.0)
    with pytest.raises(ValueError, match="pop on closed"):
        bd.pop(11.0)
    with pytest.raises(ValueError, match="close on closed"):
        bd.close(12.0)
    # Totals unchanged by the rejected calls.
    assert bd.as_dict() == {"lock": 3.0, "busy": 7.0}


def test_breakdown_closed_property():
    bd = TimeBreakdown()
    assert not bd.closed
    bd.close(1.0)
    assert bd.closed


def test_breakdown_reattribute_allowed_after_close():
    bd = TimeBreakdown(start=0.0)
    bd.close(10.0)
    bd.reattribute("busy", "memory", 4.0)
    assert bd.as_dict() == {"busy": 6.0, "memory": 4.0}
    with pytest.raises(ValueError):
        bd.reattribute("busy", "memory", 7.0)     # only 6 left
    with pytest.raises(ValueError):
        bd.reattribute("busy", "memory", -1.0)
    bd.reattribute("busy", "memory", 0.0)         # no-op is fine
    assert bd.total() == 10.0


def test_breakdown_stack_snapshot():
    bd = TimeBreakdown(start=0.0)
    bd.push("barrier", 1.0)
    bd.push("memory", 2.0)
    assert bd.stack == ("barrier", "memory")
    bd.stack  # snapshot, not the live list
    bd.pop(3.0)
    assert bd.stack == ("barrier",)


# ----------------------------------------------------------------- Counter

def test_counter_has_slots():
    c = Counter()
    with pytest.raises(AttributeError):
        c.stray = 1


def test_counter_items_view_is_live():
    c = Counter()
    c.add("loads", 3)
    view = c.items()
    assert dict(view) == {"loads": 3}
    c.add("stores")
    assert dict(view) == {"loads": 3, "stores": 1}


def test_counter_merge_uses_public_view():
    a, b = Counter(), Counter()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 5)
    a.merge(b)
    assert a.as_dict() == {"x": 3, "y": 5}
    assert b.as_dict() == {"x": 2, "y": 5}


def test_classstats_items_and_merge():
    a, b = ClassStats(), ClassStats()
    a.record("A", "read", "timely", 2)
    b.record("A", "read", "timely", 1)
    b.record("R", "rdex", "only", 4)
    a.merge(b)
    assert a.get("A", "read", "timely") == 3
    assert a.get("R", "rdex", "only") == 4
    assert dict(b.items()) == {("A", "read", "timely"): 1,
                               ("R", "rdex", "only"): 4}


# ------------------------------------------------------------------ Probe

def test_null_probe_is_inert():
    p = NULL_PROBE
    p.count("anything", 7)
    p.push("lock", 1.0)
    p.switch("memory", 2.0)
    assert p.pop(3.0) is None
    p.close(4.0)
    p.transfer("busy", "memory", 1.0)
    p.instant("mark", 5.0, {"k": 1})
    p.classify("A", "read", "timely")
    assert p.depth == 0
    assert p.current == "busy"
    assert p.closed
    assert p.get("busy") == 0.0
    assert p.as_dict() == {}


def test_probe_records_into_collectors():
    bd, c, cls = TimeBreakdown(start=0.0), Counter(), ClassStats()
    p = Probe("t", bd=bd, counters=c, classes=cls)
    p.count("hits", 2)
    p.push("memory", 1.0)
    assert p.depth == 1 and p.current == "memory"
    assert p.pop(4.0) == "memory"
    p.classify("R", "rdex", "late")
    p.close(10.0)
    p.transfer("busy", "memory", 2.0)
    assert c.get("hits") == 2
    assert p.as_dict() == {"memory": 5.0, "busy": 5.0}
    assert cls.get("R", "rdex", "late") == 1


# ------------------------------------------------------------------ Sinks

def test_null_sink_shares_null_probe():
    s = NullSink()
    assert s.probe("a") is NULL_PROBE
    assert s.probe("b") is NULL_PROBE
    assert s.counter("a").get("anything") == 0
    assert s.trace_events() is None


def test_aggregate_sink_caches_probes_and_pools_classes():
    s = AggregateSink()
    p1 = s.probe("cpu0", start=5.0)
    assert s.probe("cpu0", start=99.0) is p1     # later start ignored
    p2 = s.probe("cpu1")
    p1.classify("A", "read", "only")
    p2.classify("A", "read", "only")
    assert s.classes.get("A", "read", "only") == 2
    p1.count("k")
    assert s.counter("cpu0").get("k") == 1       # same Counter object
    p1.close(7.0)
    assert s.breakdowns["cpu0"].get("busy") == 2.0
    assert s.trace_events() is None


def test_make_sink_resolution():
    assert isinstance(make_sink(), AggregateSink)
    assert isinstance(make_sink("aggregate"), AggregateSink)
    assert isinstance(make_sink("null"), NullSink)
    assert isinstance(make_sink("off"), NullSink)
    assert isinstance(make_sink("trace"), TraceSink)
    s = NullSink()
    assert make_sink(s) is s
    with pytest.raises(ValueError, match="unknown sink"):
        make_sink("bogus")
    assert not isinstance(make_sink("null"), AggregateSink)
    assert isinstance(make_sink("trace"), AggregateSink)  # trace aggregates


# -------------------------------------------------------------- TraceSink

def test_trace_sink_also_aggregates():
    s = TraceSink()
    p = s.probe("cpu0", start=0.0)
    p.push("lock", 2.0)
    p.pop(5.0)
    p.close(10.0)
    assert s.breakdowns["cpu0"].as_dict() == {"busy": 7.0, "lock": 3.0}
    assert validate_trace(s.trace_events()) == []


def test_trace_sink_emits_matched_spans():
    s = TraceSink()
    p = s.probe("cpu0", start=0.0)
    p.push("barrier", 1.0)
    p.push("memory", 2.0)
    p.pop(3.0)
    p.pop(4.0)
    p.instant("token.insert", 4.5, {"count": 1})
    p.close(5.0)
    events = s.trace_events()
    assert validate_trace(events) == []
    names = [(e["ph"], e["name"]) for e in events if e["ph"] != "M"]
    assert names == [("B", "busy"), ("B", "barrier"), ("B", "memory"),
                     ("E", "memory"), ("E", "barrier"),
                     ("i", "token.insert"), ("E", "busy")]


def test_trace_sink_switch_replaces_cleanly():
    """A genuine switch emits E(old)+B(new), never a dangling 'E' for
    the implicit base category."""
    s = TraceSink()
    p = s.probe("cpu0", start=0.0)
    p.push("idle", 1.0)
    p.switch("jobwait", 2.0)     # depth 1 -> genuine replace
    p.pop(3.0)
    p.close(4.0)
    events = s.trace_events()
    assert validate_trace(events) == []
    names = [(e["ph"], e["name"]) for e in events if e["ph"] != "M"]
    assert names == [("B", "busy"), ("B", "idle"), ("E", "idle"),
                     ("B", "jobwait"), ("E", "jobwait"), ("E", "busy")]


def test_probe_pop_and_switch_on_empty_stack_raise():
    """Regression: a pop/switch with no open span used to silently
    desynchronize span accounting (pop) or invent a span (switch);
    with any collector live it must fail loudly instead."""
    bd = TimeBreakdown(start=0.0)
    p = Probe("cpu0", bd=bd)
    with pytest.raises(ValueError, match="pop with no open span"):
        p.pop(1.0)
    with pytest.raises(ValueError, match="switch with no open span"):
        p.switch("idle", 1.0)
    # A balanced sequence still works and totals are unperturbed.
    p.push("lock", 2.0)
    p.switch("memory", 3.0)
    assert p.pop(5.0) == "memory"
    with pytest.raises(ValueError, match="pop with no open span"):
        p.pop(6.0)
    p.close(10.0)
    assert p.as_dict() == {"busy": 7.0, "lock": 1.0, "memory": 2.0}


def test_profile_only_probe_validates_like_bd():
    """The empty-stack guard must hold when the profiler is the only
    live collector (bd is None)."""
    from repro.obs import TrackProfile
    p = Probe("cpu0", prof=TrackProfile("cpu0", start=0.0))
    with pytest.raises(ValueError, match="pop with no open span"):
        p.pop(1.0)
    with pytest.raises(ValueError, match="switch with no open span"):
        p.switch("idle", 1.0)
    p.push("lock", 2.0)
    assert p.depth == 1
    assert p.pop(3.0) == "lock"


def test_trace_sink_finalizes_unclosed_tracks():
    s = TraceSink()
    p = s.probe("mem", start=0.0)
    p.push("memory", 3.0)        # never popped, never closed
    q = s.probe("cpu0", start=0.0)
    q.close(9.0)                 # pushes _last_ts to 9
    events = s.trace_events()
    assert validate_trace(events) == []
    tail = [e for e in events if e["ph"] == "E" and e["tid"] == 1]
    assert [e["ts"] for e in tail] == [9.0, 9.0]   # memory, then busy
    assert s.trace_events() is events              # idempotent


def test_trace_sink_zero_event_run():
    """A run that records nothing still yields a valid (possibly
    empty) timeline: no spans, no dangling metadata."""
    s = TraceSink()
    assert s.trace_events() == []
    assert validate_trace(s.trace_events()) == []
    s2 = TraceSink()
    p = s2.probe("cpu0", start=0.0)
    p.close(0.0)                  # zero-length track, no spans
    events = s2.trace_events()
    assert validate_trace(events) == []
    spans = [e for e in events if e["ph"] in ("B", "E")]
    # Only the implicit base category, opened and closed at t=0.
    assert [(e["ph"], e["name"], e["ts"]) for e in spans] == [
        ("B", "busy", 0.0), ("E", "busy", 0.0)]


def test_trace_sink_run_ending_with_open_spans():
    """A simulation cut off mid-span (deadlock diagnosis, max-cycles
    abort) must still export a validating timeline: every open span is
    closed at the final timestamp, deepest first."""
    s = TraceSink()
    p = s.probe("cpu0", start=0.0)
    p.push("barrier", 2.0)
    p.push("memory", 3.0)         # both still open at the end
    q = s.probe("cpu1", start=0.0)
    q.push("lock", 1.0)
    q.close(8.0)                  # this track's close sets the end ts
    events = s.trace_events()
    assert validate_trace(events) == []
    cpu0_ends = [e for e in events
                 if e["ph"] == "E" and e["tid"] == 1]
    assert [e["name"] for e in cpu0_ends] == ["memory", "barrier", "busy"]
    assert all(e["ts"] == 8.0 for e in cpu0_ends)


def test_trace_sink_classify_emits_instant():
    s = TraceSink()
    p = s.probe("mem")
    p.classify("A", "rdex", "timely", now=7.0)
    inst = [e for e in s.trace_events() if e["ph"] == "i"]
    assert [e["name"] for e in inst] == ["classify.A-rdex-timely"]
    assert s.classes.get("A", "rdex", "timely") == 1


# ------------------------------------------------- validation and export

def test_validate_trace_catches_defects():
    ok = {"pid": 1, "tid": 1, "cat": "span"}
    assert validate_trace([{"ph": "B", "name": "x", "ts": 5.0, **ok},
                           {"ph": "E", "name": "x", "ts": 2.0, **ok}]
                          ) != []                        # backwards ts
    assert any("closes" in p for p in validate_trace(
        [{"ph": "B", "name": "x", "ts": 1.0, **ok},
         {"ph": "E", "name": "y", "ts": 2.0, **ok}]))    # mismatched E
    assert any("unclosed" in p for p in validate_trace(
        [{"ph": "B", "name": "x", "ts": 1.0, **ok}]))
    assert any("no open" in p for p in validate_trace(
        [{"ph": "E", "name": "x", "ts": 1.0, **ok}]))
    assert validate_trace([{"ph": "i", "name": "m"}]) != []   # no pid/tid/ts
    assert validate_trace("nope") != []
    assert validate_trace({"notTraceEvents": []}) != []
    assert validate_trace([]) == []


def test_trace_json_roundtrip_and_write(tmp_path):
    events = [{"ph": "i", "name": "m", "s": "t",
               "pid": 1, "tid": 1, "ts": 0.0}]
    data = json.loads(trace_json(events))
    assert data["traceEvents"] == events
    assert data["displayTimeUnit"] == "ms"
    path = tmp_path / "t.json"
    write_trace(str(path), events)
    assert json.loads(path.read_text())["traceEvents"] == events
    assert trace_main([str(path)]) == 0


def test_trace_main_rejects_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps([{"ph": "E", "name": "x",
                                "pid": 1, "tid": 1, "ts": 1.0}]))
    assert trace_main([str(bad)]) == 1
    assert trace_main([str(tmp_path / "missing.json")]) == 1
    assert trace_main([]) == 2


def test_merge_traces_remaps_pids_without_mutation():
    run_a = [{"ph": "B", "name": "busy", "pid": 1, "tid": 1, "ts": 0.0},
             {"ph": "E", "name": "busy", "pid": 1, "tid": 1, "ts": 5.0}]
    run_b = [{"ph": "B", "name": "busy", "pid": 1, "tid": 1, "ts": 0.0},
             {"ph": "E", "name": "busy", "pid": 1, "tid": 1, "ts": 3.0}]
    merged = merge_traces([("cg:G0", run_a), ("cg:L1", run_b)])
    metas = [e for e in merged if e["ph"] == "M"]
    assert [(m["pid"], m["args"]["name"]) for m in metas] == [
        (1, "cg:G0"), (2, "cg:L1")]
    assert {e["pid"] for e in merged if e["ph"] != "M"} == {1, 2}
    assert run_b[0]["pid"] == 1          # inputs untouched
    assert validate_trace(merged) == []
