"""Tests for the content-addressed compile cache."""

import pickle

import pytest

from repro.npb import COMPILE_CACHE, REGISTRY, CompileCache
from repro.npb import cache as cache_mod
from repro.npb.cache import compiler_fingerprint

SRC_A = """
double x;
int main() {
  x = 1.5;
  return 0;
}
"""

SRC_B = SRC_A.replace("1.5", "2.5")


@pytest.fixture
def mem_cache():
    """A fresh cache with the disk layer off."""
    return CompileCache(disk=False)


def test_repeat_compile_hits(mem_cache):
    a = mem_cache.get_or_compile(SRC_A)
    b = mem_cache.get_or_compile(SRC_A)
    assert a is b
    assert mem_cache.stats()["hits"] == 1
    assert mem_cache.stats()["misses"] == 1


def test_source_change_misses(mem_cache):
    mem_cache.get_or_compile(SRC_A)
    mem_cache.get_or_compile(SRC_B)
    assert mem_cache.stats()["misses"] == 2
    assert mem_cache.stats()["hits"] == 0


def test_kernel_param_change_misses():
    def fresh_compiles():
        s = COMPILE_CACHE.stats()
        return s["misses"] + s["disk_hits"]   # i.e. not in memory

    first = REGISTRY["cg"].compile("test")
    before = fresh_compiles()
    again = REGISTRY["cg"].compile("test")
    assert first is again                 # identical params: memory hit
    assert fresh_compiles() == before
    other = REGISTRY["cg"].compile("test", n=19)
    assert other is not first             # param override: fresh image
    assert fresh_compiles() == before + 1


def test_compiler_fingerprint_invalidates_key(monkeypatch):
    k1 = CompileCache.key_for(SRC_A)
    monkeypatch.setattr(cache_mod, "_fingerprint",
                        "0" * 64)          # a different compiler version
    k2 = CompileCache.key_for(SRC_A)
    assert k1 != k2


def test_hotpath_tier_flags_change_key(monkeypatch):
    """The fuse and compile tiers shape the image (opcode stream /
    ``gen_src``) without touching any compiler source, so each flag
    combination must map to its own cache key -- and unset must alias
    all-on, its semantic equivalent."""
    from repro.hotpath import reset_for_tests
    keys = {}
    for tiers in ("engine,mem,fuse,compile", "engine,mem,fuse",
                  "engine,mem,compile", "engine,mem", None):
        if tiers is None:
            monkeypatch.delenv("REPRO_HOTPATH", raising=False)
        else:
            monkeypatch.setenv("REPRO_HOTPATH", tiers)
        reset_for_tests()
        keys[tiers] = CompileCache.key_for(SRC_A)
    assert keys[None] == keys["engine,mem,fuse,compile"]
    four = [keys[t] for t in ("engine,mem,fuse,compile", "engine,mem,fuse",
                              "engine,mem,compile", "engine,mem")]
    assert len(set(four)) == 4


def test_fingerprint_is_stable_and_hexlike():
    fp = compiler_fingerprint()
    assert fp == compiler_fingerprint()
    assert len(fp) == 64 and int(fp, 16) >= 0


def test_disk_layer_round_trip(tmp_path):
    writer = CompileCache(disk_dir=tmp_path)
    image = writer.get_or_compile(SRC_A)
    assert len(list(tmp_path.glob("*.img"))) == 1
    reader = CompileCache(disk_dir=tmp_path)    # cold in-memory layer
    loaded = reader.get_or_compile(SRC_A)
    assert reader.stats() == {"hits": 0, "disk_hits": 1, "misses": 0,
                              "entries": 1}
    assert loaded.n_instructions == image.n_instructions
    assert [c.instrs for c in loaded.funcs] == [c.instrs for c in image.funcs]


# b"not a pickle" raises UnpicklingError, b"garbage\n" ValueError --
# corruption must fall back to a compile whatever pickle throws.
@pytest.mark.parametrize("junk", [b"not a pickle", b"garbage\n", b""])
def test_corrupt_disk_entry_falls_back_to_compile(tmp_path, junk):
    writer = CompileCache(disk_dir=tmp_path)
    writer.get_or_compile(SRC_A)
    entry = next(tmp_path.glob("*.img"))
    entry.write_bytes(junk)
    reader = CompileCache(disk_dir=tmp_path)
    image = reader.get_or_compile(SRC_A)
    assert reader.stats()["misses"] == 1 and reader.stats()["disk_hits"] == 0
    assert image.n_instructions > 0


def test_disk_layer_disabled_by_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    c = CompileCache()
    c.get_or_compile(SRC_A)
    assert list(tmp_path.rglob("*.img")) == []


def test_cache_dir_env_respected(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    CompileCache().get_or_compile(SRC_A)
    assert len(list((tmp_path / "compile").glob("*.img"))) == 1


def test_clear_drops_memory_and_optionally_disk(tmp_path):
    c = CompileCache(disk_dir=tmp_path)
    c.get_or_compile(SRC_A)
    c.clear()
    assert c.stats()["entries"] == 0
    assert len(list(tmp_path.glob("*.img"))) == 1   # disk survives
    c.clear(disk=True)
    assert list(tmp_path.glob("*.img")) == []


def test_pickled_image_excludes_translation_cache(tmp_path):
    """Disk entries must not carry the interpreter's per-Code fast
    stream (derived state, rebuilt on first execution)."""
    from repro.interp.interpreter import _translate
    c = CompileCache(disk_dir=tmp_path)
    image = c.get_or_compile(SRC_A)
    _translate(image.funcs[0])                  # populate the cache...
    assert hasattr(image.funcs[0], "_fast")
    clone = pickle.loads(pickle.dumps(image))   # ...and it doesn't travel
    assert not hasattr(clone.funcs[0], "_fast")
