"""Mini-NPB kernel tests: registry hygiene, source generation,
functional correctness against the NumPy references, and simulated
correctness in every execution mode."""

import numpy as np
import pytest

from repro import run_program
from repro.compiler import compile_source
from repro.config import PAPER_MACHINE
from repro.interp import FunctionalRunner
from repro.npb import REGISTRY
from repro.npb.cg import _columns
from repro.npb.common import lcg_indices
from repro.runtime import RuntimeEnv

CFG = PAPER_MACHINE.with_(n_cmps=4)
ALL = sorted(REGISTRY)


def test_registry_has_the_papers_five_benchmarks_plus_ep():
    assert ALL == ["bt", "cg", "ep", "lu", "mg", "sp"]
    from repro.npb import PAPER_SUITE
    assert set(PAPER_SUITE) == {"bt", "cg", "lu", "mg", "sp"}


@pytest.mark.parametrize("name", ALL)
def test_spec_metadata(name):
    spec = REGISTRY[name]
    assert spec.description
    assert set(spec.sizes) >= {"test", "bench"}
    src = spec.source(**spec.sizes["test"])
    assert "#pragma omp parallel" in src


@pytest.mark.parametrize("name", ALL)
def test_functional_matches_numpy_reference(name):
    spec = REGISTRY[name]
    runner = FunctionalRunner(spec.compile("test")).run()
    spec.verify(runner.store, "test")
    assert runner.output                        # each kernel prints a norm


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("mode", ["single", "double", "slipstream"])
def test_simulated_modes_match_reference(name, mode):
    spec = REGISTRY[name]
    r = run_program(spec.compile("test"), cfg=CFG, mode=mode)
    spec.verify(r.store, "test")


@pytest.mark.parametrize("name", ["bt", "cg", "ep", "mg", "sp"])
def test_dynamic_scheduling_matches_reference(name):
    spec = REGISTRY[name]
    env = RuntimeEnv(schedule=("dynamic", 4))
    for mode in ("single", "slipstream"):
        r = run_program(spec.compile("test"), cfg=CFG, mode=mode, env=env)
        spec.verify(r.store, "test")


def test_lu_pipeline_really_pipelines():
    """The LU flags must force cross-thread ordering: with the flag
    waits compiled in, results equal the strictly sequential SSOR."""
    spec = REGISTRY["lu"]
    r = run_program(spec.compile("test"), cfg=CFG, mode="single")
    spec.verify(r.store, "test")     # reference is the sequential sweep


def test_lu_excluded_from_dynamic_suite():
    from repro.harness import DYNAMIC_BENCHMARKS, STATIC_BENCHMARKS
    from repro.npb import PAPER_SUITE
    assert "lu" not in DYNAMIC_BENCHMARKS
    assert set(STATIC_BENCHMARKS) == set(PAPER_SUITE)
    assert "ep" not in STATIC_BENCHMARKS     # extra kernel, not Table 2


def test_cg_matrix_structure_matches_both_sides():
    """The SlipC-embedded hash and the NumPy reference must generate the
    identical sparse structure."""
    spec = REGISTRY["cg"]
    params = dict(n=64, nnz=3, iters=1)
    runner = FunctionalRunner(spec.compile("test", **params)).run()
    got = np.asarray(runner.store.array("acol")).reshape(64, 3)
    assert np.array_equal(got, _columns(64, 3))


def test_lcg_indices_deterministic_and_in_range():
    a = lcg_indices(10, 4, 50)
    b = lcg_indices(10, 4, 50)
    assert np.array_equal(a, b)
    assert a.min() >= 0 and a.max() < 50


@pytest.mark.parametrize("name", ALL)
def test_bench_size_compiles(name):
    spec = REGISTRY[name]
    image = spec.compile("bench")
    # Sanity floor only; superinstruction fusion legitimately packs
    # several bytecodes into one, so keep it below any fused size.
    assert image.n_instructions > 50


def test_mg_rejects_too_coarse_hierarchy():
    with pytest.raises(ValueError):
        REGISTRY["mg"].source(g=16, levels=4)   # coarsest would be 2x2


def test_sp_reference_is_stable():
    """ADI coefficients must keep the field bounded (no blow-up)."""
    ref = REGISTRY["sp"].reference(p=8, g=12, iters=6)
    assert np.isfinite(ref["u"]).all()
    assert np.abs(ref["u"]).max() < 100


def test_bt_reference_is_stable():
    ref = REGISTRY["bt"].reference(p=6, g=10, iters=6)
    for k in ("u1", "u2", "u3"):
        assert np.isfinite(ref[k]).all()
        assert np.abs(ref[k]).max() < 100


def test_verify_detects_corruption():
    spec = REGISTRY["cg"]
    runner = FunctionalRunner(spec.compile("test")).run()
    runner.store.array("p")[0] += 1.0
    with pytest.raises(AssertionError):
        spec.verify(runner.store, "test")


def test_duplicate_registration_rejected():
    from repro.npb.common import KernelSpec, Registry
    reg = Registry()
    spec = KernelSpec("x", "d", lambda: "", lambda: {}, {"test": {}})
    reg.add(spec)
    with pytest.raises(ValueError):
        reg.add(spec)
