"""Integration tests: compiled images running on the simulated machine.

Every test checks the timed machine against the functional reference
(same values in every mode), plus mode-specific properties: breakdown
accounting, job dispatch, scheduling, and the single-binary runtime
mode selection the paper emphasizes.
"""

import numpy as np
import pytest

from repro import compile_source, run_program
from repro.config import PAPER_MACHINE
from repro.interp import FunctionalRunner
from repro.runtime import RuntimeEnv

CFG4 = PAPER_MACHINE.with_(n_cmps=4)

STENCIL = """
double a[2048];
double b[2048];
double total;
int i;
void main() {
    int it;
    #pragma omp parallel for
    for (i = 0; i < 2048; i = i + 1) a[i] = i * 0.5;
    for (it = 0; it < 2; it = it + 1) {
        #pragma omp parallel for
        for (i = 1; i < 2047; i = i + 1) b[i] = (a[i-1] + a[i+1]) * 0.5;
        #pragma omp parallel for
        for (i = 1; i < 2047; i = i + 1) a[i] = b[i];
    }
    total = 0.0;
    #pragma omp parallel for reduction(+: total)
    for (i = 0; i < 2048; i = i + 1) total = total + a[i];
}
"""


@pytest.fixture(scope="module")
def stencil_image():
    return compile_source(STENCIL)


@pytest.fixture(scope="module")
def stencil_ref(stencil_image):
    return FunctionalRunner(stencil_image).run()


@pytest.mark.parametrize("mode", ["single", "double", "slipstream"])
def test_modes_match_functional_reference(stencil_image, stencil_ref, mode):
    r = run_program(stencil_image, cfg=CFG4, mode=mode)
    assert r.store.value("total") == pytest.approx(
        stencil_ref.store.value("total"))
    assert np.allclose(r.store.array("a"), stencil_ref.store.array("a"))


@pytest.mark.parametrize("sched", [("static", None), ("static", 16),
                                   ("dynamic", 32), ("guided", 16)])
def test_runtime_schedules_match_reference(sched):
    src = STENCIL.replace("#pragma omp parallel for",
                          "#pragma omp parallel for schedule(runtime)")
    img = compile_source(src)
    ref = FunctionalRunner(img).run()
    env = RuntimeEnv(schedule=sched)
    for mode in ("single", "slipstream"):
        r = run_program(img, cfg=CFG4, mode=mode, env=env)
        assert r.store.value("total") == pytest.approx(
            ref.store.value("total")), (mode, sched)


def test_single_binary_runs_all_modes(stencil_image):
    """§5.1: 'the same binary' -- one image, mode chosen at run time."""
    cycles = {}
    for mode in ("single", "double", "slipstream"):
        cycles[mode] = run_program(stencil_image, cfg=CFG4, mode=mode).cycles
    assert len(set(cycles.values())) >= 2   # the modes actually differ


def test_slipstream_sync_switchable_via_env(stencil_image):
    g0 = run_program(stencil_image, cfg=CFG4, mode="slipstream",
                     env=RuntimeEnv(slipstream=("GLOBAL_SYNC", 0),
                                    slipstream_set=True))
    l1 = run_program(stencil_image, cfg=CFG4, mode="slipstream",
                     env=RuntimeEnv(slipstream=("LOCAL_SYNC", 1),
                                    slipstream_set=True))
    assert g0.store.value("total") == pytest.approx(
        l1.store.value("total"))
    # L1 lets the A-stream run a session ahead: token traffic must exist
    # in both, and the two policies must differ somewhere observable.
    assert sum(s["tokens_consumed"] for s in g0.channel_stats.values()) > 0
    assert sum(s["tokens_consumed"] for s in l1.channel_stats.values()) > 0
    assert g0.cycles != l1.cycles


def test_env_none_disables_slipstream(stencil_image):
    r = run_program(stencil_image, cfg=CFG4, mode="slipstream",
                    env=RuntimeEnv(slipstream=("NONE", 0),
                                   slipstream_set=True))
    assert sum(s["tokens_consumed"] for s in r.channel_stats.values()) == 0
    # No A-stream fills should be classified at all.
    assert r.classes.total("read") == 0 or all(
        r.classes.get("A", k, o) == 0
        for k in ("read", "rdex") for o in ("timely", "late", "only"))


def test_slipstream_prefetches_classified(stencil_image):
    r = run_program(stencil_image, cfg=CFG4, mode="slipstream")
    c = r.classes
    total_reads = c.total("read")
    assert total_reads > 0
    a_any = sum(c.get("A", "read", o) for o in ("timely", "late", "only"))
    assert a_any > 0                       # the A-stream really prefetches
    assert c.get("A", "rdex", "timely") > 0  # store->prefetch conversion


def test_breakdown_sums_to_elapsed(stencil_image):
    r = run_program(stencil_image, cfg=CFG4, mode="single")
    n_r = CFG4.n_cmps
    total = sum(r.r_breakdown.values())
    assert total == pytest.approx(n_r * r.cycles, rel=1e-6)
    assert r.r_breakdown.get("memory", 0) > 0
    assert r.r_breakdown.get("jobwait", 0) > 0
    assert r.r_breakdown.get("barrier", 0) > 0


def test_double_mode_uses_both_cpus():
    src = """
double a[512];
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i < 512; i = i + 1) a[i] = i;
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="double")
    names = set(r.breakdowns)
    assert any("c1" in n for n in names)
    assert sum(1 for n in names if n.startswith("R")) == 8


def test_dynamic_scheduling_has_scheduling_time(stencil_image):
    env = RuntimeEnv(schedule=("dynamic", 64))
    src = STENCIL.replace("#pragma omp parallel for",
                          "#pragma omp parallel for schedule(runtime)")
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="single", env=env)
    assert r.r_breakdown.get("scheduling", 0) > 0


def test_static_scheduling_negligible_scheduling_time(stencil_image):
    r = run_program(stencil_image, cfg=CFG4, mode="single")
    total = sum(r.r_breakdown.values())
    assert r.r_breakdown.get("scheduling", 0) / total < 0.02


def test_if_clause_serializes_region():
    src = """
double a[64];
int i, nt;
void main() {
    #pragma omp parallel for if(0)
    for (i = 0; i < 64; i = i + 1) a[i] = omp_get_num_threads();
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="single")
    assert np.all(r.store.array("a") == 1.0)  # team of one


def test_thread_ids_cover_team():
    src = """
double seen[8];
int i;
void main() {
    #pragma omp parallel for schedule(static, 1)
    for (i = 0; i < 8; i = i + 1) seen[i] = omp_get_thread_num();
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=PAPER_MACHINE.with_(n_cmps=8), mode="single")
    assert sorted(r.store.array("seen").tolist()) == list(range(8))


def test_a_stream_shares_task_id():
    """§3.1: 'the same ID should be returned to processes sharing a CMP'
    -- checked indirectly: slipstream results equal single-mode results
    even for id-dependent work partitioning."""
    src = """
double a[64];
int i;
void main() {
    int t;
    #pragma omp parallel private(t)
    {
        t = omp_get_thread_num();
        #pragma omp for
        for (i = 0; i < 64; i = i + 1) a[i] = t;
    }
}
"""
    img = compile_source(src)
    rs = run_program(img, cfg=CFG4, mode="single")
    rp = run_program(img, cfg=CFG4, mode="slipstream")
    assert np.array_equal(rs.store.array("a"), rp.store.array("a"))


def test_io_and_inputs_across_modes():
    src = """
double x;
void main() {
    x = read_input();
    print("got", x);
    print("twice", x * 2.0);
}
"""
    img = compile_source(src)
    for mode in ("single", "double", "slipstream"):
        r = run_program(img, cfg=CFG4, mode=mode, inputs=[21.0])
        assert r.output == [("got", 21.0), ("twice", 42.0)], mode


def test_output_not_duplicated_by_a_stream():
    """I/O is irreversible: the A-stream must skip it (§3.1)."""
    src = """
int i;
double a[32];
void main() {
    print("start");
    #pragma omp parallel for
    for (i = 0; i < 32; i = i + 1) a[i] = i;
    print("end");
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="slipstream")
    assert r.output == [("start",), ("end",)]


def test_critical_and_atomic_serialize():
    src = """
double counter;
int i;
void main() {
    counter = 0.0;
    #pragma omp parallel for
    for (i = 0; i < 64; i = i + 1) {
        #pragma omp critical
        { counter = counter + 1.0; }
    }
    #pragma omp parallel for
    for (i = 0; i < 64; i = i + 1) {
        #pragma omp atomic
        counter = counter + 1.0;
    }
}
"""
    img = compile_source(src)
    for mode in ("single", "double", "slipstream"):
        r = run_program(img, cfg=CFG4, mode=mode)
        assert r.store.value("counter") == 128.0, mode
        assert r.r_breakdown.get("lock", 0) > 0


def test_single_construct_executes_once_per_encounter():
    src = """
double count;
int i;
void main() {
    int it;
    count = 0.0;
    for (it = 0; it < 3; it = it + 1) {
        #pragma omp parallel
        {
            #pragma omp single
            { count = count + 1.0; }
        }
    }
}
"""
    img = compile_source(src)
    for mode in ("single", "double", "slipstream"):
        r = run_program(img, cfg=CFG4, mode=mode)
        assert r.store.value("count") == 3.0, mode


def test_sections_across_modes():
    src = """
double a, b, c;
void main() {
    #pragma omp parallel
    {
        #pragma omp sections
        {
            #pragma omp section
            { a = 1.0; }
            #pragma omp section
            { b = 2.0; }
            #pragma omp section
            { c = 3.0; }
        }
    }
}
"""
    img = compile_source(src)
    for mode in ("single", "double", "slipstream"):
        r = run_program(img, cfg=CFG4, mode=mode)
        vals = (r.store.value("a"), r.store.value("b"), r.store.value("c"))
        assert vals == (1.0, 2.0, 3.0), mode


def test_master_construct_runs_on_master_only():
    src = """
double who;
int i;
void main() {
    #pragma omp parallel
    {
        #pragma omp master
        { who = omp_get_thread_num() + 100.0; }
    }
}
"""
    img = compile_source(src)
    for mode in ("single", "slipstream"):
        r = run_program(img, cfg=CFG4, mode=mode)
        assert r.store.value("who") == 100.0, mode


def test_explicit_barrier_and_flush():
    src = """
double a[16];
double b[16];
int i;
void main() {
    #pragma omp parallel
    {
        #pragma omp for nowait
        for (i = 0; i < 16; i = i + 1) a[i] = i;
        #pragma omp barrier
        #pragma omp flush
        #pragma omp for
        for (i = 0; i < 16; i = i + 1) b[i] = a[15 - i];
    }
}
"""
    img = compile_source(src)
    for mode in ("single", "double", "slipstream"):
        r = run_program(img, cfg=CFG4, mode=mode)
        assert np.array_equal(r.store.array("b"),
                              np.arange(15, -1, -1.0)), mode


def test_guided_chunks_shrink():
    src = """
double a[512];
int i;
void main() {
    #pragma omp parallel for schedule(guided)
    for (i = 0; i < 512; i = i + 1) a[i] = 1.0;
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="single")
    assert float(np.sum(r.store.array("a"))) == 512.0


def test_deadlock_detection():
    # A program whose master waits on input that never arrives.
    src = """
double x;
void main() { x = read_input(); }
"""
    img = compile_source(src)
    with pytest.raises(RuntimeError):
        run_program(img, cfg=CFG4, mode="single")  # no inputs provided


def test_sections_static_option():
    """The sections-assignment policy ablation (§3.1 item 6): static
    assignment lets A-streams execute sections independently."""
    src = """
double a, b, c, d;
void main() {
    #pragma omp parallel
    {
        #pragma omp sections
        {
            #pragma omp section
            { a = 1.0; }
            #pragma omp section
            { b = 2.0; }
            #pragma omp section
            { c = 3.0; }
            #pragma omp section
            { d = 4.0; }
        }
    }
}
"""
    img = compile_source(src)
    for static in (False, True):
        for mode in ("single", "slipstream"):
            r = run_program(img, cfg=CFG4, mode=mode,
                            sections_static=static)
            vals = tuple(r.store.value(n) for n in "abcd")
            assert vals == (1.0, 2.0, 3.0, 4.0), (static, mode)
