"""Shared fixtures.

``hotpath_tiers()`` latches ``REPRO_HOTPATH`` on first use (the tier
set is read once per process by contract), so every test gets the
latch dropped around it: a test that monkeypatches the variable sees
its own value, and its choice cannot leak into the next test.  Tests
that flip the variable *mid-test* must call
``repro.hotpath.reset_for_tests()`` themselves after each change.
"""

import pytest

from repro import hotpath


@pytest.fixture(autouse=True)
def _reset_hotpath_latch():
    hotpath.reset_for_tests()
    yield
    hotpath.reset_for_tests()
