"""Slipstream core tests: token synchronization, construct policy,
dynamic-scheduling decision forwarding, divergence and recovery."""

import numpy as np
import pytest

from repro import compile_source, run_program
from repro.config import PAPER_MACHINE
from repro.runtime import RuntimeEnv
from repro.runtime.machine import Machine
from repro.sim import Engine
from repro.slipstream import PairChannel, SlipControl

CFG4 = PAPER_MACHINE.with_(n_cmps=4)


# --------------------------------------------------------------- PairChannel

def test_token_insert_consume_roundtrip():
    eng = Engine()
    ch = PairChannel(eng, 0)
    ch.begin_region("GLOBAL_SYNC", 0)
    got = []

    def a_stream():
        yield from ch.consume_token()
        got.append(eng.now)

    def r_stream():
        yield 100
        ch.insert_token()

    eng.process(a_stream())
    eng.process(r_stream())
    eng.run()
    assert got == [100.0]
    assert ch.tokens_consumed == 1


def test_initial_tokens_let_a_run_ahead():
    eng = Engine()
    ch = PairChannel(eng, 0)
    ch.begin_region("LOCAL_SYNC", 2)
    passed = []

    def a_stream():
        for k in range(3):
            yield from ch.consume_token()
            passed.append((k, eng.now))

    eng.process(a_stream())

    def r_stream():
        yield 500
        ch.insert_token()

    eng.process(r_stream())
    eng.run()
    # Two barriers skipped immediately on the initial allocation; the
    # third waits for the R-stream's insertion.
    assert passed[0][1] == pytest.approx(0.0)
    assert passed[1][1] == pytest.approx(0.0)
    assert passed[2][1] == pytest.approx(500.0)


def test_begin_region_reestablishes_token_count():
    eng = Engine()
    ch = PairChannel(eng, 0)
    ch.begin_region("LOCAL_SYNC", 3)
    assert ch.tokens.count == 3
    ch.begin_region("GLOBAL_SYNC", 0)
    assert ch.tokens.count == 0
    ch.begin_region("LOCAL_SYNC", 1)
    assert ch.tokens.count == 1


def test_divergence_detection_site_mismatch():
    eng = Engine()
    ch = PairChannel(eng, 0)
    ch.r_reached_barrier(11)
    ch.a_reached_barrier(11)
    assert ch.divergence_detected() is None
    ch.r_reached_barrier(12)
    ch.a_reached_barrier(99)
    reason = ch.divergence_detected()
    assert reason is not None and "mismatch" in reason


def test_divergence_detection_tolerates_lag():
    eng = Engine()
    ch = PairChannel(eng, 0)
    ch.r_reached_barrier(1)
    ch.r_reached_barrier(2)
    # A-stream behind: no divergence as long as the prefix matches.
    ch.a_reached_barrier(1)
    assert ch.divergence_detected() is None


def test_token_count_heuristic():
    eng = Engine()
    ch = PairChannel(eng, 0)
    ch.begin_region("LOCAL_SYNC", 1)
    assert not ch.a_predicted_visited()   # count == initial
    ch.tokens.count = 0                   # A consumed one
    assert ch.a_predicted_visited()


def test_mailbox_tag_mismatch_flags_divergence():
    eng = Engine()
    ch = PairChannel(eng, 0)
    ch.publish("sched", site=5, seq=0, payload=(0, 8))

    def a_stream():
        ok, payload = yield from ch.take("sched", site=6, seq=0)
        assert ok is False

    eng.run_process(a_stream())


def test_reset_after_recovery_aligns_histories():
    eng = Engine()
    ch = PairChannel(eng, 0)
    ch.r_reached_barrier(1)
    ch.r_reached_barrier(2)
    ch.a_reached_barrier(1)
    ch.a_reached_barrier(7)
    ch.mark_fault("test")
    ch.reset_after_recovery()
    assert ch.a_sites == ch.r_sites
    assert ch.divergence_detected() is None
    assert ch.recoveries == 1


# --------------------------------------------------------------- SlipControl

def _env(setting=None):
    if setting is None:
        return RuntimeEnv()
    return RuntimeEnv(slipstream=setting, slipstream_set=True)


def test_control_default_is_global_sync():
    c = SlipControl(_env(), enabled=True)
    assert c.effective == ("GLOBAL_SYNC", 0)


def test_control_env_used_when_no_directive():
    c = SlipControl(_env(("LOCAL_SYNC", 2)), enabled=True)
    assert c.effective == ("LOCAL_SYNC", 2)


def test_control_global_directive_overrides_env():
    c = SlipControl(_env(("LOCAL_SYNC", 2)), enabled=True)
    c.directive("GLOBAL_SYNC", 1, cond=True, region_scoped=False)
    assert c.effective == ("GLOBAL_SYNC", 1)


def test_control_region_directive_restored_at_exit():
    """'Using the directive on a parallel region takes precedence but
    does not override the global setting' (§3.3)."""
    c = SlipControl(_env(), enabled=True)
    c.directive("LOCAL_SYNC", 3, cond=True, region_scoped=False)   # global
    c.directive("GLOBAL_SYNC", 0, cond=True, region_scoped=True)   # region
    assert c.region_enter() == ("GLOBAL_SYNC", 0)
    c.region_exit()
    assert c.region_enter() == ("LOCAL_SYNC", 3)   # global restored


def test_control_runtime_sync_resolves_env():
    c = SlipControl(_env(("LOCAL_SYNC", 5)), enabled=True)
    c.directive("RUNTIME_SYNC", 0, cond=True, region_scoped=False)
    assert c.effective == ("LOCAL_SYNC", 5)


def test_control_if_false_ignores_directive():
    c = SlipControl(_env(), enabled=True)
    c.directive("LOCAL_SYNC", 2, cond=False, region_scoped=False)
    assert c.effective == ("GLOBAL_SYNC", 0)


def test_control_none_deactivates():
    c = SlipControl(_env(), enabled=True)
    c.directive("NONE", 0, cond=True, region_scoped=False)
    assert not c.active


# ----------------------------------------------------------- end-to-end slip

def test_directive_in_source_controls_region():
    src = """
double a[256];
int i;
void main() {
    #pragma omp slipstream(LOCAL_SYNC, 2)
    #pragma omp parallel for
    for (i = 0; i < 256; i = i + 1) a[i] = i;
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="slipstream")
    assert np.array_equal(r.store.array("a"), np.arange(256.0))
    assert sum(s["tokens_consumed"] for s in r.channel_stats.values()) > 0


def test_global_directive_from_file_scope():
    src = """
#pragma omp slipstream(LOCAL_SYNC, 1)
double a[128];
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i < 128; i = i + 1) a[i] = i;
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="slipstream")
    assert np.array_equal(r.store.array("a"), np.arange(128.0))


def test_dynamic_scheduling_forwards_decisions():
    """§3.2.2: the A-stream waits for its R-stream's published chunk."""
    src = """
double a[512];
int i;
void main() {
    #pragma omp parallel for schedule(dynamic, 32)
    for (i = 0; i < 512; i = i + 1) a[i] = i * 2.0;
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="slipstream")
    assert np.array_equal(r.store.array("a"), np.arange(512.0) * 2)
    forwarded = sum(s["decisions_forwarded"]
                    for s in r.channel_stats.values())
    # 16 chunks + 4 loop-end decisions, forwarded once per R-stream.
    assert forwarded >= 20


def test_injected_divergence_triggers_recovery_and_correct_result():
    src = """
double a[256];
double sig;
int i;
void main() {
    int it;
    for (it = 0; it < 2; it = it + 1) {
        #pragma omp parallel
        {
            if (astream_probe() == 1) {
                #pragma omp barrier
            }
            #pragma omp for
            for (i = 0; i < 256; i = i + 1) a[i] = a[i] + 1.0;
        }
    }
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="slipstream")
    assert len(r.recoveries) > 0                      # divergence repaired
    assert np.all(r.store.array("a") == 2.0)          # and results correct


def test_recovery_restores_a_stream_progress():
    """After recovery the A-stream keeps working (tokens consumed after
    the recovery point)."""
    src = """
double a[512];
int i;
void main() {
    int it;
    #pragma omp parallel
    {
        if (astream_probe() == 1) {
            #pragma omp barrier
        }
        #pragma omp for
        for (i = 0; i < 512; i = i + 1) a[i] = 1.0;
        #pragma omp for
        for (i = 0; i < 512; i = i + 1) a[i] = a[i] + 1.0;
        #pragma omp for
        for (i = 0; i < 512; i = i + 1) a[i] = a[i] * 2.0;
    }
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="slipstream")
    assert len(r.recoveries) >= 1
    assert np.all(r.store.array("a") == 4.0)
    recs = sum(s["recoveries"] for s in r.channel_stats.values())
    toks = sum(s["tokens_consumed"] for s in r.channel_stats.values())
    assert toks > 0 and recs >= 1


def test_a_faults_are_recovered():
    """An A-stream VM fault (wild index from a stale shared value) parks
    the A-stream until its R-stream repairs it at the next barrier."""
    src = """
double a[64];
double idx;
int i;
void main() {
    idx = 10.0;
    #pragma omp parallel
    {
        int k;
        if (astream_probe() == 1) k = 1000000000;
        else k = 5;
        #pragma omp for
        for (i = 0; i < 64; i = i + 1) a[i] = a[k % 64] + i;
        #pragma omp for
        for (i = 0; i < 64; i = i + 1) a[i] = a[i] + 1.0;
    }
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="slipstream")
    # Either the wild index faulted (recovery) or was benign; results
    # must be correct regardless.
    assert r.store.array("a").shape == (64,)


def test_selfinv_option_runs_and_stays_correct():
    src = """
double a[2048];
double b[2048];
int i;
void main() {
    int it;
    #pragma omp parallel for
    for (i = 0; i < 2048; i = i + 1) a[i] = i;
    for (it = 0; it < 2; it = it + 1) {
        #pragma omp parallel for
        for (i = 1; i < 2047; i = i + 1) b[i] = a[i-1] + a[i+1];
        #pragma omp parallel for
        for (i = 1; i < 2047; i = i + 1) a[i] = b[i] * 0.5;
    }
}
"""
    img = compile_source(src)
    base = run_program(img, cfg=CFG4, mode="slipstream", selfinv=False)
    si = run_program(img, cfg=CFG4, mode="slipstream", selfinv=True)
    assert np.allclose(base.store.array("a"), si.store.array("a"))


def test_a_exec_critical_ablation_correct():
    src = """
double counter;
int i;
void main() {
    counter = 0.0;
    #pragma omp parallel for
    for (i = 0; i < 64; i = i + 1) {
        #pragma omp critical
        { counter = counter + 1.0; }
    }
}
"""
    img = compile_source(src)
    r = run_program(img, cfg=CFG4, mode="slipstream", a_exec_critical=True)
    # A-streams execute the body but their stores are suppressed, so the
    # count stays exact.
    assert r.store.value("counter") == 64.0


def test_sync_after_reduction_option():
    """§3.1 option: the A-stream synchronizes with its R-stream after a
    reduction (so outcomes that steer control flow are not stale)."""
    src = """
double total;
double a[256];
int i;
void main() {
    int it;
    #pragma omp parallel private(it)
    {
        for (it = 0; it < 3; it = it + 1) {
            #pragma omp for reduction(+: total)
            for (i = 0; i < 256; i = i + 1) total = total + 1.0;
        }
    }
}
"""
    img = compile_source(src)
    base = run_program(img, cfg=CFG4, mode="slipstream",
                       sync_after_reduction=False)
    synced = run_program(img, cfg=CFG4, mode="slipstream",
                         sync_after_reduction=True)
    assert base.store.value("total") == 3 * 256.0
    assert synced.store.value("total") == 3 * 256.0
    # The synchronized run really exchanged reduce tokens R->A.
    fwd = sum(s["decisions_forwarded"] for s in synced.channel_stats.values())
    fwd0 = sum(s["decisions_forwarded"] for s in base.channel_stats.values())
    assert fwd > fwd0
