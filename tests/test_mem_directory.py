"""Unit tests for the fully-mapped directory state machine."""

import pytest

from repro.mem import Directory, DirState
from repro.sim import Engine


@pytest.fixture
def d():
    return Directory(Engine())


def test_entries_created_on_demand(d):
    e = d.entry(0x1000)
    assert e.state == DirState.UNOWNED
    assert d.n_entries == 1
    assert d.entry(0x1000) is e


def test_add_sharers(d):
    d.add_sharer(0x1000, 2)
    d.add_sharer(0x1000, 5)
    e = d.entry(0x1000)
    assert e.state == DirState.SHARED
    assert e.sharers == {2, 5}


def test_add_sharer_on_exclusive_rejected(d):
    d.set_exclusive(0x1000, 1)
    with pytest.raises(RuntimeError):
        d.add_sharer(0x1000, 2)


def test_set_exclusive_clears_sharers(d):
    d.add_sharer(0x1000, 2)
    d.add_sharer(0x1000, 3)
    d.set_exclusive(0x1000, 7)
    e = d.entry(0x1000)
    assert e.state == DirState.EXCLUSIVE
    assert e.owner == 7
    assert not e.sharers


def test_demote_keeps_old_owner_as_sharer(d):
    d.set_exclusive(0x1000, 4)
    d.demote_to_shared(0x1000, extra_sharer=9)
    e = d.entry(0x1000)
    assert e.state == DirState.SHARED
    assert e.sharers == {4, 9}
    assert e.owner is None


def test_demote_requires_exclusive(d):
    d.add_sharer(0x1000, 1)
    with pytest.raises(RuntimeError):
        d.demote_to_shared(0x1000)


def test_drop_owner_returns_to_unowned(d):
    d.set_exclusive(0x1000, 3)
    d.drop_node(0x1000, 3)
    assert d.entry(0x1000).state == DirState.UNOWNED
    assert d.entry(0x1000).owner is None


def test_drop_last_sharer_returns_to_unowned(d):
    d.add_sharer(0x1000, 1)
    d.add_sharer(0x1000, 2)
    d.drop_node(0x1000, 1)
    assert d.entry(0x1000).state == DirState.SHARED
    d.drop_node(0x1000, 2)
    assert d.entry(0x1000).state == DirState.UNOWNED


def test_drop_unknown_is_noop(d):
    d.drop_node(0x9999, 1)          # no entry: fine
    d.add_sharer(0x1000, 1)
    d.drop_node(0x1000, 5)          # not a sharer: fine
    assert d.entry(0x1000).sharers == {1}


def test_sharers_excluding(d):
    d.add_sharer(0x1000, 1)
    d.add_sharer(0x1000, 2)
    d.add_sharer(0x1000, 3)
    assert d.sharers_excluding(0x1000, 2) == {1, 3}
    assert d.sharers_excluding(0x1000, 9) == {1, 2, 3}


def test_locks_are_per_line_and_cached(d):
    l1 = d.lock(0x1000)
    l2 = d.lock(0x1080)
    assert l1 is not l2
    assert d.lock(0x1000) is l1
