"""The example scripts' embedded SlipC programs must always compile and
run functionally (executing the full simulated demos is left to the
examples themselves; this keeps them from bit-rotting)."""

import importlib.util
import pathlib

import pytest

from repro.compiler import compile_source
from repro.interp import FunctionalRunner

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / name)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "npb_demo.py", "slipstream_tuning.py",
            "scheduling_comparison.py", "divergence_recovery.py"} <= names


def test_quickstart_source_compiles_and_runs():
    mod = load("quickstart.py")
    r = FunctionalRunner(compile_source(mod.SOURCE)).run()
    assert r.output and r.output[0][0] == "total delta"


def test_scheduling_comparison_source():
    mod = load("scheduling_comparison.py")
    r = FunctionalRunner(compile_source(mod.SOURCE)).run()
    assert float(r.store.array("rowsum")[0]) >= 0.0


def test_divergence_sources_compile():
    mod = load("divergence_recovery.py")
    compile_source(mod.INJECTED)
    compile_source(mod.ORGANIC)


def test_tuning_example_sources_compile():
    # The tuning example builds sources inline; at least its module
    # constants and helpers must import cleanly.
    mod = load("slipstream_tuning.py")
    assert hasattr(mod, "sweep_env")


def test_npb_demo_importable():
    mod = load("npb_demo.py")
    assert hasattr(mod, "main")
