"""Property-based tests (hypothesis) on core data structures and
invariants: cache/LRU behaviour, allocator and placement, scheduler
coverage, classification accounting, and VM arithmetic semantics."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, PAPER_MACHINE
from repro.interp.interpreter import _binop
from repro.mem import (Cache, MESIState, Placement,
                       SharedAllocator, is_shared_addr)
from repro.mem.address import SHARED_BASE
from repro.obs import ClassStats, TimeBreakdown

# --------------------------------------------------------------------- cache

addr_strategy = st.integers(min_value=0, max_value=0xFFFF).map(
    lambda x: SHARED_BASE + x * 8)


@given(st.lists(addr_strategy, min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_cache_capacity_invariant(addrs):
    """A set-associative cache never holds more lines than capacity nor
    more than `assoc` lines per set, under any access sequence."""
    cfg = CacheConfig(size_bytes=4 * 4 * 128, assoc=4, line_bytes=128,
                      hit_cycles=1)
    c = Cache(cfg)
    for a in addrs:
        if c.lookup(a) is None:
            c.insert(a, MESIState.SHARED)
    assert c.resident_count() <= cfg.num_lines
    for s in c._sets:
        assert len(s) <= cfg.assoc
        # tag-index keys agree with the lines they map to (the dict
        # representation makes duplicate tags impossible by design)
        assert all(k == line.line_addr for k, line in s.items())


@given(st.lists(addr_strategy, min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_cache_hit_after_insert_until_evicted(addrs):
    """Immediately after an insert, lookup must hit."""
    cfg = CacheConfig(size_bytes=2 * 8 * 128, assoc=2, line_bytes=128,
                      hit_cycles=1)
    c = Cache(cfg)
    for a in addrs:
        c.insert(a, MESIState.SHARED)
        assert c.peek(a) is not None


@given(st.lists(addr_strategy, min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_cache_accounting_consistency(addrs):
    cfg = CacheConfig(size_bytes=2 * 4 * 128, assoc=2, line_bytes=128,
                      hit_cycles=1)
    c = Cache(cfg)
    for a in addrs:
        if c.lookup(a) is None:
            c.insert(a, MESIState.SHARED)
    assert c.hits + c.misses == len(addrs)


# ----------------------------------------------------------------- allocator

@given(st.lists(st.integers(min_value=1, max_value=4096),
                min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_allocator_regions_disjoint_and_aligned(sizes):
    a = SharedAllocator()
    regions = []
    for n in sizes:
        base = a.alloc(n)
        assert base % 128 == 0
        assert is_shared_addr(base) and is_shared_addr(base + n - 1)
        regions.append((base, base + n))
    regions.sort()
    for (s1, e1), (s2, e2) in zip(regions, regions[1:]):
        assert e1 <= s2                      # no overlap


@given(st.integers(min_value=1, max_value=64),
       st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_placement_is_a_function(n_nodes, offsets):
    """home() is deterministic and always a valid node, and identical
    for addresses within the same page."""
    p = Placement("round_robin", n_nodes)
    for off in offsets:
        addr = SHARED_BASE + off * 64
        h = p.home(addr)
        assert 0 <= h < n_nodes
        assert h == p.home(addr)             # stable
        assert h == p.home((addr // 4096) * 4096)  # page-uniform


@given(st.integers(min_value=2, max_value=32),
       st.lists(st.tuples(st.integers(0, 200), st.integers(0, 31)),
                min_size=1, max_size=80))
@settings(max_examples=40, deadline=None)
def test_first_touch_stable_under_any_touch_order(n_nodes, touches):
    p = Placement("first_touch", n_nodes)
    first = {}
    for page, toucher in touches:
        addr = SHARED_BASE + page * 4096
        h = p.home(addr, toucher=toucher % n_nodes)
        if page not in first:
            first[page] = h
        assert p.home(addr) == first[page]


# ----------------------------------------------------------------- scheduler

def _static_chunks(n, T, chunk):
    """Replicate the runtime's static scheduler for all threads."""
    covered = []
    for t in range(T):
        if chunk is None:
            start = n * t // T
            end = n * (t + 1) // T
            if end > start:
                covered.append((start, end - start))
        else:
            pos = t
            while pos * chunk < n:
                start = pos * chunk
                covered.append((start, min(chunk, n - start)))
                pos += T
    return covered


@given(st.integers(min_value=0, max_value=500),
       st.integers(min_value=1, max_value=33),
       st.one_of(st.none(), st.integers(min_value=1, max_value=40)))
@settings(max_examples=120, deadline=None)
def test_static_schedule_partitions_exactly(n, T, chunk):
    """Every iteration is assigned exactly once -- the invariant that
    makes the A-stream's independent static scheduling sound."""
    seen = np.zeros(n, dtype=int)
    for start, cnt in _static_chunks(n, T, chunk):
        seen[start:start + cnt] += 1
    assert (seen == 1).all() if n else True


@given(st.integers(min_value=1, max_value=400),
       st.integers(min_value=1, max_value=32),
       st.integers(min_value=1, max_value=50))
@settings(max_examples=80, deadline=None)
def test_guided_chunks_cover_and_shrink(n, T, cmin):
    """The guided formula always terminates, covers [0, n), and never
    hands out an empty chunk."""
    nxt = 0
    chunks = []
    while nxt < n:
        cnt = max(cmin, (n - nxt) // (2 * T))
        cnt = min(cnt, n - nxt)
        assert cnt >= 1
        chunks.append((nxt, cnt))
        nxt += cnt
    assert sum(c for _, c in chunks) == n


# ------------------------------------------------------------ classification

outcome_events = st.lists(
    st.tuples(st.sampled_from(["A", "R"]), st.sampled_from(["read", "rdex"]),
              st.sampled_from(["timely", "late", "only"])),
    min_size=0, max_size=100)


@given(outcome_events)
@settings(max_examples=50, deadline=None)
def test_classification_totals(events):
    cs = ClassStats()
    for f, k, o in events:
        cs.record(f, k, o)
    assert cs.total("read") + cs.total("rdex") == len(events)
    for kind in ("read", "rdex"):
        brk = cs.breakdown(kind)
        if cs.total(kind):
            assert math.isclose(sum(brk.values()), 1.0, rel_tol=1e-9)
        assert 0 <= cs.coverage(kind) <= 1


# ------------------------------------------------------------ time breakdown

@given(st.lists(st.tuples(st.sampled_from(["push", "pop"]),
                          st.sampled_from(["memory", "lock", "barrier"]),
                          st.floats(min_value=0.01, max_value=50)),
                min_size=0, max_size=60))
@settings(max_examples=50, deadline=None)
def test_breakdown_total_equals_elapsed(ops):
    bd = TimeBreakdown(start=0.0)
    now = 0.0
    depth = 0
    for kind, cat, dt in ops:
        now += dt
        if kind == "push":
            bd.push(cat, now)
            depth += 1
        elif depth > 0:
            bd.pop(now)
            depth -= 1
        else:
            bd.push(cat, now)
            depth += 1
    now += 1.0
    bd.close(now)
    assert math.isclose(bd.total(), now, rel_tol=1e-9)


# ------------------------------------------------------------- VM arithmetic

@given(st.integers(min_value=-10_000, max_value=10_000),
       st.integers(min_value=-10_000, max_value=10_000))
@settings(max_examples=200, deadline=None)
def test_c_integer_division_identity(a, b):
    """C guarantees (a/b)*b + a%b == a with truncation toward zero."""
    if b == 0:
        return
    q = _binop("/", a, b)
    r = _binop("%", a, b)
    assert q * b + r == a
    assert abs(r) < abs(b)
    # truncation toward zero
    assert q == int(a / b) if b != 0 else True


@given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_float_division_by_zero_never_traps(a):
    v = _binop("/", a, 0.0)
    if a == 0:
        assert math.isnan(v)
    else:
        assert math.isinf(v)
        assert (v > 0) == (a > 0)
