"""Machine-level internals: address layout, runtime words, mode
validation, result collection, and teardown behaviour."""

import numpy as np
import pytest

from repro import compile_source
from repro.config import PAPER_MACHINE
from repro.mem.address import SHARED_LIMIT, is_shared_addr
from repro.runtime import Machine, RuntimeEnv
from repro.runtime.machine import RT_WORD_BASE, run_program

CFG = PAPER_MACHINE.with_(n_cmps=4)

TINY = compile_source("""
double a[32];
double s;
int i;
void main() {
    #pragma omp parallel for reduction(+: s)
    for (i = 0; i < 32; i = i + 1) {
        a[i] = i;
        s = s + i;
    }
}
""")


def test_globals_allocated_line_aligned_in_shared_space():
    m = Machine(TINY, cfg=CFG)
    assert len(m.gbase) == len(TINY.globals)
    for base in m.gbase:
        assert is_shared_addr(base)
        assert base % CFG.line_bytes == 0
        assert base < RT_WORD_BASE


def test_rt_words_live_above_noclass_base():
    m = Machine(TINY, cfg=CFG)
    w1 = m.rt_word("x")
    w2 = m.rt_word("y")
    assert RT_WORD_BASE <= w1.addr < SHARED_LIMIT
    assert w2.addr - w1.addr >= CFG.line_bytes     # own line each
    assert m.memsys.noclass_base == RT_WORD_BASE


def test_gaddr_is_base_plus_8_per_element():
    m = Machine(TINY, cfg=CFG)
    g = TINY.global_named("a").index
    assert m.gaddr(g, 5) - m.gaddr(g, 0) == 40


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        Machine(TINY, cfg=CFG, mode="triple")


def test_slipstream_needs_two_cpus_per_cmp():
    uni = CFG.with_(cpus_per_cmp=1)
    with pytest.raises(ValueError):
        Machine(TINY, cfg=uni, mode="slipstream")
    # single mode is fine on a uniprocessor-per-node machine
    r = Machine(TINY, cfg=uni, mode="single").run()
    assert r.store.value("s") == 496.0


def test_topology_single_mode():
    m = Machine(TINY, cfg=CFG, mode="single")
    assert len(m.shells) == 4
    assert all(s.cpu == 0 and s.role == "R" for s in m.shells)
    assert [s.node for s in m.shells] == [0, 1, 2, 3]


def test_topology_slipstream_pairs():
    m = Machine(TINY, cfg=CFG, mode="slipstream")
    rs = [s for s in m.shells if s.role == "R"]
    as_ = [s for s in m.shells if s.role == "A"]
    assert len(rs) == len(as_) == 4
    for r, a in zip(rs, as_):
        assert r.pair is a and a.pair is r
        assert r.node == a.node and r.cpu == 0 and a.cpu == 1
        assert r.channel is a.channel
        assert a.tid == r.tid       # "the same ID ... sharing a CMP"


def test_run_result_fields():
    r = run_program(TINY, cfg=CFG, mode="slipstream")
    assert r.mode == "slipstream"
    assert r.cycles > 0
    assert r.store.value("s") == 496.0
    assert set(r.channel_stats) == {0, 1, 2, 3}
    assert r.mem_stats.get("loads") > 0
    # every shell contributed a closed breakdown
    assert len(r.breakdowns) == 8
    for bd in r.breakdowns.values():
        assert sum(bd.values()) == pytest.approx(r.cycles, rel=1e-6)


def test_all_processes_dead_after_run():
    m = Machine(TINY, cfg=CFG, mode="slipstream")
    m.run()
    assert all(not s.proc.alive for s in m.shells)


def test_machine_is_single_use_deterministic():
    r1 = run_program(TINY, cfg=CFG, mode="double")
    r2 = run_program(TINY, cfg=CFG, mode="double")
    assert r1.cycles == r2.cycles              # fully deterministic
    assert np.array_equal(r1.store.array("a"), r2.store.array("a"))


def test_max_cycles_guard():
    img = compile_source("""
double x;
void main() {
    int i;
    for (i = 0; i < 100000000; i = i + 1) x = x + 1.0;
}
""")
    with pytest.raises(RuntimeError):
        Machine(img, cfg=CFG).run(max_cycles=10_000)


def test_input_exhaustion_is_error():
    img = compile_source("double x;\nvoid main() { x = read_input(); }")
    with pytest.raises(RuntimeError):
        Machine(img, cfg=CFG).run(inputs=[])


def test_env_threaded_through():
    img = compile_source("""
double n;
int i;
double sink[4];
void main() {
    #pragma omp parallel
    {
        #pragma omp master
        { n = omp_get_num_threads(); }
        #pragma omp for
        for (i = 0; i < 4; i = i + 1) sink[i] = i;
    }
}
""")
    r = run_program(img, cfg=CFG, mode="single",
                    env=RuntimeEnv(num_threads=3))
    assert r.store.value("n") == 3.0
