"""Tests for address spaces and placement policies."""

import pytest

from repro.mem import (SHARED_BASE, Placement, SharedAllocator,
                       is_shared_addr, private_base)
from repro.mem.address import PRIVATE_BASE, PRIVATE_STRIDE, SHARED_LIMIT


def test_shared_private_delineation():
    # The paper's requirement: shared VA contiguous, never interleaved
    # with private VA.
    assert is_shared_addr(SHARED_BASE)
    assert is_shared_addr(SHARED_LIMIT - 1)
    assert not is_shared_addr(SHARED_LIMIT)
    assert not is_shared_addr(private_base(0))
    assert not is_shared_addr(0)


def test_private_segments_disjoint():
    for t in range(8):
        lo, hi = private_base(t), private_base(t) + PRIVATE_STRIDE
        lo2 = private_base(t + 1)
        assert hi <= lo2
        assert lo >= PRIVATE_BASE


def test_allocator_bump_and_alignment():
    a = SharedAllocator()
    p1 = a.alloc(100)
    p2 = a.alloc(100)
    assert p1 % 128 == 0 and p2 % 128 == 0
    assert p2 >= p1 + 100
    assert is_shared_addr(p1) and is_shared_addr(p2)


def test_allocator_custom_alignment():
    a = SharedAllocator()
    a.alloc(1)
    p = a.alloc(8, align=4096)
    assert p % 4096 == 0


def test_allocator_rejects_bad_args():
    a = SharedAllocator()
    with pytest.raises(ValueError):
        a.alloc(0)
    with pytest.raises(ValueError):
        a.alloc(8, align=3)


def test_allocator_exhaustion():
    a = SharedAllocator(base=SHARED_BASE, limit=SHARED_BASE + 1024)
    a.alloc(512)
    with pytest.raises(MemoryError):
        a.alloc(1024)


def test_allocator_reset():
    a = SharedAllocator()
    a.alloc(1000)
    assert a.used >= 1000
    a.reset()
    assert a.used == 0


def test_round_robin_placement_stripes_pages():
    p = Placement("round_robin", n_nodes=4, page_bytes=4096)
    homes = [p.home(SHARED_BASE + i * 4096) for i in range(8)]
    assert homes == [0, 1, 2, 3, 0, 1, 2, 3]


def test_round_robin_same_page_same_home():
    p = Placement("round_robin", n_nodes=4)
    assert p.home(SHARED_BASE + 100) == p.home(SHARED_BASE + 4000)


def test_first_touch_placement_sticks():
    p = Placement("first_touch", n_nodes=8)
    addr = SHARED_BASE + 5 * 4096
    assert p.home(addr, toucher=3) == 3
    # Later touches by other nodes don't move the page.
    assert p.home(addr, toucher=6) == 3
    assert p.home(addr) == 3
    assert p.touched_pages() == 1


def test_first_touch_without_toucher_falls_back():
    p = Placement("first_touch", n_nodes=4)
    assert p.home(SHARED_BASE + 2 * 4096) == 2  # round-robin fallback


def test_block_placement_contiguous_regions():
    p = Placement("block", n_nodes=4)
    lo = p.home(SHARED_BASE)
    hi = p.home(SHARED_LIMIT - 4096)
    assert lo == 0 and hi == 3


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        Placement("hash", n_nodes=4)
