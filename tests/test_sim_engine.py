"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, Interrupt, SimEvent, SimulationError


def test_single_process_delays_advance_clock():
    eng = Engine()
    log = []

    def body():
        log.append(eng.now)
        yield 5
        log.append(eng.now)
        yield 2.5
        log.append(eng.now)
        return "done"

    result = eng.run_process(body(), name="t")
    assert result == "done"
    assert log == [0.0, 5.0, 7.5]
    assert eng.now == 7.5


def test_two_processes_interleave_deterministically():
    eng = Engine()
    log = []

    def worker(tag, step):
        for _ in range(3):
            yield step
            log.append((tag, eng.now))

    eng.process(worker("a", 2), name="a")
    eng.process(worker("b", 3), name="b")
    eng.run()
    # At t=6 both workers resume; b's resumption was scheduled first (at
    # t=3) so FIFO tie-breaking runs it first.
    assert log == [("a", 2), ("b", 3), ("a", 4), ("b", 6), ("a", 6), ("b", 9)]


def test_same_time_fifo_ordering():
    eng = Engine()
    order = []

    def w(tag):
        yield 1
        order.append(tag)

    for tag in "abcde":
        eng.process(w(tag), name=tag)
    eng.run()
    assert order == list("abcde")


def test_event_wait_and_value_passing():
    eng = Engine()
    evt = eng.event("sig")
    seen = []

    def waiter():
        val = yield evt
        seen.append((eng.now, val))

    def firer():
        yield 4
        evt.fire("payload")

    eng.process(waiter(), name="w")
    eng.process(firer(), name="f")
    eng.run()
    assert seen == [(4.0, "payload")]


def test_event_fire_twice_raises():
    eng = Engine()
    evt = eng.event()
    evt.fire(1)
    with pytest.raises(SimulationError):
        evt.fire(2)


def test_late_subscription_gets_stored_value():
    eng = Engine()
    evt = eng.event()
    evt.fire(42)
    got = []

    def waiter():
        got.append((yield evt))

    eng.process(waiter())
    eng.run()
    assert got == [42]


def test_yield_from_composes_subroutines():
    eng = Engine()

    def inner():
        yield 3
        return 10

    def outer():
        a = yield from inner()
        yield 2
        return a + 1

    assert eng.run_process(outer()) == 11
    assert eng.now == 5.0


def test_negative_delay_rejected():
    eng = Engine()

    def bad():
        yield -1

    eng.process(bad())
    with pytest.raises(SimulationError):
        eng.run()


def test_run_until_stops_clock():
    eng = Engine()

    def slow():
        yield 100

    eng.process(slow())
    eng.run(until=10)
    assert eng.now == 10


def test_all_of_waits_for_every_event():
    eng = Engine()
    e1, e2 = eng.event(), eng.event()
    done = []

    def waiter():
        vals = yield eng.all_of([e1, e2])
        done.append((eng.now, vals))

    def f1():
        yield 2
        e1.fire("x")

    def f2():
        yield 7
        e2.fire("y")

    eng.process(waiter())
    eng.process(f1())
    eng.process(f2())
    eng.run()
    assert done == [(7.0, ["x", "y"])]


def test_all_of_with_prefired_events():
    eng = Engine()
    e1 = eng.event()
    e1.fire(1)
    e2 = eng.event()
    e2.fire(2)
    out = eng.all_of([e1, e2])
    assert out.fired and out.value == [1, 2]


def test_interrupt_delivered_as_exception():
    eng = Engine()
    evt = eng.event()
    caught = []

    def victim():
        try:
            yield evt
        except Interrupt as i:
            caught.append((eng.now, i.cause))

    def attacker(proc):
        yield 5
        proc.interrupt("diverged")

    p = eng.process(victim(), name="victim")
    eng.process(attacker(p), name="attacker")
    eng.run()
    assert caught == [(5.0, "diverged")]
    # The event should no longer resume the victim.
    assert not evt._waiters


def test_kill_stops_process_and_fires_done():
    eng = Engine()

    def forever():
        while True:
            yield 1

    p = eng.process(forever())
    def killer():
        yield 3
        p.kill()

    eng.process(killer())
    eng.run()
    assert not p.alive
    assert p.done_event.fired


def test_done_event_carries_return_value():
    eng = Engine()

    def child():
        yield 2
        return "rv"

    results = []

    def parent():
        proc = eng.process(child())
        results.append((yield proc.done_event))

    eng.process(parent())
    eng.run()
    assert results == ["rv"]


def test_run_process_detects_deadlock():
    eng = Engine()
    evt = eng.event()

    def stuck():
        yield evt

    with pytest.raises(SimulationError):
        eng.run_process(stuck(), name="stuck")


def test_timeout_event_fires_by_itself():
    eng = Engine()
    evt = eng.timeout_event(6, value="tick")
    seen = []

    def w():
        seen.append((yield evt))

    eng.process(w())
    eng.run()
    assert seen == ["tick"] and eng.now == 6.0


def test_event_callback_runs_at_fire_time():
    eng = Engine()
    evt = eng.event()
    seen = []
    evt.add_callback(lambda value, delay: seen.append((value, delay)))

    def firer():
        yield 5
        evt.fire("v", delay=2.0)

    eng.process(firer())
    eng.run()
    assert seen == [("v", 2.0)]


def test_event_callback_on_fired_event_runs_immediately():
    eng = Engine()
    evt = eng.event()
    evt.fire(42)
    seen = []
    evt.add_callback(lambda value, delay: seen.append(value))
    assert seen == [42]


def test_all_of_fires_after_waiters_of_last_event():
    # The combined event must not fire before processes waiting on the
    # last input event have been scheduled (fire-ordering guarantee of
    # the callback-based implementation).
    eng = Engine()
    e1, e2 = eng.event(), eng.event()
    order = []

    def waiter(evt, tag):
        yield evt
        order.append(tag)

    def firer():
        yield 1
        e1.fire("a")
        yield 1
        e2.fire("b")

    eng.process(waiter(e2, "direct"))     # subscribes before all_of
    combined = eng.all_of([e1, e2])
    eng.process(waiter(combined, "combined"))
    eng.process(firer())
    eng.run()
    assert order == ["direct", "combined"]
    assert combined.value == ["a", "b"]


def test_all_of_spawns_no_watcher_processes():
    # The barrier must track N events with O(1) bookkeeping each, not
    # one watcher process per event (the old design).
    eng = Engine()
    events = [eng.event() for _ in range(8)]
    before = eng._nprocs
    combined = eng.all_of(events)
    assert eng._nprocs == before          # no processes until completion
    for i, e in enumerate(events):
        e.fire(i)
    eng.run()
    assert combined.fired and combined.value == list(range(8))
    assert eng._nprocs == before + 1      # just the single firing shim
