"""Tests for the set-associative LRU cache model."""

import pytest

from repro.config import CacheConfig
from repro.mem import Cache, MESIState


def tiny_cache(assoc=2, sets=4, line=128, on_evict=None):
    cfg = CacheConfig(size_bytes=assoc * sets * line, assoc=assoc,
                      line_bytes=line, hit_cycles=1)
    return Cache(cfg, name="tiny", on_evict=on_evict)


def test_line_addr_masks_offset():
    c = tiny_cache()
    assert c.line_addr(0x1000) == 0x1000
    assert c.line_addr(0x107f) == 0x1000
    assert c.line_addr(0x1080) == 0x1080


def test_miss_then_hit():
    c = tiny_cache()
    assert c.lookup(0x1000) is None
    c.insert(0x1000, MESIState.SHARED)
    line = c.lookup(0x1010)  # same line, different offset
    assert line is not None and line.line_addr == 0x1000
    assert c.hits == 1 and c.misses == 1


def test_lru_eviction_order():
    evicted = []
    c = tiny_cache(assoc=2, sets=1, on_evict=evicted.append)
    c.insert(0x0000, MESIState.SHARED)
    c.insert(0x0080, MESIState.SHARED)
    c.lookup(0x0000)                      # touch A: B becomes LRU
    c.insert(0x0100, MESIState.SHARED)    # evicts B
    assert [l.line_addr for l in evicted] == [0x0080]
    assert c.peek(0x0000) is not None
    assert c.peek(0x0080) is None


def test_insert_existing_upgrades_state():
    c = tiny_cache()
    c.insert(0x1000, MESIState.SHARED)
    line = c.insert(0x1000, MESIState.EXCLUSIVE)
    assert line.state == MESIState.EXCLUSIVE
    assert c.resident_count() == 1


def test_insert_does_not_downgrade():
    c = tiny_cache()
    c.insert(0x1000, MESIState.EXCLUSIVE)
    line = c.insert(0x1000, MESIState.SHARED)
    assert line.state == MESIState.EXCLUSIVE


def test_invalidate_removes_line():
    c = tiny_cache()
    c.insert(0x1000, MESIState.SHARED)
    line = c.invalidate(0x1040)
    assert line is not None
    assert c.peek(0x1000) is None
    assert c.invalidations == 1
    assert c.invalidate(0x1000) is None  # already gone


def test_downgrade_clears_dirty():
    c = tiny_cache()
    line = c.insert(0x2000, MESIState.EXCLUSIVE)
    line.dirty = True
    c.downgrade(0x2000)
    assert line.state == MESIState.SHARED and not line.dirty


def test_sets_are_independent():
    c = tiny_cache(assoc=1, sets=4)
    # These map to different sets, so no eviction.
    c.insert(0x0000, MESIState.SHARED)
    c.insert(0x0080, MESIState.SHARED)
    c.insert(0x0100, MESIState.SHARED)
    assert c.resident_count() == 3
    assert c.evictions == 0


def test_conflict_misses_within_one_set():
    c = tiny_cache(assoc=1, sets=4)
    c.insert(0x0000, MESIState.SHARED)
    c.insert(0x0200, MESIState.SHARED)  # same set (4 sets * 128B stride)
    assert c.resident_count() == 1
    assert c.evictions == 1


def test_peek_has_no_side_effects():
    c = tiny_cache()
    c.insert(0x1000, MESIState.SHARED)
    h, m = c.hits, c.misses
    c.peek(0x1000)
    c.peek(0x9999000)
    assert (c.hits, c.misses) == (h, m)


def test_hit_rate_and_clear():
    c = tiny_cache()
    c.lookup(0x1000)
    c.insert(0x1000, MESIState.SHARED)
    c.lookup(0x1000)
    assert c.hit_rate() == pytest.approx(0.5)
    c.clear()
    assert c.resident_count() == 0
