"""Tests for the parallel experiment execution layer.

The contract under test: a batch of RunSpecs produces bit-identical
results -- cycles and stat breakdowns -- whether executed serially,
serially twice, or fanned out over a process pool of any width, with
results merged back in submission order.
"""

import os
import pickle

import pytest

from repro.config import PAPER_MACHINE
from repro.harness import (ProcessPoolContext, RunSpec, SerialContext,
                           execute_spec, make_context, run_static_suite)
from repro.harness.exec import dynamic_specs, static_specs

CFG = PAPER_MACHINE.with_(n_cmps=4)

#: Small cross-mode matrix: cheap enough to simulate repeatedly, wide
#: enough to cover single/slipstream and both sync policies.
SMOKE = [RunSpec.make(b, c, size="test", cfg=CFG)
         for b in ("bt", "cg") for c in ("single", "G0")]


def _signature(run):
    """Everything determinism promises to hold fixed, by value."""
    return (run.bench, run.config, run.cycles,
            sorted(run.result.r_breakdown.items()),
            sorted((k, sorted(v.items()))
                   for k, v in run.result.breakdowns.items()))


# ---------------------------------------------------------------- RunSpec

def test_runspec_is_hashable_and_picklable():
    spec = RunSpec.make("cg", "G0", size="test", cfg=CFG,
                        params={"n": 24}, schedule=("dynamic", 3))
    assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_runspec_key_is_order_canonical():
    a = RunSpec.make("cg", "G0", size="test", params={"n": 9, "m": 2})
    b = RunSpec.make("cg", "G0", size="test", params={"m": 2, "n": 9})
    assert a.key == b.key


def test_execute_spec_matches_run_benchmark():
    from repro.harness import run_benchmark
    spec = RunSpec.make("cg", "G0", size="test", cfg=CFG)
    assert (_signature(execute_spec(spec))
            == _signature(run_benchmark("cg", "G0", cfg=CFG, size="test")))


def test_execute_spec_records_stage_timings():
    run = execute_spec(RunSpec.make("cg", "single", size="test", cfg=CFG))
    assert set(run.timing) == {"compile_s", "sim_s", "verify_s", "total_s"}
    assert run.timing["total_s"] >= run.timing["sim_s"] > 0


# ----------------------------------------------------- contexts/determinism

def test_serial_context_is_deterministic_across_repeats():
    first = [_signature(r) for r in SerialContext().run(SMOKE)]
    second = [_signature(r) for r in SerialContext().run(SMOKE)]
    assert first == second


@pytest.mark.parametrize("jobs", [2, 4])
def test_pool_results_bit_identical_to_serial(jobs):
    serial = [_signature(r) for r in SerialContext().run(SMOKE)]
    pooled = [_signature(r)
              for r in ProcessPoolContext(jobs=jobs).run(SMOKE)]
    assert pooled == serial


def test_pool_merges_in_submission_order_not_completion_order():
    # bt/single is the longest job in the batch by far; submitted first,
    # it finishes last under a 2-wide pool, so any completion-order
    # merge would visibly permute the output.
    runs = ProcessPoolContext(jobs=2).run(SMOKE)
    assert [(r.bench, r.config) for r in runs] \
        == [(s.bench, s.config) for s in SMOKE]


def test_map_keys_results_by_spec():
    out = SerialContext().map(SMOKE[:2])
    assert set(out) == {s.key for s in SMOKE[:2]}
    for s in SMOKE[:2]:
        assert out[s.key].bench == s.bench


def test_suite_via_pool_matches_serial_suite():
    serial = run_static_suite(cfg=CFG, size="test",
                              benchmarks=("bt", "cg"),
                              configs=("single", "G0"))
    pooled = run_static_suite(cfg=CFG, size="test",
                              benchmarks=("bt", "cg"),
                              configs=("single", "G0"),
                              context=ProcessPoolContext(jobs=2))
    assert {(b, c): run.cycles
            for b, row in serial.items() for c, run in row.items()} \
        == {(b, c): run.cycles
            for b, row in pooled.items() for c, run in row.items()}


# ----------------------------------------------------------------- helpers

def test_make_context_factory():
    assert isinstance(make_context(None), SerialContext)
    assert isinstance(make_context(1), SerialContext)
    ctx = make_context(3)
    assert isinstance(ctx, ProcessPoolContext) and ctx.jobs == 3


def test_pool_rejects_bad_jobs():
    with pytest.raises(ValueError):
        ProcessPoolContext(jobs=0)


def test_spec_builders_cover_suite_order():
    specs = static_specs(CFG, "test", ("bt", "cg"), ("single", "G0"))
    assert [(s.bench, s.config) for s in specs] \
        == [("bt", "single"), ("bt", "G0"),
            ("cg", "single"), ("cg", "G0")]
    dyn = dynamic_specs(CFG, "test", ("cg",), ("single", "G0"))
    assert all(s.schedule[0] == "dynamic" for s in dyn)


# ------------------------------------------------------------ wall-clock

@pytest.mark.skipif(
    os.environ.get("REPRO_PERF_TESTS") != "1"
    or (os.cpu_count() or 1) < 4,
    reason="perf acceptance test: needs >= 4 cores and REPRO_PERF_TESTS=1")
def test_pool_speedup_on_full_static_suite():
    """Acceptance: the full static suite (5 benchmarks x 4 configs)
    under ProcessPoolContext(jobs=4) is >= 2.5x faster than serial on a
    4-core host, with bit-identical cycle counts.  Opt-in (wall-clock
    measurements don't belong in the default unit run); the same
    measurement is recorded in BENCH_parallel_runner.json by
    benchmarks/bench_parallel_runner.py."""
    import time
    specs = static_specs(CFG, "bench",
                         ("bt", "cg", "lu", "mg", "sp"),
                         ("single", "double", "G0", "L1"))
    t0 = time.perf_counter()
    serial = SerialContext().run(specs)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    pooled = ProcessPoolContext(jobs=4).run(specs)
    t_pool = time.perf_counter() - t0
    assert [r.cycles for r in pooled] == [r.cycles for r in serial]
    assert t_serial / t_pool >= 2.5, \
        f"speedup {t_serial / t_pool:.2f}x < 2.5x " \
        f"(serial {t_serial:.1f}s, pool {t_pool:.1f}s)"
