"""Work-unit layer in isolation: spec identity, content keys, and the
bit-identical-merge contract (property-tested -- no simulation here;
merge correctness must not depend on what a "result" is)."""

import pickle

from hypothesis import given, settings, strategies as st
import pytest

from repro.harness.jobs import (RunSpec, SweepPlan, code_fingerprint,
                                unit_key)

# -- spec identity -----------------------------------------------------------


def test_key_covers_verify_and_capture_errors():
    """Regression: specs differing only in verify/capture_errors used to
    collide in .key (and so in any dict keyed by it)."""
    base = RunSpec.make("cg", "G0", size="test")
    no_verify = RunSpec.make("cg", "G0", size="test", verify=False)
    captured = RunSpec.make("cg", "G0", size="test", capture_errors=True)
    keys = {base.key, no_verify.key, captured.key}
    assert len(keys) == 3
    # ...and the distinction survives into the content address too.
    assert len({unit_key(base), unit_key(no_verify),
                unit_key(captured)}) == 3


def test_key_equal_for_equal_specs():
    a = RunSpec.make("cg", "G0", size="test", params={"na": 64, "nz": 4})
    b = RunSpec.make("cg", "G0", size="test", params={"nz": 4, "na": 64})
    assert a == b and a.key == b.key and unit_key(a) == unit_key(b)


def test_specs_pickle_roundtrip_preserves_key():
    spec = RunSpec.make("mg", "L1", size="test", timeout_cycles=1e6,
                        capture_errors=True)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec and unit_key(clone) == unit_key(spec)


def test_code_fingerprint_is_stable_within_a_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


# -- the merge contract ------------------------------------------------------

_BENCHES = st.sampled_from(["cg", "mg", "lu", "is", "ep", "ft"])
_CONFIGS = st.sampled_from(["single", "double", "G0", "L1"])


@st.composite
def _spec_lists(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return [RunSpec.make(draw(_BENCHES), draw(_CONFIGS), size="test")
            for _ in range(n)]


@settings(max_examples=50, deadline=None)
@given(specs=_spec_lists(), data=st.data())
def test_merge_restores_submission_order_from_any_arrival_order(
        specs, data):
    """A transport may finish units in any order; merge must hand back
    one result per submission slot, in submission order, fanning a
    shared result out to every duplicate spec."""
    plan = SweepPlan(specs)
    distinct = plan.distinct()
    # distinct() keeps first-submission order and is duplicate-free
    assert [u.key for u in distinct] == plan.keys
    assert len(set(plan.keys)) == len(plan.keys)
    assert len(plan) == len(specs)

    arrival = data.draw(st.permutations(distinct))
    results = {u.key: ("run-for", u.key) for u in arrival}
    merged = plan.merge(results)
    assert len(merged) == len(specs)
    for unit, got in zip(plan.units, merged):
        assert got == ("run-for", unit.key)
    # duplicates share the same result object
    by_key = {}
    for unit, got in zip(plan.units, merged):
        assert by_key.setdefault(unit.key, got) is got


@settings(max_examples=25, deadline=None)
@given(specs=_spec_lists())
def test_merge_raises_on_a_lost_unit(specs):
    plan = SweepPlan(specs)
    results = {u.key: object() for u in plan.distinct()}
    del results[plan.keys[-1]]
    with pytest.raises(KeyError):
        plan.merge(results)


def test_identical_specs_share_one_unit():
    spec = RunSpec.make("cg", "single", size="test")
    plan = SweepPlan([spec, spec, spec])
    assert len(plan) == 3
    assert len(plan.distinct()) == 1
    merged = plan.merge({plan.keys[0]: "r"})
    assert merged == ["r", "r", "r"]
