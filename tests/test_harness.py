"""Tests for the experiment harness (runner + figure extractors)."""

import pytest

from repro.config import PAPER_MACHINE
from repro.harness import (BREAKDOWN_CATEGORIES, benchmark_inventory,
                           breakdown_table, classification_table,
                           dynamic_chunk, render_breakdowns,
                           render_classification, render_speedups,
                           render_table, run_benchmark, run_dynamic_suite,
                           run_static_suite, speedup_table, summary_gains)

CFG = PAPER_MACHINE.with_(n_cmps=4)


@pytest.fixture(scope="module")
def small_suite():
    return run_static_suite(cfg=CFG, size="test", benchmarks=("cg",),
                            configs=("single", "double", "G0", "L1"))


def test_run_benchmark_verifies_and_tags():
    run = run_benchmark("cg", "G0", cfg=CFG, size="test")
    assert run.bench == "cg"
    assert run.config == "G0"
    assert run.cycles > 0
    assert run.params["n"] > 0


def test_run_benchmark_param_overrides():
    run = run_benchmark("cg", "single", cfg=CFG, size="test",
                        params=dict(n=128))
    assert run.params["n"] == 128


def test_speedup_table_normalizes_to_base(small_suite):
    tbl = speedup_table(small_suite)
    assert tbl["cg"]["single"] == pytest.approx(1.0)
    assert set(tbl["cg"]) == {"single", "double", "G0", "L1"}


def test_summary_gains_uses_best_of_both(small_suite):
    gains = summary_gains(small_suite)
    runs = small_suite["cg"]
    expect = (min(runs["single"].cycles, runs["double"].cycles)
              / min(runs["G0"].cycles, runs["L1"].cycles))
    assert gains["cg"] == pytest.approx(expect)


def test_breakdown_table_base_sums_to_one(small_suite):
    tbl = breakdown_table(small_suite)
    row = tbl["cg"]["single"]
    assert sum(row.values()) == pytest.approx(1.0, rel=1e-6)
    assert set(BREAKDOWN_CATEGORIES) <= set(row)


def test_breakdown_table_double_scaled_per_thread(small_suite):
    # Double mode has 2x the R-threads; per-bar normalization keeps its
    # stacked total comparable (total = relative time, not 2x).
    row = tbl_total = sum(breakdown_table(small_suite)["cg"]["double"]
                          .values())
    assert 0.2 < tbl_total < 5.0


def test_classification_table_structure(small_suite):
    tbl = classification_table(small_suite)
    assert set(tbl["cg"]) == {"G0", "L1"}
    brk = tbl["cg"]["G0"]["read"]
    assert set(brk) == {"A-Timely", "A-Late", "A-Only",
                        "R-Timely", "R-Late", "R-Only"}


def test_renderers_produce_tables(small_suite):
    s = render_speedups(small_suite, title="T")
    assert s.startswith("T\n")
    assert "CG" in s
    b = render_breakdowns(small_suite)
    assert "busy" in b and "jobwait" in b
    c = render_classification(small_suite)
    assert "A-Timely" in c


def test_render_table_alignment():
    out = render_table(["a", "bbb"], [["x", 1], ["yyyy", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert len(set(len(l) for l in lines[1:])) <= 2  # columns aligned


def test_dynamic_chunk_policy():
    # CG: half the static block (n / (2 * n_cmps)).
    assert dynamic_chunk("cg", CFG, "test") == \
        max(1, 96 // (2 * CFG.n_cmps))
    # Others at test size: compiler default.
    assert dynamic_chunk("bt", CFG, "test") is None
    assert dynamic_chunk("mg", CFG, "bench") == 3


def test_dynamic_suite_excludes_lu():
    suite = run_dynamic_suite(cfg=CFG, size="test", benchmarks=("cg",),
                              configs=("single",))
    assert "lu" not in suite
    assert "cg" in suite


def test_benchmark_inventory_lists_all():
    rows = benchmark_inventory()
    assert [r["benchmark"] for r in rows] == ["BT", "CG", "LU", "MG", "SP"]
    assert all(r["description"] for r in rows)


def test_csv_export(small_suite):
    from repro.harness.report import classification_to_csv, suite_to_csv
    csv_text = suite_to_csv(small_suite)
    lines = csv_text.strip().splitlines()
    assert lines[0].startswith("benchmark,config,cycles")
    assert len(lines) == 1 + 4            # header + 4 configs
    cls_text = classification_to_csv(small_suite)
    assert "rdex_coverage" in cls_text.splitlines()[0]
    assert len(cls_text.strip().splitlines()) == 1 + 2 * 2  # 2 cfg x 2 kinds


def test_markdown_export(small_suite):
    from repro.harness.report import suite_to_markdown
    md = suite_to_markdown(small_suite, title="Demo")
    assert md.startswith("### Demo")
    assert "| CG |" in md
    assert "**average**" in md
