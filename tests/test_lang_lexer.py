"""Tests for the SlipC tokenizer."""

import pytest

from repro.lang import LexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]  # drop eof


def test_simple_tokens():
    assert kinds("int x = 42;") == [
        ("kw", "int"), ("id", "x"), ("op", "="), ("num", "42"), ("op", ";")]


def test_float_literals():
    toks = kinds("1.5 2e3 1.5e-4 .25")
    assert [t for _, t in toks] == ["1.5", "2e3", "1.5e-4", ".25"]
    assert all(k == "num" for k, _ in toks)


def test_two_char_operators():
    assert [t for _, t in kinds("a <= b == c && d || !e != f >= g")] == [
        "a", "<=", "b", "==", "c", "&&", "d", "||", "!", "e", "!=", "f",
        ">=", "g"]


def test_compound_assign_ops():
    assert [t for _, t in kinds("x += 1; y *= 2;")] == [
        "x", "+=", "1", ";", "y", "*=", "2", ";"]


def test_comments_stripped():
    src = "int a; // line comment\n/* block\ncomment */ int b;"
    assert kinds(src) == [("kw", "int"), ("id", "a"), ("op", ";"),
                          ("kw", "int"), ("id", "b"), ("op", ";")]


def test_pragma_token_captured_whole_line():
    toks = tokenize("#pragma omp parallel for schedule(static)\nint x;")
    assert toks[0].kind == "pragma"
    assert toks[0].text == "#pragma omp parallel for schedule(static)"
    assert toks[1].text == "int"


def test_pragma_line_continuation():
    toks = tokenize("#pragma omp parallel \\\n  private(i)\nint x;")
    assert toks[0].kind == "pragma"
    assert "private(i)" in toks[0].text
    assert toks[1].text == "int"


def test_string_literal():
    toks = tokenize('print("result", x);')
    assert ("str", "result") == (toks[2].kind, toks[2].text)


def test_line_numbers_tracked():
    toks = tokenize("int a;\n\nint b;")
    assert toks[0].line == 1
    assert toks[3].line == 3


def test_unterminated_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('print("oops')


def test_unexpected_char_raises():
    with pytest.raises(LexError):
        tokenize("int a @ b;")


def test_keywords_vs_identifiers():
    toks = kinds("for forx")
    assert toks == [("kw", "for"), ("id", "forx")]
