"""Unit tests for counters and exclusive time-category accounting."""

import pytest

from repro.obs import Counter, TimeBreakdown


def test_counter_add_get_merge():
    c1 = Counter()
    c1.add("loads")
    c1.add("loads", 4)
    c2 = Counter()
    c2.add("loads", 2)
    c2.add("stores", 7)
    c1.merge(c2)
    assert c1.get("loads") == 7
    assert c1.get("stores") == 7
    assert c1.get("missing") == 0
    assert c1.as_dict() == {"loads": 7, "stores": 7}


def test_breakdown_base_category_is_busy():
    bd = TimeBreakdown(start=0.0)
    bd.close(10.0)
    assert bd.get("busy") == 10.0
    assert bd.total() == 10.0


def test_breakdown_nested_exclusive_attribution():
    bd = TimeBreakdown(start=0.0)
    bd.push("barrier", 4.0)       # busy: 4
    bd.push("memory", 6.0)        # barrier: 2
    bd.pop(9.0)                   # memory: 3
    bd.pop(10.0)                  # barrier: 1
    bd.close(12.0)                # busy: 2
    assert bd.get("busy") == 6.0
    assert bd.get("barrier") == 3.0
    assert bd.get("memory") == 3.0
    assert bd.total() == 12.0


def test_breakdown_switch_replaces_top():
    bd = TimeBreakdown(start=0.0)
    bd.push("lock", 1.0)
    bd.switch("scheduling", 3.0)   # lock gets 2
    bd.pop(7.0)                    # scheduling gets 4
    bd.close(8.0)
    assert bd.get("lock") == 2.0
    assert bd.get("scheduling") == 4.0
    assert bd.get("busy") == 2.0


def test_breakdown_pop_empty_raises():
    bd = TimeBreakdown()
    with pytest.raises(ValueError):
        bd.pop(1.0)


def test_breakdown_time_backwards_raises():
    bd = TimeBreakdown(start=5.0)
    with pytest.raises(ValueError):
        bd.push("memory", 4.0)


def test_breakdown_fractions_sum_to_one():
    bd = TimeBreakdown()
    bd.push("memory", 2.0)
    bd.pop(6.0)
    bd.close(10.0)
    fr = bd.fractions()
    assert sum(fr.values()) == pytest.approx(1.0)
    assert fr["memory"] == pytest.approx(0.4)


def test_breakdown_aggregate_across_processors():
    a = TimeBreakdown()
    a.push("memory", 0.0)
    a.pop(5.0)
    a.close(10.0)
    b = TimeBreakdown()
    b.push("barrier", 0.0)
    b.pop(4.0)
    b.close(10.0)
    agg = TimeBreakdown.aggregate([a, b])
    assert agg["memory"] == 5.0
    assert agg["barrier"] == 4.0
    assert agg["busy"] == 11.0


def test_breakdown_current_tracks_stack():
    bd = TimeBreakdown()
    assert bd.current == "busy"
    bd.push("io", 0.0)
    assert bd.current == "io"
    bd.pop(1.0)
    assert bd.current == "busy"
