"""Compiler back-end tests: lowering shapes, sites, disassembly, and
the mode-independence of the compiled image."""

import pytest

from repro.compiler import RT_RETURNS, compile_source, disassemble
from repro.lang.errors import SemanticError


def rt_calls(code):
    return [ins[1][0] for ins in code.instrs if ins[0] == "rt"]


def test_parallel_region_outlined():
    img = compile_source("""
double a[8];
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i < 8; i = i + 1) a[i] = i;
}
""")
    regions = [f for f in img.funcs if f.is_region]
    assert len(regions) == 1
    assert regions[0].name.startswith("main._region")
    main = img.funcs[img.main_index]
    assert rt_calls(main) == ["parallel_begin", "parallel_end"]
    assert rt_calls(regions[0]) == ["sched_init", "sched_next", "barrier"]


def test_captured_locals_become_region_params():
    img = compile_source("""
double a[8];
int i;
void main() {
    int n;
    double w;
    n = 8; w = 2.0;
    #pragma omp parallel for
    for (i = 0; i < n; i = i + 1) a[i] = i * w;
}
""")
    region = next(f for f in img.funcs if f.is_region)
    assert region.params == ["n", "w"]          # sorted, deterministic


def test_nowait_suppresses_barrier():
    img = compile_source("""
double a[8];
int i;
void main() {
    #pragma omp parallel
    {
        #pragma omp for nowait
        for (i = 0; i < 8; i = i + 1) a[i] = i;
    }
}
""")
    region = next(f for f in img.funcs if f.is_region)
    assert "barrier" not in rt_calls(region)


def test_reduction_lowering_emits_reduce():
    img = compile_source("""
double s;
int i;
void main() {
    #pragma omp parallel for reduction(+: s)
    for (i = 0; i < 8; i = i + 1) s = s + i;
}
""")
    region = next(f for f in img.funcs if f.is_region)
    calls = rt_calls(region)
    assert "reduce" in calls
    # combine happens before the closing barrier
    assert calls.index("reduce") < calls.index("barrier")


def test_sites_are_unique_and_labelled():
    img = compile_source("""
double a[8];
int i;
void main() {
    #pragma omp parallel
    {
        #pragma omp for schedule(dynamic, 2)
        for (i = 0; i < 8; i = i + 1) a[i] = i;
        #pragma omp barrier
        #pragma omp single
        { a[0] = 1.0; }
    }
}
""")
    labels = list(img.sites.values())
    assert len(set(img.sites)) == len(img.sites)
    assert any(l.startswith("for@") and "dynamic" in l for l in labels)
    assert any(l.startswith("barrier@") for l in labels)
    assert any(l.startswith("single@") for l in labels)


def test_critical_names_share_ids():
    img = compile_source("""
double x;
void main() {
    #pragma omp parallel
    {
        #pragma omp critical(alpha)
        { x = 1.0; }
        #pragma omp critical(alpha)
        { x = 2.0; }
        #pragma omp critical(beta)
        { x = 3.0; }
    }
}
""")
    region = next(f for f in img.funcs if f.is_region)
    cids = [ins[1][1][0] for ins in region.instrs
            if ins[0] == "rt" and ins[1][0] == "crit_enter"]
    assert cids[0] == cids[1] != cids[2]


def test_flush_emits_nothing():
    img = compile_source("""
void main() {
    #pragma omp parallel
    {
        #pragma omp flush
    }
}
""")
    region = next(f for f in img.funcs if f.is_region)
    assert "flush" not in rt_calls(region)


def test_rt_returns_consistent_with_lowering():
    """Every rt call that the shell pushes a result for must be consumed
    by the following instruction (no stack leaks)."""
    img = compile_source("""
double a[8];
double s;
int i;
void main() {
    #pragma omp parallel
    {
        #pragma omp for schedule(dynamic) reduction(+: s)
        for (i = 0; i < 8; i = i + 1) s = s + a[i];
        #pragma omp single
        { s = s * 2.0; }
        #pragma omp master
        { s = s + 1.0; }
    }
}
""")
    for code in img.funcs:
        for k, ins in enumerate(code.instrs):
            if ins[0] == "rt" and ins[1][0] in RT_RETURNS:
                nxt = code.instrs[k + 1][0]
                assert nxt in ("jnone", "jfalse", "lstore", "pop",
                               "unpack2", "gstore", "binop"), \
                    (code.name, k, ins, nxt)


def test_disassemble_output():
    img = compile_source("double x;\nvoid main() { x = 1.0 + 2.0; }")
    text = disassemble(img.funcs[img.main_index])
    assert "main" in text
    assert "gstore" in text


def test_same_binary_no_mode_dependence():
    """The image contains no mode-conditional instructions: compiling
    twice yields identical bytecode (determinism), and nothing in the
    instruction stream names a mode."""
    src = """
double a[16];
int i;
void main() {
    #pragma omp slipstream(RUNTIME_SYNC)
    #pragma omp parallel for
    for (i = 0; i < 16; i = i + 1) a[i] = i;
}
"""
    img1 = compile_source(src)
    img2 = compile_source(src)
    for f1, f2 in zip(img1.funcs, img2.funcs):
        assert f1.instrs == f2.instrs


def test_whole_array_assignment_rejected():
    with pytest.raises(SemanticError):
        compile_source("double a[4];\nvoid main() { a = 1.0; }")


def test_wrong_index_arity_rejected():
    with pytest.raises(SemanticError):
        compile_source("double a[4][4];\nvoid main() { a[1] = 1.0; }")


def test_scalar_indexed_rejected():
    with pytest.raises(SemanticError):
        compile_source("double x;\nvoid main() { x[0] = 1.0; }")


def test_break_in_omp_for_rejected():
    with pytest.raises(SemanticError):
        compile_source("""
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i < 8; i = i + 1) { break; }
}
""")


def test_malformed_omp_loop_rejected():
    with pytest.raises(SemanticError):
        compile_source("""
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i != 8; i = i + 1) { }
}
""")


def test_call_arity_checked():
    with pytest.raises(SemanticError):
        compile_source("""
int f(int a, int b) { return a + b; }
void main() { int x; x = f(1); }
""")
