"""Chaos harness: matrix composition, the output oracle, captured
failures, and the chaos/bench CLI surfaces."""

import io
import json

import pytest

from repro.cli import main
from repro.config import PAPER_MACHINE
from repro.faults import FAULT_CLASSES, FaultConfig
from repro.harness.chaos import (CHAOS_BENCHMARKS, chaos_specs,
                                 oracle_check, render_chaos, run_chaos)
from repro.harness.exec import ProcessPoolContext, RunSpec, execute_spec

SUBSET = ("cg", "mg")


def _subset_specs():
    return chaos_specs(benchmarks=SUBSET, seeds=1)


@pytest.fixture(scope="module")
def serial_report():
    return run_chaos(_subset_specs())


# ---------------------------------------------------------- composition

def test_default_matrix_composition():
    specs = chaos_specs()
    assert len(specs) >= 20
    assert len({s.bench for s in specs}) >= 3
    assert set(CHAOS_BENCHMARKS) == {s.bench for s in specs}
    armed = {c for s in specs for c in s.faults.classes}
    assert armed == set(FAULT_CLASSES)
    # channel scenarios get dynamic scheduling so the mailbox carries
    # traffic (except LU, whose scheduling is programmatically static)
    for s in specs:
        if "channel" in s.faults.classes and s.bench != "lu":
            assert s.schedule == ("dynamic", 4)
    assert all(s.capture_errors and s.timeout_cycles for s in specs)


def test_matrix_seeds_are_distinct():
    specs = chaos_specs()
    seeds = [(s.bench, s.faults.seed) for s in specs]
    assert len(seeds) == len(set(seeds))


# ------------------------------------------------------- invariant holds

def test_subset_matrix_holds_the_invariant(serial_report):
    rep = serial_report
    assert rep.ok, render_chaos(rep)
    assert rep.total_recoveries >= 1
    cov = rep.class_recovery()
    assert all(cov.values()), f"missing recovery coverage: {cov}"
    statuses = rep.status_counts()
    assert statuses.get("hang", 0) == 0
    assert statuses.get("wrong-output", 0) == 0
    assert statuses.get("crash", 0) == 0


def test_chaos_is_deterministic_across_contexts(serial_report):
    pooled = run_chaos(_subset_specs(),
                       context=ProcessPoolContext(jobs=2))
    key = lambda o: (o.bench, o.seed, o.classes, o.status, o.recoveries,
                     o.cycles, tuple(sorted(o.injected.items())),
                     tuple(o.recovery_sites))
    assert list(map(key, serial_report.outcomes)) == \
        list(map(key, pooled.outcomes))


def test_report_is_json_serializable(serial_report):
    blob = json.dumps(serial_report.to_json())
    back = json.loads(blob)
    assert back["ok"] is True
    assert back["summary"]["scenarios"] == len(serial_report.outcomes)


def test_fault_counters_survive_pool_merge():
    """Probe counters (``fault.*`` on the faults track, ``a.faults`` on
    the channel tracks) and the recovery log must come back identical
    from a pool worker and from in-process execution."""
    spec = RunSpec.make("cg", "G0", size="test", verify=True,
                        faults=FaultConfig(4, classes=("vm", "kill")),
                        timeout_cycles=5e6,
                        cfg=PAPER_MACHINE.with_(n_cmps=8))
    serial = execute_spec(spec).result
    pooled = ProcessPoolContext(jobs=2).run([spec, spec])
    for run in pooled:
        r = run.result
        assert r.rt_stats == serial.rt_stats
        assert r.recoveries == serial.recoveries
        assert r.faults == serial.faults
    fired = {f["kind"] for f in serial.faults["fired"]}
    assert fired, "campaign must actually inject"
    fault_counts = serial.rt_stats.get("faults", {})
    assert {f"fault.{k}" for k in fired} <= set(fault_counts)
    assert sum(fault_counts.values()) == len(serial.faults["fired"])
    assert any("a.faults" in counts
               for counts in serial.rt_stats.values())


# ---------------------------------------------------------------- oracle

def test_oracle_detects_tampered_results():
    spec = RunSpec.make("cg", "G0", size="test", verify=True)
    result = execute_spec(spec).result
    assert oracle_check(spec, result) is None
    gidx = next(i for i, g in enumerate(result.store.program.globals)
                if result.store.arrays[i].size)
    result.store.arrays[gidx][0] += 1.0           # simulate a leak
    mismatch = oracle_check(spec, result)
    assert mismatch is not None
    assert result.store.program.globals[gidx].name in mismatch


# ------------------------------------------------------ captured failures

def test_execute_spec_captures_watchdog_expiry():
    spec = RunSpec.make("cg", "G0", size="test", verify=True,
                        timeout_cycles=300, capture_errors=True)
    run = execute_spec(spec)
    assert run.result is None
    assert run.error_kind == "hang"
    assert "watchdog expired" in run.error
    assert "\n" not in run.error                  # one actionable line
    assert run.cycles != run.cycles               # NaN


def test_execute_spec_raises_without_capture():
    from repro.runtime import SimDeadlockError
    spec = RunSpec.make("cg", "G0", size="test", verify=True,
                        timeout_cycles=300)
    with pytest.raises(SimDeadlockError):
        execute_spec(spec)


# ------------------------------------------------------------------- CLI

def run_cli(argv):
    out = io.StringIO()
    rc = main(argv, out=out)
    return rc, out.getvalue()


def test_cli_chaos_writes_report(tmp_path):
    report = tmp_path / "chaos.json"
    rc, out = run_cli(["chaos", "cg", "--seeds", "1", "--cmps", "8",
                       "--report", str(report)])
    assert rc == 0
    assert "oracle verdict: OK" in out
    blob = json.loads(report.read_text())
    assert blob["ok"] is True
    assert blob["summary"]["recoveries"] >= 1
    assert all(c in blob["summary"]["class_recovery"]
               for c in FAULT_CLASSES)


def test_cli_chaos_rejects_unknown_class(capsys):
    rc, _ = run_cli(["chaos", "cg", "--classes", "gremlins"])
    assert rc == 2
    assert "unknown fault class" in capsys.readouterr().err


def test_cli_bench_watchdog_is_one_line_exit_4(capsys):
    rc, _ = run_cli(["bench", "cg", "--size", "test", "--cmps", "8",
                     "--timeout-cycles", "300"])
    assert rc == 4
    err = capsys.readouterr().err
    first = err.splitlines()[0]
    assert first.startswith("error: simulation watchdog expired")
    assert "Traceback" not in err


def test_cli_run_chaos_seed_reports_injections(tmp_path):
    f = tmp_path / "p.c"
    f.write_text("""
double a[512];
int i;
void main() {
    int it;
    for (it = 0; it < 30; it = it + 1) {
        #pragma omp parallel for
        for (i = 0; i < 512; i = i + 1) a[i] = a[i] + 1.0;
    }
}
""")
    rc, out = run_cli(["run", str(f), "--mode", "slipstream",
                       "--cmps", "4", "--chaos-seed", "3"])
    assert rc == 0
    assert "chaos: seed 3" in out
    assert "injection(s)" in out
