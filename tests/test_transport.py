"""Transport pluggability: serial, pool and spool dispatch must agree
bit-for-bit, and the spool protocol (claim files, published results,
worker key checks) must hold up under cooperating processes."""

import pickle

import pytest

from repro.config import PAPER_MACHINE
from repro.harness.jobs import RunSpec, SweepPlan, unit_key
from repro.harness.pipeline import ExecutionPipeline
from repro.harness.transport import (DirQueueTransport, PoolTransport,
                                     SerialTransport, _Spool, run_worker)

CFG = PAPER_MACHINE.with_(n_cmps=4)


def _specs():
    return [RunSpec.make("cg", c, size="test", cfg=CFG)
            for c in ("single", "G0")]


@pytest.fixture(scope="module")
def golden():
    """Serial-transport cycles for the module's spec pair -- the
    reference every other transport must reproduce exactly."""
    runs = ExecutionPipeline(transport=SerialTransport()).run(_specs())
    return [r.cycles for r in runs]


def test_pool_matches_serial_bit_for_bit(golden):
    runs = ExecutionPipeline(transport=PoolTransport(jobs=2)).run(_specs())
    assert [r.cycles for r in runs] == golden


def test_spool_driver_completes_alone(golden, tmp_path):
    """The driver works the spool inline: a sweep finishes with zero
    attached workers, bit-identical to serial."""
    pipe = ExecutionPipeline(transport=DirQueueTransport(tmp_path / "sp"))
    runs = pipe.run(_specs())
    assert [r.cycles for r in runs] == golden
    assert pipe.counters.get("unit.executed") == 2


def test_worker_drains_spool_and_driver_harvests(golden, tmp_path):
    """An attached worker executes enqueued units; the driver then only
    harvests (its inline path never fires)."""
    root = tmp_path / "sp"
    plan = SweepPlan(_specs())
    spool = _Spool(root)
    spool.ensure()
    for u in plan.distinct():
        spool.enqueue(u.key, u.spec)
    executed = run_worker(root, drain=True,
                          out=open(tmp_path / "w.log", "w"))
    assert executed == 2
    # drained spool: a second worker finds nothing
    assert run_worker(root, drain=True,
                      out=open(tmp_path / "w2.log", "w")) == 0
    # driver harvest delivers the worker's results, in merge order
    pipe = ExecutionPipeline(transport=DirQueueTransport(root))
    runs = pipe.run(_specs())
    assert [r.cycles for r in runs] == golden


def test_worker_skips_key_mismatched_unit(tmp_path):
    """A unit whose spec no longer hashes to its filename (code or tier
    drift between driver and worker) is skipped, never executed."""
    root = tmp_path / "sp"
    spool = _Spool(root)
    spool.ensure()
    spec = RunSpec.make("cg", "single", size="test", cfg=CFG)
    spool.enqueue("0" * 64, spec)            # wrong key on purpose
    out = open(tmp_path / "w.log", "w")
    assert run_worker(root, drain=True, out=out) == 0
    out.close()
    assert "skipping" in (tmp_path / "w.log").read_text()
    assert not spool.has_result("0" * 64)
    assert spool.unit_path("0" * 64).is_file()   # left for inspection


def test_spool_spec_errors_propagate(tmp_path):
    """A spec that raises (watchdog expiry) propagates out of the spool
    driver exactly like the serial and pool transports."""
    from repro.runtime import SimDeadlockError
    spec = RunSpec.make("cg", "single", size="test", cfg=CFG,
                        timeout_cycles=300)
    pipe = ExecutionPipeline(transport=DirQueueTransport(tmp_path / "sp"))
    with pytest.raises(SimDeadlockError):
        pipe.run([spec])
    # ...and the failure record is published so attached workers stop
    # re-trying the unit.
    spool = _Spool(tmp_path / "sp")
    assert spool.has_result(unit_key(spec))


def test_spool_reaps_stalled_lease(golden, tmp_path):
    """A claim left behind by a dead worker is reaped after the lease
    and the unit re-executed by whoever notices."""
    root = tmp_path / "sp"
    plan = SweepPlan(_specs())
    spool = _Spool(root)
    spool.ensure()
    stuck = plan.distinct()[0]
    assert spool.try_claim(stuck.key)        # a "worker" that died here
    pipe = ExecutionPipeline(
        transport=DirQueueTransport(root, lease_s=0.2, poll_s=0.02))
    runs = pipe.run(_specs())
    assert [r.cycles for r in runs] == golden
    assert any("reaped" in e for e in pipe.events)


def test_enqueue_is_idempotent(tmp_path):
    spool = _Spool(tmp_path / "sp")
    spool.ensure()
    spec = RunSpec.make("cg", "single", size="test", cfg=CFG)
    key = unit_key(spec)
    assert spool.enqueue(key, spec)
    assert not spool.enqueue(key, spec)      # already enqueued
    spool.publish(key, "done")
    spool.unit_path(key).unlink()
    assert not spool.enqueue(key, spec)      # already resulted


def test_claims_are_exclusive(tmp_path):
    spool = _Spool(tmp_path / "sp")
    spool.ensure()
    assert spool.try_claim("k")
    assert not spool.try_claim("k")          # second claimant loses
    spool.release("k")
    assert spool.try_claim("k")


def test_unit_failure_roundtrips_exceptions():
    from repro.harness.transport import _UnitFailure
    wrapped = _UnitFailure(ValueError("boom"))
    clone = pickle.loads(pickle.dumps(wrapped))
    exc = clone.unwrap()
    assert isinstance(exc, ValueError) and "boom" in str(exc)
