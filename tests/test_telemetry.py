"""Harness telemetry: event log schema + lifecycle, metrics, fleet
status, harness Chrome trace -- and the non-negotiable: telemetry must
never change a simulated cycle count."""

import json
import os

import pytest

from repro.cli import main
from repro.config import PAPER_MACHINE
from repro.harness.jobs import RunSpec, SweepPlan
from repro.harness.pipeline import ExecutionPipeline
from repro.harness.transport import (DirQueueTransport, PoolTransport,
                                     SerialTransport, _Spool, run_worker)
from repro.obs.telemetry import (EVENT_TYPES, NULL_TELEMETRY, EventLog,
                                 Histogram, MetricsRegistry, Telemetry,
                                 collect_status, harness_trace_events,
                                 read_events, render_status,
                                 telemetry_area, validate_events)
from repro.obs.telemetry.__main__ import main as telemetry_main
from repro.obs.trace import validate_trace

CFG = PAPER_MACHINE.with_(n_cmps=4)


def _specs():
    return [RunSpec.make("cg", c, size="test", cfg=CFG)
            for c in ("single", "G0")]


@pytest.fixture(scope="module")
def golden():
    """Telemetry-off serial cycles: the bits every telemetry
    configuration must reproduce exactly."""
    runs = ExecutionPipeline(transport=SerialTransport()).run(_specs())
    return [r.cycles for r in runs]


# -- metrics -----------------------------------------------------------------

def test_histogram_percentiles_exact():
    h = Histogram()
    for v in range(1, 101):          # 1..100
        h.record(v)
    assert h.percentile(50) == 50
    assert h.percentile(90) == 90
    assert h.percentile(99) == 99
    snap = h.snapshot()
    assert snap["count"] == 100 and snap["min"] == 1 and snap["max"] == 100
    assert snap["p50"] == 50 and snap["mean"] == 50.5


def test_histogram_empty_snapshot():
    assert Histogram().snapshot() == {"count": 0}
    assert Histogram().percentile(50) == 0.0


def test_registry_flat_shape():
    m = MetricsRegistry()
    m.count("unit.retries", 2)
    m.gauge("worker.units_per_s", 3.25)
    m.observe("unit.exec_s", 1.0)
    m.observe("unit.exec_s", 3.0)
    flat = m.flat()
    assert flat["unit.retries"] == 2
    assert flat["worker.units_per_s"] == 3.25
    assert flat["unit.exec_s.count"] == 2
    assert flat["unit.exec_s.p99"] == 3.0
    structured = m.as_dict()
    assert structured["histograms"]["unit.exec_s"]["mean"] == 2.0


# -- sessions and the event log ----------------------------------------------

def test_emit_rejects_unknown_event():
    tel = Telemetry()
    with pytest.raises(ValueError):
        tel.emit("unit.exploded")


def test_null_telemetry_is_inert(tmp_path):
    NULL_TELEMETRY.emit("unit.started", unit="k")
    NULL_TELEMETRY.observe("x", 1.0)
    NULL_TELEMETRY.heartbeat(force=True)
    NULL_TELEMETRY.close()
    assert NULL_TELEMETRY.records == ()
    assert not NULL_TELEMETRY.enabled


def test_event_log_multi_writer_roundtrip(tmp_path):
    """Two concurrent writers append to their own slices; the merged
    read is (ts, worker, seq)-ordered and survives a torn line."""
    a = Telemetry(root=tmp_path, worker="a")
    b = Telemetry(root=tmp_path, worker="b")
    a.emit("worker.started")
    b.emit("worker.started")
    a.emit("unit.started", unit="k1")
    a.emit("unit.finished", unit="k1", wall_s=0.5)
    b.emit("worker.stopped")
    a.close(), b.close()
    # a SIGKILLed writer's torn final line
    with open(tmp_path / "events-dead.jsonl", "w") as fh:
        fh.write('{"v": 1, "seq": 1, "ts": 1.0, "worker": "dead", "ev')
    problems = []
    records = read_events(tmp_path, problems=problems)
    assert len(records) == 5
    assert any("torn" in p for p in problems)
    assert validate_events(records) == []
    seqs = [r["seq"] for r in records if r["worker"] == "a"]
    assert seqs == sorted(seqs)


def test_validate_catches_missing_terminal():
    recs = [{"v": 1, "seq": 1, "ts": 1.0, "worker": "w",
             "event": "unit.started", "unit": "k1"}]
    assert any("terminal" in p for p in validate_events(recs))


def test_validate_catches_bad_schema():
    assert any("version" in p for p in validate_events(
        [{"v": 99, "seq": 1, "ts": 1.0, "worker": "w",
          "event": "unit.finished", "unit": "k"}]))
    assert any("unknown event" in p for p in validate_events(
        [{"v": 1, "seq": 1, "ts": 1.0, "worker": "w",
          "event": "unit.vanished"}]))
    assert any("seq" in p for p in validate_events(
        [{"v": 1, "seq": 2, "ts": 1.0, "worker": "w",
          "event": "worker.started"},
         {"v": 1, "seq": 2, "ts": 2.0, "worker": "w",
          "event": "worker.stopped"}]))


def test_abandoned_execution_needs_explanation():
    """started twice / finished once is only valid with a lease.reaped
    (or unit.retried) record covering the abandoned half-run."""
    base = [
        {"v": 1, "seq": 1, "ts": 1.0, "worker": "w1",
         "event": "unit.started", "unit": "k"},
        {"v": 1, "seq": 1, "ts": 5.0, "worker": "w2",
         "event": "unit.started", "unit": "k"},
        {"v": 1, "seq": 2, "ts": 6.0, "worker": "w2",
         "event": "unit.finished", "unit": "k"},
    ]
    assert validate_events(base) != []
    explained = base + [{"v": 1, "seq": 2, "ts": 4.0, "worker": "d",
                         "event": "lease.reaped", "unit": "k"}]
    assert validate_events(explained) == []


# -- pipeline integration ----------------------------------------------------

def test_serial_sweep_records_full_lifecycle(golden):
    tel = Telemetry()
    pipe = ExecutionPipeline(transport=SerialTransport(), telemetry=tel)
    runs = pipe.run(_specs())
    assert [r.cycles for r in runs] == golden          # determinism: on
    events = [r["event"] for r in tel.records]
    assert events[0] == "sweep.started"
    assert events[-1] == "sweep.finished"
    assert events.count("unit.planned") == 2
    assert events.count("unit.started") == 2
    assert events.count("unit.finished") == 2
    assert validate_events(tel.records) == []
    # metrics folded into rt_stats next to the pipeline counters
    stats = pipe.rt_stats
    assert stats["pipeline"]["unit.executed"] == 2
    assert stats["harness"]["unit.exec_s.count"] == 2
    assert "exec p50" in pipe.summary()
    # every recorded event type is schema-known
    assert {r["event"] for r in tel.records} <= EVENT_TYPES


def test_pool_sweep_is_bit_identical_with_telemetry(golden):
    tel = Telemetry()
    pipe = ExecutionPipeline(transport=PoolTransport(jobs=2),
                             telemetry=tel)
    runs = pipe.run(_specs())
    assert [r.cycles for r in runs] == golden       # determinism: -j 2
    events = [r["event"] for r in tel.records]
    assert events.count("unit.claimed") == 2
    assert events.count("unit.finished") == 2
    assert validate_events(tel.records) == []


def test_spool_sweep_writes_shared_event_log(golden, tmp_path):
    root = tmp_path / "sp"
    tel = Telemetry(root=telemetry_area(root), worker="driver-1")
    pipe = ExecutionPipeline(
        transport=DirQueueTransport(root, poll_s=0.02), telemetry=tel)
    runs = pipe.run(_specs())
    tel.close()
    assert [r.cycles for r in runs] == golden     # determinism: spool
    records = read_events(telemetry_area(root))
    assert validate_events(records) == []
    assert telemetry_main([str(telemetry_area(root))]) == 0
    status = collect_status(root)
    assert status.units_total == 2 and status.units_done == 2
    assert not status.stalled
    assert "complete" in render_status(status)


def test_worker_records_telemetry_and_heartbeat(tmp_path):
    root = tmp_path / "sp"
    plan = SweepPlan(_specs())
    spool = _Spool(root)
    spool.ensure()
    for u in plan.distinct():
        spool.enqueue(u.key, u.spec)
    log_path = tmp_path / "w.log"
    with open(log_path, "w") as fh:
        assert run_worker(root, drain=True, out=fh) == 2
    text = log_path.read_text()
    assert "2 unit(s) executed" in text
    records = read_events(telemetry_area(root))
    events = [r["event"] for r in records]
    assert "worker.started" in events and "worker.stopped" in events
    assert events.count("unit.claimed") == 2
    assert validate_events(records) == []
    beats = list((telemetry_area(root) / "heartbeats").glob("*.json"))
    assert len(beats) == 1
    body = json.loads(beats[0].read_text())
    assert body["role"] == "worker" and body["state"] == "stopped"
    assert body["done"] == 2


# -- fleet status ------------------------------------------------------------

def test_status_detects_stalled_claim(tmp_path):
    """A claim older than the stall threshold with no live worker is a
    straggler and the fleet is stalled; the CLI exits 1 on it."""
    root = tmp_path / "sp"
    spool = _Spool(root)
    spool.ensure()
    spec = _specs()[0]
    from repro.harness.jobs import unit_key
    key = unit_key(spec)
    spool.enqueue(key, spec)
    assert spool.try_claim(key)
    old = os.path.getmtime(spool.claim_path(key)) - 120
    os.utime(spool.claim_path(key), (old, old))
    status = collect_status(root, stall_s=30.0)
    assert status.stalled
    assert status.stragglers and status.stragglers[0]["unit"] == key
    assert "STALLED" in render_status(status)
    assert main(["status", str(root)]) == 1


def test_status_healthy_while_fresh_claim(tmp_path):
    """A fresh claim means somebody is working: not stalled, exit 0."""
    root = tmp_path / "sp"
    spool = _Spool(root)
    spool.ensure()
    spec = _specs()[0]
    from repro.harness.jobs import unit_key
    key = unit_key(spec)
    spool.enqueue(key, spec)
    assert spool.try_claim(key)
    status = collect_status(root, stall_s=30.0)
    assert not status.stalled and status.units_claimed == 1
    assert main(["status", str(root)]) == 0


def test_status_rejects_non_spool_dir(tmp_path):
    with pytest.raises(FileNotFoundError):
        collect_status(tmp_path / "nope")
    assert main(["status", str(tmp_path / "nope")]) == 2


# -- harness Chrome trace ----------------------------------------------------

def test_harness_trace_is_valid_chrome_trace(tmp_path):
    tel = Telemetry()
    pipe = ExecutionPipeline(transport=SerialTransport(), telemetry=tel)
    pipe.run(_specs())
    events = harness_trace_events(tel.records)
    assert validate_trace(events) == []
    names = {e.get("name") for e in events}
    assert "sweep" in names
    assert sum(1 for e in events if e.get("ph") == "M") >= 2


def test_harness_trace_closes_sigkilled_spans():
    """A worker killed mid-unit leaves an open B; the exporter must
    still produce matched-pair, monotonic trace JSON."""
    records = [
        {"v": 1, "seq": 1, "ts": 10.0, "worker": "w1",
         "event": "worker.started"},
        {"v": 1, "seq": 2, "ts": 10.5, "worker": "w1",
         "event": "unit.started", "unit": "k" * 64, "spec": "cg/G0"},
        # no terminal: w1 was SIGKILLed here
        {"v": 1, "seq": 1, "ts": 12.0, "worker": "driver",
         "event": "lease.reaped", "unit": "k" * 64},
        {"v": 1, "seq": 2, "ts": 12.1, "worker": "driver",
         "event": "unit.started", "unit": "k" * 64, "spec": "cg/G0"},
        {"v": 1, "seq": 3, "ts": 13.0, "worker": "driver",
         "event": "unit.finished", "unit": "k" * 64, "wall_s": 0.9},
    ]
    assert validate_trace(harness_trace_events(records)) == []


def test_checker_cli_validates_and_exports(tmp_path, capsys):
    tel = Telemetry(root=tmp_path / "t", worker="w")
    tel.emit("unit.started", unit="k1", spec="cg/single")
    tel.emit("unit.finished", unit="k1", wall_s=0.1)
    tel.close()
    trace_out = tmp_path / "harness.json"
    assert telemetry_main([str(tmp_path / "t"),
                           "--trace", str(trace_out)]) == 0
    assert "OK" in capsys.readouterr().out
    data = json.loads(trace_out.read_text())
    assert validate_trace(data) == []


def test_checker_cli_rejects_unterminated_unit(tmp_path, capsys):
    tel = Telemetry(root=tmp_path / "t", worker="w")
    tel.emit("unit.claimed", unit="k1")
    tel.emit("unit.started", unit="k1")
    tel.close()
    assert telemetry_main([str(tmp_path / "t")]) == 1
    assert "terminal" in capsys.readouterr().err
