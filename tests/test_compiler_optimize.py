"""Tests for the bytecode peephole optimizer: targeted folds plus
whole-corpus semantic equivalence."""

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.compiler.optimize import optimize_code, optimize_program
from repro.interp import FunctionalRunner
from repro.npb import REGISTRY


def instrs(src, optimize):
    img = compile_source(src, optimize=optimize)
    return img.funcs[img.main_index].instrs


def test_constant_folding_collapses_arithmetic():
    src = "double x;\nvoid main() { x = 2.0 * 3.0 + 4.0; }"
    unopt = instrs(src, optimize=False)
    opt = instrs(src, optimize=True)
    assert len(opt) < len(unopt)
    consts = [i[1] for i in opt if i[0] == "const"]
    assert 10.0 in consts
    assert not any(i[0] == "binop" for i in opt[:3])


def test_unary_minus_folded():
    opt = instrs("double x;\nvoid main() { x = -(5.0); }", optimize=True)
    assert ("const", -5.0) in opt
    assert not any(i[0] == "unop" for i in opt)


def test_if_zero_branch_folded():
    src = """
double x;
void main() {
    if (0) x = 1.0;
    x = 2.0;
}
"""
    opt = instrs(src, optimize=True)
    unopt = instrs(src, optimize=False)
    assert len(opt) < len(unopt)
    # The dead store to 1.0 is jumped over; 2.0 still happens.
    r = FunctionalRunner(compile_source(src)).run()
    assert r.store.value("x") == 2.0


def test_if_one_condition_removed():
    src = """
double x;
void main() {
    if (1) x = 1.0;
}
"""
    opt = instrs(src, optimize=True)
    assert not any(i[0] == "jfalse" for i in opt)
    r = FunctionalRunner(compile_source(src)).run()
    assert r.store.value("x") == 1.0


def test_integer_division_by_zero_not_folded():
    # Folding 1/0 at compile time would hide the runtime trap.  The
    # divide may survive as a bare binop or inside a fused cb/ll2b/cjf
    # superinstruction -- either way it runs (and traps) at runtime.
    opt = instrs("int x;\nvoid main() { x = 1 / 0; }", optimize=True)
    assert any(i[0] in ("binop", "cb", "ll2b", "cjf") for i in opt)


def test_string_constants_never_folded():
    src = 'void main() { print("a", 1 + 2); }'
    opt = instrs(src, optimize=True)
    assert ("const", "a") in opt
    assert ("const", 3) in opt


def test_jump_targets_remapped():
    src = """
double x;
void main() {
    int i;
    for (i = 0; i < 3 + 2; i = i + 1) x = x + 1.0;
}
"""
    r = FunctionalRunner(compile_source(src)).run()
    assert r.store.value("x") == 5.0


def test_folding_respects_branch_targets():
    """A const that is itself a branch target must not be absorbed."""
    src = """
double x;
int i;
void main() {
    for (i = 0; i < 4; i = i + 1) {
        x = x + 1.0 * 1.0;
    }
}
"""
    r = FunctionalRunner(compile_source(src)).run()
    assert r.store.value("x") == 4.0


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_corpus_equivalence(name):
    """Optimized and unoptimized images of every mini-NPB kernel compute
    identical results (and the optimizer actually removes something)."""
    spec = REGISTRY[name]
    src = spec.source(**spec.sizes["test"])
    plain = compile_source(src, optimize=False)
    tuned = compile_source(src, optimize=True)
    # Never larger; kernels whose generated source pre-computes its
    # constants legitimately have nothing to fold.
    assert tuned.n_instructions <= plain.n_instructions
    r1 = FunctionalRunner(plain).run()
    r2 = FunctionalRunner(tuned).run()
    for g in plain.globals:
        a = np.asarray(r1.store.array(g.name), dtype=float)
        b = np.asarray(r2.store.array(g.name), dtype=float)
        assert np.array_equal(a, b), (name, g.name)


def test_optimize_is_idempotent():
    img = compile_source("double x;\nvoid main() { x = 1.0 + 2.0; }",
                         optimize=True)
    assert optimize_program(img) == 0        # nothing left to do


def test_optimizer_reports_removals():
    img = compile_source("double x;\nvoid main() { x = 1.0 + 2.0 + 3.0; }",
                         optimize=False)
    removed = optimize_program(img)
    assert removed >= 4
