"""ExecutionPipeline effectiveness accounting: summary()/events()/
rt_stats counters for dedup, resume, memo hit/miss -- exercised
directly instead of only through the transport suites."""

import pytest

from repro.config import PAPER_MACHINE
from repro.harness.checkpoint import CheckpointJournal, MemoStore
from repro.harness.jobs import RunSpec
from repro.harness.pipeline import ExecutionPipeline
from repro.harness.transport import SerialTransport

CFG = PAPER_MACHINE.with_(n_cmps=4)


def _spec(config="single"):
    return RunSpec.make("cg", config, size="test", cfg=CFG)


def test_dedup_counters_and_summary():
    pipe = ExecutionPipeline(transport=SerialTransport())
    runs = pipe.run([_spec(), _spec(), _spec("G0")])
    assert len(runs) == 3
    assert runs[0].cycles == runs[1].cycles     # fanned-out shared result
    c = pipe.counters
    assert c.get("unit.planned") == 3
    assert c.get("unit.deduped") == 1
    assert c.get("unit.executed") == 2
    s = pipe.summary()
    assert "3 unit(s)" in s and "1 deduped" in s and "2 executed" in s


def test_memo_hit_miss_counters(tmp_path):
    memo = MemoStore(tmp_path / "memo")
    first = ExecutionPipeline(memo=memo)
    first.run([_spec()])
    assert first.counters.get("memo.miss") == 1
    assert first.counters.get("memo.hit") == 0
    assert "memo 0 hit(s) / 1 miss(es)" in first.summary()

    second = ExecutionPipeline(memo=MemoStore(tmp_path / "memo"))
    second.run([_spec()])
    assert second.counters.get("memo.hit") == 1
    assert second.counters.get("unit.executed") == 0
    assert "memo 1 hit(s) / 0 miss(es)" in second.summary()


def test_resume_counters(tmp_path):
    journal = CheckpointJournal(tmp_path / "ckpt")
    ExecutionPipeline(journal=journal).run([_spec(), _spec("G0")])

    resumed = ExecutionPipeline(
        journal=CheckpointJournal(tmp_path / "ckpt"))
    resumed.run([_spec(), _spec("G0")])
    assert resumed.counters.get("unit.resumed") == 2
    assert resumed.counters.get("unit.executed") == 0
    assert "2 resumed from checkpoint" in resumed.summary()


def test_rt_stats_shape():
    pipe = ExecutionPipeline()
    assert pipe.rt_stats == {}                  # nothing run yet
    pipe.run([_spec()])
    stats = pipe.rt_stats
    assert set(stats) == {"pipeline"}           # no telemetry session
    assert stats["pipeline"]["unit.planned"] == 1
    assert stats["pipeline"]["unit.executed"] == 1


def test_events_and_degraded_mirror_transport():
    pipe = ExecutionPipeline(transport=SerialTransport())
    pipe.run([_spec()])
    assert pipe.events == []
    assert pipe.degraded is False
    pipe.transport.events.append("synthetic note")
    pipe.transport.degraded = True
    assert pipe.events == ["synthetic note"]
    assert pipe.degraded is True
