"""Unit tests for RTWord primitives, SpinLock, and SenseBarrier using a
minimal fake shell (fixed memory latencies, no coherence engine)."""

import pytest

from repro.runtime.words import (RTWord, SenseBarrier, SpinLock,
                                 spin_until, word_load, word_rmw,
                                 word_store)
from repro.sim import Engine


class FakeShell:
    """Just enough shell surface for the words module."""

    def __init__(self, engine, load_lat=10.0, store_lat=20.0):
        self.engine = engine
        self.load_lat = load_lat
        self.store_lat = store_lat
        self.barrier_sense = 0
        self.loads = 0
        self.stores = 0

    def timed_load(self, addr):
        self.loads += 1
        yield self.load_lat

    def timed_store(self, addr):
        self.stores += 1
        yield self.store_lat


def test_word_load_store_rmw():
    eng = Engine()
    sh = FakeShell(eng)
    w = RTWord(0x1000, 5, "w")

    def body():
        v = yield from word_load(sh, w)
        assert v == 5
        yield from word_store(sh, w, 9)
        old = yield from word_rmw(sh, w, lambda x: x + 1)
        assert old == 9
        return w.value

    assert eng.run_process(body()) == 10
    assert eng.now == 10 + 20 + 20
    assert (sh.loads, sh.stores) == (1, 2)


def test_spin_until_backoff_grows():
    eng = Engine()
    sh = FakeShell(eng, load_lat=1.0)
    w = RTWord(0x1000, 0, "flag")

    def setter():
        yield 500
        w.value = 1

    def spinner():
        v = yield from spin_until(sh, w, lambda v: v == 1)
        return v

    eng.process(setter())
    p = eng.process(spinner(), name="s")
    eng.run()
    assert p.result == 1
    # Backoff keeps probe counts low: ~500 cycles of waiting needs far
    # fewer probes than cycle-by-cycle polling would.
    assert sh.loads < 25


def test_spinlock_mutual_exclusion_and_stats():
    eng = Engine()
    lock = SpinLock(RTWord(0x2000, 0, "lk"))
    active = {"n": 0, "max": 0}

    def worker():
        sh = FakeShell(eng)
        yield from lock.acquire(sh)
        active["n"] += 1
        active["max"] = max(active["max"], active["n"])
        yield 30
        active["n"] -= 1
        yield from lock.release(sh)

    for _ in range(5):
        eng.process(worker())
    eng.run()
    assert active["max"] == 1
    assert lock.acquisitions == 5
    assert lock.contended >= 1
    assert not lock.held


def test_sense_barrier_releases_all_at_once():
    eng = Engine()
    bar = SenseBarrier(RTWord(0x3000, 0, "cnt"),
                       RTWord(0x3080, 0, "sense"), participants=4)
    releases = []
    shells = [FakeShell(eng) for _ in range(4)]

    def worker(i):
        yield i * 100          # staggered arrivals
        yield from bar.wait(shells[i])
        releases.append((i, eng.now))

    for i in range(4):
        eng.process(worker(i))
    eng.run()
    # Nobody is released before the last arrival (t=300).
    assert min(t for _, t in releases) >= 300
    assert len(releases) == 4
    assert bar.episodes == 1


def test_sense_barrier_reusable_across_episodes():
    eng = Engine()
    bar = SenseBarrier(RTWord(0x3000, 0, "cnt"),
                       RTWord(0x3080, 0, "sense"), participants=3)
    shells = [FakeShell(eng) for _ in range(3)]
    done = []

    def worker(i):
        for round_ in range(3):
            yield (i + 1) * 10
            yield from bar.wait(shells[i])
        done.append(i)

    for i in range(3):
        eng.process(worker(i))
    eng.run()
    assert sorted(done) == [0, 1, 2]
    assert bar.episodes == 3
    assert bar.count.value == 0
