"""Tests for MachineConfig / CacheConfig (paper Table 1)."""

import pytest

from repro.config import PAPER_MACHINE, CacheConfig, MachineConfig


def test_paper_machine_matches_table1():
    m = PAPER_MACHINE
    assert m.n_cmps == 16
    assert m.cpus_per_cmp == 2
    assert m.n_cpus == 32
    assert m.clock_ghz == 1.2
    assert m.l1.size_bytes == 16 * 1024 and m.l1.assoc == 2
    assert m.l1.hit_cycles == 1
    assert m.l2.size_bytes == 1024 * 1024 and m.l2.assoc == 4
    assert m.l2.hit_cycles == 10
    assert m.bus_time_ns == 30
    assert m.ni_local_dc_time_ns == 60
    assert m.pi_local_dc_time_ns == 10
    assert m.ni_remote_dc_time_ns == 10
    assert m.net_time_ns == 50
    assert m.mem_time_ns == 50


def test_derived_latencies_match_paper():
    # "The minimum latency to bring data into the L2 cache on a remote
    #  miss is 290 ns ... A local miss requires 170 ns."
    assert PAPER_MACHINE.local_miss_ns == 170
    assert PAPER_MACHINE.remote_miss_ns == 290


def test_ns_cycle_conversion_roundtrip():
    m = PAPER_MACHINE
    assert m.cycles(100) == pytest.approx(120)
    assert m.ns(m.cycles(170)) == pytest.approx(170)


def test_cache_geometry():
    c = CacheConfig(size_bytes=16 * 1024, assoc=2, line_bytes=128, hit_cycles=1)
    assert c.num_sets == 64
    assert c.num_lines == 128


def test_cache_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, assoc=2, line_bytes=128, hit_cycles=1)


def test_cache_nonpow2_sets_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=3 * 128 * 2, assoc=2, line_bytes=128,
                    hit_cycles=1)


def test_machine_line_size_must_match():
    with pytest.raises(ValueError):
        MachineConfig(
            l1=CacheConfig(16 * 1024, 2, 64, 1),
            l2=CacheConfig(1024 * 1024, 4, 128, 10))


def test_with_replaces_fields():
    small = PAPER_MACHINE.with_(n_cmps=4)
    assert small.n_cmps == 4
    assert small.l2 == PAPER_MACHINE.l2
    assert PAPER_MACHINE.n_cmps == 16  # original untouched


def test_describe_contains_table1_rows():
    d = PAPER_MACHINE.describe()
    assert d["BusTime (ns)"] == 30
    assert d["local miss (ns)"] == 170
    assert d["remote miss (ns)"] == 290


def test_unknown_placement_rejected():
    with pytest.raises(ValueError):
        MachineConfig(placement="random")
