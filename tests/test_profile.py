"""Tests for the cycle-exact source-line profiler.

Covers the whole chain: the compiler's per-instruction ``lines`` table
(including the peephole optimizer keeping it in sync and the compile
cache carrying it), the ``TrackProfile`` settle clock, sum-to-busy
exactness against the breakdowns, the collapsed-stack export format,
``TeeSink`` composition, and the ``repro profile run`` / ``repro bench
--profile`` CLI verbs.
"""

import io
import pickle

import pytest

from repro.cli import main as cli_main
from repro.compiler import compile_source
from repro.config import PAPER_MACHINE
from repro.harness import profile_table, run_benchmark
from repro.obs import (AggregateSink, MEM_LEVELS, NullSink, Probe,
                       ProfileSink, Sink, TeeSink, TrackProfile,
                       collapsed_stacks, line_totals, make_sink,
                       profile_total, write_collapsed)
from repro.runtime import run_program

CFG = PAPER_MACHINE.with_(n_cmps=4)

SOURCE = """
double a[256];
double total;
int i;
void main() {
    #pragma omp parallel for reduction(+: total)
    for (i = 0; i < 256; i = i + 1) {
        a[i] = i * 0.5;
        total = total + a[i];
    }
    print("total", total);
}
"""


# ------------------------------------------------------ the lines table

def test_every_function_has_a_parallel_lines_table():
    image = compile_source(SOURCE)
    for code in image.funcs:
        assert len(code.lines) == len(code.instrs), code.name
        # Lines are real source positions (the source starts at line 2).
        assert any(ln > 0 for ln in code.lines), code.name


def test_optimizer_keeps_lines_in_sync():
    """The peephole pass rewrites instrs; the lines table must follow.
    ``2.0 * 3.0`` folds to one const -- its line must survive."""
    src = """
double x;
void main() {
    x = 2.0 * 3.0;
    print("x", x);
}
"""
    image = compile_source(src)
    main_code = image.funcs[image.main_index]
    assert len(main_code.lines) == len(main_code.instrs)
    assert 4 in main_code.lines           # the folded assignment's line


def test_lines_table_survives_pickle():
    """Disk-cached images must carry the table (cache.py pickles the
    whole CompiledProgram)."""
    image = compile_source(SOURCE)
    clone = pickle.loads(pickle.dumps(image))
    for orig, copy in zip(image.funcs, clone.funcs):
        assert copy.lines == orig.lines


# --------------------------------------------------- TrackProfile clock

def test_track_profile_settles_spans_to_entry_position():
    tp = TrackProfile("t", start=0.0)
    tp.push("lock", 2.0)          # 0..2 busy at (no position)
    tp.pop(5.0)                   # 2..5 lock
    tp.close(9.0)                 # 5..9 busy
    assert tp.data[("", 0, "lock", "")] == 3.0
    assert tp.data[("", 0, "busy", "")] == 6.0
    assert profile_total({"t": tp.data}) == 9.0


def test_track_profile_memory_level_tagging():
    tp = TrackProfile("t", start=0.0)
    tp.push("memory", 1.0)
    tp.mem_level("remote3")
    tp.pop(4.0)
    tp.push("memory", 4.0)        # never tagged -> merged
    tp.pop(6.0)
    tp.close(6.0)
    assert tp.data[("", 0, "memory", "remote3")] == 3.0
    assert tp.data[("", 0, "memory", "merged")] == 2.0


def test_track_profile_drains_pending_with_cap_and_carry():
    tp = TrackProfile("t", start=0.0)
    tp.pending[("f", 3)] = 5.0    # VM tallied 5 busy cycles
    tp.fast(2.0, 4.0, "l2")       # fast access: 2 busy + 4 l2 stall
    # Only 6 cycles actually elapsed: stalls drain first, then busy,
    # remainder carries.
    tp.push("barrier", 6.0)
    assert tp.data[("", 0, "memory", "l2")] == 4.0
    assert sum(c for (_, _, cat, _), c in tp.data.items()
               if cat == "busy") == 2.0
    assert tp.pending            # 5 busy not yet elapsed
    tp.pop(6.0)
    tp.close(20.0)               # the rest elapses now
    assert profile_total({"t": tp.data}, "busy") == 16.0
    assert not tp.pending and not tp.pending_fast


def test_track_profile_time_backwards_raises():
    tp = TrackProfile("t", start=5.0)
    with pytest.raises(ValueError, match="backwards"):
        tp.push("lock", 4.0)


# ----------------------------------------------------- sinks / TeeSink

def test_make_sink_profile_is_tee_with_aggregate_primary():
    s = make_sink("profile")
    assert isinstance(s, TeeSink)
    assert isinstance(s.children[0], AggregateSink)
    assert isinstance(s.children[1], ProfileSink)
    p = s.probe("cpu0", start=0.0)
    assert p.bd is not None and p.prof is not None
    p.push("lock", 1.0)
    p.pop(3.0)
    p.close(4.0)
    assert s.breakdowns["cpu0"].as_dict() == {"busy": 2.0, "lock": 2.0}
    assert s.profile_data()["cpu0"][("", 0, "lock", "")] == 2.0


def test_tee_sink_requires_children_and_first_provider_wins():
    with pytest.raises(ValueError, match="at least one child"):
        TeeSink()
    tee = TeeSink(NullSink(), AggregateSink())
    p = tee.probe("t")
    assert p.bd is not None       # the aggregate's, despite null first
    assert tee.profile_data() is None


def test_profile_sink_alone_mints_profile_only_probes():
    s = ProfileSink()
    p = s.probe("cpu0", start=0.0)
    assert p.bd is None and p.prof is not None
    p.push("io", 1.0)
    p.pop(2.0)
    p.close(2.0)
    assert s.profile_data() == {"cpu0": {("", 0, "busy", ""): 1.0,
                                         ("", 0, "io", ""): 1.0}}


# ------------------------------------------- end-to-end cycle exactness

@pytest.fixture(scope="module")
def profiled():
    image = compile_source(SOURCE)
    return run_program(image, cfg=CFG, mode="slipstream", obs="profile")


def test_profile_sums_to_breakdowns_slipstream(profiled):
    """Acceptance: per-line totals sum to each track's total simulated
    cycles, category by category, for every stream of a slipstream
    run."""
    for track, bd in profiled.breakdowns.items():
        per_track = profiled.profile.get(track, {})
        by_cat = {}
        for (_f, _l, cat, _lv), c in per_track.items():
            by_cat[cat] = by_cat.get(cat, 0.0) + c
        assert by_cat == {k: v for k, v in bd.items() if v}, track


def test_profile_levels_are_known(profiled):
    for per_track in profiled.profile.values():
        for (_f, _l, cat, level) in per_track:
            if cat == "memory":
                assert level in MEM_LEVELS
            else:
                assert level == ""


def test_profile_lines_match_source(profiled):
    """Hot lines must be real source lines of the loop body (SOURCE
    lines 7-10), not instruction indices."""
    rows = line_totals(profiled.profile)
    hot = {line for (func, line), r in rows.items()
           if func.startswith("main.") and r["busy"] > 0}
    assert hot <= set(range(6, 12))
    assert {8, 9} <= hot          # the two assignment lines


def test_profile_does_not_perturb_cycles():
    image = compile_source(SOURCE)
    plain = run_program(image, cfg=CFG, mode="slipstream")
    prof = run_program(image, cfg=CFG, mode="slipstream", obs="profile")
    assert prof.cycles == plain.cycles
    assert prof.r_breakdown == plain.r_breakdown


# ------------------------------------------------- shaping and export

def test_line_totals_streams_split(profiled):
    rows = line_totals(profiled.profile)
    assert sum(r["streams"]["R"] for r in rows.values()) > 0
    assert sum(r["streams"]["A"] for r in rows.values()) > 0
    total = profile_total(profiled.profile)
    assert sum(r["total"] for r in rows.values()) == pytest.approx(total)


def test_collapsed_stack_format(profiled, tmp_path):
    stacks = collapsed_stacks(profiled.profile, label="slip")
    assert stacks == sorted(stacks)
    for line in stacks:
        frames, count = line.rsplit(" ", 1)
        assert int(count) > 0     # integer counts only
        label, func, leaf = frames.split(";")
        assert label == "slip"
        assert leaf.startswith("line ")
    # Round-trip through the file writer.
    path = tmp_path / "out.folded"
    write_collapsed(path, stacks)
    assert path.read_text().splitlines() == stacks
    write_collapsed(path, [])
    assert path.read_text() == ""


def test_profile_table_renders(profiled):
    text = profile_table(profiled.profile, top=5, title="hot")
    lines = text.splitlines()
    assert lines[0] == "hot"
    assert "function" in lines[1] and "cycles" in lines[1]
    assert len(lines) <= 3 + 5    # title + header + rule + top-5


# ---------------------------------------------------------------- CLI

@pytest.fixture
def demo(tmp_path):
    f = tmp_path / "demo.c"
    f.write_text(SOURCE)
    return str(f)


def run_cli(argv):
    out = io.StringIO()
    rc = cli_main(argv, out=out)
    return rc, out.getvalue()


def test_cli_profile_run(demo, tmp_path):
    folded = tmp_path / "out.folded"
    csv_path = tmp_path / "out.csv"
    rc, out = run_cli(["profile", "run", demo, "--mode", "slipstream",
                       "--cmps", "4", "--top", "5",
                       "--collapsed", str(folded), "--csv", str(csv_path)])
    assert rc == 0
    assert "hot lines" in out and "cycles on 4 CMPs" in out
    assert folded.exists() and csv_path.exists()
    stacks = folded.read_text().splitlines()
    assert stacks and all(len(s.split(";")) == 3 for s in stacks)
    assert csv_path.read_text().startswith("function,line,total,busy")


def test_cli_bench_profile(tmp_path):
    folded = tmp_path / "bench.folded"
    rc, out = run_cli(["bench", "cg", "--size", "test", "--cmps", "4",
                       "--profile", str(folded)])
    assert rc == 0
    assert "hot lines (all runs)" in out
    assert "collapsed stacks written" in out
    stacks = folded.read_text().splitlines()
    labels = {s.split(";")[0] for s in stacks}
    assert {"cg:single", "cg:double", "cg:G0", "cg:L1"} <= labels


def test_cli_bench_profile_and_trace_conflict(tmp_path):
    rc = cli_main(["bench", "cg", "--size", "test", "--cmps", "4",
                   "--profile", str(tmp_path / "p.txt"),
                   "--trace", str(tmp_path / "t.json")],
                  out=io.StringIO())
    assert rc == 2


def test_cli_trace_merged_under_pool_validates(demo, tmp_path):
    """Satellite: --trace together with --jobs 2 still produces one
    merged timeline that passes the validator."""
    from repro.obs.trace import main as trace_main
    trace = tmp_path / "merged.json"
    rc, out = run_cli(["bench", "cg", "--size", "test", "--cmps", "4",
                       "--jobs", "2", "--trace", str(trace)])
    assert rc == 0
    assert trace_main([str(trace)]) == 0
