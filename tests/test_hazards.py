"""Harness hazard injection and the crash-consistency hardening it
gates: seeded deterministic schedules, integrity framing, poison-unit
quarantine, graceful SIGTERM drain, heartbeat-aware lease reaping, and
the shared stalled-claim predicate (``repro status`` and the spool
reaper must agree on what "stalled" means)."""

import errno
import json
import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.config import PAPER_MACHINE
from repro.harness import hazards
from repro.harness.chaos import run_harness_chaos
from repro.harness.hazards import HazardConfig, HazardPlan, backoff_s
from repro.harness.integrity import (IntegrityError, atomic_pickle, frame,
                                     gc_tmp, load_verified, unframe)
from repro.harness.jobs import RunSpec, SweepPlan, unit_key
from repro.harness.pipeline import ExecutionPipeline
from repro.harness.transport import (DirQueueTransport, PoolTransport,
                                     _Spool)
from repro.obs.telemetry import (Telemetry, claim_is_stalled, collect_status,
                                 heartbeat_age, read_events, telemetry_area)

CFG = PAPER_MACHINE.with_(n_cmps=4)


def _specs(configs=("single", "G0")):
    return [RunSpec.make("cg", c, size="test", cfg=CFG) for c in configs]


@pytest.fixture(scope="module")
def golden():
    """Hazard-free serial cycles for the two-config sweep."""
    runs = ExecutionPipeline().run(_specs())
    return {r.config: r.cycles for r in runs}


@pytest.fixture(autouse=True)
def _always_disarmed():
    """No test may leak an armed plan (or env campaign) into the next."""
    yield
    hazards.disarm()
    hazards.clear_env()


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _wait_for(predicate, timeout_s=60.0, poll_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


# -- schedules: seeded, validated, opportunity-indexed -----------------------

def test_config_validation_and_canonicalization():
    with pytest.raises(ValueError):
        HazardConfig(0, classes=("nosuch",))
    with pytest.raises(ValueError):
        HazardConfig(0, rate=0)
    cfg = HazardConfig(0, classes=("lease", "corrupt", "corrupt"))
    assert cfg.classes == ("corrupt", "lease")
    # kinds come out in fixed schedule-draw order, classes only gate
    assert cfg.kinds == ("pickle_corrupt", "pickle_truncate",
                         "stale_claim", "clock_skew")


def test_schedule_is_a_pure_function_of_the_seed():
    a = HazardPlan(HazardConfig(7))
    b = HazardPlan(HazardConfig(7))
    assert a.schedule == b.schedule
    assert set(a.schedule) == set(HazardConfig(7).kinds)
    others = [HazardPlan(HazardConfig(s)).schedule for s in range(1, 6)]
    assert any(o != a.schedule for o in others)


def test_fire_by_opportunity_index():
    plan = HazardPlan(HazardConfig(3, classes=("disk",), rate=1))
    (idx,) = plan.schedule["publish_enospc"]
    hits = [i for i in range(40) if plan.fire("publish_enospc")]
    assert hits == [idx]
    # unknown/unarmed kinds never fire
    assert plan.fire("kill_worker") is None


def test_backoff_is_deterministic_capped_and_jittered():
    assert backoff_s("u", 0) == 0.0
    assert backoff_s("u", 3) == backoff_s("u", 3)
    assert backoff_s("u", 3) != backoff_s("v", 3)       # decorrelated
    for attempt in range(1, 12):
        d = backoff_s("u", attempt, base=0.05, cap=2.0)
        assert 0.0 < d <= 2.0 * 1.5


def test_disarmed_sites_are_noops(tmp_path):
    hazards.disarm()
    assert hazards.current() is None
    spool = _Spool(tmp_path / "spool")
    spool.ensure()
    spool.publish("k", {"x": 1})
    assert spool.load_result("k") == {"x": 1}
    assert spool.try_claim("k")
    age = spool.claim_age("k")
    assert age is not None and age < 5.0                # no skew applied


# -- integrity framing -------------------------------------------------------

def test_frame_roundtrip_and_tamper_detection():
    payload = pickle.dumps({"cycles": 123})
    data = frame(payload)
    assert unframe(data) == payload
    flipped = bytearray(data)
    flipped[len(flipped) // 2] ^= 0x40
    with pytest.raises(IntegrityError):
        unframe(bytes(flipped))
    with pytest.raises(IntegrityError):
        unframe(data[: len(data) // 2])                 # truncated
    with pytest.raises(IntegrityError):
        unframe(b"XXXX" + data[4:])                     # wrong magic


def test_load_verified_quarantines_and_logs(tmp_path):
    path = tmp_path / "entry.run"
    atomic_pickle({"ok": True}, path)
    raw = bytearray(path.read_bytes())
    raw[-3] ^= 0xFF                                     # rot the digest
    path.write_bytes(bytes(raw))
    tel = Telemetry(root=tmp_path / "telemetry", role="driver")
    got = load_verified(path, quarantine_to=tmp_path / "corrupt",
                        telemetry=tel, what="result", unit="u1")
    tel.close()
    assert got is None                                  # a miss, not a crash
    assert not path.exists()                            # moved aside
    assert len(list((tmp_path / "corrupt").iterdir())) == 1
    events = read_events(tmp_path / "telemetry")
    assert any(e["event"] == "integrity.corrupt" and e.get("unit") == "u1"
               for e in events)


def test_load_verified_accepts_legacy_unframed_pickle(tmp_path):
    path = tmp_path / "old.run"
    path.write_bytes(pickle.dumps({"legacy": 1}))
    assert load_verified(path) == {"legacy": 1}


# -- publish hazards (corrupt / disk-full) -----------------------------------

def test_publish_hazards_enospc_then_corrupt(tmp_path):
    spool = _Spool(tmp_path / "spool")
    spool.ensure()
    plan = hazards.arm(HazardConfig(0, classes=("corrupt", "disk")))
    # pin the schedule: first publish hits ENOSPC, second is corrupted
    plan.schedule = {"publish_enospc": {0: True}, "publish_eio": {},
                     "pickle_corrupt": {0: (0.5, 0xFF)},
                     "pickle_truncate": {}}
    plan._seen = {k: 0 for k in plan.schedule}
    with pytest.raises(OSError) as e:
        spool.publish("k", {"x": 1})
    assert e.value.errno == errno.ENOSPC
    spool.publish("k", {"x": 1})                        # lands corrupted
    hazards.disarm()
    assert spool.load_result("k") is None               # quarantined miss
    assert list(spool.corrupt.iterdir())
    assert plan.summary() == {"publish_enospc": 1, "pickle_corrupt": 1}


def test_lease_hazards_stale_claim_and_clock_skew(tmp_path):
    spool = _Spool(tmp_path / "spool")
    spool.ensure()
    plan = hazards.arm(HazardConfig(0, classes=("lease",)))
    plan.schedule = {"stale_claim": {0: 500.0}, "clock_skew": {}}
    plan._seen = {k: 0 for k in plan.schedule}
    plan.maybe_stale_claim(spool, "k")
    assert spool.claim_owner("k") == "hazard-phantom"
    assert spool.claim_age("k") > 400.0                 # back-dated
    assert spool.reap_stale(["k"], lease_s=30.0) == ["k"]
    # clock skew inflates exactly one age reading
    plan.schedule = {"stale_claim": {}, "clock_skew": {0: 100.0}}
    plan._seen = {k: 0 for k in plan.schedule}
    assert spool.try_claim("k2")
    assert spool.claim_age("k2") >= 100.0
    assert spool.claim_age("k2") < 50.0                 # only the one reading
    assert [r["kind"] for r in plan.injected] == ["stale_claim",
                                                  "clock_skew"]


# -- tmp litter: ignored by readers, GC'd ------------------------------------

def test_gc_tmp_collects_only_stale_litter(tmp_path):
    old = tmp_path / "dead-writer.tmp"
    old.write_bytes(b"partial")
    then = time.time() - 3600
    os.utime(old, times=(then, then))
    fresh = tmp_path / "live-writer.tmp"
    fresh.write_bytes(b"in flight")
    keeper = tmp_path / "entry.run"
    keeper.write_bytes(b"payload")
    removed = gc_tmp(tmp_path, older_than_s=60.0)
    assert removed == [old]
    assert fresh.exists() and keeper.exists()


def test_sigkill_between_tmp_write_and_rename(golden, tmp_path):
    """A worker SIGKILLed inside the publish window (after the temp
    write, before the rename) leaves only ``*.tmp`` litter: readers
    never see a partial result, the driver reaps the dead lease and
    finishes bit-identical, and GC collects the litter."""
    root = tmp_path / "spool"
    specs = _specs(("single",))
    plan = SweepPlan(specs)
    spool = _Spool(root)
    spool.ensure()
    for u in plan.distinct():
        spool.enqueue(u.key, u.spec)
    script = (
        "import os, signal, sys\n"
        "_real = os.replace\n"
        "def boom(src, dst, *a, **kw):\n"
        "    if str(dst).endswith('.run'):\n"
        "        os.kill(os.getpid(), signal.SIGKILL)\n"
        "    return _real(src, dst, *a, **kw)\n"
        "os.replace = boom\n"
        "import repro.harness.transport as ht\n"
        "ht.run_worker(sys.argv[1], drain=False, poll_s=0.05)\n")
    proc = subprocess.Popen([sys.executable, "-c", script, str(root)],
                            env=_env(), stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        assert _wait_for(lambda: proc.poll() is not None, timeout_s=120.0), \
            "worker never hit the publish window"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    (key,) = plan.keys
    litter = list(spool.results.glob("*.tmp"))
    assert litter, "kill inside the window must strand a temp file"
    assert not spool.has_result(key)                    # readers see a miss
    assert spool.claim_age(key) is not None             # lease left behind

    pipe = ExecutionPipeline(
        transport=DirQueueTransport(root, lease_s=0.3, poll_s=0.02))
    runs = pipe.run(specs)
    assert {r.config: r.cycles for r in runs} == {"single": golden["single"]}
    assert spool.has_result(key)
    # the transport's in-run GC (or this explicit sweep) clears the
    # litter; results are never eligible
    spool.gc_tmp(older_than_s=0.0)
    assert not list(spool.results.glob("*.tmp"))
    assert spool.has_result(key)                        # GC never eats results


# -- poison-unit quarantine --------------------------------------------------

def test_spool_quarantines_poison_unit(golden, tmp_path):
    """A unit whose attempts ledger shows ``quarantine_after`` dead
    executions settles as a loud placeholder instead of crash-looping
    the fleet; the rest of the sweep is unaffected."""
    root = tmp_path / "spool"
    specs = _specs()
    plan = SweepPlan(specs)
    poison = next(u for u in plan.distinct() if u.spec.config == "G0")
    spool = _Spool(root)
    spool.ensure()
    for _ in range(3):
        spool.record_attempt(poison.key)
    tel = Telemetry(root=telemetry_area(root), role="driver")
    pipe = ExecutionPipeline(
        transport=DirQueueTransport(root, lease_s=5.0, poll_s=0.02,
                                    quarantine_after=3),
        telemetry=tel)
    runs = {r.config: r for r in pipe.run(specs)}
    tel.close()
    assert runs["single"].cycles == golden["single"]
    assert runs["G0"].error_kind == "quarantined"
    assert pipe.quarantined and pipe.quarantined_units == [poison.key]
    assert "1 QUARANTINED (poison)" in pipe.summary()
    events = read_events(telemetry_area(root))
    assert any(e["event"] == "unit.quarantined" and e["unit"] == poison.key
               for e in events)


def test_pool_quarantines_poison_unit(golden, tmp_path, monkeypatch):
    """A unit that SIGKILLs its pool child on every attempt crosses the
    poison threshold and is quarantined; the healthy unit's result is
    untouched."""
    import repro.harness.transport as ht
    real = ht._run_spec

    def killer(spec):
        if spec.config == "G0":
            # let co-scheduled healthy units finish before the pool
            # breaks, so only the poison unit accumulates suspicion
            time.sleep(1.0)
            os.kill(os.getpid(), signal.SIGKILL)
        return real(spec)

    monkeypatch.setattr(ht, "_run_spec", killer)
    specs = _specs()
    pipe = ExecutionPipeline(transport=PoolTransport(
        jobs=2, start_method="fork", max_pool_attempts=5,
        poison_threshold=3, backoff_base=0.01))
    runs = {r.config: r for r in pipe.run(specs)}
    assert runs["single"].cycles == golden["single"]
    assert runs["G0"].error_kind == "quarantined"
    poison = next(u for u in SweepPlan(specs).distinct()
                  if u.spec.config == "G0")
    assert pipe.quarantined_units == [poison.key]


# -- graceful SIGTERM drain --------------------------------------------------

def test_worker_sigterm_drains_in_flight_unit(tmp_path):
    """SIGTERM mid-unit: the worker finishes the unit, publishes,
    releases its claim, and exits 0 -- nothing for lease reaping to
    recover."""
    root = tmp_path / "spool"
    specs = _specs(("single",))
    plan = SweepPlan(specs)
    spool = _Spool(root)
    spool.ensure()
    for u in plan.distinct():
        spool.enqueue(u.key, u.spec)
    # stretch the unit so SIGTERM reliably lands mid-execution
    script = ("import sys, time\n"
              "import repro.harness.transport as ht\n"
              "_real = ht._run_spec\n"
              "def slow(spec):\n"
              "    time.sleep(1.5)\n"
              "    return _real(spec)\n"
              "ht._run_spec = slow\n"
              "ht.run_worker(sys.argv[1], drain=False, poll_s=0.05)\n")
    proc = subprocess.Popen([sys.executable, "-c", script, str(root)],
                            env=_env(), stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        assert _wait_for(lambda: any(spool.claims.glob("*.claim")),
                         timeout_s=120.0), "worker never claimed"
        proc.terminate()                                # SIGTERM
        assert proc.wait(timeout=120) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    (key,) = plan.keys
    assert spool.has_result(key)                        # drained, not dropped
    assert not list(spool.claims.glob("*.claim"))       # claim released
    events = read_events(telemetry_area(root))
    stops = [e for e in events if e["event"] == "worker.stopped"]
    assert stops and stops[-1].get("reason") == "sigterm"


# -- the one shared "stalled" definition -------------------------------------

def test_claim_is_stalled_truth_table():
    # fresh claim: never stalled, whatever the heartbeat says
    assert not claim_is_stalled(1.0, None, 30.0)
    assert not claim_is_stalled(None, None, 30.0)
    # old claim + fresh heartbeat: live straggler, keeps its lease
    assert not claim_is_stalled(100.0, 2.0, 30.0)
    # old claim + stale or missing heartbeat: reapable
    assert claim_is_stalled(100.0, 100.0, 30.0)
    assert claim_is_stalled(100.0, None, 30.0)


def test_status_and_reaper_agree_on_stalled(tmp_path):
    """Satellite pin: ``repro status`` straggler detection and
    ``_Spool.reap_stale`` apply the same heartbeat-aware predicate --
    a claim is flagged as a straggler iff the reaper would steal it."""
    root = tmp_path / "spool"
    spool = _Spool(root)
    spool.ensure()
    spool.enqueue("unit-a", {"spec": "placeholder"})
    assert spool.try_claim("unit-a", worker="w1")
    hb_dir = telemetry_area(root) / "heartbeats"
    hb_dir.mkdir(parents=True, exist_ok=True)
    hb = hb_dir / "w1.json"
    hb.write_text(json.dumps({"worker": "w1", "role": "worker",
                              "state": "running"}))
    then = time.time() - 100.0

    def snapshot():
        st = collect_status(root, stall_s=30.0)
        flagged = [s["unit"] for s in st.stragglers]
        reapable = spool.reap_stale(["unit-a"], lease_s=30.0,
                                    heartbeats=hb_dir)
        for k in reapable:                  # undo: reap_stale releases
            assert spool.try_claim(k, worker="w1")
            os.utime(spool.claim_path(k), times=(then, then))
        return flagged, reapable

    # fresh claim, fresh heartbeat -> neither flags it
    assert snapshot() == ([], [])
    # old claim, fresh heartbeat -> live straggler: both leave it alone
    os.utime(spool.claim_path("unit-a"), times=(then, then))
    assert snapshot() == ([], [])
    # old claim, old heartbeat -> both call it stalled
    os.utime(hb, times=(then, then))
    assert snapshot() == (["unit-a"], ["unit-a"])
    # old claim, no heartbeat at all -> presumed dead, both agree
    hb.unlink()
    assert heartbeat_age(hb_dir, "w1") is None
    assert snapshot() == (["unit-a"], ["unit-a"])


# -- the harness chaos matrix (smoke; CI runs the full default one) ----------

def test_harness_chaos_smoke_spool(tmp_path):
    """One armed spool scenario end to end: corrupt + lease hazards,
    driver-only (no external worker), cold leg + disarmed resume leg
    both bit-identical to the hazard-free baseline, telemetry valid."""
    report = run_harness_chaos(tmp_path / "wd", transports=("spool",),
                               classes=(("corrupt", "lease"),),
                               spawn_worker=False)
    (outcome,) = report.outcomes
    assert outcome.ok, (outcome.error, outcome.telemetry_problems)
    assert report.ok and len(report.baseline) == 2
    assert hazards.current() is None                    # matrix disarms
