"""Property test for the bucket scheduler (hot-path tier ``engine``).

The bucket queue must replay the heapq reference discipline *exactly*:
time order first, scheduling (seq) order within a timestamp -- under
mixed int/float delays, same-time collisions, zero-delay cascades,
timer events, kills, and interrupts.  Both engines run the identical
randomized scenario and their full resumption traces are compared.
"""

import random

import pytest

from repro.sim import Engine, Interrupt

# Delay palette: ints and floats that collide (1 vs 1.0), sub-cycle
# fractions, and zero-delay cascades.
DELAYS = [0, 0, 1, 1.0, 2, 3, 0.25, 0.5, 1.5, 2.5, 7, 0.125]


def _scenario(seed, n_workers=10, n_steps=25):
    """Precompute a deterministic schedule so both engines replay the
    same program (no draws happen during the simulation)."""
    rng = random.Random(seed)
    delays = [[rng.choice(DELAYS) for _ in range(n_steps)]
              for _ in range(n_workers)]
    chaos = sorted(
        (rng.randint(1, n_steps), rng.randrange(n_workers),
         rng.choice(["kill", "interrupt"]))
        for _ in range(n_workers // 2))
    return delays, chaos


def _run(use_buckets, seed):
    eng = Engine(use_buckets=use_buckets)
    assert eng.use_buckets is use_buckets
    trace = []
    eng.trace_hook = lambda t, proc: trace.append((t, proc.name))
    delays, chaos = _scenario(seed)
    procs = {}

    def worker(tag, ds):
        for i, d in enumerate(ds):
            try:
                if i % 7 == 3:
                    # Exercise the direct-fire timer path too.
                    yield eng.timeout_event(d, value=i)
                else:
                    yield d
                trace.append(("ran", tag, i, eng.now))
            except Interrupt as exc:
                trace.append(("intr", tag, i, eng.now, exc.cause))

    def agitator():
        prev = 0
        for when, victim, action in chaos:
            if when > prev:
                yield when - prev
                prev = when
            p = procs[victim]
            if not p.alive:
                continue
            if action == "kill":
                p.kill()
            else:
                p.interrupt(("chaos", victim))
            trace.append((action, victim, eng.now))

    for w, ds in enumerate(delays):
        procs[w] = eng.process(worker(w, ds), name=f"w{w}")
    eng.process(agitator(), name="agitator")
    eng.run()
    trace.append(("end", eng.now))
    return trace


@pytest.mark.parametrize("seed", range(8))
def test_bucket_order_matches_heap_reference(seed):
    assert _run(True, seed) == _run(False, seed)


def test_same_time_collision_int_vs_float_keys():
    """1 and 1.0 must land in the same bucket (dict keys compare equal),
    preserving FIFO across the int/float boundary."""
    order_by_mode = {}
    for use_buckets in (True, False):
        eng = Engine(use_buckets=use_buckets)
        order = []

        def w(tag, d):
            yield d
            order.append(tag)

        for tag, d in [("a", 1), ("b", 1.0), ("c", 1), ("d", 0.5)]:
            eng.process(w(tag, d), name=tag)
        eng.run()
        order_by_mode[use_buckets] = order
    assert order_by_mode[True] == order_by_mode[False] == ["d", "a", "b", "c"]


def test_schedule_into_draining_bucket_preserves_seq_order():
    """A process that schedules a same-time resumption while its bucket
    drains must run after everything already queued at that time."""
    for use_buckets in (True, False):
        eng = Engine(use_buckets=use_buckets)
        order = []

        def spawner():
            yield 2
            order.append("spawner")
            yield 0          # re-enters t=2 while its bucket is draining
            order.append("spawner-again")

        def other():
            yield 2
            order.append("other")

        eng.process(spawner(), name="s")
        eng.process(other(), name="o")
        eng.run()
        assert order == ["spawner", "other", "spawner-again"], use_buckets


def test_run_until_mid_bucket_resumes_cleanly():
    """Stopping with ``until=`` between two same-time entries must not
    lose the rest of the bucket on the next run() call."""
    for use_buckets in (True, False):
        eng = Engine(use_buckets=use_buckets)
        order = []

        def w(tag):
            yield 5
            order.append((tag, eng.now))

        for tag in "abc":
            eng.process(w(tag), name=tag)
        # 3 steps start the processes at t=0; two more run a and b at t=5.
        eng.run(until=5, max_steps=5)
        assert order == [("a", 5.0), ("b", 5.0)], use_buckets
        eng.run()
        assert order == [("a", 5.0), ("b", 5.0), ("c", 5.0)], use_buckets
