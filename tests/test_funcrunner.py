"""Tests for the functional reference executor."""

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.interp import FunctionalRunner, GlobalStore


def run(src, inputs=None):
    return FunctionalRunner(compile_source(src), inputs=inputs).run()


def test_global_store_scalars_and_arrays():
    img = compile_source("""
int n = 3;
double m[2][2];
void main() { m[1][1] = 7.0; }
""")
    store = GlobalStore(img)
    assert store.value("n") == 3
    arr = store.array("m")
    assert arr.shape == (2, 2)
    store.write(img.global_named("m").index, 3, 9.0)
    assert store.array("m")[1, 1] == 9.0


def test_int_arrays_are_integer_typed():
    r = run("""
int idx[4];
void main() {
    int i;
    for (i = 0; i < 4; i = i + 1) idx[i] = i * 2;
}
""")
    arr = r.store.array("idx")
    assert arr.dtype == np.int64
    assert list(arr) == [0, 2, 4, 6]


def test_output_ordering_preserved():
    r = run("""
void main() {
    int i;
    for (i = 0; i < 3; i = i + 1) print("line", i);
}
""")
    assert r.output == [("line", 0), ("line", 1), ("line", 2)]


def test_inputs_consumed_in_order():
    r = run("""
double a, b;
void main() {
    a = read_input();
    b = read_input();
}
""", inputs=[1.5, 2.5])
    assert (r.store.value("a"), r.store.value("b")) == (1.5, 2.5)


def test_input_underflow_raises():
    with pytest.raises(RuntimeError):
        run("double a;\nvoid main() { a = read_input(); }", inputs=[])


def test_worksharing_single_thread_covers_all():
    r = run("""
double a[40];
int i;
void main() {
    #pragma omp parallel for schedule(dynamic, 7)
    for (i = 0; i < 40; i = i + 1) a[i] = 1.0;
}
""")
    assert float(np.sum(r.store.array("a"))) == 40.0


def test_sections_all_run_once():
    r = run("""
double a[3];
void main() {
    #pragma omp parallel sections
    {
        #pragma omp section
        { a[0] = a[0] + 1.0; }
        #pragma omp section
        { a[1] = a[1] + 1.0; }
        #pragma omp section
        { a[2] = a[2] + 1.0; }
    }
}
""")
    assert list(r.store.array("a")) == [1.0, 1.0, 1.0]


def test_max_events_guard():
    img = compile_source("""
double x;
void main() {
    while (1 > 0) { x = x + 1.0; }
}
""")
    with pytest.raises(RuntimeError):
        FunctionalRunner(img).run(max_events=1000)


def test_wtime_monotonic():
    r = run("""
double t1, t2;
void main() {
    int i; double s;
    t1 = omp_get_wtime();
    for (i = 0; i < 100; i = i + 1) s = s + i;
    t2 = omp_get_wtime();
}
""")
    assert r.store.value("t2") >= r.store.value("t1")
