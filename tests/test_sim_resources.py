"""Unit tests for Server / Semaphore / Mutex contention primitives."""

import pytest

from repro.sim import Engine, Mutex, Semaphore, Server, SimulationError


def test_server_serializes_requests():
    eng = Engine()
    srv = Server(eng, "bus")
    finish = []

    def client(tag):
        yield from srv.serve(10)
        finish.append((tag, eng.now))

    for t in "abc":
        eng.process(client(t))
    eng.run()
    assert finish == [("a", 10.0), ("b", 20.0), ("c", 30.0)]
    assert srv.total_requests == 3
    assert srv.total_service == 30.0
    assert srv.total_queue_wait == 30.0  # b waited 10, c waited 20


def test_server_multiple_units_run_in_parallel():
    eng = Engine()
    srv = Server(eng, "mc", units=2)
    finish = []

    def client(tag):
        yield from srv.serve(10)
        finish.append((tag, eng.now))

    for t in "abc":
        eng.process(client(t))
    eng.run()
    assert finish == [("a", 10.0), ("b", 10.0), ("c", 20.0)]


def test_server_handoff_preserves_fifo():
    eng = Engine()
    srv = Server(eng, "ni")
    order = []

    def client(tag, arrive):
        yield arrive
        yield from srv.serve(5)
        order.append(tag)

    eng.process(client("x", 0))
    eng.process(client("y", 1))
    eng.process(client("z", 2))
    eng.run()
    assert order == ["x", "y", "z"]


def test_server_zero_units_rejected():
    with pytest.raises(SimulationError):
        Server(Engine(), "bad", units=0)


def test_server_utilization():
    eng = Engine()
    srv = Server(eng, "u")

    def client():
        yield from srv.serve(4)
        yield 6  # idle tail

    eng.run_process(client())
    assert srv.utilization() == pytest.approx(0.4)


def test_semaphore_blocks_until_release():
    eng = Engine()
    sem = Semaphore(eng, "tok", initial=0)
    log = []

    def consumer():
        yield from sem.acquire()
        log.append(("got", eng.now))

    def producer():
        yield 8
        sem.release()

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert log == [("got", 8.0)]
    assert sem.count == 0
    assert sem.total_wait_time == 8.0


def test_semaphore_initial_tokens_pass_through():
    eng = Engine()
    sem = Semaphore(eng, "tok", initial=2)

    def consumer():
        yield from sem.acquire()
        yield from sem.acquire()

    eng.run_process(consumer())
    assert eng.now == 0.0
    assert sem.count == 0


def test_semaphore_fifo_wakeup():
    eng = Engine()
    sem = Semaphore(eng, "s", initial=0)
    order = []

    def waiter(tag, arrive):
        yield arrive
        yield from sem.acquire()
        order.append(tag)

    def releaser():
        yield 10
        sem.release(3)

    for i, t in enumerate("abc"):
        eng.process(waiter(t, i))
    eng.process(releaser())
    eng.run()
    assert order == ["a", "b", "c"]


def test_semaphore_try_acquire():
    eng = Engine()
    sem = Semaphore(eng, "s", initial=1)
    assert sem.try_acquire() is True
    assert sem.try_acquire() is False


def test_semaphore_op_latency_charged():
    eng = Engine()
    sem = Semaphore(eng, "s", initial=1, op_latency=3.0)

    def c():
        yield from sem.acquire()

    eng.run_process(c())
    assert eng.now == 3.0


def test_semaphore_negative_initial_rejected():
    with pytest.raises(SimulationError):
        Semaphore(Engine(), "s", initial=-1)


def test_mutex_mutual_exclusion():
    eng = Engine()
    m = Mutex(eng, "m")
    active = {"n": 0, "max": 0}

    def critical(tag):
        yield from m.acquire()
        active["n"] += 1
        active["max"] = max(active["max"], active["n"])
        yield 5
        active["n"] -= 1
        m.release()

    for t in range(4):
        eng.process(critical(t))
    eng.run()
    assert active["max"] == 1
    assert eng.now == 20.0


def test_mutex_double_release_rejected():
    eng = Engine()
    m = Mutex(eng, "m")
    with pytest.raises(SimulationError):
        m.release()
