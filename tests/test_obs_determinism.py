"""The tentpole invariants of the observability layer.

Simulated cycle counts (the golden table of ``test_determinism.py``)
must be bit-identical whether observability is off (NullSink), totals
only (AggregateSink, the default), fully traced (TraceSink), or
line-profiled (ProfileSink behind a TeeSink) -- probes record, they
never touch the engine.  And specs carrying a sink selection must
survive the process-pool path with results identical to serial
execution.
"""

import pickle

import pytest

from repro.config import PAPER_MACHINE
from repro.harness import (ProcessPoolContext, RunSpec, SerialContext,
                           run_benchmark, run_static_suite)
from repro.obs import merge_traces, validate_trace

CFG = PAPER_MACHINE.with_(n_cmps=4)

#: cg/G0 at test size on 4 CMPs -- captured from the pre-refactor
#: collectors; the AggregateSink must reproduce them exactly.
GOLDEN_CYCLES = 73175.0
GOLDEN_R_BREAKDOWN = {"barrier": 122710.0, "busy": 66115.0, "io": 200.0,
                      "jobwait": 10654.0, "lock": 49602.0,
                      "memory": 43419.0}
GOLDEN_CLASSES = {"A-rdex-late": 10, "A-rdex-only": 1, "A-rdex-timely": 62,
                  "A-read-late": 10, "A-read-timely": 2, "R-rdex-late": 3,
                  "R-rdex-only": 23, "R-rdex-timely": 10, "R-read-late": 36,
                  "R-read-only": 15}


@pytest.fixture(scope="module")
def runs():
    return {obs: run_benchmark("cg", "G0", cfg=CFG, size="test", obs=obs)
            for obs in ("aggregate", "null", "trace", "profile")}


def test_cycles_identical_across_sinks(runs):
    for obs, run in runs.items():
        assert run.cycles == GOLDEN_CYCLES, obs


def test_aggregate_sink_reproduces_golden_figures(runs):
    assert runs["aggregate"].result.r_breakdown == GOLDEN_R_BREAKDOWN
    assert runs["aggregate"].result.classes.as_dict() == GOLDEN_CLASSES


def test_trace_sink_loses_no_aggregate_data(runs):
    agg, tr = runs["aggregate"].result, runs["trace"].result
    assert tr.r_breakdown == GOLDEN_R_BREAKDOWN
    assert tr.breakdowns == agg.breakdowns
    assert tr.classes.as_dict() == GOLDEN_CLASSES
    assert tr.rt_stats == agg.rt_stats


def test_null_sink_drops_everything(runs):
    r = runs["null"].result
    assert r.cycles == GOLDEN_CYCLES
    assert r.r_breakdown == {}
    assert r.classes.as_dict() == {}
    assert r.rt_stats == {}
    assert r.trace is None


def test_trace_is_valid_and_only_on_trace_sink(runs):
    assert runs["aggregate"].result.trace is None
    tr = runs["trace"].result.trace
    assert tr and validate_trace(tr) == []
    # One thread-name row per track, including all simulated processors.
    names = {e["args"]["name"] for e in tr
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"R0@n0c0", "A0@n0c1", "engine", "mem", "team"} <= names
    kinds = {e["name"] for e in tr if e["ph"] == "i"}
    assert any(k.startswith("coh.") for k in kinds)
    assert any(k.startswith("token.") for k in kinds)
    assert any(k.startswith("classify.") for k in kinds)


def test_profile_sink_loses_no_aggregate_data(runs):
    agg, pr = runs["aggregate"].result, runs["profile"].result
    assert pr.r_breakdown == GOLDEN_R_BREAKDOWN
    assert pr.breakdowns == agg.breakdowns
    assert pr.classes.as_dict() == GOLDEN_CLASSES
    assert pr.rt_stats == agg.rt_stats
    assert pr.profile            # and it actually profiled


def test_profile_totals_match_breakdowns(runs):
    """Cycle-exactness: per shell track, the profile's per-category
    totals equal the breakdown's -- every simulated cycle of every
    stream is attributed to some source line, none twice."""
    r = runs["profile"].result
    assert r.profile is not None
    for track, bd in r.breakdowns.items():
        per_track = r.profile.get(track, {})
        by_cat = {}
        for (_f, _l, cat, _lv), c in per_track.items():
            by_cat[cat] = by_cat.get(cat, 0.0) + c
        assert by_cat == {k: v for k, v in bd.items() if v}, track


def test_pool_merge_matches_serial_with_profiling():
    kw = dict(cfg=CFG, size="test", benchmarks=("cg",),
              configs=("single", "G0"), obs="profile")
    serial = run_static_suite(context=SerialContext(), **kw)
    pooled = run_static_suite(context=ProcessPoolContext(jobs=2), **kw)
    for cfg_name in ("single", "G0"):
        s, p = serial["cg"][cfg_name], pooled["cg"][cfg_name]
        assert s.cycles == p.cycles
        assert s.result.profile == p.result.profile
        assert s.result.profile


def test_runspec_with_sink_selection_pickles():
    spec = RunSpec.make("cg", "G0", cfg=CFG, size="test", obs="trace")
    clone = pickle.loads(pickle.dumps(spec))
    assert dict(clone.machine_kw)["obs"] == "trace"


def test_pool_merge_matches_serial_with_tracing():
    kw = dict(cfg=CFG, size="test", benchmarks=("cg",),
              configs=("single", "G0"), obs="trace")
    serial = run_static_suite(context=SerialContext(), **kw)
    pooled = run_static_suite(context=ProcessPoolContext(jobs=2), **kw)

    def merged(suite):
        return merge_traces(
            (f"{b}:{c}", run.result.trace)
            for b, runs_ in suite.items() for c, run in runs_.items())

    for cfg_name in ("single", "G0"):
        assert (serial["cg"][cfg_name].cycles
                == pooled["cg"][cfg_name].cycles)
        assert (serial["cg"][cfg_name].result.r_breakdown
                == pooled["cg"][cfg_name].result.r_breakdown)
    a, b = merged(serial), merged(pooled)
    assert a == b
    assert validate_trace(a) == []
