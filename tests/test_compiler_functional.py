"""End-to-end compiler + VM tests via the functional reference runner.

These exercise the whole front end, lowering, and bytecode VM without
the timing machine: compile SlipC source, run it single-threaded, check
the computed values and output.
"""

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.interp import FunctionalRunner
from repro.lang.errors import SemanticError


def run(src, inputs=None):
    return FunctionalRunner(compile_source(src), inputs=inputs).run()


def test_arithmetic_and_globals():
    r = run("""
double x;
int n;
void main() {
    n = 7;
    x = (1.5 + 2.5) * n - 3.0 / 2.0;
}
""")
    assert r.store.value("n") == 7
    assert r.store.value("x") == pytest.approx(4.0 * 7 - 1.5)


def test_integer_division_truncates_like_c():
    r = run("""
int a, b, c, d;
void main() {
    a = 7 / 2;
    b = -7 / 2;
    c = 7 % 3;
    d = -7 % 3;
}
""")
    assert r.store.value("a") == 3
    assert r.store.value("b") == -3     # C truncation, not Python floor
    assert r.store.value("c") == 1
    assert r.store.value("d") == -1


def test_control_flow_if_while_for():
    r = run("""
int fib;
void main() {
    int a, b, t, i;
    a = 0; b = 1;
    for (i = 0; i < 10; i = i + 1) {
        t = a + b; a = b; b = t;
    }
    fib = a;
}
""")
    assert r.store.value("fib") == 55


def test_break_continue():
    r = run("""
int s;
void main() {
    int i;
    s = 0;
    for (i = 0; i < 100; i = i + 1) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        s = s + i;
    }
}
""")
    assert r.store.value("s") == 1 + 3 + 5 + 7 + 9


def test_short_circuit_evaluation():
    # a[10] would fault if the && rhs were evaluated.
    r = run("""
double a[10];
int ok;
void main() {
    int i;
    i = 10;
    ok = 1;
    if (i < 10 && a[i] > 0.0) ok = 0;
}
""")
    assert r.store.value("ok") == 1


def test_global_arrays_multidim():
    r = run("""
double m[4][8];
double s;
void main() {
    int i, j;
    for (i = 0; i < 4; i = i + 1)
        for (j = 0; j < 8; j = j + 1)
            m[i][j] = i * 10 + j;
    s = m[3][7] + m[1][2];
}
""")
    assert r.store.value("s") == 37 + 12
    assert r.store.array("m")[2, 5] == 25


def test_private_local_arrays():
    r = run("""
double out;
void main() {
    double buf[16];
    int i;
    for (i = 0; i < 16; i = i + 1) buf[i] = i * i;
    out = buf[5];
}
""")
    assert r.store.value("out") == 25.0


def test_functions_and_recursion():
    r = run("""
int result;
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}
void main() { result = fact(6); }
""")
    assert r.store.value("result") == 720


def test_intrinsics():
    r = run("""
double a, b, c, d;
void main() {
    a = sqrt(16.0);
    b = fabs(-2.5);
    c = max(3, 9);
    d = pow(2.0, 10.0);
}
""")
    assert r.store.value("a") == 4.0
    assert r.store.value("b") == 2.5
    assert r.store.value("c") == 9
    assert r.store.value("d") == 1024.0


def test_global_scalar_initializers():
    r = run("""
int n = 5;
double eps = 1.0e-6;
double neg = -2.5;
void main() { }
""")
    assert r.store.value("n") == 5
    assert r.store.value("eps") == pytest.approx(1e-6)
    assert r.store.value("neg") == -2.5


def test_print_output_collected():
    r = run("""
void main() {
    print("answer", 6 * 7);
}
""")
    assert r.output == [("answer", 42)]


def test_read_input():
    r = run("""
double x;
void main() { x = read_input() * 2.0; }
""", inputs=[21.0])
    assert r.store.value("x") == 42.0


def test_parallel_for_static_functional():
    r = run("""
double a[64];
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i < 64; i = i + 1) a[i] = i * 2.0;
}
""")
    assert np.array_equal(r.store.array("a"), np.arange(64) * 2.0)


def test_parallel_reduction_functional():
    r = run("""
double total;
int i;
void main() {
    total = 0.0;
    #pragma omp parallel for reduction(+: total)
    for (i = 1; i <= 100; i = i + 1) total = total + i;
}
""")
    assert r.store.value("total") == 5050.0


def test_omp_for_descending_loop():
    r = run("""
double a[10];
int i;
void main() {
    #pragma omp parallel for
    for (i = 9; i >= 0; i = i - 1) a[i] = i;
}
""")
    assert np.array_equal(r.store.array("a"), np.arange(10.0))


def test_omp_for_strided_loop():
    r = run("""
double a[20];
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i < 20; i = i + 3) a[i] = 1.0;
}
""")
    expect = np.zeros(20)
    expect[::3] = 1.0
    assert np.array_equal(r.store.array("a"), expect)


def test_single_master_critical_atomic_functional():
    r = run("""
double acc;
int singles;
void main() {
    acc = 0.0;
    #pragma omp parallel
    {
        #pragma omp single
        { singles = singles + 1; }
        #pragma omp master
        { acc = acc + 1.0; }
        #pragma omp critical
        { acc = acc + 10.0; }
        #pragma omp atomic
        acc = acc + 100.0;
    }
}
""")
    assert r.store.value("singles") == 1
    assert r.store.value("acc") == 111.0


def test_sections_each_executed_once():
    r = run("""
double a, b;
void main() {
    #pragma omp parallel
    {
        #pragma omp sections
        {
            #pragma omp section
            { a = 1.0; }
            #pragma omp section
            { b = 2.0; }
        }
    }
}
""")
    assert (r.store.value("a"), r.store.value("b")) == (1.0, 2.0)


def test_captured_locals_passed_by_value():
    r = run("""
double a[32];
int i;
void main() {
    int n;
    double scale;
    n = 32; scale = 0.5;
    #pragma omp parallel for
    for (i = 0; i < n; i = i + 1) a[i] = i * scale;
}
""")
    assert r.store.array("a")[31] == pytest.approx(15.5)


def test_write_to_captured_local_rejected():
    with pytest.raises(SemanticError):
        compile_source("""
void main() {
    int n;
    n = 4;
    #pragma omp parallel
    { n = 5; }
}
""")


def test_capture_of_local_array_rejected():
    with pytest.raises(SemanticError):
        compile_source("""
int i;
void main() {
    double buf[8];
    #pragma omp parallel for
    for (i = 0; i < 8; i = i + 1) buf[i] = 1.0;
}
""")


def test_nested_parallel_rejected():
    with pytest.raises(SemanticError):
        compile_source("""
void main() {
    #pragma omp parallel
    {
        #pragma omp parallel
        { }
    }
}
""")


def test_reduction_target_must_be_shared_scalar():
    with pytest.raises(SemanticError):
        compile_source("""
double a[4];
int i;
void main() {
    #pragma omp parallel for reduction(+: a)
    for (i = 0; i < 4; i = i + 1) { }
}
""")


def test_undeclared_variable_rejected():
    with pytest.raises(SemanticError):
        compile_source("void main() { x = 1; }")


def test_slipstream_statement_compiles_and_runs():
    r = run("""
void main() {
    #pragma omp slipstream(GLOBAL_SYNC, 1)
    #pragma omp parallel
    { }
}
""")
    assert r is not None


def test_firstprivate_copies_value():
    r = run("""
double g;
double out[4];
int i;
void main() {
    g = 3.0;
    #pragma omp parallel for firstprivate(g)
    for (i = 0; i < 4; i = i + 1) out[i] = g + i;
}
""")
    assert np.array_equal(r.store.array("out"), np.array([3.0, 4, 5, 6]))


def test_reduction_max():
    r = run("""
double peak;
double a[50];
int i;
void main() {
    for (i = 0; i < 50; i = i + 1) a[i] = fabs(25.0 - i);
    peak = -1.0e300;
    #pragma omp parallel for reduction(max: peak)
    for (i = 0; i < 50; i = i + 1) {
        if (a[i] > peak) peak = a[i];
    }
}
""")
    assert r.store.value("peak") == 25.0
