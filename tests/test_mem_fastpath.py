"""Directed tests for the uncontended-miss fast path (hot-path tier
``mem``): eligibility, the reservation race, and cycle-exactness of the
planned path against the pure-generator transaction."""

import pytest

from repro.config import PAPER_MACHINE
from repro.hotpath import reset_for_tests
from repro.mem import CoherentMemorySystem
from repro.mem.address import SHARED_BASE
from repro.sim import Engine


def make(n_cmps=4, **kw):
    cfg = PAPER_MACHINE.with_(n_cmps=n_cmps, placement="round_robin", **kw)
    eng = Engine()
    return eng, CoherentMemorySystem(eng, cfg), cfg


def addr_homed_at(cfg, node):
    return SHARED_BASE + node * cfg.page_bytes


def local_miss_cycles(ms):
    """End-to-end latency of an uncontended local read miss."""
    return 2 * ms.c_bus + ms.c_nil + ms.c_mem


def fast_misses(ms):
    return sum(nm.stats.get("fast_misses") or 0 for nm in ms.nodes)


def _race_same_line(hotpath, monkeypatch):
    """CPU on node 0 misses a line; a second CPU on node 1 wakes at the
    exact completion instant (earlier seq, so it runs first) and
    requests the *same directory line* while the plan's lock and fill
    leg are still held."""
    monkeypatch.setenv("REPRO_HOTPATH", hotpath)
    reset_for_tests()                        # re-latch for this value
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    results = {}

    def racer():
        yield local_miss_cycles(ms)
        results["racer"] = yield from ms.load(1, 0, a)

    def leader():
        results["leader"] = yield from ms.load(0, 0, a)

    eng.process(racer(), name="racer")       # created first: earlier seq
    eng.process(leader(), name="leader")
    eng.run()
    return eng, ms, results


@pytest.mark.parametrize("hotpath", ["engine,mem,fuse", ""])
def test_race_same_line_cycles_match_generator(hotpath, monkeypatch):
    """The fast path's first/fallback split must be timing-invisible:
    both accesses take identical cycles with the tier on and off."""
    eng_on, ms_on, r_on = _race_same_line("engine,mem,fuse", monkeypatch)
    eng_off, ms_off, r_off = _race_same_line("", monkeypatch)
    assert r_on["leader"].cycles == r_off["leader"].cycles
    assert r_on["racer"].cycles == r_off["racer"].cycles
    assert eng_on.now == eng_off.now
    # And the split itself: with the tier on, exactly the leader planned.
    assert fast_misses(ms_on) == 1
    assert ms_on.nodes[0].stats.get("fast_misses") == 1
    assert fast_misses(ms_off) == 0
    # The racer still resolved as an ordinary remote read miss.
    assert r_on["racer"].level == "remote" == r_off["racer"].level
    assert r_on["leader"].level == "local" == r_off["leader"].level


def test_racer_falls_back_on_held_fill_leg(monkeypatch):
    """A same-node second CPU arriving at the completion instant must
    observe the reserved fill-leg occupancy (bus busy) and fall back,
    queueing exactly as it would behind the generator's held leg."""
    monkeypatch.setenv("REPRO_HOTPATH", "mem")
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    b = a + cfg.line_bytes                   # different directory line
    results = {}

    def racer():
        yield local_miss_cycles(ms)
        # Bus unit still physically held by the leader's planned fill
        # leg at this instant -> fast path ineligible.
        assert not ms.nodes[0].bus.idle_at(eng.now)
        results["racer"] = yield from ms.load(0, 1, b)

    def leader():
        results["leader"] = yield from ms.load(0, 0, a)

    eng.process(racer(), name="racer")
    eng.process(leader(), name="leader")
    eng.run()
    assert ms.nodes[0].stats.get("fast_misses") == 1   # leader only
    assert results["leader"].level == "local"
    assert results["racer"].level == "local"
    # The racer queued behind the fill leg: same service, zero overlap.
    assert results["racer"].cycles == results["leader"].cycles


def test_fast_path_reserves_server_statistics(monkeypatch):
    """Reservations must charge the same request/service totals a
    serve() over the window would, so utilization reports are
    tier-invariant."""
    stats = {}
    for tiers in ("mem", ""):
        monkeypatch.setenv("REPRO_HOTPATH", tiers)
        reset_for_tests()
        eng, ms, cfg = make()
        a = addr_homed_at(cfg, 0)
        eng.run_process(ms.load(0, 0, a))
        bus = ms.nodes[0].bus
        stats[tiers] = (bus.total_requests, bus.total_service,
                        ms.nodes[0].mem.total_service if hasattr(
                            ms.nodes[0], "mem") else None)
    assert stats["mem"] == stats[""]


def test_fast_path_ineligible_when_queue_is_busy(monkeypatch):
    """Any event scheduled before the would-be completion instant
    voids quiescence: the miss must take the generator path."""
    monkeypatch.setenv("REPRO_HOTPATH", "mem")
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)

    def bystander():
        yield 1.0                            # wakes mid-flight

    def loader():
        res = yield from ms.load(0, 0, a)
        return res

    eng.process(bystander(), name="bystander")
    res = eng.run_process(loader(), name="loader")
    assert res.level == "local"
    assert not ms.nodes[0].stats.get("fast_misses")


def test_fast_path_ineligible_for_three_hop(monkeypatch):
    """An EXCLUSIVE line owned elsewhere needs the intervention path;
    the planner must decline before any reservation is made."""
    monkeypatch.setenv("REPRO_HOTPATH", "mem")
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    eng.run_process(ms.store(1, 0, a))       # node 1 becomes dirty owner
    n_fast = fast_misses(ms)
    res = eng.run_process(ms.load(0, 0, a))
    assert res.level == "remote3"
    assert fast_misses(ms) == n_fast         # no new fast miss
    assert cfg.ns(res.cycles) == pytest.approx(270.0)
