"""Directed tests for the epoch-forecast miss planner (hot-path tier
``mem``): admission, the reservation-window race protocol, forecast
fallbacks, and cycle-exactness of the planned path against the
pure-generator transaction."""

import random

import pytest

from repro.config import PAPER_MACHINE
from repro.hotpath import reset_for_tests
from repro.mem import CoherentMemorySystem
from repro.mem.address import SHARED_BASE
from repro.sim import Engine


def make(n_cmps=4, **kw):
    cfg = PAPER_MACHINE.with_(n_cmps=n_cmps, placement="round_robin", **kw)
    eng = Engine()
    return eng, CoherentMemorySystem(eng, cfg), cfg


def addr_homed_at(cfg, node):
    return SHARED_BASE + node * cfg.page_bytes


def local_miss_cycles(ms):
    """End-to-end latency of an uncontended local read miss."""
    return 2 * ms.c_bus + ms.c_nil + ms.c_mem


def fast_misses(ms):
    return sum(nm.stats.get("fast_misses") or 0 for nm in ms.nodes)


def stat(ms, key):
    return sum(nm.stats.get(key) or 0 for nm in ms.nodes)


def _race_same_line(hotpath, monkeypatch):
    """CPU on node 0 misses a line; a second CPU on node 1 wakes at the
    exact completion instant (earlier seq, so it runs first) and
    requests the *same directory line* while the plan's lock and fill
    window are still outstanding."""
    monkeypatch.setenv("REPRO_HOTPATH", hotpath)
    reset_for_tests()                        # re-latch for this value
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    results = {}

    def racer():
        yield local_miss_cycles(ms)
        results["racer"] = yield from ms.load(1, 0, a)

    def leader():
        results["leader"] = yield from ms.load(0, 0, a)

    eng.process(racer(), name="racer")       # created first: earlier seq
    eng.process(leader(), name="leader")
    eng.run()
    return eng, ms, results


@pytest.mark.parametrize("hotpath", ["engine,mem,fuse", ""])
def test_race_same_line_cycles_match_generator(hotpath, monkeypatch):
    """The planner/generator split must be timing-invisible: both
    accesses take identical cycles with the tier on and off."""
    eng_on, ms_on, r_on = _race_same_line("engine,mem,fuse", monkeypatch)
    eng_off, ms_off, r_off = _race_same_line("", monkeypatch)
    assert r_on["leader"].cycles == r_off["leader"].cycles
    assert r_on["racer"].cycles == r_off["racer"].cycles
    assert eng_on.now == eng_off.now
    # With the forecast, *both* misses plan: the leader fully, and the
    # racer too (its trip starts after the leader committed, so by its
    # acquire instant the line lock is free again).
    assert fast_misses(ms_on) == 2
    assert ms_on.nodes[0].stats.get("fast_misses") == 1
    assert ms_on.nodes[1].stats.get("fast_misses") == 1
    assert fast_misses(ms_off) == 0
    # The racer still resolved as an ordinary remote read miss.
    assert r_on["racer"].level == "remote" == r_off["racer"].level
    assert r_on["leader"].level == "local" == r_off["leader"].level


def test_racer_plans_through_held_fill_window(monkeypatch):
    """A same-node second CPU arriving at the completion instant sees
    the leader's fill-leg reservation window (bus not idle) and books
    its own first leg *behind* it -- queueing exactly as it would
    behind the generator's held fill leg, while still planning."""
    monkeypatch.setenv("REPRO_HOTPATH", "mem")
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    b = a + cfg.line_bytes                   # different directory line
    results = {}

    def racer():
        yield local_miss_cycles(ms)
        # The leader's planned fill window is still on the bus timeline
        # at this instant (the leader commits later in the same step).
        assert not ms.nodes[0].bus.idle_at(eng.now)
        results["racer"] = yield from ms.load(0, 1, b)

    def leader():
        results["leader"] = yield from ms.load(0, 0, a)

    eng.process(racer(), name="racer")
    eng.process(leader(), name="leader")
    eng.run()
    assert fast_misses(ms) == 2              # both planned
    assert results["leader"].level == "local"
    assert results["racer"].level == "local"
    # The racer queued behind the fill window: same service, zero overlap.
    assert results["racer"].cycles == results["leader"].cycles


def test_fast_path_reserves_server_statistics(monkeypatch):
    """Reservations must charge the same request/service totals a
    serve() over the window would, so utilization reports are
    tier-invariant."""
    stats = {}
    for tiers in ("mem", ""):
        monkeypatch.setenv("REPRO_HOTPATH", tiers)
        reset_for_tests()
        eng, ms, cfg = make()
        a = addr_homed_at(cfg, 0)
        eng.run_process(ms.load(0, 0, a))
        bus = ms.nodes[0].bus
        stats[tiers] = (bus.total_requests, bus.total_service,
                        ms.nodes[0].mem.total_service if hasattr(
                            ms.nodes[0], "mem") else None)
    assert stats["mem"] == stats[""]


def test_fast_path_plans_through_unrelated_queue_entries(monkeypatch):
    """A queued event with no declared interest in the line (unknown
    footprint) does not void the forecast: the miss plans anyway, and
    any actual collision would be caught by window preemption."""
    monkeypatch.setenv("REPRO_HOTPATH", "mem")
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)

    def bystander():
        yield 1.0                            # wakes mid-flight

    def loader():
        res = yield from ms.load(0, 0, a)
        return res

    eng.process(bystander(), name="bystander")
    res = eng.run_process(loader(), name="loader")
    assert res.level == "local"
    assert ms.nodes[0].stats.get("fast_misses") == 1
    assert ms.nodes[0].stats.get("forecast.hit") == 1
    assert res.cycles == local_miss_cycles(ms)


def test_fast_path_plans_three_hop(monkeypatch):
    """An EXCLUSIVE line owned elsewhere takes the intervention path --
    and the planner now books it too, phase by phase, demoting the
    owner at the exact instant the generator transaction would."""
    monkeypatch.setenv("REPRO_HOTPATH", "mem")
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    eng.run_process(ms.store(1, 0, a))       # node 1 becomes dirty owner
    n_fast = fast_misses(ms)
    res = eng.run_process(ms.load(0, 0, a))
    assert res.level == "remote3"
    assert fast_misses(ms) == n_fast + 1     # the intervention planned
    assert cfg.ns(res.cycles) == pytest.approx(270.0)


def test_forecast_declines_on_queued_same_line_writer(monkeypatch):
    """A queued coherence helper that *declares* the same line in its
    footprint (here: a prefetch-exclusive conversion) voids the
    forecast -- the miss takes the generator path and the decline is
    counted under its reason."""
    monkeypatch.setenv("REPRO_HOTPATH", "mem")
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 1)                # homed away from the loader

    def loader():
        assert ms.prefetch_exclusive(1, a)   # queues pfx with footprint
        res = yield from ms.load(0, 0, a)
        return res

    res = eng.run_process(loader(), name="loader")
    assert res.level in ("remote", "remote3")
    assert ms.nodes[0].stats.get("fallback.queued_conflict") == 1
    assert not ms.nodes[0].stats.get("fast_misses")


def test_forecast_ignores_queued_other_line_writer(monkeypatch):
    """The same scenario on a *different* line plans normally: the
    classifier is per-line, not a global quiescence screen."""
    results = {}
    for tiers in ("mem", ""):
        monkeypatch.setenv("REPRO_HOTPATH", tiers)
        reset_for_tests()
        eng, ms, cfg = make()
        a = addr_homed_at(cfg, 1)
        b = a + cfg.line_bytes               # different directory line

        def loader():
            assert ms.prefetch_exclusive(1, b)
            res = yield from ms.load(0, 0, a)
            return res

        res = eng.run_process(loader(), name="loader")
        results[tiers] = (res.level, res.cycles, eng.now)
        if tiers == "mem":
            assert ms.nodes[0].stats.get("fast_misses") == 1
            assert not ms.nodes[0].stats.get("fallback.queued_conflict")
    assert results["mem"] == results[""]


# ---------------------------------------------------------------- property

def _contended_workload(tiers, seed, monkeypatch):
    """Mixed random load/store/prefetch traffic from every CPU over a
    small shared line set -- dense same-line races, upgrades,
    invalidation rounds and 3-hop interventions.  Returns the engine
    end time plus the full completion-ordered access trace."""
    monkeypatch.setenv("REPRO_HOTPATH", tiers)
    reset_for_tests()
    eng, ms, cfg = make()
    rng = random.Random(seed)
    lines = [addr_homed_at(cfg, n) + k * cfg.line_bytes
             for n in range(cfg.n_cmps) for k in range(3)]
    trace = []

    def worker(node, cpu, ops):
        for kind, addr, gap in ops:
            yield gap
            if kind == "pfx":
                ms.prefetch_exclusive(node, addr)
                continue
            if kind == "load":
                r = yield from ms.load(node, cpu, addr)
            else:
                r = yield from ms.store(node, cpu, addr)
            trace.append((node, cpu, kind, addr, eng.now, r.cycles, r.level))

    for node in range(cfg.n_cmps):
        for cpu in range(2):
            ops = [(rng.choice(("load", "load", "store", "store", "pfx")),
                    rng.choice(lines), float(rng.randrange(0, 300)))
                   for _ in range(20)]
            eng.process(worker(node, cpu, ops), name=f"w{node}.{cpu}")
    eng.run()
    # The trace is compared *unsorted*: the planner's wake cadence
    # keeps the generator's within-bucket event order (DESIGN §6), so
    # even completions landing at the same instant must appear in the
    # same order with the tier on or off.
    return eng.now, trace


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_forecast_bit_identical_on_contended_workload(seed, monkeypatch):
    """Property: forecast on vs off vs the heapq reference discipline
    give bit-identical cycle streams on densely contended traffic --
    the planner's preemption/degradation protocol, not an eligibility
    screen, is what guarantees exactness."""
    ref = _contended_workload("", seed, monkeypatch)
    for tiers in ("engine,mem", "mem", "engine"):
        got = _contended_workload(tiers, seed, monkeypatch)
        assert got == ref, f"divergence under REPRO_HOTPATH={tiers!r}"
