"""Harness hardening: a killed pool worker costs one bounded retry,
then the sweep degrades gracefully to serial -- completing with every
result, and never silently."""

import os
import signal

import pytest

import repro.harness.transport as ht
from repro.harness.exec import ProcessPoolContext, RunSpec, SerialContext

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="crash tests rely on the fork start method")

_PARENT = os.getpid()
_REAL_EXECUTE_INDEXED = ht._execute_indexed

#: Env var naming a flag file; when set, workers die only until the
#: flag exists (first-attempt crash, second attempt succeeds).
_ONCE_ENV = "REPRO_TEST_CRASH_ONCE"


def _always_killer(item):
    """Pool entry point that SIGKILLs every worker (module-level:
    closures don't pickle; fork resolves this by reference)."""
    if os.getpid() != _PARENT:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_EXECUTE_INDEXED(item)


def _once_killer(item):
    """Kills workers only while the flag file is absent."""
    flag = os.environ.get(_ONCE_ENV)
    if flag and os.getpid() != _PARENT and not os.path.exists(flag):
        open(flag, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_EXECUTE_INDEXED(item)


def _specs():
    return [RunSpec.make("cg", c, size="test", verify=True)
            for c in ("single", "G0")]


def test_persistent_crash_retries_once_then_degrades(monkeypatch):
    monkeypatch.setattr(ht, "_execute_indexed", _always_killer)
    ctx = ProcessPoolContext(jobs=2, start_method="fork")
    runs = ctx.run(_specs())
    # the sweep still completed, in order, with real results
    assert [r.config for r in runs] == ["single", "G0"]
    assert all(r.result is not None for r in runs)
    assert runs[0].cycles > runs[1].cycles       # G0 beats single
    # ...and the degradation is visible, not silent
    assert ctx.degraded
    assert any("retrying once" in e for e in ctx.events)
    assert any("serial" in e for e in ctx.events)
    assert len(ctx.events) >= 2


def test_transient_crash_recovers_on_the_retry(monkeypatch, tmp_path):
    monkeypatch.setattr(ht, "_execute_indexed", _once_killer)
    monkeypatch.setenv(_ONCE_ENV, str(tmp_path / "crashed.flag"))
    ctx = ProcessPoolContext(jobs=2, start_method="fork")
    runs = ctx.run(_specs())
    assert all(r.result is not None for r in runs)
    assert not ctx.degraded                      # the retry succeeded
    assert any("retrying once" in e for e in ctx.events)


def test_degraded_results_match_serial(monkeypatch):
    monkeypatch.setattr(ht, "_execute_indexed", _always_killer)
    ctx = ProcessPoolContext(jobs=2, start_method="fork")
    degraded = ctx.run(_specs())
    serial = SerialContext().run(_specs())
    assert [r.cycles for r in degraded] == [r.cycles for r in serial]


def test_spec_errors_still_propagate_from_the_pool():
    """Only worker loss is retried: an exception raised *by a spec*
    (here: watchdog expiry) propagates, and the pool is not degraded."""
    from repro.runtime import SimDeadlockError
    specs = [RunSpec.make("cg", c, size="test", verify=True,
                          timeout_cycles=300) for c in ("single", "G0")]
    ctx = ProcessPoolContext(jobs=2, start_method="fork")
    with pytest.raises(SimDeadlockError):
        ctx.run(specs)
    assert not ctx.degraded
