"""Tests for the wider OpenMP feature surface: lastprivate, num_threads,
OMP_NUM_THREADS, guided details, and combined-clause interactions."""

import numpy as np
import pytest

from repro import compile_source, run_program
from repro.config import PAPER_MACHINE
from repro.interp import FunctionalRunner
from repro.lang.errors import SemanticError
from repro.runtime import RuntimeEnv

CFG = PAPER_MACHINE.with_(n_cmps=4)

LASTPRIVATE = """
double last;
double a[37];
int i;
void main() {
    #pragma omp parallel for lastprivate(last) schedule(runtime)
    for (i = 0; i < 37; i = i + 1) {
        last = i * 2.0;
        a[i] = last;
    }
}
"""


@pytest.mark.parametrize("mode", ["single", "double", "slipstream"])
@pytest.mark.parametrize("sched", [("static", None), ("static", 4),
                                   ("dynamic", 5), ("guided", 2)])
def test_lastprivate_all_modes_and_schedules(mode, sched):
    img = compile_source(LASTPRIVATE)
    r = run_program(img, cfg=CFG, mode=mode, env=RuntimeEnv(schedule=sched))
    # The sequentially-last iteration (i=36) defines the final value.
    assert r.store.value("last") == 72.0, (mode, sched)
    assert np.array_equal(r.store.array("a"), np.arange(37) * 2.0)


def test_lastprivate_functional():
    r = FunctionalRunner(compile_source(LASTPRIVATE)).run()
    assert r.store.value("last") == 72.0


def test_lastprivate_requires_shared_scalar():
    with pytest.raises(SemanticError):
        compile_source("""
double a[4];
int i;
void main() {
    #pragma omp parallel for lastprivate(a)
    for (i = 0; i < 4; i = i + 1) { }
}
""")


def test_lastprivate_empty_loop_leaves_value():
    img = compile_source("""
double last = 5.0;
int i;
void main() {
    int n;
    n = 0;
    #pragma omp parallel for lastprivate(last)
    for (i = 0; i < n; i = i + 1) last = 9.0;
}
""")
    r = run_program(img, cfg=CFG, mode="single")
    assert r.store.value("last") == 5.0


NUMTHREADS = """
double seen[16];
int i;
void main() {
    #pragma omp parallel for num_threads(3) schedule(static, 1)
    for (i = 0; i < 16; i = i + 1) seen[i] = omp_get_thread_num();
}
"""


@pytest.mark.parametrize("mode", ["single", "slipstream"])
def test_num_threads_clause_narrows_team(mode):
    img = compile_source(NUMTHREADS)
    r = run_program(img, cfg=PAPER_MACHINE.with_(n_cmps=8), mode=mode)
    ids = set(np.unique(r.store.array("seen")))
    assert ids == {0.0, 1.0, 2.0}


def test_omp_num_threads_env_caps_default_team():
    img = compile_source(NUMTHREADS.replace(" num_threads(3)", ""))
    r = run_program(img, cfg=PAPER_MACHINE.with_(n_cmps=8), mode="single",
                    env=RuntimeEnv(num_threads=2))
    assert set(np.unique(r.store.array("seen"))) == {0.0, 1.0}


def test_num_threads_clause_beats_env():
    img = compile_source(NUMTHREADS)
    r = run_program(img, cfg=PAPER_MACHINE.with_(n_cmps=8), mode="single",
                    env=RuntimeEnv(num_threads=6))
    assert set(np.unique(r.store.array("seen"))) == {0.0, 1.0, 2.0}


def test_num_threads_larger_than_pool_is_capped():
    img = compile_source(
        NUMTHREADS.replace("num_threads(3)", "num_threads(999)"))
    r = run_program(img, cfg=CFG, mode="single")
    assert set(np.unique(r.store.array("seen"))) <= {0.0, 1.0, 2.0, 3.0}


def test_narrowed_team_with_barriers():
    """Barriers inside a narrowed region must only gather the narrowed
    team (a classic deadlock if mis-implemented)."""
    img = compile_source("""
double a[8];
double b[8];
int i;
void main() {
    #pragma omp parallel num_threads(2)
    {
        #pragma omp for
        for (i = 0; i < 8; i = i + 1) a[i] = i;
        #pragma omp barrier
        #pragma omp for
        for (i = 0; i < 8; i = i + 1) b[i] = a[7 - i];
    }
}
""")
    for mode in ("single", "slipstream"):
        r = run_program(img, cfg=CFG, mode=mode)
        assert np.array_equal(r.store.array("b"),
                              np.arange(7, -1, -1.0)), mode


def test_sequential_regions_with_different_team_sizes():
    img = compile_source("""
double n1, n2;
double sink[8];
int i;
void main() {
    #pragma omp parallel num_threads(2)
    {
        #pragma omp master
        { n1 = omp_get_num_threads(); }
        #pragma omp for
        for (i = 0; i < 8; i = i + 1) sink[i] = i;
    }
    #pragma omp parallel
    {
        #pragma omp master
        { n2 = omp_get_num_threads(); }
        #pragma omp for
        for (i = 0; i < 8; i = i + 1) sink[i] = i + 1;
    }
}
""")
    r = run_program(img, cfg=CFG, mode="single")
    assert r.store.value("n1") == 2.0
    assert r.store.value("n2") == 4.0


def test_guided_respects_min_chunk():
    img = compile_source("""
double a[100];
int i;
void main() {
    #pragma omp parallel for schedule(guided, 7)
    for (i = 0; i < 100; i = i + 1) a[i] = 1.0;
}
""")
    r = run_program(img, cfg=CFG, mode="single")
    assert float(np.sum(r.store.array("a"))) == 100.0


def test_reduction_and_lastprivate_together():
    img = compile_source("""
double total;
double last;
double junk[20];
int i;
void main() {
    #pragma omp parallel for reduction(+: total) lastprivate(last)
    for (i = 0; i < 20; i = i + 1) {
        total = total + i;
        last = i;
        junk[i] = i;
    }
}
""")
    for mode in ("single", "slipstream"):
        r = run_program(img, cfg=CFG, mode=mode)
        assert r.store.value("total") == 190.0, mode
        assert r.store.value("last") == 19.0, mode
