"""Tests for the SlipC parser and pragma handling."""

import pytest

from repro.lang import ParseError, parse, parse_expression
from repro.lang import ast as A


def parse_main(body):
    return parse("void main() {\n%s\n}" % body)


def main_stmts(body):
    prog = parse_main(body)
    return prog.funcs[0].body.stmts


def test_globals_and_function():
    prog = parse("double a[8][4];\nint n = 5;\nvoid main() { n = 6; }")
    assert [g.name for g in prog.globals] == ["a", "n"]
    assert prog.globals[0].dims == (8, 4)
    assert isinstance(prog.globals[1].init, A.Num)
    assert prog.funcs[0].name == "main"


def test_comma_declarations():
    prog = parse("int i, j, k;\nvoid main() {}")
    assert [g.name for g in prog.globals] == ["i", "j", "k"]


def test_float_normalized_to_double():
    prog = parse("float x;\nvoid main() { float y; }")
    assert prog.globals[0].typ == "double"
    assert prog.funcs[0].body.stmts[0].typ == "double"


def test_expression_precedence():
    e = parse_expression("1 + 2 * 3 - 4 / 2")
    # ((1 + (2*3)) - (4/2))
    assert isinstance(e, A.BinOp) and e.op == "-"
    assert e.lhs.op == "+" and e.lhs.rhs.op == "*"
    assert e.rhs.op == "/"


def test_logical_precedence():
    e = parse_expression("a < b && c || d")
    assert e.op == "||"
    assert e.lhs.op == "&&"
    assert e.lhs.lhs.op == "<"


def test_unary_and_parens():
    e = parse_expression("-(a + b) * !c")
    assert e.op == "*"
    assert isinstance(e.lhs, A.UnOp) and e.lhs.op == "-"
    assert isinstance(e.rhs, A.UnOp) and e.rhs.op == "!"


def test_multidim_index():
    e = parse_expression("a[i][j+1]")
    assert isinstance(e, A.Index)
    assert e.name == "a" and len(e.indices) == 2


def test_compound_assignment_desugars():
    (stmt,) = main_stmts("int x; x += 3;")[1:]
    assert isinstance(stmt, A.Assign)
    assert isinstance(stmt.value, A.BinOp) and stmt.value.op == "+"


def test_for_loop_parts():
    (stmt,) = main_stmts("int i; for (i = 0; i < 10; i = i + 1) { }")[1:]
    assert isinstance(stmt, A.For)
    assert isinstance(stmt.init, A.Assign)
    assert stmt.cond.op == "<"


def test_if_else_chain():
    (stmt,) = main_stmts("int x; if (x < 1) x = 1; else if (x < 2) x = 2; "
                         "else x = 3;")[1:]
    assert isinstance(stmt, A.If)
    assert isinstance(stmt.orelse, A.If)


def test_parallel_region_with_clauses():
    (stmt,) = main_stmts(
        "#pragma omp parallel private(i, j) reduction(+: s)\n{ }")
    assert isinstance(stmt, A.OmpParallel)
    assert stmt.private == ["i", "j"]
    assert stmt.reductions[0].op == "+"
    assert stmt.reductions[0].names == ["s"]


def test_parallel_for_combined():
    (stmt,) = main_stmts(
        "int i;\n#pragma omp parallel for schedule(dynamic, 4)\n"
        "for (i = 0; i < 8; i = i + 1) { }")[1:]
    assert isinstance(stmt, A.OmpParallel)
    assert isinstance(stmt.body, A.OmpFor)
    assert stmt.body.schedule.kind == "dynamic"
    assert stmt.body.schedule.chunk == 4


def test_omp_for_requires_loop():
    with pytest.raises(ParseError):
        parse_main("#pragma omp parallel\n{\n#pragma omp for\nint x;\n}")


def test_single_master_critical_atomic():
    stmts = main_stmts("""
#pragma omp parallel
{
#pragma omp single nowait
{ }
#pragma omp master
{ }
#pragma omp critical(mylock)
{ }
#pragma omp atomic
g = g + 1;
}
""")
    region = stmts[0]
    inner = region.body.stmts
    assert isinstance(inner[0], A.OmpSingle) and inner[0].nowait
    assert isinstance(inner[1], A.OmpMaster)
    assert isinstance(inner[2], A.OmpCritical)
    assert inner[2].name == "mylock"
    assert isinstance(inner[3], A.OmpAtomic)


def test_barrier_and_flush():
    stmts = main_stmts(
        "#pragma omp parallel\n{\n#pragma omp barrier\n"
        "#pragma omp flush(a, b)\n}")
    inner = stmts[0].body.stmts
    assert isinstance(inner[0], A.OmpBarrier)
    assert isinstance(inner[1], A.OmpFlush)
    assert inner[1].names == ["a", "b"]


def test_sections_parse():
    stmts = main_stmts("""
#pragma omp parallel
{
#pragma omp sections
{
#pragma omp section
{ }
#pragma omp section
{ }
}
}
""")
    secs = stmts[0].body.stmts[0]
    assert isinstance(secs, A.OmpSections)
    assert len(secs.sections) == 2


def test_slipstream_directive_statement():
    stmts = main_stmts("#pragma omp slipstream(LOCAL_SYNC, 2)\n")
    assert isinstance(stmts[0], A.OmpSlipstream)
    assert stmts[0].sync_type == "LOCAL_SYNC"
    assert stmts[0].tokens == 2


def test_slipstream_with_if_clause():
    stmts = main_stmts(
        "int ncmp;\n#pragma omp slipstream(GLOBAL_SYNC, 1) if(ncmp > 8)\n")
    slip = stmts[1]
    assert isinstance(slip, A.OmpSlipstream)
    assert slip.if_expr is not None and slip.if_expr.op == ">"


def test_file_scope_slipstream_prepended_to_main():
    prog = parse("#pragma omp slipstream(GLOBAL_SYNC)\nvoid main() { }")
    assert isinstance(prog.funcs[0].body.stmts[0], A.OmpSlipstream)


def test_bad_slipstream_type_rejected():
    with pytest.raises(ParseError):
        parse_main("#pragma omp slipstream(SOMETIMES)\n")


def test_non_omp_pragma_ignored():
    prog = parse("#pragma once\nvoid main() { }")
    assert prog.funcs[0].name == "main"


def test_runtime_schedule():
    (stmt,) = main_stmts(
        "int i;\n#pragma omp parallel for schedule(runtime)\n"
        "for (i = 0; i < 8; i = i + 1) { }")[1:]
    assert stmt.body.schedule.kind == "runtime"


def test_print_statement():
    (stmt,) = main_stmts('print("x=", 3 + 4);')
    assert isinstance(stmt, A.Print)
    assert len(stmt.args) == 2


def test_parse_error_has_line():
    with pytest.raises(ParseError) as ei:
        parse("void main() {\n int x\n}")
    assert ei.value.line >= 2
