"""Unit tests for the A/R-Timely/Late/Only classification stats."""

import pytest

from repro.mem.cache import CacheLine, MESIState
from repro.obs import ClassStats


def test_record_and_query():
    cs = ClassStats()
    cs.record("A", "read", "timely", 3)
    cs.record("A", "read", "late")
    cs.record("R", "read", "only", 6)
    cs.record("A", "rdex", "timely", 2)
    assert cs.total("read") == 10
    assert cs.total("rdex") == 2
    assert cs.fraction("A", "read", "timely") == pytest.approx(0.3)
    assert cs.get("R", "read", "only") == 6


def test_breakdown_labels_and_sum():
    cs = ClassStats()
    cs.record("A", "read", "timely", 1)
    cs.record("R", "read", "late", 3)
    brk = cs.breakdown("read")
    assert set(brk) == {"A-Timely", "A-Late", "A-Only",
                        "R-Timely", "R-Late", "R-Only"}
    assert sum(brk.values()) == pytest.approx(1.0)
    assert brk["R-Late"] == pytest.approx(0.75)


def test_coverage_counts_timely_plus_late():
    cs = ClassStats()
    cs.record("A", "rdex", "timely", 5)
    cs.record("A", "rdex", "late", 3)
    cs.record("R", "rdex", "only", 2)
    assert cs.coverage("rdex") == pytest.approx(0.8)


def test_empty_stats_are_zero():
    cs = ClassStats()
    assert cs.total("read") == 0
    assert cs.fraction("A", "read", "timely") == 0.0
    assert cs.coverage("rdex") == 0.0
    assert sum(cs.breakdown("read").values()) == 0.0


def test_bad_keys_rejected():
    cs = ClassStats()
    with pytest.raises(ValueError):
        cs.record("B", "read", "timely")
    with pytest.raises(ValueError):
        cs.record("A", "write", "timely")
    with pytest.raises(ValueError):
        cs.record("A", "read", "early")


def test_classify_line_outcome_precedence():
    """merged_late beats sibling_hit beats only."""
    cs = ClassStats()
    ln = CacheLine(0x1000, MESIState.SHARED)
    ln.fetcher, ln.fill_kind = "A", "read"
    ln.merged_late = True
    ln.sibling_hit = True
    cs.classify_line(ln)
    assert cs.get("A", "read", "late") == 1

    ln2 = CacheLine(0x1080, MESIState.SHARED)
    ln2.fetcher, ln2.fill_kind = "A", "read"
    ln2.sibling_hit = True
    cs.classify_line(ln2)
    assert cs.get("A", "read", "timely") == 1

    ln3 = CacheLine(0x1100, MESIState.SHARED)
    ln3.fetcher, ln3.fill_kind = "R", "rdex"
    cs.classify_line(ln3)
    assert cs.get("R", "rdex", "only") == 1


def test_classify_line_without_record_is_noop():
    cs = ClassStats()
    cs.classify_line(CacheLine(0x1000, MESIState.SHARED))
    assert cs.total("read") + cs.total("rdex") == 0


def test_merge_accumulates():
    a, b = ClassStats(), ClassStats()
    a.record("A", "read", "timely", 2)
    b.record("A", "read", "timely", 3)
    b.record("R", "rdex", "only", 1)
    a.merge(b)
    assert a.get("A", "read", "timely") == 5
    assert a.get("R", "rdex", "only") == 1


def test_as_dict_round_trip():
    cs = ClassStats()
    cs.record("A", "read", "timely", 2)
    cs.record("R", "rdex", "late", 4)
    d = cs.as_dict()
    assert d == {"A-read-timely": 2, "R-rdex-late": 4}
