"""Tests for the coherent memory system: latency composition (Table 1),
MSHR merging, classification, prefetch-exclusive, self-invalidation."""

import pytest

from repro.config import PAPER_MACHINE
from repro.mem import CoherentMemorySystem, MESIState, PerfectMemory
from repro.mem.address import SHARED_BASE
from repro.sim import Engine


def make(n_cmps=4, **kw):
    cfg = PAPER_MACHINE.with_(n_cmps=n_cmps, placement="round_robin", **kw)
    eng = Engine()
    return eng, CoherentMemorySystem(eng, cfg), cfg


def addr_homed_at(cfg, node):
    """A shared address whose round-robin home is ``node``."""
    return SHARED_BASE + node * cfg.page_bytes


def run(eng, gen):
    return eng.run_process(gen)


def test_local_miss_is_170ns():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    res = run(eng, ms.load(0, 0, a))
    assert res.level == "local"
    assert cfg.ns(res.cycles) == pytest.approx(170.0)


def test_remote_clean_miss_is_290ns():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 1)
    res = run(eng, ms.load(0, 0, a))
    assert res.level == "remote"
    assert cfg.ns(res.cycles) == pytest.approx(290.0)


def test_l2_hit_is_10_cycles():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    run(eng, ms.load(0, 0, a))
    # Second access from the *other* CPU misses its own L1 but hits L2.
    res = run(eng, ms.load(0, 1, a))
    assert res.level == "l2"
    assert res.cycles == pytest.approx(10.0)


def test_l1_filtering_after_fill():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    run(eng, ms.load(0, 0, a))
    assert ms.l1_probe(0, 0, a) is True       # requester's L1 has it
    assert ms.l1_probe(0, 1, a) is False      # sibling CPU's L1 doesn't


def test_three_hop_dirty_miss_longer_than_two_hop():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    run(eng, ms.store(1, 0, a))               # node 1 becomes dirty owner
    res = run(eng, ms.load(0, 0, a))          # node 0 reads: intervention
    assert res.level == "remote3"
    # bus30 + dir60 + net50 + niin10 + ownerbus30 + niout10 + net50 + bus30
    assert cfg.ns(res.cycles) == pytest.approx(270.0)
    # Owner was demoted to SHARED and clean.
    oline = ms.nodes[1].l2.peek(a)
    assert oline.state == MESIState.SHARED and not oline.dirty


def test_store_upgrade_invalidates_sharers():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    run(eng, ms.load(0, 0, a))
    run(eng, ms.load(1, 0, a))
    run(eng, ms.load(2, 0, a))
    res = run(eng, ms.store(0, 0, a))         # upgrade; INVs to nodes 1,2
    assert res.level == "local"
    assert ms.nodes[1].l2.peek(a) is None
    assert ms.nodes[2].l2.peek(a) is None
    line = ms.nodes[0].l2.peek(a)
    assert line.state == MESIState.EXCLUSIVE and line.dirty
    # INV round trip (120ns) dominates the skipped memory access:
    # bus30 + dir60 + inv(50+10+10+50) + bus30 = 240ns
    assert cfg.ns(res.cycles) == pytest.approx(240.0)


def test_store_hit_exclusive_is_l2_hit():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    run(eng, ms.store(0, 0, a))
    res = run(eng, ms.store(0, 0, a + 8))
    assert res.level == "l2"
    assert res.cycles == pytest.approx(10.0)


def test_store_writethrough_invalidates_sibling_l1():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    run(eng, ms.load(0, 1, a))                # CPU 1 caches it in its L1
    assert ms.l1_probe(0, 1, a)
    run(eng, ms.store(0, 0, a))               # CPU 0 writes through
    assert ms.l1_probe(0, 1, a) is False
    assert ms.l1_probe(0, 0, a) is True


def test_mshr_merge_classifies_a_late():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 1)                  # remote so there's a window

    def scenario():
        p1 = eng.process(ms.load(0, 1, a, stream="A"), name="a")
        yield 1                                # R arrives mid-flight
        p2 = eng.process(ms.load(0, 0, a, stream="R"), name="r")
        yield eng.all_of([p1.done_event, p2.done_event])

    run(eng, scenario())
    ms.finalize()
    assert ms.classes.get("A", "read", "late") == 1


def test_sibling_hit_classifies_a_timely():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 1)
    run(eng, ms.load(0, 1, a, stream="A"))
    run(eng, ms.load(0, 0, a, stream="R"))     # L2 hit after fill
    ms.finalize()
    assert ms.classes.get("A", "read", "timely") == 1


def test_unreferenced_fill_classifies_a_only():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 1)
    run(eng, ms.load(0, 1, a, stream="A"))
    ms.finalize()
    assert ms.classes.get("A", "read", "only") == 1


def test_invalidation_finalizes_classification():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    run(eng, ms.load(0, 1, a, stream="A"))     # A fetches at node 0
    run(eng, ms.store(1, 0, a, stream="R"))    # node 1 writes: INV node 0
    assert ms.classes.get("A", "read", "only") == 1


def test_prefetch_exclusive_makes_store_hit():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 1)
    assert ms.prefetch_exclusive(0, a, stream="A") is True
    eng.run()                                  # let the prefetch land
    res = run(eng, ms.store(0, 0, a, stream="R"))
    assert res.level == "l2"                   # store covered by prefetch
    ms.finalize()
    assert ms.classes.get("A", "rdex", "timely") == 1


def test_prefetch_dropped_when_already_owned():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    run(eng, ms.store(0, 0, a))
    assert ms.prefetch_exclusive(0, a) is False


def test_prefetch_cap_drops_excess():
    eng, ms, cfg = make()
    issued = sum(
        ms.prefetch_exclusive(0, addr_homed_at(cfg, 1) + i * 128)
        for i in range(20))
    assert issued == CoherentMemorySystem.MAX_PREFETCHES
    assert ms.nodes[0].stats.get("prefetch_dropped") > 0
    eng.run()
    assert ms.nodes[0].outstanding_prefetches == 0


def test_directory_states_after_read_write_read():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 2)
    la = ms.line_addr(a)
    run(eng, ms.load(0, 0, a))
    e = ms.directory.entry(la)
    assert e.state.__class__ is int and e.sharers == {0}
    run(eng, ms.store(1, 0, a))
    assert e.owner == 1 and not e.sharers
    run(eng, ms.load(3, 0, a))
    assert e.owner is None and e.sharers == {1, 3}


def test_eviction_notifies_directory():
    eng, ms, cfg = make()
    la = ms.line_addr(addr_homed_at(cfg, 0))
    run(eng, ms.load(0, 0, la))
    # Force eviction by filling the set: same set index needs
    # addr stride = num_sets * line = 512 * 128 = 64 KiB for paper L2.
    stride = cfg.l2.num_sets * cfg.line_bytes
    for i in range(1, cfg.l2.assoc + 1):
        run(eng, ms.load(0, 0, la + i * stride))
    assert ms.nodes[0].l2.peek(la) is None
    assert la not in {a for a in (la,) if 0 in ms.directory.entry(la).sharers}


def test_epoch_self_invalidation_drops_stale_shared_lines():
    eng, ms, cfg = make()
    a1 = addr_homed_at(cfg, 1)
    a2 = addr_homed_at(cfg, 1) + 128
    run(eng, ms.load(0, 0, a1))
    ms.bump_epoch(0)
    run(eng, ms.load(0, 0, a2))                # fresh in the new epoch
    dropped = ms.self_invalidate_stale(0)
    assert dropped == 1
    assert ms.nodes[0].l2.peek(a1) is None
    assert ms.nodes[0].l2.peek(a2) is not None
    assert 0 not in ms.directory.entry(ms.line_addr(a1)).sharers


def test_perfect_memory_is_flat():
    eng = Engine()
    pm = PerfectMemory(eng, PAPER_MACHINE)
    res = eng.run_process(pm.load(0, 0, SHARED_BASE))
    assert res.cycles == 1.0
    assert pm.l1_probe(0, 0, SHARED_BASE)
    assert pm.prefetch_exclusive(0, SHARED_BASE) is False


def test_concurrent_writers_serialize_on_directory_lock():
    eng, ms, cfg = make()
    a = addr_homed_at(cfg, 0)
    results = {}

    def writer(node):
        res = yield from ms.store(node, 0, a)
        results[node] = res

    eng.process(writer(1), name="w1")
    eng.process(writer(2), name="w2")
    eng.run()
    la = ms.line_addr(a)
    e = ms.directory.entry(la)
    # Exactly one node ends up the owner; the other was invalidated.
    assert e.state == 2 and e.owner in (1, 2)
    owner, loser = e.owner, 3 - e.owner
    assert ms.nodes[owner].l2.peek(a) is not None
    assert ms.nodes[loser].l2.peek(a) is None
