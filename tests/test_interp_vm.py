"""VM-level tests: snapshot/restore, fast-path hooks, time slicing,
frames, and event surfaces."""

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.interp import VM, Done, IoOut, MemRead, MemWrite, RtCall
from repro.interp.events import TimeSlice
from repro.interp.interpreter import MISS, VMError


def image(src):
    return compile_source(src)


def drain(vm, reads=None):
    """Run a VM to completion, servicing memory ops from a dict."""
    mem = reads or {}
    out = []
    while True:
        ev = vm.run()
        if isinstance(ev, Done):
            return out, ev.value
        if isinstance(ev, MemRead):
            vm.push(mem.get((ev.gidx, ev.flat), 0.0))
        elif isinstance(ev, MemWrite):
            mem[(ev.gidx, ev.flat)] = ev.value
            out.append(("w", ev.gidx, ev.flat, ev.value))
        elif isinstance(ev, IoOut):
            out.append(("io", ev.values))
        elif isinstance(ev, TimeSlice):
            continue
        else:
            raise AssertionError(f"unexpected event {ev}")


def test_vm_runs_pure_computation():
    img = image("""
double out;
void main() {
    int i;
    double s;
    s = 0.0;
    for (i = 1; i <= 10; i = i + 1) s = s + i;
    out = s;
}
""")
    vm = VM(img, img.main_index)
    writes, rv = drain(vm)
    assert writes == [("w", 0, 0, 55.0)]
    assert vm.take_cycles() > 0              # busy cycles were charged
    assert rv == 0


def test_vm_cycles_accumulate_and_drain():
    img = image("void main() { int i; for (i=0;i<100;i=i+1) { } }")
    vm = VM(img, img.main_index)
    ev = vm.run()
    assert isinstance(ev, Done)
    assert vm.take_cycles() > 100            # loop instructions charged
    assert vm.take_cycles() == 0.0


def test_snapshot_restore_replays_exactly():
    img = image("""
double trace[8];
void main() {
    int i;
    for (i = 0; i < 8; i = i + 1) trace[i] = i * 3.0;
}
""")
    vm = VM(img, img.main_index)
    mem = {}
    # Run up to the 4th store, snapshot, finish, then restore & refinish.
    stores = 0
    snap = None
    while True:
        ev = vm.run()
        if isinstance(ev, MemWrite):
            stores += 1
            mem[(ev.gidx, ev.flat)] = ev.value
            if stores == 4 and snap is None:
                snap = vm.snapshot()
        elif isinstance(ev, MemRead):
            vm.push(mem.get((ev.gidx, ev.flat), 0.0))
        elif isinstance(ev, Done):
            break
    first = dict(mem)
    vm.restore(snap)
    mem2 = {}
    while True:
        ev = vm.run()
        if isinstance(ev, MemWrite):
            mem2[(ev.gidx, ev.flat)] = ev.value
        elif isinstance(ev, MemRead):
            vm.push(mem2.get((ev.gidx, ev.flat), 0.0))
        elif isinstance(ev, Done):
            break
    # Replay covers the remaining stores (indices 4..7) identically.
    for k in mem2:
        assert first[k] == mem2[k]
    assert len(mem2) == 4


def test_snapshot_copies_private_arrays():
    img = image("""
double out;
void main() {
    double buf[4];
    int i;
    buf[0] = 1.0;
    out = buf[0];
}
""")
    vm = VM(img, img.main_index)
    vm.run()                                  # up to the gstore
    snap = vm.snapshot()
    live = vm.frames[0].locals
    arrays = [v for v in live if isinstance(v, np.ndarray)]
    snap_arrays = [v for f in snap for v in f.locals
                   if isinstance(v, np.ndarray)]
    assert arrays and snap_arrays
    assert arrays[0] is not snap_arrays[0]    # deep copy


def test_fast_read_hook_and_miss_sentinel():
    img = image("""
double g;
double out;
void main() { out = g + 1.0; }
""")
    vm = VM(img, img.main_index)
    calls = []

    def fast_read(gidx, flat):
        calls.append((gidx, flat))
        return 41.0 if len(calls) == 1 else MISS

    vm.fast_read = fast_read
    ev = vm.run()
    # First read (g) was served fast; the write comes back as MemWrite.
    assert isinstance(ev, MemWrite) and ev.value == 42.0
    assert calls == [(0, 0)]


def test_fast_write_hook_handles_store():
    img = image("double g;\nvoid main() { g = 7.0; }")
    vm = VM(img, img.main_index)
    handled = []
    vm.fast_write = lambda gidx, flat, v: handled.append((gidx, flat, v)) or True
    ev = vm.run()
    assert isinstance(ev, Done)
    assert handled == [(0, 0, 7.0)]


def test_time_slice_on_long_loops():
    img = image("""
void main() {
    int i;
    for (i = 0; i < 100000; i = i + 1) { }
}
""")
    vm = VM(img, img.main_index)
    slices = 0
    while True:
        ev = vm.run()
        if isinstance(ev, TimeSlice):
            slices += 1
            vm.take_cycles()
        elif isinstance(ev, Done):
            break
    assert slices >= 4                        # 100k iters / MAX_SLICE


def test_rt_call_event_carries_args():
    img = image("""
double a[4];
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i < 4; i = i + 1) a[i] = 1.0;
}
""")
    vm = VM(img, img.main_index)
    ev = vm.run()
    assert isinstance(ev, RtCall)
    assert ev.name == "parallel_begin"
    assert len(ev.args) == 2                  # if-flag + num_threads


def test_out_of_range_pc_is_vmerror():
    img = image("void main() { }")
    vm = VM(img, img.main_index)
    vm.frames[0].pc = 10_000
    with pytest.raises(VMError):
        vm.run()


def test_missing_push_detected():
    img = image("double g;\ndouble o;\nvoid main() { o = g; }")
    vm = VM(img, img.main_index)
    ev = vm.run()
    assert isinstance(ev, MemRead)
    with pytest.raises(VMError):
        vm.run()                               # result never pushed


def test_done_is_sticky():
    img = image("void main() { }")
    vm = VM(img, img.main_index)
    assert isinstance(vm.run(), Done)
    assert isinstance(vm.run(), Done)
