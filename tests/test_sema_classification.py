"""Tests for semantic analysis: the shared/private classification that
the paper identifies as OpenMP's key enabler for slipstream."""

import pytest

from repro.lang import SemanticError, analyze, parse
from repro.lang.sema import (collect_var_reads, collect_var_writes,
                             declared_locals)


def region_info(src):
    info = analyze(parse(src))
    assert len(info.regions) == 1
    return info.regions[0]


def test_global_refs_classified_shared():
    ri = region_info("""
double data[64];
double coef;
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i < 64; i = i + 1) data[i] = coef * i;
}
""")
    assert ri.shared_refs == {"data", "coef"}
    assert "i" in ri.private                 # auto-private loop var


def test_clause_privates_recorded():
    ri = region_info("""
double a[8];
double t;
int i, j;
void main() {
    #pragma omp parallel private(j) firstprivate(t)
    {
        #pragma omp for
        for (i = 0; i < 8; i = i + 1) a[i] = t + j;
    }
}
""")
    assert "j" in ri.private
    assert "t" in ri.firstprivate
    assert ri.shared_refs == {"a"}


def test_region_locals_are_private_not_shared():
    ri = region_info("""
double a[8];
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i < 8; i = i + 1) {
        double tmp;
        tmp = i * 2.0;
        a[i] = tmp;
    }
}
""")
    assert "tmp" not in ri.shared_refs


def test_enclosing_locals_captured():
    ri = region_info("""
double a[8];
int i;
void main() {
    int n;
    double scale;
    n = 8; scale = 0.5;
    #pragma omp parallel for
    for (i = 0; i < n; i = i + 1) a[i] = i * scale;
}
""")
    assert ri.captured == {"n", "scale"}


def test_reductions_and_schedules_recorded():
    ri = region_info("""
double s;
int i;
void main() {
    #pragma omp parallel for reduction(+: s) schedule(dynamic, 4)
    for (i = 0; i < 8; i = i + 1) s = s + i;
}
""")
    assert ri.reductions[0].op == "+"
    assert ri.schedules[0].kind == "dynamic"
    assert ri.schedules[0].chunk == 4


def test_undeclared_in_region_rejected():
    with pytest.raises(SemanticError):
        analyze(parse("""
int i;
void main() {
    #pragma omp parallel for
    for (i = 0; i < 8; i = i + 1) ghost = i;
}
"""))


def test_worksharing_outside_region_rejected():
    for frag in ("#pragma omp for\nfor (i = 0; i < 4; i = i + 1) { }",
                 "#pragma omp barrier",
                 "#pragma omp single\n{ }",
                 "#pragma omp critical\n{ }"):
        with pytest.raises(SemanticError):
            analyze(parse("int i;\nvoid main() {\n%s\n}" % frag))


def test_shared_clause_must_name_global():
    with pytest.raises(SemanticError):
        analyze(parse("""
void main() {
    int x;
    #pragma omp parallel shared(x)
    { }
}
"""))


def test_void_variable_rejected():
    with pytest.raises(SemanticError):
        analyze(parse("void x;\nvoid main() { }"))


def test_main_required():
    with pytest.raises(SemanticError):
        analyze(parse("int f() { return 1; }"))


def test_duplicate_global_rejected():
    with pytest.raises(SemanticError):
        analyze(parse("int a;\ndouble a;\nvoid main() { }"))


def test_function_global_name_clash_rejected():
    with pytest.raises(SemanticError):
        analyze(parse("int f;\nint f() { return 0; }\nvoid main() { }"))


def test_intrinsic_arity_checked():
    with pytest.raises(SemanticError):
        analyze(parse("double x;\nvoid main() { x = sqrt(1.0, 2.0); }"))


def test_walk_helpers():
    prog = parse("""
double a[4];
int i;
void main() {
    int k;
    k = 2;
    a[k] = a[k - 1] + i;
}
""")
    body = prog.funcs[0].body
    assert collect_var_reads(body) == {"a", "k", "i"}
    assert collect_var_writes(body) == {"k", "a"}
    assert declared_locals(body) == {"k"}
