"""Generated-code tier (hot-path tier ``compile``): the exec'd
functions must be observationally identical to the interpreter loop.

The contract under test is *bit-identity of the event/cycle stream*:
for any program, driving a VM whose Codes run as generated Python
functions must produce exactly the same sequence of events -- same
types, same payloads, and same ``take_cycles()`` reading at every
yield point -- as the tuple-dispatch interpreter, plus the same final
memory image.  A seeded random-program sweep covers the combinatorial
space; directed tests pin the deopt edges (restore, corrupt, armed
faults, profiling, wild pc) where the tier must step aside without
perturbing a single cycle.
"""

import random

import pytest

from repro.compiler import compile_source
from repro.config import PAPER_MACHINE
from repro.harness import RunSpec, execute_spec
from repro.hotpath import reset_for_tests
from repro.interp import VM, Done, IoOut, MemRead, MemWrite, RtCall
from repro.interp.events import TimeSlice
from repro.interp.interpreter import MISS, VMError
from repro.obs.profile import TrackProfile

# ------------------------------------------------------------ random SlipC

N_ARR = 16


def _iexpr(rng, depth):
    """A terminating int expression over loop counter i and scratch j."""
    if depth <= 0 or rng.random() < 0.4:
        return rng.choice(["i", "j", str(rng.randint(0, 9))])
    a, b = _iexpr(rng, depth - 1), _iexpr(rng, depth - 1)
    op = rng.choice(["+", "-", "*", "%"])
    if op == "%":
        b = str(rng.randint(2, 7))           # nonzero literal divisor
    return f"({a} {op} {b})"


MAIN_LEAVES = ("x", "y", "i", "j", f"arr[i % {N_ARR}]")


def _dexpr(rng, depth, leaves=MAIN_LEAVES):
    """A double expression; division only by nonzero literals and no
    raw sqrt/log of possibly-negative values, so no NaNs or traps --
    traces stay comparable with plain ``==``."""
    if depth <= 0 or rng.random() < 0.35:
        return rng.choice(list(leaves) + ["%.2f" % rng.uniform(-4, 4)])
    kind = rng.random()
    a = _dexpr(rng, depth - 1, leaves)
    b = _dexpr(rng, depth - 1, leaves)
    if kind < 0.15:
        return f"min({a}, {b})"
    if kind < 0.3:
        return f"max({a}, {b})"
    if kind < 0.4:
        return f"fabs({a})"
    if kind < 0.5:
        return f"sqrt(fabs({a}))"
    if kind < 0.6:
        return f"(-{a})"
    if kind < 0.7:
        return "({} / {:.2f})".format(a, rng.uniform(1.0, 5.0))
    return f"({a} {rng.choice(['+', '-', '*'])} {b})"


def _stmt(rng, depth=2):
    r = rng.random()
    if r < 0.2:
        return f"x = {_dexpr(rng, depth)};"
    if r < 0.35:
        return f"y = f0({_dexpr(rng, 1)}, {_dexpr(rng, 1)});"
    if r < 0.5:
        return f"j = {_iexpr(rng, depth)};"
    if r < 0.65:
        return f"arr[i % {N_ARR}] = {_dexpr(rng, depth)};"
    if r < 0.78:
        return f"ga = ga + {_dexpr(rng, 1)};"
    if r < 0.88:
        cmp = rng.choice(["<", ">", "<=", ">=", "==", "!="])
        return (f"if ({_dexpr(rng, 1)} {cmp} {_dexpr(rng, 1)}) "
                f"{{ {_stmt(rng, 1)} }} else {{ {_stmt(rng, 1)} }}")
    return "gb = j;"


def make_program(seed):
    rng = random.Random(seed)
    body = []
    for _ in range(rng.randint(2, 4)):
        body.append(_stmt(rng))
    loops = []
    for _ in range(rng.randint(1, 3)):
        inner = "\n        ".join(_stmt(rng) for _ in range(rng.randint(1, 3)))
        loops.append(f"""
    i = 0;
    while (i < {rng.randint(3, 9)}) {{
        {inner}
        i = i + 1;
    }}""")
    return f"""
double ga;
int gb;
double arr[{N_ARR}];

double f0(double a, double b) {{
    double r;
    r = {_dexpr(rng, 2, leaves=("a", "b"))};
    return r + min(a, b);
}}

void main() {{
    int i;
    int j;
    double x;
    double y;
    i = 0;
    j = {rng.randint(0, 5)};
    x = 0.5;
    y = -1.25;
    {' '.join(body)}
    {''.join(loops)}
    print(ga, gb, x, y, j);
}}
"""


# ------------------------------------------------------------------ driver

def new_store(prog):
    store = {}
    for g in prog.globals:
        store[g.index] = [0.0] * g.size if g.dims else (g.init or 0)
    return store


def drive(prog, compiled, fast=False):
    """Run to Done, logging every (event, cycles) pair; optionally with
    fast-path hooks that hit on even flat indices and miss on odd."""
    vm = VM(prog, prog.main_index)
    if not compiled:
        vm.disable_compiled()
    store = new_store(prog)
    if fast:
        def fast_read(g, flat):
            if flat % 2 == 0:
                v = store[g]
                return v[flat] if isinstance(v, list) else v
            return MISS

        def fast_write(g, flat, val):
            if flat % 2:
                return False
            v = store[g]
            if isinstance(v, list):
                v[flat] = val
            else:
                store[g] = val
            return True
        vm.fast_read = fast_read
        vm.fast_write = fast_write
    trace = []
    for _ in range(200_000):
        ev = vm.run()
        c = vm.take_cycles()
        k = type(ev)
        if k is MemRead:
            trace.append(("R", ev.gidx, ev.flat, c))
            v = store[ev.gidx]
            vm.push(v[ev.flat] if isinstance(v, list) else v)
        elif k is MemWrite:
            trace.append(("W", ev.gidx, ev.flat, ev.value, c))
            v = store[ev.gidx]
            if isinstance(v, list):
                v[ev.flat] = ev.value
            else:
                store[ev.gidx] = ev.value
        elif k is IoOut:
            trace.append(("IO", ev.values, c))
        elif k is TimeSlice:
            trace.append(("TS", c))
        elif k is RtCall:
            trace.append(("RT", ev.name, ev.args, c))
            vm.push(0)
        elif k is Done:
            trace.append(("DONE", ev.value, c))
            return trace, store, vm
    raise AssertionError("program did not terminate")


def assert_same_run(prog, fast=False):
    t_i, s_i, _ = drive(prog, compiled=False, fast=fast)
    t_c, s_c, _ = drive(prog, compiled=True, fast=fast)
    for n, (a, b) in enumerate(zip(t_i, t_c)):
        assert a == b, f"event {n} diverged: interp {a} vs compiled {b}"
    assert len(t_i) == len(t_c)
    assert s_i == s_c


# ------------------------------------------------------- property sweep

@pytest.mark.parametrize("seed", range(30))
def test_random_programs_identical_streams(seed, monkeypatch):
    """Seeded random programs: identical (event, cycles) streams and
    final stores, with and without the uncontended fast path."""
    src = make_program(seed)
    monkeypatch.setenv("REPRO_COMPILE_STRICT", "1")
    prog = compile_source(src)
    assert all(f.gen_src is not None for f in prog.funcs)
    assert_same_run(prog, fast=False)
    assert_same_run(prog, fast=True)


@pytest.mark.parametrize("seed", [0, 3, 6, 9, 12])
def test_random_programs_identical_without_fusion(seed, monkeypatch):
    """Same property on unfused opcode streams (tier ``compile`` alone):
    the generated code's cost folding must match the pre-fusion
    translation too."""
    monkeypatch.setenv("REPRO_HOTPATH", "compile")
    monkeypatch.setenv("REPRO_COMPILE_STRICT", "1")
    reset_for_tests()
    prog = compile_source(make_program(seed))
    assert all(f.gen_src is not None for f in prog.funcs)
    assert_same_run(prog, fast=False)
    assert_same_run(prog, fast=True)


# -------------------------------------------------------- directed deopt

SRC_LOOP = f"""
double ga;
double arr[{N_ARR}];
void main() {{
    int i;
    i = 0;
    while (i < {N_ARR}) {{
        arr[i] = i * 2.5;
        ga = ga + arr[i];
        i = i + 1;
    }}
    print(ga);
}}
"""


def test_compiled_tier_attaches_and_activates():
    prog = compile_source(SRC_LOOP)
    assert all(f.gen_src is not None for f in prog.funcs)
    vm = VM(prog, prog.main_index)
    assert vm._cfns is not None


def test_tier_off_means_no_gen_src_and_interpreter(monkeypatch):
    monkeypatch.setenv("REPRO_HOTPATH", "engine,mem,fuse")
    reset_for_tests()
    prog = compile_source(SRC_LOOP)
    assert all(f.gen_src is None for f in prog.funcs)
    vm = VM(prog, prog.main_index)
    assert vm._cfns is None
    t, s, _ = drive(prog, compiled=False)
    assert t[-1][0] == "DONE"


def test_image_without_gen_src_falls_back(monkeypatch):
    """A compile-tier process handed an image built with the tier off
    (stale pickle, foreign producer) must run it interpreted -- the
    all-or-nothing gate returns None, never a partial table."""
    monkeypatch.setenv("REPRO_HOTPATH", "engine,mem,fuse")
    reset_for_tests()
    prog = compile_source(SRC_LOOP)
    monkeypatch.delenv("REPRO_HOTPATH")
    reset_for_tests()
    vm = VM(prog, prog.main_index)          # tier on, but no gen_src
    assert vm._cfns is None
    t, _, _ = drive(prog, compiled=False)
    assert t[-1][0] == "DONE"


def _run_to_nth_write(vm, store, n):
    writes = 0
    while True:
        ev = vm.run()
        vm.take_cycles()
        if isinstance(ev, MemRead):
            v = store[ev.gidx]
            vm.push(v[ev.flat] if isinstance(v, list) else v)
        elif isinstance(ev, MemWrite):
            v = store[ev.gidx]
            if isinstance(v, list):
                v[ev.flat] = ev.value
            else:
                store[ev.gidx] = ev.value
            writes += 1
            if writes == n:
                return ev


def test_restore_deopts_and_replays_exactly():
    """Snapshot mid-run under the compiled tier, restore, finish: the
    VM drops to the interpreter for good and the replayed tail matches
    a never-compiled run bit for bit."""
    prog = compile_source(SRC_LOOP)
    vm = VM(prog, prog.main_index)
    assert vm._cfns is not None
    store = new_store(prog)
    _run_to_nth_write(vm, store, 5)
    snap = vm.snapshot()
    snap_store = {k: (list(v) if isinstance(v, list) else v)
                  for k, v in store.items()}
    vm.restore(snap)
    assert vm._cfns is None                 # permanent deopt

    # Reference: an interpreter-only VM advanced to the same point.
    ref = VM(prog, prog.main_index)
    ref.disable_compiled()
    ref_store = new_store(prog)
    _run_to_nth_write(ref, ref_store, 5)
    ref.restore(ref.snapshot())

    def finish(v, st):
        tail = []
        while True:
            ev = v.run()
            c = v.take_cycles()
            if isinstance(ev, MemRead):
                val = st[ev.gidx]
                v.push(val[ev.flat] if isinstance(val, list) else val)
                tail.append(("R", ev.gidx, ev.flat, c))
            elif isinstance(ev, MemWrite):
                val = st[ev.gidx]
                if isinstance(val, list):
                    val[ev.flat] = ev.value
                else:
                    st[ev.gidx] = ev.value
                tail.append(("W", ev.gidx, ev.flat, ev.value, c))
            elif isinstance(ev, IoOut):
                tail.append(("IO", ev.values, c))
            elif isinstance(ev, Done):
                tail.append(("DONE", c))
                return tail

    assert finish(vm, snap_store) == finish(ref, ref_store)


def test_corrupt_deopts():
    prog = compile_source(SRC_LOOP)
    vm = VM(prog, prog.main_index)
    assert vm._cfns is not None
    store = new_store(prog)
    _run_to_nth_write(vm, store, 2)
    assert vm.corrupt((0, 999.0)) is not None
    assert vm._cfns is None


def test_profile_binding_takes_priority():
    """A profiling VM must take ``_run_profiled`` even with compiled
    functions attached -- and tally the same busy cycles."""
    prog = compile_source(SRC_LOOP)
    vm = VM(prog, prog.main_index)
    assert vm._cfns is not None
    TrackProfile("T0").bind_vm(vm)
    t_p, s_p, _ = _drive_bound(vm, prog)
    t_c, s_c, _ = drive(prog, compiled=True)
    assert t_p == t_c and s_p == s_c
    assert vm.profile and sum(vm.profile.values()) > 0


def _drive_bound(vm, prog):
    store = new_store(prog)
    trace = []
    while True:
        ev = vm.run()
        c = vm.take_cycles()
        if isinstance(ev, MemRead):
            v = store[ev.gidx]
            vm.push(v[ev.flat] if isinstance(v, list) else v)
            trace.append(("R", ev.gidx, ev.flat, c))
        elif isinstance(ev, MemWrite):
            v = store[ev.gidx]
            if isinstance(v, list):
                v[ev.flat] = ev.value
            else:
                store[ev.gidx] = ev.value
            trace.append(("W", ev.gidx, ev.flat, ev.value, c))
        elif isinstance(ev, IoOut):
            trace.append(("IO", ev.values, c))
        elif isinstance(ev, Done):
            trace.append(("DONE", ev.value, c))
            return trace, store, vm


def test_wild_pc_faults_like_interpreter():
    """A pc the generated code has no entry for deopts to the
    interpreter, which raises its usual VMError -- no KeyError or
    silent miscompile from the dispatch table."""
    prog = compile_source(SRC_LOOP)
    for compiled in (True, False):
        vm = VM(prog, prog.main_index)
        if not compiled:
            vm.disable_compiled()
        vm.frames[-1].pc = 10 ** 6
        with pytest.raises(VMError):
            vm.run()


def test_division_trap_identical():
    src = "int z;\nvoid main() { int a; a = 7; z = 0; a = a / z; }"
    prog = compile_source(src)

    def crash(compiled):
        vm = VM(prog, prog.main_index)
        if not compiled:
            vm.disable_compiled()
        store = {0: 0}
        try:
            while True:
                ev = vm.run()
                if isinstance(ev, MemRead):
                    vm.push(store.get(ev.gidx, 0))
                elif isinstance(ev, MemWrite):
                    store[ev.gidx] = ev.value
                elif isinstance(ev, Done):
                    return ("done",)
        except VMError as e:
            return ("trap", str(e), vm.pending_cycles)

    assert crash(True) == crash(False)
    assert crash(True)[0] == "trap"


# ------------------------------------------------- machine-level identity

def test_benchmark_identical_with_tier_on_and_off(monkeypatch):
    """Full runtime path (slipstream shells, rt ops, faults disarmed):
    cycles, rt_stats and breakdowns are tier-invariant."""
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    cfg = PAPER_MACHINE.with_(n_cmps=4)
    results = {}
    for tiers in (None, "engine,mem,fuse"):
        if tiers is None:
            monkeypatch.delenv("REPRO_HOTPATH", raising=False)
        else:
            monkeypatch.setenv("REPRO_HOTPATH", tiers)
        reset_for_tests()
        run = execute_spec(RunSpec.make("cg", "G0", size="test", cfg=cfg))
        results[tiers] = run
    on, off = results[None], results["engine,mem,fuse"]
    assert on.cycles == off.cycles
    assert on.result.rt_stats == off.result.rt_stats
    assert on.result.r_breakdown == off.result.r_breakdown
    assert on.result.classes.as_dict() == off.result.classes.as_dict()


def test_fault_armed_shells_run_interpreted(monkeypatch):
    """Armed fault plans force the interpreter (injection hooks need
    live Frame state) -- and the campaign's results are tier-invariant
    because only disarmed A-streams ever ran compiled."""
    from repro.faults import FaultConfig
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    cfg = PAPER_MACHINE.with_(n_cmps=4)
    outcomes = {}
    for tiers in (None, "engine,mem,fuse"):
        if tiers is None:
            monkeypatch.delenv("REPRO_HOTPATH", raising=False)
        else:
            monkeypatch.setenv("REPRO_HOTPATH", tiers)
        reset_for_tests()
        spec = RunSpec.make("cg", "G0", size="test", verify=True,
                            faults=FaultConfig(4, classes=("vm",)),
                            timeout_cycles=5e6, cfg=cfg)
        r = execute_spec(spec).result
        outcomes[tiers] = (r.cycles, r.rt_stats, r.faults["fired"],
                           r.recoveries)
    assert outcomes[None] == outcomes["engine,mem,fuse"]
