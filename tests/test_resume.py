"""Kill-and-resume: a sweep SIGKILLed mid-flight -- whether a spool
worker or the pooled driver itself -- resumes from its checkpoint
journal with a bit-identical merged cycle map and without re-executing
completed units.  Plus the journal/memo store semantics those
guarantees rest on."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.config import PAPER_MACHINE
from repro.harness.checkpoint import (CheckpointJournal, MemoStore,
                                      ResultStore, default_memo_dir)
from repro.harness.jobs import RunSpec, SweepPlan, unit_key
from repro.harness.pipeline import ExecutionPipeline
from repro.harness.runner import BenchRun
from repro.harness.transport import DirQueueTransport, SerialTransport

CFG = PAPER_MACHINE.with_(n_cmps=4)


def _specs(configs=("single", "G0")):
    return [RunSpec.make("cg", c, size="test", cfg=CFG) for c in configs]


@pytest.fixture(scope="module")
def golden():
    """Uninterrupted serial cycles for the three-config sweep."""
    runs = ExecutionPipeline().run(_specs(("single", "double", "G0")))
    return {r.config: r.cycles for r in runs}


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _wait_for(predicate, timeout_s=60.0, poll_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


# -- SIGKILL a spool worker --------------------------------------------------

def test_sigkilled_spool_worker_resumes_bit_identical(golden, tmp_path):
    """A worker SIGKILLed mid-claim leaves a stalled lease; the driver
    reaps it, finishes the sweep, and cycles match the uninterrupted
    serial run exactly."""
    root = tmp_path / "spool"
    specs = _specs(("single", "double", "G0"))
    plan = SweepPlan(specs)
    from repro.harness.transport import _Spool
    spool = _Spool(root)
    spool.ensure()
    for u in plan.distinct():
        spool.enqueue(u.key, u.spec)

    # A worker that claims a unit and then wedges forever: the shape a
    # SIGKILL mid-simulation leaves behind, made deterministic.
    script = ("import sys, time\n"
              "import repro.harness.transport as ht\n"
              "ht._run_spec = lambda spec: time.sleep(3600)\n"
              "ht.run_worker(sys.argv[1], drain=False)\n")
    proc = subprocess.Popen([sys.executable, "-c", script, str(root)],
                            env=_env(), stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        assert _wait_for(lambda: any(spool.claims.glob("*.claim"))), \
            "worker never claimed a unit"
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        # the kill left a stalled lease and no result behind
        held = [p.stem for p in spool.claims.glob("*.claim")]
        assert held and not spool.has_result(held[0])

        journal = CheckpointJournal(tmp_path / "journal")
        pipe = ExecutionPipeline(
            transport=DirQueueTransport(root, lease_s=0.3, poll_s=0.02),
            journal=journal)
        runs = pipe.run(specs)
        assert {r.config: r.cycles for r in runs} == golden
        assert any("reaped" in e for e in pipe.events)
        assert sorted(journal.keys()) == sorted(plan.keys)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


# -- SIGKILL the pooled driver -----------------------------------------------

def test_sigkilled_pooled_driver_resumes_without_reexecution(
        golden, tmp_path):
    """Kill a pooled sweep's driver (whole process group) once at least
    one unit is journaled; a serial resume over the same journal loads
    the completed units (unit.resumed) and executes only the rest, and
    the merged cycle map is bit-identical to the uninterrupted run."""
    journal_dir = tmp_path / "journal"
    specs = _specs(("single", "double", "G0"))
    plan = SweepPlan(specs)
    script = (
        "import sys\n"
        "from repro.config import PAPER_MACHINE\n"
        "from repro.harness.checkpoint import CheckpointJournal\n"
        "from repro.harness.jobs import RunSpec\n"
        "from repro.harness.pipeline import ExecutionPipeline\n"
        "from repro.harness.transport import PoolTransport\n"
        "cfg = PAPER_MACHINE.with_(n_cmps=4)\n"
        "specs = [RunSpec.make('cg', c, size='test', cfg=cfg)\n"
        "         for c in ('single', 'double', 'G0')]\n"
        "ExecutionPipeline(transport=PoolTransport(jobs=2),\n"
        "                  journal=CheckpointJournal(sys.argv[1])\n"
        "                  ).run(specs)\n")
    proc = subprocess.Popen([sys.executable, "-c", script,
                             str(journal_dir)],
                            env=_env(), start_new_session=True,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        journal = CheckpointJournal(journal_dir)
        appeared = _wait_for(lambda: len(journal) >= 1, timeout_s=120.0)
        assert appeared, "driver never journaled a unit"
        # SIGKILL driver and pool workers alike -- no atexit, no
        # cleanup, exactly what a lost box looks like.
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

    survived = len(CheckpointJournal(journal_dir))
    assert survived >= 1
    resume = ExecutionPipeline(transport=SerialTransport(),
                               journal=CheckpointJournal(journal_dir))
    runs = resume.run(specs)
    assert {r.config: r.cycles for r in runs} == golden
    # completed units were loaded, not re-executed
    assert resume.counters.get("unit.resumed") == survived
    assert resume.counters.get("unit.executed") == len(plan.keys) - survived
    assert "resumed from checkpoint" in resume.summary()


# -- journal / memo store semantics ------------------------------------------

def _fake_run(error_kind=None):
    run = BenchRun("cg", "single", None, {})
    if error_kind is not None:
        run.error = f"synthetic {error_kind}"
        run.error_kind = error_kind
    return run


def test_result_store_roundtrip_and_corruption(tmp_path):
    store = ResultStore(tmp_path / "s")
    assert store.get("k") is None
    assert store.put("k", _fake_run())
    assert "k" in store and store.keys() == ["k"]
    assert isinstance(store.get("k"), BenchRun)
    # a torn/corrupt entry is a miss, never an error
    store._path("bad").parent.mkdir(parents=True, exist_ok=True)
    store._path("bad").write_bytes(b"\x00not a pickle")
    assert store.get("bad") is None


def test_journal_loads_only_requested_keys(tmp_path):
    journal = CheckpointJournal(tmp_path / "j")
    journal.record("a", _fake_run())
    journal.record("b", _fake_run())
    loaded = journal.load(["a", "missing"])
    assert set(loaded) == {"a"}


def test_memo_skips_nondeterministic_failures(tmp_path):
    memo = MemoStore(tmp_path / "m")
    assert memo.put("ok", _fake_run())
    assert memo.put("hang", _fake_run("hang"))
    assert memo.put("wrong", _fake_run("wrong-output"))
    assert not memo.put("crash", _fake_run("crash"))
    assert memo.get("crash") is None         # crashes stay retryable


def test_memo_dir_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_MEMO_DIR", str(tmp_path / "override"))
    assert default_memo_dir() == tmp_path / "override"
    monkeypatch.delenv("REPRO_MEMO_DIR")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert default_memo_dir() == tmp_path / "cache" / "results"


def test_second_sweep_is_served_from_the_memo(tmp_path):
    """The memo store spans pipelines: a repeated sweep executes
    nothing and reports only hits."""
    memo_dir = tmp_path / "memo"
    specs = _specs()
    first = ExecutionPipeline(memo=MemoStore(memo_dir))
    cold = [r.cycles for r in first.run(specs)]
    assert first.counters.get("memo.miss") == len(specs)
    assert first.counters.get("unit.executed") == len(specs)

    second = ExecutionPipeline(memo=MemoStore(memo_dir))
    warm = [r.cycles for r in second.run(specs)]
    assert warm == cold
    assert second.counters.get("memo.hit") == len(specs)
    assert second.counters.get("memo.miss") == 0
    assert second.counters.get("unit.executed") == 0
    assert second.rt_stats["pipeline"]["memo.hit"] == len(specs)


def _rot_entries(store, keys):
    """Hand-damage journal/memo entries on disk: bit-flip the first
    key's payload, truncate the second's file mid-frame."""
    flip = store._path(keys[0])
    raw = bytearray(flip.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    flip.write_bytes(bytes(raw))
    trunc = store._path(keys[1])
    trunc.write_bytes(trunc.read_bytes()[:20])


def test_corrupt_journal_entries_recovered(golden, tmp_path):
    """Bit-rotted / truncated checkpoint entries are a quarantined
    miss: the resume sweep re-executes those units, re-merges
    bit-identical, and repairs the journal -- never crashes."""
    specs = _specs(("single", "G0"))
    first = ExecutionPipeline(journal=CheckpointJournal(tmp_path / "j"))
    first.run(specs)
    keys = sorted(first.journal.keys())
    _rot_entries(first.journal, keys)

    resume = ExecutionPipeline(journal=CheckpointJournal(tmp_path / "j"))
    runs = resume.run(specs)
    assert {r.config: r.cycles for r in runs} == \
        {c: golden[c] for c in ("single", "G0")}
    assert resume.counters.get("unit.resumed") == 0
    assert resume.counters.get("unit.executed") == len(keys)
    # evidence kept aside, journal healed for the next resume
    assert len(list((tmp_path / "j" / "corrupt").iterdir())) == 2
    healed = ExecutionPipeline(journal=CheckpointJournal(tmp_path / "j"))
    healed.run(specs)
    assert healed.counters.get("unit.resumed") == len(keys)
    assert healed.counters.get("unit.executed") == 0


def test_corrupt_memo_entries_recovered(golden, tmp_path):
    """Same recovery contract for the memo store: damaged entries miss
    (and quarantine), the sweep recomputes and rewrites them."""
    specs = _specs(("single", "G0"))
    first = ExecutionPipeline(memo=MemoStore(tmp_path / "m"))
    first.run(specs)
    keys = sorted(first.memo.keys())
    _rot_entries(first.memo, keys)

    resume = ExecutionPipeline(memo=MemoStore(tmp_path / "m"))
    runs = resume.run(specs)
    assert {r.config: r.cycles for r in runs} == \
        {c: golden[c] for c in ("single", "G0")}
    assert resume.counters.get("memo.hit") == 0
    assert resume.counters.get("memo.miss") == len(keys)
    assert len(list((tmp_path / "m" / "corrupt").iterdir())) == 2
    warm = ExecutionPipeline(memo=MemoStore(tmp_path / "m"))
    warm.run(specs)
    assert warm.counters.get("memo.hit") == len(keys)


def test_memo_respects_code_and_spec_identity(tmp_path):
    """Keys differing in any identity component never collide in the
    store -- a verify=False result can't be served to a verify=True
    sweep."""
    a = RunSpec.make("cg", "single", size="test", cfg=CFG)
    b = RunSpec.make("cg", "single", size="test", cfg=CFG, verify=False)
    memo = MemoStore(tmp_path / "m")
    memo.put(unit_key(a), _fake_run())
    assert memo.get(unit_key(b)) is None
