"""Hot-path tier switches (``REPRO_HOTPATH``).

The per-simulation critical path carries three independent
optimizations, each provably cycle-exact but individually toggleable
for attribution and for the regression gate's off/on diff:

* ``engine`` -- the calendar/bucket scheduler queue in
  :class:`repro.sim.Engine` (heapq fallback when off);
* ``mem``    -- the synchronous uncontended-miss fast path in
  :class:`repro.mem.CoherentMemorySystem`;
* ``fuse``   -- bytecode superinstruction fusion in
  :mod:`repro.compiler.optimize`.

``REPRO_HOTPATH`` unset means *all tiers on* (the optimizations are
bit-exact, so there is no reason to run without them); set, it is a
comma-separated subset to enable -- ``REPRO_HOTPATH=`` (empty) turns
everything off, ``REPRO_HOTPATH=engine,fuse`` leaves only the memory
fast path disabled.

The environment is consulted at *construction/compile* time (engine
and memory system read it in ``__init__``, the compiler when an image
is built), never per event, so toggling mid-run has no effect and the
hot loops carry no environment lookups.  Process-pool workers inherit
the environment, keeping serial and pooled sweeps on the same tiers.
"""

from __future__ import annotations

import os
from typing import FrozenSet

__all__ = ["HOTPATH_TIERS", "hotpath_tiers", "hotpath_enabled"]

#: Every known tier, in ablation-report order.
HOTPATH_TIERS = ("engine", "mem", "fuse")


def hotpath_tiers() -> FrozenSet[str]:
    """The set of enabled tiers (reads ``REPRO_HOTPATH`` each call)."""
    raw = os.environ.get("REPRO_HOTPATH")
    if raw is None:
        return frozenset(HOTPATH_TIERS)
    return frozenset(t.strip() for t in raw.split(",")
                     if t.strip() in HOTPATH_TIERS)


def hotpath_enabled(tier: str) -> bool:
    """Is one tier enabled right now?"""
    return tier in hotpath_tiers()
