"""Hot-path tier switches (``REPRO_HOTPATH``).

The per-simulation critical path carries four independent
optimizations, each provably cycle-exact but individually toggleable
for attribution and for the regression gate's off/on diff:

* ``engine``  -- the calendar/bucket scheduler queue in
  :class:`repro.sim.Engine` (heapq fallback when off);
* ``mem``     -- the epoch-forecast miss planner in
  :class:`repro.mem.CoherentMemorySystem` (misses book reservation
  windows on their path's servers and walk the leg boundaries with
  lightweight ticks, instead of resuming the generator transaction's
  coroutine chain at every event);
* ``fuse``    -- bytecode superinstruction fusion in
  :mod:`repro.compiler.optimize`;
* ``compile`` -- per-function generated-code translation in
  :mod:`repro.interp.compile` (the bytecode dispatch loop is replaced
  by an ``exec``-compiled Python function per ``Code`` object).

``REPRO_HOTPATH`` unset means *all tiers on* (the optimizations are
bit-exact, so there is no reason to run without them); set, it is a
comma-separated subset to enable -- ``REPRO_HOTPATH=`` (empty) turns
everything off, ``REPRO_HOTPATH=engine,fuse`` leaves only the memory
fast path and the generated-code tier disabled.

The environment is consulted *once per process* -- the first
:func:`hotpath_tiers` call latches the set, and construction/compile
sites (engine and memory system ``__init__``, the compiler when an
image is built, the VM when it adopts generated code) read that latch.
Toggling the variable mid-run therefore has no effect and the hot
loops carry no environment lookups.  Process-pool workers inherit the
environment, keeping serial and pooled sweeps on the same tiers.
Tests that flip ``REPRO_HOTPATH`` must call :func:`reset_for_tests`
after each change (the autouse fixture in ``tests/conftest.py`` resets
around every test).
"""

from __future__ import annotations

import os
from typing import FrozenSet, Optional

__all__ = ["HOTPATH_TIERS", "hotpath_tiers", "hotpath_enabled",
           "reset_for_tests"]

#: Every known tier, in ablation-report order.
HOTPATH_TIERS = ("engine", "mem", "fuse", "compile")

_tiers: Optional[FrozenSet[str]] = None


def hotpath_tiers() -> FrozenSet[str]:
    """The set of enabled tiers (``REPRO_HOTPATH`` read once, latched)."""
    global _tiers
    if _tiers is None:
        raw = os.environ.get("REPRO_HOTPATH")
        if raw is None:
            _tiers = frozenset(HOTPATH_TIERS)
        else:
            _tiers = frozenset(t.strip() for t in raw.split(",")
                               if t.strip() in HOTPATH_TIERS)
    return _tiers


def hotpath_enabled(tier: str) -> bool:
    """Is one tier enabled?"""
    return tier in hotpath_tiers()


def reset_for_tests() -> None:
    """Drop the latched tier set so the next call re-reads the
    environment.  For tests (and the bench harness) that flip
    ``REPRO_HOTPATH`` between runs; production code never needs it."""
    global _tiers
    _tiers = None
