"""Seeded deterministic fault injection (``repro.faults``).

The paper's central correctness claim is that A-stream corruption can
never change program output: "recovery is invoked if divergence is
detected" at barriers (§2.2, §3.3), so a wrong, wild, or dead A-stream
only costs cycles.  This module adversarially exercises that claim by
injecting faults at every level the mechanisms span:

========================  =====================================  =========
kind                      injection point                        class
========================  =====================================  =========
``a_corrupt``             A-stream VM register/value corruption  ``vm``
``a_vmfault``             spurious A-stream VM fault (parks)     ``vm``
``a_kill``                forced mid-region A-stream kill        ``kill``
``token_loss``            R-inserted slipstream token dropped    ``channel``
``mailbox_stale``         published mailbox entry's tag staled   ``channel``
``net_jitter``            bounded extra delay at CMP NIs         ``net``
========================  =====================================  =========

Determinism contract (following the gem5 reproducibility methodology):
every schedule is drawn from ``random.Random(seed)`` -- never from
wall-clock or process state -- and injections are triggered by
*opportunity index* (the k-th time an injection site of that kind is
reached), not by absolute cycle.  Because the simulation itself is
deterministic, the same ``(program, config, seed)`` yields identical
injection instants, recovery counts, and final cycles on any host, any
worker count, any run.

Zero-cost when disarmed: producers hold a ``faults`` attribute that is
``None`` unless a plan is armed, and every hook is a single attribute
test -- the golden-cycle tables are bit-identical with injection off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .obs.probe import NULL_PROBE, Probe

__all__ = ["FAULT_KINDS", "FAULT_CLASSES", "CLASS_KINDS", "FaultConfig",
           "FaultPlan", "MAX_NET_JITTER"]

#: Every injectable fault kind, in the fixed order schedules are drawn.
FAULT_KINDS: Tuple[str, ...] = ("a_corrupt", "a_vmfault", "a_kill",
                                "token_loss", "mailbox_stale", "net_jitter")

#: Fault classes (CLI / chaos-matrix granularity) -> member kinds.
CLASS_KINDS: Dict[str, Tuple[str, ...]] = {
    "vm": ("a_corrupt", "a_vmfault"),
    "kill": ("a_kill",),
    "channel": ("token_loss", "mailbox_stale"),
    "net": ("net_jitter",),
}

FAULT_CLASSES: Tuple[str, ...] = tuple(sorted(CLASS_KINDS))

#: Opportunity-index window each kind is drawn from.  Windows are sized
#: to the event density of their injection site at test scale: A-stream
#: shell events are plentiful (thousands per run), token inserts and
#: mailbox publishes number in the dozens, NI serves in the thousands.
_WINDOWS: Dict[str, Tuple[int, int]] = {
    "a_corrupt": (10, 1200),
    "a_vmfault": (10, 1500),
    "a_kill": (40, 2500),
    "token_loss": (1, 20),
    "mailbox_stale": (0, 24),
    "net_jitter": (50, 4000),
}

#: Exclusive upper bound on one ``net_jitter`` payload.  The memory
#: fast path pads its quiescence horizon by twice this before drawing
#: (draws are irreversible: each consumes a schedule index).
MAX_NET_JITTER = 400.0

#: Values ``a_corrupt`` overwrites a scalar slot with: zeros, sign
#: flips, wrap-around magnitudes, infinities -- the classic soft-error
#: menagerie.
_CORRUPT_VALUES = (0, -1, 1, 2 ** 31, -(2 ** 31), 10 ** 9, 7,
                   0.0, -1.5, 3.125e300, float("inf"), 123456789)


def _draw_payload(kind: str, rng: random.Random):
    """One scheduled injection's payload, drawn from the plan RNG."""
    if kind == "a_corrupt":
        return (rng.randrange(10_000), rng.choice(_CORRUPT_VALUES))
    if kind == "mailbox_stale":
        return rng.randrange(1, 4)          # seq-tag delta
    if kind == "net_jitter":
        return float(rng.randrange(25, 400))   # bounded: < MAX_NET_JITTER
    return True                             # a_vmfault / a_kill / token_loss


@dataclass(frozen=True)
class FaultConfig:
    """Hashable, picklable description of one fault campaign.

    This is what travels inside a :class:`~repro.harness.exec.RunSpec`
    (frozen specs must stay hashable); the heavier :class:`FaultPlan`
    is rebuilt from it inside each worker, so serial and pooled runs
    derive identical schedules.
    """

    seed: int
    classes: Tuple[str, ...] = FAULT_CLASSES
    rate: int = 2                           # scheduled injections per kind

    def __post_init__(self):
        bad = [c for c in self.classes if c not in CLASS_KINDS]
        if bad:
            raise ValueError(
                f"unknown fault class(es) {bad}; known: {FAULT_CLASSES}")
        if self.rate < 1:
            raise ValueError(f"rate must be >= 1, got {self.rate}")
        # Canonicalize so equal campaigns hash equal regardless of the
        # order the caller listed classes in.
        object.__setattr__(self, "classes",
                           tuple(sorted(set(self.classes))))

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Armed fault kinds, in schedule-draw order."""
        armed = {k for c in self.classes for k in CLASS_KINDS[c]}
        return tuple(k for k in FAULT_KINDS if k in armed)


class FaultPlan:
    """A materialized injection schedule plus its firing record.

    Built once per :class:`~repro.runtime.machine.Machine` from a
    :class:`FaultConfig`.  Producers call :meth:`fire` at each
    injection opportunity; it returns the scheduled payload exactly at
    the drawn opportunity indices and ``None`` everywhere else.
    """

    def __init__(self, config: FaultConfig):
        self.config = config
        rng = random.Random(config.seed)
        self.schedule: Dict[str, Dict[int, object]] = {}
        armed = config.kinds
        for kind in FAULT_KINDS:            # fixed order: deterministic
            if kind not in armed:
                continue
            lo, hi = _WINDOWS[kind]
            n = min(config.rate, hi - lo)   # distinct indices: colliding
            idxs = rng.sample(range(lo, hi), n)   # draws would silently
            sched: Dict[int, object] = {    # lower the injection count
                i: _draw_payload(kind, rng) for i in idxs}
            self.schedule[kind] = sched
        self._seen: Dict[str, int] = {k: 0 for k in self.schedule}
        self.fired: List[dict] = []
        self.engine = None
        self.probe: Probe = NULL_PROBE

    def bind(self, engine, probe: Probe) -> None:
        """Attach the run's engine (cycle stamps) and fault probe."""
        self.engine = engine
        self.probe = probe

    def fire(self, kind: str, track: str):
        """One injection opportunity of ``kind`` on ``track``.

        Returns the scheduled payload if this opportunity (the k-th of
        its kind) was drawn, else ``None``.  Fired injections are
        recorded (kind, opportunity index, cycle, track) and counted on
        the fault probe so traces show injection instants.
        """
        sched = self.schedule.get(kind)
        if sched is None:
            return None
        idx = self._seen[kind]
        self._seen[kind] = idx + 1
        payload = sched.get(idx)
        if payload is None:
            return None
        now = self.engine.now if self.engine is not None else 0.0
        self.fired.append({"kind": kind, "index": idx, "cycle": now,
                           "track": track})
        self.probe.fault(kind, now, {"index": idx, "track": track})
        return payload

    def report(self) -> dict:
        """Plain-data (picklable) summary for :class:`RunResult`."""
        return {
            "seed": self.config.seed,
            "classes": list(self.config.classes),
            "rate": self.config.rate,
            "scheduled": {k: sorted(v) for k, v in self.schedule.items()},
            "fired": [dict(f) for f in self.fired],
        }
