"""Mini-NPB kernel infrastructure.

The paper evaluates the OpenMP port of NAS Parallel Benchmarks 2.3 (BT,
CG, LU, MG, SP), with problem sizes scaled so that (a) simulation time
stays reasonable and (b) the machine operates where "communication
starts to dominate execution time".  We do the same: each kernel here is
a scaled-down SlipC program that preserves its parent benchmark's
*sharing and communication pattern* (see each module's docstring for
the fidelity argument), paired with a NumPy reference implementation
used to verify every simulated run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from ..compiler import CompiledProgram, compile_source

__all__ = ["KernelSpec", "Registry", "REGISTRY", "register", "lcg_indices"]


@dataclass
class KernelSpec:
    """One mini-NPB benchmark: source builder + reference + verifier."""

    name: str
    description: str
    #: builds SlipC source for a given size class
    source: Callable[..., str]
    #: NumPy reference: returns {array_name: expected ndarray}
    reference: Callable[..., Dict[str, np.ndarray]]
    #: size-class keyword arguments: "test" (tiny), "bench" (paper runs)
    sizes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: relative tolerance for verification (reduction order effects)
    rtol: float = 1e-9

    def compile(self, size: str = "test", **overrides) -> CompiledProgram:
        """Compile this kernel at a size class (with overrides).

        Served through the content-addressed compile cache: the key is
        the generated source (which embeds every parameter) plus the
        compiler fingerprint, so a sweep compiles each distinct
        (bench, size, params) point once per process -- and once per
        machine when the disk layer is enabled.
        """
        params = dict(self.sizes[size])
        params.update(overrides)
        from .cache import COMPILE_CACHE
        return COMPILE_CACHE.get_or_compile(self.source(**params))

    def params(self, size: str = "test", **overrides) -> Dict[str, int]:
        """Resolved size-class parameters (with overrides)."""
        params = dict(self.sizes[size])
        params.update(overrides)
        return params

    def verify(self, store, size: str = "test", **overrides) -> None:
        """Assert the run's globals match the NumPy reference."""
        params = self.params(size, **overrides)
        expected = self.reference(**params)
        for name, want in expected.items():
            got = np.asarray(store.array(name), dtype=float).reshape(
                np.asarray(want).shape)
            if not np.allclose(got, want, rtol=self.rtol, atol=1e-12):
                worst = np.max(np.abs(got - want))
                raise AssertionError(
                    f"{self.name}: array {name!r} mismatch "
                    f"(max abs err {worst:g})")


class Registry(dict):
    """Name -> KernelSpec mapping with duplicate protection."""
    def add(self, spec: KernelSpec) -> KernelSpec:
        """Register a kernel spec under its name."""
        if spec.name in self:
            raise ValueError(f"duplicate kernel {spec.name!r}")
        self[spec.name] = spec
        return spec


#: All mini-NPB kernels, keyed by lowercase name (bt, cg, lu, mg, sp).
REGISTRY = Registry()


def register(spec: KernelSpec) -> KernelSpec:
    """Add a spec to the global REGISTRY (import-time hook)."""
    return REGISTRY.add(spec)


# The sparse kernels need identical pseudo-random structure in SlipC and
# NumPy.  Both sides implement this exact LCG.
LCG_A = 1103515245
LCG_C = 12345
LCG_M = 2 ** 31


def lcg_indices(n_rows: int, nnz_per_row: int, n_cols: int) -> np.ndarray:
    """Column indices of the synthetic sparse matrix, row-major."""
    out = np.empty((n_rows, nnz_per_row), dtype=np.int64)
    seed = 1
    for i in range(n_rows):
        for k in range(nnz_per_row):
            seed = (LCG_A * seed + LCG_C) % LCG_M
            out[i, k] = seed % n_cols
    return out
