"""Mini-MG: 2D multigrid V-cycle.

Communication pattern preserved from NAS MG: a hierarchy of grids where
every level's stencil operators exchange halo rows between neighbouring
row-blocks, and the coarse levels have so little work per thread that
barrier and migration costs dominate -- the regime where the paper
reports MG's largest slipstream gain (20%).  Each V-cycle performs
residual, restriction down the hierarchy, coarse smoothing, and
prolongation + smoothing back up, with a barrier after every operator.

The SlipC source is generated per level (the language has no pointers,
mirroring how NPB-MG's Fortran uses static per-level offsets).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .common import KernelSpec, register


def _sizes(g: int, levels: int) -> List[int]:
    out = [g >> l for l in range(levels)]
    if out[-1] < 4:
        raise ValueError("coarsest grid must be at least 4x4")
    return out


def _rhs(g: int) -> np.ndarray:
    i = np.arange(g)[:, None]
    j = np.arange(g)[None, :]
    v = ((i * 7 + j * 13) % 11 - 5) * 0.125
    v[0, :] = v[-1, :] = 0.0
    v[:, 0] = v[:, -1] = 0.0
    return v.astype(float)


def source(g: int = 32, levels: int = 3, cycles: int = 2) -> str:
    """Generate mini-MG SlipC source for the level hierarchy."""
    gs = _sizes(g, levels)
    decls = ["double v[%d][%d];" % (g, g)]
    for l, n in enumerate(gs):
        decls.append(f"double u{l}[{n}][{n}];")
        decls.append(f"double r{l}[{n}][{n}];")
    body = []

    # NPB-style: one parallel region encloses the whole V-cycle loop;
    # every operator is an "omp for" whose closing barrier delimits a
    # slipstream session.
    def par_for(n: int, inner: str) -> str:
        return (f"    #pragma omp for schedule(runtime)\n"
                f"    for (i = 1; i < {n - 1}; i = i + 1) {{\n"
                f"        for (j = 1; j < {n - 1}; j = j + 1) {{\n"
                f"{inner}\n"
                f"        }}\n    }}")

    # init: parallel first touch of every level
    body.append(f"""    #pragma omp for schedule(runtime)
    for (i = 0; i < {g}; i = i + 1) {{
        for (j = 0; j < {g}; j = j + 1) {{
            v[i][j] = (mod(i * 7 + j * 13, 11) - 5) * 0.125;
            if (i == 0) v[i][j] = 0.0;
            if (j == 0) v[i][j] = 0.0;
            if (i == {g - 1}) v[i][j] = 0.0;
            if (j == {g - 1}) v[i][j] = 0.0;
            u0[i][j] = 0.0;
            r0[i][j] = 0.0;
        }}
    }}""")
    for l in range(1, levels):
        n = gs[l]
        body.append(f"""    #pragma omp for schedule(runtime)
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            u{l}[i][j] = 0.0;
            r{l}[i][j] = 0.0;
        }}
    }}""")

    body.append(f"    for (it = 0; it < {cycles}; it = it + 1) {{")
    # residual at finest: r0 = v - A u0
    body.append(par_for(gs[0],
        "            r0[i][j] = v[i][j] - (4.0 * u0[i][j]"
        " - u0[i-1][j] - u0[i+1][j] - u0[i][j-1] - u0[i][j+1]);"))
    # restrict down
    for l in range(levels - 1):
        nc = gs[l + 1]
        f = l
        body.append(par_for(nc,
            f"            r{l+1}[i][j] = 0.25 * (r{f}[2*i][2*j]"
            f" + r{f}[2*i+1][2*j] + r{f}[2*i][2*j+1]"
            f" + r{f}[2*i+1][2*j+1]);"))
    # coarsest: zero then smooth twice
    lc = levels - 1
    nc = gs[lc]
    body.append(par_for(nc, f"            u{lc}[i][j] = 0.0;"))
    for _ in range(2):
        body.append(par_for(nc,
            f"            u{lc}[i][j] = u{lc}[i][j] + 0.5 * r{lc}[i][j]"
            f" + 0.125 * (r{lc}[i-1][j] + r{lc}[i+1][j]"
            f" + r{lc}[i][j-1] + r{lc}[i][j+1]);"))
    # up: prolong + smooth
    for l in range(levels - 2, -1, -1):
        nc = gs[l + 1]
        body.append(par_for(nc,
            f"""            u{l}[2*i][2*j] = u{l}[2*i][2*j] + u{l+1}[i][j];
            u{l}[2*i+1][2*j] = u{l}[2*i+1][2*j] + u{l+1}[i][j];
            u{l}[2*i][2*j+1] = u{l}[2*i][2*j+1] + u{l+1}[i][j];
            u{l}[2*i+1][2*j+1] = u{l}[2*i+1][2*j+1] + u{l+1}[i][j];"""))
        body.append(par_for(gs[l],
            f"            u{l}[i][j] = u{l}[i][j] + 0.5 * r{l}[i][j]"
            f" + 0.125 * (r{l}[i-1][j] + r{l}[i+1][j]"
            f" + r{l}[i][j-1] + r{l}[i][j+1]);"))
    body.append("    }")
    # norm check (still inside the region; unorm zeroed before entry)
    body.append(f"""    #pragma omp for schedule(runtime) reduction(+: unorm)
    for (i = 0; i < {g}; i = i + 1) {{
        for (j = 0; j < {g}; j = j + 1) {{
            unorm = unorm + fabs(u0[i][j]);
        }}
    }}""")

    inner = "\n".join(body).replace("\n", "\n    ")
    return ("/* mini-MG: multigrid V-cycle (NPB MG pattern) */\n"
            + "\n".join(decls)
            + "\ndouble unorm;\nint i, j;\n"
            + "void main() {\n"
            + "    unorm = 0.0;\n"
            + "    #pragma omp parallel private(j)\n"
            + "    {\n"
            + "        int it;\n    "
            + inner + "\n"
            + "    }\n"
            + '    print("mg unorm", unorm);\n'
            + "}\n")


def reference(g: int = 32, levels: int = 3, cycles: int = 2
              ) -> Dict[str, np.ndarray]:
    """NumPy oracle for mini-MG."""
    gs = _sizes(g, levels)
    v = _rhs(g)
    u = [np.zeros((n, n)) for n in gs]
    r = [np.zeros((n, n)) for n in gs]

    def interior(n):
        return slice(1, n - 1)

    def resid(rl, vl, ul, n):
        I = interior(n)
        rl[I, I] = vl[I, I] - (4.0 * ul[I, I]
                               - ul[0:n - 2, I] - ul[2:n, I]
                               - ul[I, 0:n - 2] - ul[I, 2:n])

    def smooth(ul, rl, n):
        I = interior(n)
        ul[I, I] = (ul[I, I] + 0.5 * rl[I, I]
                    + 0.125 * (rl[0:n - 2, I] + rl[2:n, I]
                               + rl[I, 0:n - 2] + rl[I, 2:n]))

    for _ in range(cycles):
        resid(r[0], v, u[0], gs[0])
        for l in range(levels - 1):
            nc = gs[l + 1]
            I = interior(nc)
            ii = np.arange(1, nc - 1)
            rf = r[l]
            r[l + 1][1:nc - 1, 1:nc - 1] = 0.25 * (
                rf[2 * ii[:, None], 2 * ii[None, :]]
                + rf[2 * ii[:, None] + 1, 2 * ii[None, :]]
                + rf[2 * ii[:, None], 2 * ii[None, :] + 1]
                + rf[2 * ii[:, None] + 1, 2 * ii[None, :] + 1])
        lc = levels - 1
        nc = gs[lc]
        u[lc][1:nc - 1, 1:nc - 1] = 0.0
        smooth(u[lc], r[lc], nc)
        smooth(u[lc], r[lc], nc)
        for l in range(levels - 2, -1, -1):
            nc = gs[l + 1]
            ii = np.arange(1, nc - 1)
            uc = u[l + 1][1:nc - 1, 1:nc - 1]
            for di in (0, 1):
                for dj in (0, 1):
                    u[l][2 * ii[:, None] + di, 2 * ii[None, :] + dj] += uc
            smooth(u[l], r[l], gs[l])
    return {"u0": u[0], "unorm": np.array([np.abs(u[0]).sum()])}


SPEC = register(KernelSpec(
    name="mg",
    description="multigrid V-cycle, halo exchange at every level "
                "(NPB MG pattern)",
    source=source,
    reference=reference,
    sizes={
        "test": dict(g=16, levels=2, cycles=1),
        "bench": dict(g=48, levels=4, cycles=3),
    },
    rtol=1e-7,
))
