"""Mini-NAS Parallel Benchmarks in SlipC.

BT, CG, LU, MG, SP form the paper's evaluation suite (§5); EP is an
extra used to test §3.2.2's claim about embarrassingly parallel codes
under dynamic scheduling.
"""

from . import bt, cg, ep, lu, mg, sp      # noqa: F401  (registration)
from .cache import (COMPILE_CACHE, CompileCache, cache_stats, clear_cache,
                    compiler_fingerprint)
from .common import REGISTRY, KernelSpec

#: The paper's Table-2 suite (EP excluded).
PAPER_SUITE = ("bt", "cg", "lu", "mg", "sp")

__all__ = ["REGISTRY", "KernelSpec", "PAPER_SUITE",
           "COMPILE_CACHE", "CompileCache", "cache_stats", "clear_cache",
           "compiler_fingerprint",
           "bt", "cg", "ep", "lu", "mg", "sp"]
