"""Mini-LU: pipelined SSOR wavefront sweeps.

Communication pattern preserved from NAS LU (OpenMP version): the
lower- and upper-triangular sweeps carry a true data dependence from
row block to row block, so the OpenMP code runs a software pipeline --
each thread processes its row block one column-block at a time, spinning
on a shared flag array until its predecessor has finished the matching
column block (NPB-LU's ``flag``/``#pragma omp flush`` idiom).  Threads
therefore spend real time in pipeline fill/drain, and the A-stream's
prefetching is bounded by the true dependences, which is why the paper
sees LU's smallest slipstream gain (5%).

The paper also notes LU "programmatically specifies" static scheduling
for a significant portion of the code -- reproduced here by explicit
thread-id block partitioning (no omp for), so LU is excluded from the
dynamic-scheduling experiment just as in §5.2.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .common import KernelSpec, register

WD = 0.5       # diagonal weight
WN = 0.22      # neighbour coupling

MAX_THREADS = 64


def source(g: int = 40, cblocks: int = 4, iters: int = 2) -> str:
    """Generate mini-LU SlipC source (pipelined SSOR)."""
    return f"""
/* mini-LU: pipelined SSOR wavefront (NPB LU pattern) */
double u[{g}][{g}];
int flag[{MAX_THREADS}];
int flag2[{MAX_THREADS}];
double unorm;
int i, j;

void main() {{
    int it;
    #pragma omp parallel for schedule(runtime) private(j)
    for (i = 0; i < {g}; i = i + 1) {{
        for (j = 0; j < {g}; j = j + 1) {{
            u[i][j] = (mod(i * 5 + j * 3, 13) - 6) * 0.1;
        }}
        if (i < {MAX_THREADS}) {{
            flag[i] = 0;
            flag2[i] = 0;
        }}
    }}
    for (it = 0; it < {iters}; it = it + 1) {{
        #pragma omp parallel private(i, j)
        {{
            int t;  int nt;  int lo;  int hi;  int c;  int jlo;  int jhi;
            int target;
            t = omp_get_thread_num();
            nt = omp_get_num_threads();
            lo = 1 + ({g} - 2) * t / nt;
            hi = 1 + ({g} - 2) * (t + 1) / nt;
            /* lower sweep: depends on north (i-1) and west (j-1) */
            for (c = 0; c < {cblocks}; c = c + 1) {{
                jlo = 1 + ({g} - 2) * c / {cblocks};
                jhi = 1 + ({g} - 2) * (c + 1) / {cblocks};
                if (t > 0) {{
                    target = it * {cblocks} + c + 1;
                    while (flag[t - 1] < target) {{
                        #pragma omp flush
                    }}
                }}
                for (i = lo; i < hi; i = i + 1) {{
                    for (j = jlo; j < jhi; j = j + 1) {{
                        u[i][j] = {WD} * u[i][j]
                            + {WN} * (u[i-1][j] + u[i][j-1]) + 0.01;
                    }}
                }}
                flag[t] = it * {cblocks} + c + 1;
                #pragma omp flush
            }}
            #pragma omp barrier
            /* upper sweep: depends on south (i+1) and east (j+1),
               pipeline runs in the reverse direction */
            for (c = 0; c < {cblocks}; c = c + 1) {{
                jhi = {g} - 1 - ({g} - 2) * c / {cblocks};
                jlo = {g} - 1 - ({g} - 2) * (c + 1) / {cblocks};
                if (t < nt - 1) {{
                    target = it * {cblocks} + c + 1;
                    while (flag2[t + 1] < target) {{
                        #pragma omp flush
                    }}
                }}
                for (i = hi - 1; i >= lo; i = i - 1) {{
                    for (j = jhi - 1; j >= jlo; j = j - 1) {{
                        u[i][j] = {WD} * u[i][j]
                            + {WN} * (u[i+1][j] + u[i][j+1]) + 0.01;
                    }}
                }}
                flag2[t] = it * {cblocks} + c + 1;
                #pragma omp flush
            }}
            #pragma omp barrier
            #pragma omp master
            {{
                i = 0;  /* keep master's A-stream aligned (no-op work) */
            }}
        }}
    }}
    unorm = 0.0;
    #pragma omp parallel for schedule(runtime) reduction(+: unorm) private(j)
    for (i = 0; i < {g}; i = i + 1) {{
        for (j = 0; j < {g}; j = j + 1) {{
            unorm = unorm + fabs(u[i][j]);
        }}
    }}
    print("lu unorm", unorm);
}}
"""


def reference(g: int = 40, cblocks: int = 4, iters: int = 2
              ) -> Dict[str, np.ndarray]:
    """NumPy oracle for mini-LU (sequential SSOR order)."""
    i = np.arange(g)[:, None]
    j = np.arange(g)[None, :]
    u = ((((i * 5 + j * 3) % 13) - 6) * 0.1).astype(float)
    for _ in range(iters):
        # lower sweep: in-place Gauss-Seidel order (row-major ascending)
        for ii in range(1, g - 1):
            for jj in range(1, g - 1):
                u[ii, jj] = (WD * u[ii, jj]
                             + WN * (u[ii - 1, jj] + u[ii, jj - 1]) + 0.01)
        # upper sweep: descending order
        for ii in range(g - 2, 0, -1):
            for jj in range(g - 2, 0, -1):
                u[ii, jj] = (WD * u[ii, jj]
                             + WN * (u[ii + 1, jj] + u[ii, jj + 1]) + 0.01)
    return {"u": u, "unorm": np.array([np.abs(u).sum()])}


SPEC = register(KernelSpec(
    name="lu",
    description="pipelined SSOR wavefront with flag synchronization "
                "(NPB LU pattern; static scheduling hard-coded)",
    source=source,
    reference=reference,
    sizes={
        "test": dict(g=18, cblocks=3, iters=1),
        "bench": dict(g=48, cblocks=4, iters=2),
    },
    rtol=1e-8,
))
