"""Mini-CG: conjugate-gradient-style sparse kernel.

Communication pattern preserved from NAS CG: a row-partitioned sparse
matrix-vector product whose column indices scatter across the whole
vector (so every node reads vector segments produced by every other
node each iteration), two dot-product reductions per iteration (global
critical-section combines + barriers), and a vector update that
re-invalidates the cached copies -- the producer/consumer migration CG
is known for.  The matrix structure comes from an elementwise hash so
it can be built with parallel first-touch initialization, exactly like
NPB's intent of distributing the data.

The iteration is a normalized power-method variant of the CG inner
loop: q = A p; alpha = p.q; beta = q.q; p = q / sqrt(beta).  It has CG's
memory behaviour with unconditionally stable arithmetic.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .common import KernelSpec, register

_HASH_A = 1103515245
_HASH_B = 2654435761
_HASH_M = 2 ** 31


def _columns(n: int, nnz: int) -> np.ndarray:
    i = np.arange(n, dtype=np.int64)[:, None]
    k = np.arange(nnz, dtype=np.int64)[None, :]
    return ((i * _HASH_A + (k + 1) * _HASH_B) % _HASH_M) % n


def _values(n: int, nnz: int, cols: np.ndarray) -> np.ndarray:
    i = np.arange(n, dtype=np.int64)[:, None]
    return 0.25 + 0.1 * ((cols + i) % 7)


def source(n: int = 512, nnz: int = 8, iters: int = 3) -> str:
    # NPB-style structure: ONE parallel region encloses the whole
    # iteration loop; the worksharing loops inside it are separated only
    # by barriers -- the "sessions" the slipstream token protocol counts,
    # which is what lets a LOCAL_SYNC A-stream run a session ahead.
    """Generate mini-CG SlipC source for the given size."""
    return f"""
/* mini-CG: sparse matvec + reductions (NPB CG communication pattern) */
double aval[{n}][{nnz}];
int acol[{n}][{nnz}];
double p[{n}];
double q[{n}];
double alpha;
double beta;
double zeta;
int i, k;

void main() {{
    zeta = 0.0;
    #pragma omp parallel private(k)
    {{
        int it;
        double norm;
        /* parallel build: first-touch distributes matrix and vectors */
        #pragma omp for schedule(runtime)
        for (i = 0; i < {n}; i = i + 1) {{
            for (k = 0; k < {nnz}; k = k + 1) {{
                acol[i][k] = ((i * {_HASH_A} + (k + 1) * {_HASH_B})
                              % {_HASH_M}) % {n};
                aval[i][k] = 0.25 + 0.1 * ((acol[i][k] + i) % 7);
            }}
            p[i] = 1.0 / ({n} * 1.0);
            q[i] = 0.0;
        }}
        for (it = 0; it < {iters}; it = it + 1) {{
            #pragma omp single
            {{
                alpha = 0.0;
                beta = 0.0;
            }}
            /* q = A p : every row gathers from scattered columns */
            #pragma omp for schedule(runtime)
            for (i = 0; i < {n}; i = i + 1) {{
                double s;
                s = 0.0;
                for (k = 0; k < {nnz}; k = k + 1) {{
                    s = s + aval[i][k] * p[acol[i][k]];
                }}
                q[i] = s;
            }}
            /* alpha = p.q ; beta = q.q : global reductions */
            #pragma omp for schedule(runtime) reduction(+: alpha)
            for (i = 0; i < {n}; i = i + 1) {{
                alpha = alpha + p[i] * q[i];
            }}
            #pragma omp for schedule(runtime) reduction(+: beta)
            for (i = 0; i < {n}; i = i + 1) {{
                beta = beta + q[i] * q[i];
            }}
            norm = 1.0 / sqrt(beta);
            /* p = q / ||q|| : producer update invalidating consumers */
            #pragma omp for schedule(runtime)
            for (i = 0; i < {n}; i = i + 1) {{
                p[i] = q[i] * norm;
            }}
            #pragma omp master
            {{
                zeta = zeta + alpha;
            }}
            /* keep the next iteration's single from zeroing alpha
               before the master has consumed it */
            #pragma omp barrier
        }}
    }}
    print("cg zeta", zeta);
}}
"""


def reference(n: int = 512, nnz: int = 8, iters: int = 3
              ) -> Dict[str, np.ndarray]:
    """NumPy oracle for mini-CG."""
    cols = _columns(n, nnz)
    vals = _values(n, nnz, cols)
    p = np.full(n, 1.0 / n)
    zeta = 0.0
    for _ in range(iters):
        q = (vals * p[cols]).sum(axis=1)
        alpha = float(p @ q)
        beta = float(q @ q)
        p = q / np.sqrt(beta)
        zeta += alpha
    return {"p": p, "zeta": np.array([zeta])}


SPEC = register(KernelSpec(
    name="cg",
    description="sparse matvec + global reductions (NPB CG pattern)",
    source=source,
    reference=reference,
    sizes={
        "test": dict(n=96, nnz=4, iters=2),
        "bench": dict(n=1024, nnz=8, iters=3),
    },
    rtol=1e-7,
))
