"""Content-addressed compile cache for the mini-NPB kernels.

Every figure and ablation is a sweep of independent simulations, and
until this layer existed each of those runs re-lexed, re-parsed,
re-outlined and re-codegenned the same SlipC kernel: a 20-run static
sweep compiled each benchmark 4 times over.  The cache keys a compiled
image on the *content* that determines it -- the generated source text
(which embeds bench, size class and every parameter override) plus a
fingerprint of the compiler's own sources -- so a sweep compiles each
kernel exactly once, and any change to a kernel parameter, a kernel
source template, or the compiler itself is an automatic miss.

Two layers:

* an in-process dictionary (always on), shared by every run in a
  process -- including a ``ProcessPoolContext`` worker, which compiles
  each distinct kernel at most once over its lifetime;
* an optional on-disk layer under ``~/.cache/repro/compile`` (override
  with ``REPRO_CACHE_DIR``; disable with ``REPRO_DISK_CACHE=0``) so
  repeated *invocations* -- and sibling pool workers -- share compiles.
  Disk entries are pickled :class:`CompiledProgram` images named by
  their content hash; a hash collision is impossible to observe in
  practice and a corrupt/unreadable entry silently falls back to a
  fresh compile.

Determinism note: compilation is a pure function of the source text, so
serving a cached image cannot change simulated cycle counts -- the same
image object is what a fresh compile would have produced.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Optional

from ..compiler import CompiledProgram, compile_source
from ..hotpath import hotpath_enabled

__all__ = ["CompileCache", "COMPILE_CACHE", "compiler_fingerprint",
           "cache_stats", "clear_cache", "cache_root"]

#: Modules whose sources determine what the compiler produces.  Any
#: edit to one of them changes the fingerprint and invalidates every
#: cached image (memory and disk alike).
_COMPILER_PACKAGES = ("lang", "compiler")

#: Individual extra files that shape the image beyond the compiler
#: packages: the generated-code emitter writes ``Code.gen_src`` into
#: the image, so its edits must miss the cache too.
_EXTRA_FILES = ("interp/compile.py",)

_fingerprint: Optional[str] = None


def compiler_fingerprint() -> str:
    """Hex digest over the front-end + back-end sources (memoized)."""
    global _fingerprint
    if _fingerprint is None:
        h = hashlib.sha256()
        root = Path(__file__).resolve().parent.parent
        for pkg in _COMPILER_PACKAGES:
            for path in sorted((root / pkg).glob("*.py")):
                h.update(path.name.encode())
                h.update(path.read_bytes())
        for rel in _EXTRA_FILES:
            path = root / rel
            if path.is_file():
                h.update(rel.encode())
                h.update(path.read_bytes())
        _fingerprint = h.hexdigest()
    return _fingerprint


def cache_root() -> Path:
    """Root of every on-disk content-addressed layer: compiled images
    live under ``<root>/compile``, the harness's run-result memo store
    (:class:`repro.harness.checkpoint.MemoStore`) under
    ``<root>/results``.  ``REPRO_CACHE_DIR`` overrides the default
    ``~/.cache/repro``."""
    base = os.environ.get("REPRO_CACHE_DIR")
    if base:
        return Path(base)
    return Path.home() / ".cache" / "repro"


def _disk_dir() -> Optional[Path]:
    """Resolved on-disk compile-cache directory, or None when disabled."""
    if os.environ.get("REPRO_DISK_CACHE", "1") == "0":
        return None
    return cache_root() / "compile"


class CompileCache:
    """Two-layer (memory + optional disk) compile cache."""

    def __init__(self, disk_dir: Optional[Path] = None, disk: bool = True):
        self._mem: Dict[str, CompiledProgram] = {}
        self._disk_dir = disk_dir
        self._disk = disk
        self.hits = 0            # served from memory
        self.disk_hits = 0       # served from disk (and promoted)
        self.misses = 0          # compiled fresh

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def key_for(source: str) -> str:
        """Content hash of a compile request: source + compiler version
        + the optimizer configuration that shapes the opcode stream.

        The superinstruction-fusion and generated-code tiers change
        what ``compile_source`` emits without changing any compiler
        source file, so both must be part of the key -- otherwise a
        disk entry produced with a tier on would be served to a
        ``REPRO_HOTPATH`` ablation run with it off (and vice versa:
        an all-off image without ``gen_src`` would silently drop a
        compile-tier process back to the interpreter)."""
        h = hashlib.sha256()
        h.update(compiler_fingerprint().encode())
        h.update(b"fuse=1" if hotpath_enabled("fuse") else b"fuse=0")
        h.update(b"compile=1" if hotpath_enabled("compile")
                 else b"compile=0")
        h.update(source.encode())
        return h.hexdigest()

    def _dir(self) -> Optional[Path]:
        if not self._disk:
            return None
        return self._disk_dir if self._disk_dir is not None else _disk_dir()

    # -- operations ----------------------------------------------------------

    def get_or_compile(self, source: str) -> CompiledProgram:
        """Return the compiled image for ``source``, caching it."""
        key = self.key_for(source)
        image = self._mem.get(key)
        if image is not None:
            self.hits += 1
            return image
        image = self._load_disk(key)
        if image is not None:
            self.disk_hits += 1
            self._mem[key] = image
            return image
        self.misses += 1
        image = compile_source(source)
        self._mem[key] = image
        self._store_disk(key, image)
        return image

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory layer (and optionally the disk layer)."""
        self._mem.clear()
        if disk:
            d = self._dir()
            if d is not None and d.is_dir():
                for p in d.glob("*.img"):
                    try:
                        p.unlink()
                    except OSError:
                        pass

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters (for tests and the perf baseline)."""
        return {"hits": self.hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "entries": len(self._mem)}

    # -- disk layer ----------------------------------------------------------

    def _load_disk(self, key: str) -> Optional[CompiledProgram]:
        d = self._dir()
        if d is None:
            return None
        path = d / f"{key}.img"
        try:
            with open(path, "rb") as fh:
                image = pickle.load(fh)
        # pickle.load on a corrupt entry raises essentially anything
        # (ValueError, IndexError, ... depending on the bytes); a broken
        # cache file must never be worse than a cache miss.
        except Exception:
            return None
        return image if isinstance(image, CompiledProgram) else None

    def _store_disk(self, key: str, image: CompiledProgram) -> None:
        d = self._dir()
        if d is None:
            return
        try:
            d.mkdir(parents=True, exist_ok=True)
            # Atomic publish: never expose a half-written entry to a
            # concurrently reading pool worker.
            fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(image, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, d / f"{key}.img")
        except OSError:
            pass                 # unwritable cache dir: stay memory-only


#: Process-wide cache used by :meth:`KernelSpec.compile`.
COMPILE_CACHE = CompileCache()


def cache_stats() -> Dict[str, int]:
    """Counters of the process-wide cache."""
    return COMPILE_CACHE.stats()


def clear_cache(disk: bool = False) -> None:
    """Reset the process-wide cache (tests; ``disk=True`` wipes files)."""
    COMPILE_CACHE.clear(disk=disk)
