"""Mini-EP: embarrassingly parallel random-number kernel.

NAS EP generates pairs of pseudo-random numbers and tallies acceptance
counts -- essentially zero communication until a final reduction.  The
paper singles this class out in §3.2.2: "Cache affinity is not a
problem for embarrassingly parallel applications.  For this class of
application, dynamic scheduling is apparently advantageous" -- unlike
the iterative benchmarks, whose data reuse dynamic scheduling destroys.
Mini-EP exists to test exactly that claim (see
``benchmarks/bench_ablation_ep_affinity.py``); it is not part of the
paper's five-benchmark evaluation suite.

Each iteration seeds a per-sample LCG from the sample index (so any
schedule computes the identical result), walks it ``steps`` times, and
accumulates two sums reduced at the end.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .common import KernelSpec, register

_A = 1103515245
_C = 12345
_M = 2 ** 31


def source(n: int = 2048, steps: int = 8) -> str:
    """Generate mini-EP SlipC source."""
    return f"""
/* mini-EP: embarrassingly parallel random sums (NPB EP pattern) */
double sx;
double sy;
int i;

void main() {{
    #pragma omp parallel
    {{
        #pragma omp for schedule(runtime) reduction(+: sx) reduction(+: sy)
        for (i = 0; i < {n}; i = i + 1) {{
            int seed;  int k;
            double x;  double y;
            seed = mod(i * 69069 + 1, {_M});
            x = 0.0;
            y = 0.0;
            for (k = 0; k < {steps}; k = k + 1) {{
                seed = mod(seed * {_A} + {_C}, {_M});
                x = x + (seed % 1000) * 0.001;
                y = y + (seed % 777) * 0.001;
            }}
            sx = sx + x;
            sy = sy + y;
        }}
    }}
    print("ep sums", sx, sy);
}}
"""


def reference(n: int = 2048, steps: int = 8) -> Dict[str, np.ndarray]:
    """NumPy oracle for mini-EP."""
    seeds = (np.arange(n, dtype=np.int64) * 69069 + 1) % _M
    sx = np.zeros(n)
    sy = np.zeros(n)
    for _ in range(steps):
        seeds = (seeds * _A + _C) % _M
        sx += (seeds % 1000) * 0.001
        sy += (seeds % 777) * 0.001
    return {"sx": np.array([sx.sum()]), "sy": np.array([sy.sum()])}


SPEC = register(KernelSpec(
    name="ep",
    description="embarrassingly parallel random sums: no communication "
                "until the final reduction (NPB EP pattern)",
    source=source,
    reference=reference,
    sizes={
        "test": dict(n=256, steps=4),
        "bench": dict(n=2048, steps=8),
    },
    rtol=1e-9,
))
