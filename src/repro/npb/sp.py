"""Mini-SP: scalar ADI sweeps over a 3D grid.

Structure preserved from NAS SP (OpenMP): the x- and y-direction line
solves are parallelized over grid *planes* (each thread sweeps inside
its own planes: unit-stride, CMP-local), while the z-direction solve
carries its recurrence *across* planes and is parallelized over rows --
so every z-sweep pulls the whole working set out of the plane-owners'
caches and into the row-owners' caches, and the next iteration's x-sweep
pulls it back.  This phase-to-phase working-set migration is SP's
signature behaviour on a DSM machine and the traffic slipstream
prefetching attacks.  Cache lines always travel whole (the innermost j
index is contiguous), as in the real 3D benchmark.

The plane count is fixed at the paper's machine width (16 CMPs), the
classic fixed-problem-size setup in which doubling the task count adds
no plane-level parallelism -- the regime §1 motivates ("adding more
computational resources does not always reduce execution time").

Each line solve is a forward/backward first-order recurrence (the
memory access pattern of the Thomas algorithm without its extra
temporaries); BT is the same structure with 3-component block math.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .common import KernelSpec, register

CF = 0.35      # forward coupling
CB = 0.30      # backward coupling
W = 0.55       # diagonal weight


def source(p: int = 16, g: int = 24, iters: int = 2) -> str:
    """Generate mini-SP SlipC source for the given grid."""
    return f"""
/* mini-SP: 3D scalar ADI sweeps (NPB SP communication pattern) */
double u[{p}][{g}][{g}];
double unorm;
int k, i, j;

void main() {{
    unorm = 0.0;
    #pragma omp parallel private(k, i, j)
    {{
    int it;
    #pragma omp for schedule(runtime)
    for (k = 0; k < {p}; k = k + 1) {{
        for (i = 0; i < {g}; i = i + 1) {{
            for (j = 0; j < {g}; j = j + 1) {{
                u[k][i][j] = (mod(k * 7 + i * 5 + j * 3, 13) - 6) * 0.1;
            }}
        }}
    }}
    for (it = 0; it < {iters}; it = it + 1) {{
        /* x-sweep: recurrence along j, parallel over planes (local) */
        #pragma omp for schedule(runtime)
        for (k = 0; k < {p}; k = k + 1) {{
            for (i = 0; i < {g}; i = i + 1) {{
                for (j = 1; j < {g}; j = j + 1) {{
                    u[k][i][j] = {W} * u[k][i][j] + {CF} * u[k][i][j-1];
                }}
                for (j = {g} - 2; j >= 0; j = j - 1) {{
                    u[k][i][j] = {W} * u[k][i][j] + {CB} * u[k][i][j+1];
                }}
            }}
        }}
        /* y-sweep: recurrence along i, still plane-local */
        #pragma omp for schedule(runtime)
        for (k = 0; k < {p}; k = k + 1) {{
            for (i = 1; i < {g}; i = i + 1) {{
                for (j = 0; j < {g}; j = j + 1) {{
                    u[k][i][j] = {W} * u[k][i][j] + {CF} * u[k][i-1][j];
                }}
            }}
            for (i = {g} - 2; i >= 0; i = i - 1) {{
                for (j = 0; j < {g}; j = j + 1) {{
                    u[k][i][j] = {W} * u[k][i][j] + {CB} * u[k][i+1][j];
                }}
            }}
        }}
        /* z-sweep: recurrence along k, parallel over rows --
           the whole working set migrates plane-owners -> row-owners */
        #pragma omp for schedule(runtime)
        for (i = 0; i < {g}; i = i + 1) {{
            for (k = 1; k < {p}; k = k + 1) {{
                for (j = 0; j < {g}; j = j + 1) {{
                    u[k][i][j] = {W} * u[k][i][j] + {CF} * u[k-1][i][j];
                }}
            }}
            for (k = {p} - 2; k >= 0; k = k - 1) {{
                for (j = 0; j < {g}; j = j + 1) {{
                    u[k][i][j] = {W} * u[k][i][j] + {CB} * u[k+1][i][j];
                }}
            }}
        }}
    }}
    #pragma omp for schedule(runtime) reduction(+: unorm)
    for (k = 0; k < {p}; k = k + 1) {{
        for (i = 0; i < {g}; i = i + 1) {{
            for (j = 0; j < {g}; j = j + 1) {{
                unorm = unorm + fabs(u[k][i][j]);
            }}
        }}
    }}
    }}
    print("sp unorm", unorm);
}}
"""


def reference(p: int = 16, g: int = 24, iters: int = 2
              ) -> Dict[str, np.ndarray]:
    """NumPy oracle for mini-SP."""
    k = np.arange(p)[:, None, None]
    i = np.arange(g)[None, :, None]
    j = np.arange(g)[None, None, :]
    u = ((((k * 7 + i * 5 + j * 3) % 13) - 6) * 0.1).astype(float)
    for _ in range(iters):
        for jj in range(1, g):
            u[:, :, jj] = W * u[:, :, jj] + CF * u[:, :, jj - 1]
        for jj in range(g - 2, -1, -1):
            u[:, :, jj] = W * u[:, :, jj] + CB * u[:, :, jj + 1]
        for ii in range(1, g):
            u[:, ii, :] = W * u[:, ii, :] + CF * u[:, ii - 1, :]
        for ii in range(g - 2, -1, -1):
            u[:, ii, :] = W * u[:, ii, :] + CB * u[:, ii + 1, :]
        for kk in range(1, p):
            u[kk, :, :] = W * u[kk, :, :] + CF * u[kk - 1, :, :]
        for kk in range(p - 2, -1, -1):
            u[kk, :, :] = W * u[kk, :, :] + CB * u[kk + 1, :, :]
    return {"u": u, "unorm": np.array([np.abs(u).sum()])}


SPEC = register(KernelSpec(
    name="sp",
    description="3D scalar ADI sweeps, working-set migration between "
                "plane- and row-parallel phases (NPB SP pattern)",
    source=source,
    reference=reference,
    sizes={
        "test": dict(p=8, g=12, iters=1),
        "bench": dict(p=16, g=24, iters=2),
    },
    rtol=1e-8,
))
