"""Mini-BT: block-tridiagonal ADI sweeps over a 3D grid.

Identical phase structure (and identical working-set migration between
the plane-parallel x/y solves and the row-parallel z solve) as mini-SP
-- see sp.py -- but every grid point carries a 3-component state vector
coupled through a dense 3x3 block at each recurrence step, matching NAS
BT's much higher flops-per-point ratio.  The compute/communication
balance is the axis along which the paper's Figure 2 separates BT from
SP.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .common import KernelSpec, register

# 3x3 contraction block (row sums < 1 for stability) plus coupling.
B = [[0.40, 0.15, 0.05],
     [0.10, 0.45, 0.10],
     [0.05, 0.15, 0.40]]
CF = 0.30
CB = 0.25


def _block(idx_c: str, idx_n: str, coupling: float, indent: str) -> str:
    """3-component block update at idx_c coupled to neighbour idx_n."""
    lines = [f"{indent}t{m} = u{m+1}[{idx_c}];" for m in range(3)]
    for k in range(3):
        terms = " + ".join(f"{B[k][m]} * t{m}" for m in range(3))
        lines.append(f"{indent}u{k+1}[{idx_c}] = {terms} "
                     f"+ {coupling} * u{k+1}[{idx_n}];")
    return "\n".join(lines)


def source(p: int = 16, g: int = 16, iters: int = 2) -> str:
    """Generate mini-BT SlipC source for the given grid."""
    ind = " " * 20
    xf = _block("k][i][j", "k][i][j-1", CF, ind)
    xb = _block("k][i][j", "k][i][j+1", CB, ind)
    yf = _block("k][i][j", "k][i-1][j", CF, ind)
    yb = _block("k][i][j", "k][i+1][j", CB, ind)
    zf = _block("k][i][j", "k-1][i][j", CF, ind)
    zb = _block("k][i][j", "k+1][i][j", CB, ind)
    return f"""
/* mini-BT: 3D block-tridiagonal ADI sweeps (NPB BT pattern) */
double u1[{p}][{g}][{g}];
double u2[{p}][{g}][{g}];
double u3[{p}][{g}][{g}];
double unorm;
int k, i, j;

void main() {{
    unorm = 0.0;
    #pragma omp parallel private(k, i, j)
    {{
    int it;
    #pragma omp for schedule(runtime)
    for (k = 0; k < {p}; k = k + 1) {{
        for (i = 0; i < {g}; i = i + 1) {{
            for (j = 0; j < {g}; j = j + 1) {{
                u1[k][i][j] = (mod(k * 7 + i * 5 + j * 3, 13) - 6) * 0.1;
                u2[k][i][j] = (mod(k * 2 + i * 3 + j * 7, 11) - 5) * 0.1;
                u3[k][i][j] = (mod(k * 5 + i * 11 + j * 2, 9) - 4) * 0.1;
            }}
        }}
    }}
    for (it = 0; it < {iters}; it = it + 1) {{
        /* x-sweep: block recurrence along j, plane-parallel (local) */
        #pragma omp for schedule(runtime)
        for (k = 0; k < {p}; k = k + 1) {{
            double t0;  double t1;  double t2;
            for (i = 0; i < {g}; i = i + 1) {{
                for (j = 1; j < {g}; j = j + 1) {{
{xf}
                }}
                for (j = {g} - 2; j >= 0; j = j - 1) {{
{xb}
                }}
            }}
        }}
        /* y-sweep: block recurrence along i, plane-parallel (local) */
        #pragma omp for schedule(runtime)
        for (k = 0; k < {p}; k = k + 1) {{
            double t0;  double t1;  double t2;
            for (i = 1; i < {g}; i = i + 1) {{
                for (j = 0; j < {g}; j = j + 1) {{
{yf}
                }}
            }}
            for (i = {g} - 2; i >= 0; i = i - 1) {{
                for (j = 0; j < {g}; j = j + 1) {{
{yb}
                }}
            }}
        }}
        /* z-sweep: block recurrence along k, row-parallel (migrates) */
        #pragma omp for schedule(runtime)
        for (i = 0; i < {g}; i = i + 1) {{
            double t0;  double t1;  double t2;
            for (k = 1; k < {p}; k = k + 1) {{
                for (j = 0; j < {g}; j = j + 1) {{
{zf}
                }}
            }}
            for (k = {p} - 2; k >= 0; k = k - 1) {{
                for (j = 0; j < {g}; j = j + 1) {{
{zb}
                }}
            }}
        }}
    }}
    #pragma omp for schedule(runtime) reduction(+: unorm)
    for (k = 0; k < {p}; k = k + 1) {{
        for (i = 0; i < {g}; i = i + 1) {{
            for (j = 0; j < {g}; j = j + 1) {{
                unorm = unorm + fabs(u1[k][i][j]) + fabs(u2[k][i][j])
                    + fabs(u3[k][i][j]);
            }}
        }}
    }}
    }}
    print("bt unorm", unorm);
}}
"""


def reference(p: int = 16, g: int = 16, iters: int = 2
              ) -> Dict[str, np.ndarray]:
    """NumPy oracle for mini-BT."""
    k = np.arange(p)[:, None, None]
    i = np.arange(g)[None, :, None]
    j = np.arange(g)[None, None, :]
    u = np.stack([
        ((((k * 7 + i * 5 + j * 3) % 13) - 6) * 0.1) + np.zeros((p, g, g)),
        ((((k * 2 + i * 3 + j * 7) % 11) - 5) * 0.1) + np.zeros((p, g, g)),
        ((((k * 5 + i * 11 + j * 2) % 9) - 4) * 0.1) + np.zeros((p, g, g)),
    ])                                    # (3, p, g, g)
    Bm = np.array(B)
    for _ in range(iters):
        for jj in range(1, g):
            u[:, :, :, jj] = np.einsum("cm,mpq->cpq", Bm, u[:, :, :, jj]) \
                + CF * u[:, :, :, jj - 1]
        for jj in range(g - 2, -1, -1):
            u[:, :, :, jj] = np.einsum("cm,mpq->cpq", Bm, u[:, :, :, jj]) \
                + CB * u[:, :, :, jj + 1]
        for ii in range(1, g):
            u[:, :, ii, :] = np.einsum("cm,mpq->cpq", Bm, u[:, :, ii, :]) \
                + CF * u[:, :, ii - 1, :]
        for ii in range(g - 2, -1, -1):
            u[:, :, ii, :] = np.einsum("cm,mpq->cpq", Bm, u[:, :, ii, :]) \
                + CB * u[:, :, ii + 1, :]
        for kk in range(1, p):
            u[:, kk, :, :] = np.einsum("cm,mpq->cpq", Bm, u[:, kk, :, :]) \
                + CF * u[:, kk - 1, :, :]
        for kk in range(p - 2, -1, -1):
            u[:, kk, :, :] = np.einsum("cm,mpq->cpq", Bm, u[:, kk, :, :]) \
                + CB * u[:, kk + 1, :, :]
    return {"u1": u[0], "u2": u[1], "u3": u[2],
            "unorm": np.array([np.abs(u).sum()])}


SPEC = register(KernelSpec(
    name="bt",
    description="3D block-tridiagonal ADI sweeps: SP's migration "
                "pattern with 3x3 block arithmetic (NPB BT pattern)",
    source=source,
    reference=reference,
    sizes={
        "test": dict(p=6, g=10, iters=1),
        "bench": dict(p=16, g=16, iters=2),
    },
    rtol=1e-8,
))
