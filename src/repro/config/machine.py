"""Machine configuration: the paper's Table 1 simulated system parameters.

All latencies in Table 1 are given in nanoseconds; the simulator's clock
unit is one *processor cycle* at ``clock_ghz`` (1.2 GHz in the paper), so
``MachineConfig.cycles(ns)`` converts.  The two derived figures the paper
quotes -- 170 ns minimum local L2-miss latency and 290 ns minimum remote
(clean two-hop) latency -- are exposed as properties and validated by
``benchmarks/bench_table1_latencies.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["CacheConfig", "MachineConfig", "PAPER_MACHINE"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and hit latency of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_cycles: int

    def __post_init__(self):
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("cache size must be a multiple of assoc*line")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        """Number of sets (size / (assoc * line))."""
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def num_lines(self) -> int:
        """Total line capacity."""
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class MachineConfig:
    """A CMP-based DSM multiprocessor (paper Table 1 defaults)."""

    n_cmps: int = 16
    cpus_per_cmp: int = 2
    clock_ghz: float = 1.2

    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=16 * 1024, assoc=2, line_bytes=128, hit_cycles=1))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=1024 * 1024, assoc=4, line_bytes=128, hit_cycles=10))

    # SimOS NUMA memory-model parameters (nanoseconds, Table 1).
    bus_time_ns: float = 30.0
    pi_local_dc_time_ns: float = 10.0
    ni_local_dc_time_ns: float = 60.0
    ni_remote_dc_time_ns: float = 10.0
    net_time_ns: float = 50.0
    mem_time_ns: float = 50.0

    page_bytes: int = 4096
    #: "round_robin" pages across nodes or "first_touch" by first accessor.
    placement: str = "first_touch"

    def __post_init__(self):
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError("L1 and L2 must share a line size")
        if self.placement not in ("round_robin", "first_touch", "block"):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.cpus_per_cmp < 1:
            raise ValueError("need at least one CPU per CMP")

    # -- unit conversion -----------------------------------------------------

    def cycles(self, ns: float) -> float:
        """Convert nanoseconds to processor cycles."""
        return ns * self.clock_ghz

    def ns(self, cycles: float) -> float:
        """Convert processor cycles to nanoseconds."""
        return cycles / self.clock_ghz

    @property
    def n_cpus(self) -> int:
        """Total processors (CMPs x CPUs per CMP)."""
        return self.n_cmps * self.cpus_per_cmp

    @property
    def line_bytes(self) -> int:
        """Cache line size shared by both levels."""
        return self.l1.line_bytes

    # -- Table-1 derived latencies (uncontended minimums) ---------------------

    @property
    def local_miss_ns(self) -> float:
        """Local L2 miss: bus + home directory/NI controller + memory + bus
        (= 170 ns with Table-1 parameters)."""
        return (self.bus_time_ns + self.ni_local_dc_time_ns
                + self.mem_time_ns + self.bus_time_ns)

    @property
    def remote_miss_ns(self) -> float:
        """Remote clean two-hop miss: the local path plus a network
        traversal and remote-NI pass-through in each direction
        (= 290 ns with Table-1 parameters)."""
        return (self.local_miss_ns
                + 2 * self.net_time_ns + 2 * self.ni_remote_dc_time_ns)

    def with_(self, **kw) -> "MachineConfig":
        """Return a copy with fields replaced."""
        return replace(self, **kw)

    def describe(self) -> Dict[str, object]:
        """Table-1-style parameter dump for reports."""
        return {
            "CMPs": self.n_cmps,
            "CPUs/CMP": self.cpus_per_cmp,
            "Clock (GHz)": self.clock_ghz,
            "L1 size/assoc/hit": (self.l1.size_bytes, self.l1.assoc,
                                  self.l1.hit_cycles),
            "L2 size/assoc/hit": (self.l2.size_bytes, self.l2.assoc,
                                  self.l2.hit_cycles),
            "BusTime (ns)": self.bus_time_ns,
            "PILocalDCTime (ns)": self.pi_local_dc_time_ns,
            "NILocalDCTime (ns)": self.ni_local_dc_time_ns,
            "NIRemoteDCTime (ns)": self.ni_remote_dc_time_ns,
            "NetTime (ns)": self.net_time_ns,
            "MemTime (ns)": self.mem_time_ns,
            "local miss (ns)": self.local_miss_ns,
            "remote miss (ns)": self.remote_miss_ns,
        }


#: The exact configuration of the paper's Table 1.
PAPER_MACHINE = MachineConfig()
