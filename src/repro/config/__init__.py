"""Configuration: paper Table 1 (machine) and Table 2 (benchmarks)."""

from .machine import PAPER_MACHINE, CacheConfig, MachineConfig

__all__ = ["PAPER_MACHINE", "CacheConfig", "MachineConfig"]
