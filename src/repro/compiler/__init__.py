"""SlipC compiler back end: bytecode IR and OpenMP lowering."""

from .bytecode import (Code, CompiledProgram, GlobalDecl, OP_COST,
                       RT_RETURNS, disassemble)
from .codegen import compile_program, compile_source

__all__ = ["Code", "CompiledProgram", "GlobalDecl", "OP_COST",
           "RT_RETURNS", "disassemble", "compile_program", "compile_source"]
