"""Peephole optimizer for the bytecode IR.

Omni is "an optimizing compiler for OpenMP"; our back end gets a small
but real optimization pass: constant folding, branch folding on
constant conditions, and dead push/pop elimination, all performed as a
single linear peephole scan with jump-target remapping.

The pass is semantics-preserving by construction: windows never span a
jump target (every branch target starts a fresh window), and the old->
new index map rewrites every branch.  Mode-independence is unaffected
-- the optimizer runs before the image is sealed, identically for every
execution mode.

A final *superinstruction fusion* pass (``REPRO_HOTPATH`` tier
``fuse``) collapses the dominant stack-shuffle sequences of the NPB
inner loops into single fused opcodes -- up to whole loop idioms like
``i = i + 1`` (``lcbs``) and ``i < n`` (``lcjf``); see the table in
``bytecode``.  Fusion is cycle-exact by construction:
each fused op charges the exact sum of its parts, a window never
contains a branch target past its first instruction, and -- so per-line
profile totals cannot shift -- only instructions sharing one source
line fuse.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from ..hotpath import hotpath_enabled
from .bytecode import Code, CompiledProgram

__all__ = ["optimize_code", "optimize_program", "fuse_code",
           "fuse_program"]

_JUMPS = ("jump", "jfalse", "jnone")

#: Fused ops that carry a branch target, with the target's position in
#: their arg tuple (kept visible to target collection and remapping).
_FUSED_JUMPS = {"cjf": 1, "lcjf": 3, "lljf": 3, "lcbsj": 4}

_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
}


def _fold_div(a, b):
    if b == 0:
        return None                      # leave runtime semantics alone
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _jump_targets(instrs: List[Tuple]) -> Set[int]:
    targets: Set[int] = set()
    for ins in instrs:
        if ins[0] in _JUMPS:
            targets.add(ins[1])
        else:
            pos = _FUSED_JUMPS.get(ins[0])
            if pos is not None:
                targets.add(ins[1][pos])
    return targets


def _remap_branches(out: List[Tuple], remap: Dict[int, int]) -> None:
    """Rewrite every branch target in ``out`` through ``remap``."""
    for k, ins in enumerate(out):
        if ins[0] in _JUMPS:
            out[k] = (ins[0], remap[ins[1]])
        else:
            pos = _FUSED_JUMPS.get(ins[0])
            if pos is not None:
                arg = list(ins[1])
                arg[pos] = remap[arg[pos]]
                out[k] = (ins[0], tuple(arg))


def optimize_code(code: Code, max_passes: int = 4) -> int:
    """Optimize one function in place; returns instructions removed."""
    removed_total = 0
    for _ in range(max_passes):
        removed = _one_pass(code)
        removed_total += removed
        if removed == 0:
            break
    return removed_total


def _one_pass(code: Code) -> int:
    instrs = code.instrs
    targets = _jump_targets(instrs)
    out: List[Tuple] = []
    out_lines: List[int] = []            # kept in lockstep with ``out``
    remap: Dict[int, int] = {}
    i = 0
    n = len(instrs)
    lines = code.lines if len(code.lines) == n else [0] * n

    def is_const(idx_out: int) -> bool:
        """Is out[idx_out] a const not serving as a branch target?"""
        return idx_out >= 0 and out[idx_out][0] == "const"

    while i < n:
        remap[i] = len(out)
        ins = instrs[i]
        op = ins[0]
        barrier = i in targets           # window may not extend over this

        if not barrier and op == "binop" and len(out) >= 2 \
                and is_const(len(out) - 1) and is_const(len(out) - 2) \
                and _window_free(remap, targets, i, 2):
            a = out[-2][1]
            b = out[-1][1]
            o = ins[1]
            folded = None
            if o in _FOLDABLE and not isinstance(a, str) \
                    and not isinstance(b, str):
                folded = _FOLDABLE[o](a, b)
            elif o == "/" and not isinstance(a, str) \
                    and not isinstance(b, str):
                folded = _fold_div(a, b)
            if folded is not None and _finite(folded):
                out.pop()
                out.pop()
                out.append(("const", folded))
                out_lines.pop()
                out_lines.pop()
                out_lines.append(lines[i])
                i += 1
                continue

        if not barrier and op == "unop" and ins[1] == "-" and out \
                and is_const(len(out) - 1) \
                and not isinstance(out[-1][1], str) \
                and _window_free(remap, targets, i, 1):
            v = out.pop()[1]
            out.append(("const", -v))
            out_lines[-1] = lines[i]
            i += 1
            continue

        if not barrier and op == "pop" and out \
                and out[-1][0] in ("const", "dup", "lload") \
                and _window_free(remap, targets, i, 1):
            # push immediately discarded
            out.pop()
            out_lines.pop()
            i += 1
            continue

        if not barrier and op == "jfalse" and out \
                and is_const(len(out) - 1) \
                and _window_free(remap, targets, i, 1):
            cond = out.pop()[1]
            out_lines.pop()
            if cond:
                pass                      # never taken: drop both
            else:
                out.append(("jump", ins[1]))
                out_lines.append(lines[i])
            i += 1
            continue

        out.append(ins)
        out_lines.append(lines[i])
        i += 1

    remap[n] = len(out)                  # branches may point past the end
    _remap_branches(out, remap)
    removed = len(instrs) - len(out)
    code.instrs[:] = out
    code.lines[:] = out_lines
    return removed


def _window_free(remap: Dict[int, int], targets: Set[int],
                 upto_old: int, window: int) -> bool:
    """The last ``window`` emitted instructions must not correspond to
    any branch target (else collapsing them would break a jump)."""
    floor = remap[upto_old] - window
    for t in targets:
        if t in remap and floor <= remap[t] < remap[upto_old]:
            return False
        if t not in remap and t < upto_old:
            # Target inside the window's source range not yet remapped
            # can't happen (remap is filled in order), but be safe.
            return False
    return True


def _finite(v) -> bool:
    try:
        return not isinstance(v, float) or math.isfinite(v)
    except TypeError:
        return False


#: Operators eligible for fusion -- exactly the interpreter's binop set.
_FUSABLE = frozenset(
    {"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!="})


def fuse_code(code: Code) -> int:
    """Fuse superinstruction windows in one function, in place.

    Greedy longest-match left-to-right over the (already peephole-
    optimized) stream.  4-wide windows capture whole loop idioms
    (``lload; const; binop; lstore`` -> ``lcbs``, ``lload; const;
    binop; jfalse`` -> ``lcjf``, and their two-local twins ``llbs``/
    ``lljf``); 3-wide fuse a load pair into its binop (``lcb``/
    ``ll2b``); 2-wide mop up the rest (``lb``/``cb``/``llst``/``cjf``).
    A window fuses only when no branch targets its interior and all
    its instructions carry the same source line (so per-line profile
    totals cannot shift).  Returns the number of instructions
    eliminated."""
    instrs = code.instrs
    n = len(instrs)
    targets = _jump_targets(instrs)
    lines = code.lines if len(code.lines) == n else [0] * n
    out: List[Tuple] = []
    out_lines: List[int] = []
    remap: Dict[int, int] = {}
    i = 0

    def window_ok(width: int) -> bool:
        if i + width > n:
            return False
        ln = lines[i]
        for j in range(i + 1, i + width):
            if j in targets or lines[j] != ln:
                return False
        return True

    while i < n:
        remap[i] = len(out)
        ins = instrs[i]
        op = ins[0]
        ln = lines[i]
        fused = None
        width = 0
        if op == "lload":
            if window_ok(10) or window_ok(9):
                o = instrs
                if (o[i + 1][0] == "const" and o[i + 2][0] == "binop"
                        and o[i + 2][1] in _FUSABLE
                        and o[i + 3][0] == "lload"
                        and o[i + 4][0] == "binop"
                        and o[i + 4][1] in _FUSABLE
                        and o[i + 5][0] == "const"
                        and o[i + 6][0] == "binop"
                        and o[i + 6][1] in _FUSABLE
                        and o[i + 7][0] == "lload"
                        and o[i + 8][0] == "binop"
                        and o[i + 8][1] in _FUSABLE):
                    poly = (ins[1], o[i + 1][1], o[i + 2][1], o[i + 3][1],
                            o[i + 4][1], o[i + 5][1], o[i + 6][1],
                            o[i + 7][1], o[i + 8][1])
                    if window_ok(10) and o[i + 9][0] == "geload":
                        fused = ("ixge", poly + (o[i + 9][1],))
                        width = 10
                    elif window_ok(9):
                        fused = ("ix", poly)
                        width = 9
            if fused is None and window_ok(5):
                o1, o2, o3, o4 = (instrs[i + 1], instrs[i + 2],
                                  instrs[i + 3], instrs[i + 4])
                if o1[0] == "const" and o2[0] == "binop" \
                        and o2[1] in _FUSABLE:
                    if o3[0] == "lstore" and o4[0] == "jump":
                        fused = ("lcbsj",
                                 (ins[1], o1[1], o2[1], o3[1], o4[1]))
                        width = 5
                    elif o3[0] == "lload" and o4[0] == "binop" \
                            and o4[1] in _FUSABLE:
                        fused = ("lcblb",
                                 (ins[1], o1[1], o2[1], o3[1], o4[1]))
                        width = 5
            if fused is None and window_ok(4):
                o1, o2, o3 = instrs[i + 1], instrs[i + 2], instrs[i + 3]
                if o2[0] == "binop" and o2[1] in _FUSABLE \
                        and o3[0] in ("lstore", "jfalse"):
                    store = o3[0] == "lstore"
                    if o1[0] == "const":
                        fused = ("lcbs" if store else "lcjf",
                                 (ins[1], o1[1], o2[1], o3[1]))
                        width = 4
                    elif o1[0] == "lload":
                        fused = ("llbs" if store else "lljf",
                                 (ins[1], o1[1], o2[1], o3[1]))
                        width = 4
                elif o1[0] == "binop" and o1[1] in _FUSABLE \
                        and o2[0] == "const" and o3[0] == "binop" \
                        and o3[1] in _FUSABLE:
                    fused = ("lbcb", (ins[1], o1[1], o2[1], o3[1]))
                    width = 4
            if fused is None and window_ok(3):
                o1, o2 = instrs[i + 1], instrs[i + 2]
                if o2[0] == "binop" and o2[1] in _FUSABLE:
                    if o1[0] == "const":
                        fused = ("lcb", (ins[1], o1[1], o2[1]))
                        width = 3
                    elif o1[0] == "lload":
                        fused = ("ll2b", (ins[1], o1[1], o2[1]))
                        width = 3
            if fused is None and window_ok(2):
                o1 = instrs[i + 1]
                if o1[0] == "binop" and o1[1] in _FUSABLE:
                    fused = ("lb", (ins[1], o1[1]))
                    width = 2
                elif o1[0] == "lstore":
                    fused = ("llst", (ins[1], o1[1]))
                    width = 2
        elif op == "const":
            if window_ok(4):
                o1, o2, o3 = instrs[i + 1], instrs[i + 2], instrs[i + 3]
                if o1[0] == "binop" and o1[1] in _FUSABLE \
                        and o2[0] == "lload" and o3[0] == "binop" \
                        and o3[1] in _FUSABLE:
                    if window_ok(5) and instrs[i + 4][0] == "geload":
                        fused = ("cblbge", (ins[1], o1[1], o2[1], o3[1],
                                            instrs[i + 4][1]))
                        width = 5
                    else:
                        fused = ("cblb", (ins[1], o1[1], o2[1], o3[1]))
                        width = 4
            if fused is None and window_ok(2):
                o1 = instrs[i + 1]
                if o1[0] == "binop" and o1[1] in _FUSABLE:
                    fused = ("cb", (ins[1], o1[1]))
                    width = 2
                elif o1[0] == "lstore":
                    fused = ("cs", (ins[1], o1[1]))
                    width = 2
        elif op == "binop" and ins[1] in _FUSABLE:
            if window_ok(2) and instrs[i + 1][0] == "jfalse":
                fused = ("cjf", (ins[1], instrs[i + 1][1]))
                width = 2
        if fused is not None:
            out.append(fused)
            out_lines.append(ln)
            i += width
        else:
            out.append(ins)
            out_lines.append(ln)
            i += 1
    remap[n] = len(out)                  # branches may point past the end
    _remap_branches(out, remap)
    code.instrs[:] = out
    code.lines[:] = out_lines
    return n - len(out)


def fuse_program(program: CompiledProgram) -> int:
    """Fuse every function; returns total instructions eliminated."""
    return sum(fuse_code(f) for f in program.funcs)


def optimize_program(program: CompiledProgram) -> int:
    """Optimize every function; returns total instructions removed.

    Superinstruction fusion runs last (over the fully peephole-
    optimized stream) and only when the ``fuse`` hot-path tier is
    enabled -- the flag is also folded into the compile-cache key, so
    disk-cached images never cross tier configurations."""
    removed = sum(optimize_code(f) for f in program.funcs)
    if hotpath_enabled("fuse"):
        removed += fuse_program(program)
    return removed
