"""Peephole optimizer for the bytecode IR.

Omni is "an optimizing compiler for OpenMP"; our back end gets a small
but real optimization pass: constant folding, branch folding on
constant conditions, and dead push/pop elimination, all performed as a
single linear peephole scan with jump-target remapping.

The pass is semantics-preserving by construction: windows never span a
jump target (every branch target starts a fresh window), and the old->
new index map rewrites every branch.  Mode-independence is unaffected
-- the optimizer runs before the image is sealed, identically for every
execution mode.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from .bytecode import Code, CompiledProgram

__all__ = ["optimize_code", "optimize_program"]

_JUMPS = ("jump", "jfalse", "jnone")

_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
}


def _fold_div(a, b):
    if b == 0:
        return None                      # leave runtime semantics alone
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _jump_targets(instrs: List[Tuple]) -> Set[int]:
    return {ins[1] for ins in instrs if ins[0] in _JUMPS}


def optimize_code(code: Code, max_passes: int = 4) -> int:
    """Optimize one function in place; returns instructions removed."""
    removed_total = 0
    for _ in range(max_passes):
        removed = _one_pass(code)
        removed_total += removed
        if removed == 0:
            break
    return removed_total


def _one_pass(code: Code) -> int:
    instrs = code.instrs
    targets = _jump_targets(instrs)
    out: List[Tuple] = []
    out_lines: List[int] = []            # kept in lockstep with ``out``
    remap: Dict[int, int] = {}
    i = 0
    n = len(instrs)
    lines = code.lines if len(code.lines) == n else [0] * n

    def is_const(idx_out: int) -> bool:
        """Is out[idx_out] a const not serving as a branch target?"""
        return idx_out >= 0 and out[idx_out][0] == "const"

    while i < n:
        remap[i] = len(out)
        ins = instrs[i]
        op = ins[0]
        barrier = i in targets           # window may not extend over this

        if not barrier and op == "binop" and len(out) >= 2 \
                and is_const(len(out) - 1) and is_const(len(out) - 2) \
                and _window_free(remap, targets, i, 2):
            a = out[-2][1]
            b = out[-1][1]
            o = ins[1]
            folded = None
            if o in _FOLDABLE and not isinstance(a, str) \
                    and not isinstance(b, str):
                folded = _FOLDABLE[o](a, b)
            elif o == "/" and not isinstance(a, str) \
                    and not isinstance(b, str):
                folded = _fold_div(a, b)
            if folded is not None and _finite(folded):
                out.pop()
                out.pop()
                out.append(("const", folded))
                out_lines.pop()
                out_lines.pop()
                out_lines.append(lines[i])
                i += 1
                continue

        if not barrier and op == "unop" and ins[1] == "-" and out \
                and is_const(len(out) - 1) \
                and not isinstance(out[-1][1], str) \
                and _window_free(remap, targets, i, 1):
            v = out.pop()[1]
            out.append(("const", -v))
            out_lines[-1] = lines[i]
            i += 1
            continue

        if not barrier and op == "pop" and out \
                and out[-1][0] in ("const", "dup", "lload") \
                and _window_free(remap, targets, i, 1):
            # push immediately discarded
            out.pop()
            out_lines.pop()
            i += 1
            continue

        if not barrier and op == "jfalse" and out \
                and is_const(len(out) - 1) \
                and _window_free(remap, targets, i, 1):
            cond = out.pop()[1]
            out_lines.pop()
            if cond:
                pass                      # never taken: drop both
            else:
                out.append(("jump", ins[1]))
                out_lines.append(lines[i])
            i += 1
            continue

        out.append(ins)
        out_lines.append(lines[i])
        i += 1

    remap[n] = len(out)                  # branches may point past the end
    # Rewrite branch targets through the map.
    for k, ins in enumerate(out):
        if ins[0] in _JUMPS:
            out[k] = (ins[0], remap[ins[1]])
    removed = len(instrs) - len(out)
    code.instrs[:] = out
    code.lines[:] = out_lines
    return removed


def _window_free(remap: Dict[int, int], targets: Set[int],
                 upto_old: int, window: int) -> bool:
    """The last ``window`` emitted instructions must not correspond to
    any branch target (else collapsing them would break a jump)."""
    floor = remap[upto_old] - window
    for t in targets:
        if t in remap and floor <= remap[t] < remap[upto_old]:
            return False
        if t not in remap and t < upto_old:
            # Target inside the window's source range not yet remapped
            # can't happen (remap is filled in order), but be safe.
            return False
    return True


def _finite(v) -> bool:
    try:
        return not isinstance(v, float) or math.isfinite(v)
    except TypeError:
        return False


def optimize_program(program: CompiledProgram) -> int:
    """Optimize every function; returns total instructions removed."""
    return sum(optimize_code(f) for f in program.funcs)
