"""Bytecode IR: the compiled form of a SlipC program.

A :class:`CompiledProgram` is the analogue of the single executable
image in the paper -- "the same binary should run for both normal and
slipstream mode".  Nothing in the bytecode depends on the execution
mode; all mode-dependent behaviour (store suppression, token
synchronization, construct skipping) happens in the runtime/VM when the
image is executed.

Instructions are ``(op, arg)`` tuples executed by a stack VM:

======== ============================ =======================================
op       arg                          effect
======== ============================ =======================================
const    value                        push literal
lload    slot                         push locals[slot]
lstore   slot                         locals[slot] = pop
gload    gidx                         *shared scalar load* (memory op)
gstore   gidx                         *shared scalar store* (memory op)
geload   gidx                         pop flat index; *shared element load*
gestore  gidx                         pop value, pop flat; *shared store*
aload    slot                         pop flat; push private array element
astore   slot                         pop value, pop flat; private store
binop    opname                       pop b, a; push a <op> b
unop     opname                       pop a; push <op> a
dup      --                           duplicate top of stack
pop      --                           discard top of stack
jump     target                       unconditional branch
jfalse   target                       pop; branch if falsy
jnone    target                       if top is None: pop and branch
unpack2  --                           pop (a, b); push a, then b
call     (fidx, nargs)                call user function
icall    (name, nargs)                intrinsic (sqrt, fabs, ...)
rt       (name, static, nargs)        runtime-library call (yields to shell)
print    nargs                        output I/O (yields to shell)
ret      --                           return (value on stack)
======== ============================ =======================================

Superinstructions (emitted only by the optimizer's fusion pass, see
``optimize.fuse_program``) collapse the dominant stack-shuffle pairs of
the NPB inner loops into one dispatch each.  Every fused op charges
exactly the sum of its parts and carries the parts' common source line,
so cycle accounting and profile attribution are unchanged:

======== ============================ =======================================
ll2b     (slot_a, slot_b, opname)     push locals[a] <op> locals[b]
lcb      (slot, value, opname)        push locals[slot] <op> literal
lb       (slot, opname)               top = top <op> locals[slot]
cb       (value, opname)              top = top <op> literal
llst     (src, dst)                   locals[dst] = locals[src]
cjf      (opname, target)             pop b, a; branch unless a <op> b
lcbs     (slot, value, opname, dst)   locals[dst] = locals[slot] <op> literal
llbs     (a, b, opname, dst)          locals[dst] = locals[a] <op> locals[b]
lcjf     (slot, value, opname, tgt)   branch unless locals[slot] <op> literal
lljf     (a, b, opname, tgt)          branch unless locals[a] <op> locals[b]
cs       (value, dst)                 locals[dst] = literal
cblb     (k, op1, slot, op2)          top = (top <op1> k) <op2> locals[slot]
lbcb     (slot, op1, k, op2)          top = (top <op1> locals[slot]) <op2> k
lcblb    (a, k, op1, b, op2)          push (locals[a] <op1> k) <op2> locals[b]
lcbsj    (a, k, opname, dst, tgt)     locals[dst] = locals[a] <op> k; jump
ix       (a,k1,op1,b,op2,k2,op3,c,op4) push the 3-term index polynomial
                                      (((l[a] op1 k1) op2 l[b]) op3 k2) op4 l[c]
ixge     (...ix..., gidx)             ix, then *shared element load*
cblbge   (k, op1, slot, op2, gidx)    cblb, then *shared element load*
======== ============================ =======================================

The wide ops capture the dominant loop idioms whole: the induction
step plus its backward jump ``i = i + 1`` (``lcbsj``, which also
enforces the VM slice budget like the jump it absorbs), the trip test
``i < n`` (``lcjf``), and the two-term arithmetic chains of the NPB
stencils (``cblb``/``lbcb``/``lcblb``) -- each a single dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Code", "GlobalDecl", "CompiledProgram", "OP_COST",
           "RT_RETURNS", "disassemble"]

#: Busy-cycle cost charged per executed instruction (default 1).
OP_COST: Dict[str, float] = {
    "const": 1, "lload": 1, "lstore": 1,
    "aload": 2, "astore": 2,
    "binop": 1, "unop": 1, "dup": 1, "pop": 1,
    "jump": 1, "jfalse": 1, "jnone": 1, "unpack2": 1,
    "call": 4, "ret": 2, "icall": 1,   # + ICALL_COST per intrinsic
    # memory/rt/print ops cost is charged by the shell, not here
    "gload": 0, "gstore": 0, "geload": 0, "gestore": 0,
    "rt": 0, "print": 0,
    # superinstructions: the exact sum of their parts (binop-bearing
    # ones additionally charge BINOP_COST at translation, like binop)
    "ll2b": 3,      # lload + lload + binop
    "lcb": 3,       # lload + const + binop
    "lb": 2,        # lload + binop
    "cb": 2,        # const + binop
    "llst": 2,      # lload + lstore
    "cjf": 2,       # binop + jfalse
    "lcbs": 4,      # lload + const + binop + lstore
    "llbs": 4,      # lload + lload + binop + lstore
    "lcjf": 4,      # lload + const + binop + jfalse
    "lljf": 4,      # lload + lload + binop + jfalse
    "cs": 2,        # const + lstore
    "cblb": 4,      # const + binop + lload + binop  (both BINOP_COSTs)
    "lbcb": 4,      # lload + binop + const + binop  (both BINOP_COSTs)
    "lcblb": 5,     # lload + const + binop + lload + binop (both)
    "lcbsj": 5,     # lload + const + binop + lstore + jump
    "ix": 9,        # 3 lloads + 2 consts + 4 binops (all four BINOP_COSTs)
    "ixge": 9,      # ix + geload (geload itself charges 0 here)
    "cblbge": 4,    # cblb + geload
}

#: Extra cost for expensive arithmetic.
BINOP_COST: Dict[str, float] = {"/": 8, "%": 8}
ICALL_COST: Dict[str, float] = {
    "sqrt": 12, "exp": 16, "log": 16, "pow": 20,
    "fabs": 1, "min": 1, "max": 1, "mod": 8, "floor": 2,
}

#: Runtime calls that push a result value.
RT_RETURNS = frozenset({
    "sched_next", "sections_next", "single_begin", "crit_enter",
    "is_master", "tid", "nthreads", "wtime", "io_read", "astream_probe",
    "loop_is_last",
})


@dataclass
class GlobalDecl:
    """A shared (file-scope) variable of the compiled image."""

    name: str
    typ: str                       # "int" | "double"
    dims: Tuple[int, ...]          # () for scalars
    init: Optional[float] = None   # constant scalar initializer
    index: int = 0

    @property
    def size(self) -> int:
        """Number of elements (1 for scalars)."""
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        """Footprint in the shared segment (8 bytes per element)."""
        return self.size * 8       # both int and double are 8 bytes


@dataclass
class Code:
    """One compiled function (user function or outlined parallel region)."""

    name: str
    params: List[str]
    instrs: List[Tuple] = field(default_factory=list)
    n_locals: int = 0
    local_names: List[str] = field(default_factory=list)
    #: (slot, typ, dims) -- private arrays allocated per frame
    private_arrays: List[Tuple[int, str, Tuple[int, ...]]] = \
        field(default_factory=list)
    is_region: bool = False
    line: int = 0
    #: Source line per instruction (parallel to ``instrs``); the
    #: profiler's instr-index -> SlipC line map.  Kept in sync by the
    #: peephole optimizer and pickled with the image, so disk-cached
    #: entries carry it too.
    lines: List[int] = field(default_factory=list)
    #: Generated-code tier payload: ``(python_source, hoisted_consts)``
    #: emitted by :func:`repro.interp.compile.generate_source` when the
    #: ``compile`` hot-path tier was on at image build.  Pickled with
    #: the image (the disk cache carries the generated source next to
    #: the bytecode); exec'd lazily once per process.
    gen_src: Optional[Tuple[str, Tuple]] = None

    @property
    def n_params(self) -> int:
        """Number of declared parameters."""
        return len(self.params)

    def __getstate__(self):
        """Pickle without the interpreter's translated-instruction
        cache (``_fast``): it is derived state, rebuilt on first
        execution, and would only bloat disk-cache entries."""
        state = self.__dict__.copy()
        state.pop("_fast", None)
        return state


@dataclass
class CompiledProgram:
    """The executable image: globals + functions + site metadata."""

    globals: List[GlobalDecl]
    funcs: List[Code]
    func_index: Dict[str, int]
    main_index: int
    #: site id -> descriptive label ("barrier@12", "for@30(dynamic,4)")
    sites: Dict[int, str] = field(default_factory=dict)
    source: str = ""

    def __getstate__(self):
        """Pickle without the exec'd generated-function cache
        (``_cfns``): function objects are not picklable and are derived
        state, rebuilt from each Code's ``gen_src`` on first run."""
        state = self.__dict__.copy()
        state.pop("_cfns", None)
        return state

    def func(self, name: str) -> Code:
        """Look a function up by name."""
        return self.funcs[self.func_index[name]]

    def global_named(self, name: str) -> GlobalDecl:
        """Look a shared global up by name."""
        for g in self.globals:
            if g.name == name:
                return g
        raise KeyError(name)

    @property
    def n_instructions(self) -> int:
        """Total bytecode instructions across all functions."""
        return sum(len(f.instrs) for f in self.funcs)


def disassemble(code: Code) -> str:
    """Human-readable listing of one function (for tests and debugging)."""
    lines = [f"{code.name}({', '.join(code.params)})  "
             f"[{code.n_locals} locals]"]
    for i, (op, *rest) in enumerate(code.instrs):
        arg = rest[0] if rest else ""
        lines.append(f"  {i:4d}  {op:<8} {arg!r}")
    return "\n".join(lines)
