"""AST -> bytecode code generation, including OpenMP lowering.

This module performs the transformations the paper attributes to the
(extended) Omni compiler:

* **outlining** -- each ``parallel`` region becomes a separate function;
  the master posts it to the slave pool and calls it itself (Omni's
  master/slave job-dispatch scheme);
* **worksharing lowering** -- ``omp for``/``sections`` become
  ``sched_init``/``sched_next`` runtime-call loops so one image supports
  static, dynamic, guided, and runtime scheduling;
* **construct lowering** -- single/master/critical/atomic/barrier/flush
  map onto runtime calls whose behaviour is role-dependent at run time
  (R-stream vs A-stream), which is what lets a single binary run in
  normal or slipstream mode;
* **slipstream directive lowering** -- ``#pragma omp slipstream``
  becomes a ``slipstream_set`` runtime call (the paper: "map the
  slipstream directive to a library call").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..lang import ast as A
from ..lang.errors import SemanticError
from ..lang.parser import parse
from ..lang.sema import INTRINSICS, SemaInfo, analyze, collect_var_reads, walk
from .bytecode import Code, CompiledProgram, GlobalDecl

__all__ = ["compile_program", "compile_source"]

_REDUCTION_IDENTITY = {"+": 0.0, "*": 1.0, "max": -1e308, "min": 1e308}

_RT_INTRINSICS = {
    "omp_get_thread_num": "tid",
    "omp_get_num_threads": "nthreads",
    "omp_get_wtime": "wtime",
    "read_input": "io_read",
    "astream_probe": "astream_probe",
}


def compile_source(source: str, optimize: bool = True) -> CompiledProgram:
    """Front door: SlipC source text -> executable image."""
    program = parse(source)
    cp = compile_program(program, optimize=optimize)
    cp.source = source
    return cp


def compile_program(program: A.Program,
                    optimize: bool = True) -> CompiledProgram:
    """Compile a parsed AST into an executable image."""
    sema = analyze(program)
    pc = _ProgramCompiler(program, sema)
    cp = pc.run()
    if optimize:
        from .optimize import optimize_program
        optimize_program(cp)
    from ..hotpath import hotpath_enabled
    if hotpath_enabled("compile"):
        # Generated-code tier: emit the per-function Python source now
        # so it is part of the image (and of the npb/cache disk entry,
        # whose key carries the compile= flag).  Imported late -- the
        # interp package imports this one.
        from ..interp.compile import attach_generated
        attach_generated(cp)
    return cp


class _ProgramCompiler:
    def __init__(self, program: A.Program, sema: SemaInfo):
        self.program = program
        self.sema = sema
        self.globals: List[GlobalDecl] = []
        self.gindex: Dict[str, int] = {}
        self.funcs: List[Code] = []
        self.func_index: Dict[str, int] = {}
        self.sites: Dict[int, str] = {}
        self._site = 0
        self._crit_names: Dict[str, int] = {}
        self._region_count = 0

    def run(self) -> CompiledProgram:
        for i, g in enumerate(self.program.globals):
            init = None
            if g.init is not None:
                init = _const_eval(g.init)
            self.globals.append(GlobalDecl(g.name, g.typ, g.dims, init, i))
            self.gindex[g.name] = i
        # Reserve function indices first so mutual recursion works.
        for f in self.program.funcs:
            self.func_index[f.name] = len(self.funcs)
            self.funcs.append(Code(f.name, [p for _, p in f.params],
                                   line=f.line))
        for f in self.program.funcs:
            fc = _FuncCompiler(self, self.funcs[self.func_index[f.name]])
            fc.compile_function(f)
        return CompiledProgram(
            self.globals, self.funcs, self.func_index,
            self.func_index["main"], self.sites)

    # ---------------------------------------------------------------- sites

    def new_site(self, label: str) -> int:
        self._site += 1
        self.sites[self._site] = label
        return self._site

    def critical_id(self, name: str) -> int:
        if name not in self._crit_names:
            self._crit_names[name] = len(self._crit_names)
        return self._crit_names[name]

    def new_region_code(self, host: str, params: List[str],
                        line: int) -> Tuple[int, Code]:
        self._region_count += 1
        code = Code(f"{host}._region{self._region_count}", list(params),
                    is_region=True, line=line)
        idx = len(self.funcs)
        self.funcs.append(code)
        self.func_index[code.name] = idx
        return idx, code


class _FuncCompiler:
    """Compiles one function (or outlined region) body to bytecode."""

    def __init__(self, prog: _ProgramCompiler, code: Code,
                 redirects: Optional[Dict[str, int]] = None):
        self.prog = prog
        self.code = code
        self.slots: Dict[str, int] = {}
        self.local_dims: Dict[str, Tuple[int, ...]] = {}
        # names that shadow globals with a region-local slot
        self.redirects: Dict[str, int] = redirects or {}
        self.loop_stack: List[Tuple[List[int], List[int]]] = []  # (breaks, conts)
        #: Source line attributed to the instructions being emitted;
        #: updated by compile_stmt/compile_expr from each node's line.
        self._line = code.line
        for p in code.params:
            self._new_slot(p)

    # -------------------------------------------------------------- helpers

    def emit(self, op: str, arg=None) -> int:
        self.code.instrs.append((op, arg) if arg is not None else (op,))
        self.code.lines.append(self._line)
        return len(self.code.instrs) - 1

    @property
    def here(self) -> int:
        return len(self.code.instrs)

    def patch(self, at: int, target: int) -> None:
        op, _ = self.code.instrs[at]
        self.code.instrs[at] = (op, target)

    def _new_slot(self, name: str, dims: Tuple[int, ...] = ()) -> int:
        if name in self.slots:
            raise SemanticError(f"duplicate declaration of {name!r}",
                                self.code.line)
        slot = self.code.n_locals
        self.code.n_locals += 1
        self.slots[name] = slot
        self.code.local_names.append(name)
        self.local_dims[name] = dims
        return slot

    def _temp(self, tag: str) -> int:
        slot = self.code.n_locals
        self.code.n_locals += 1
        self.code.local_names.append(f".{tag}{slot}")
        return slot

    def _resolve(self, name: str, line: int) -> Tuple[str, int]:
        """('local', slot) | ('global', gidx)"""
        if name in self.redirects:
            return ("local", self.redirects[name])
        if name in self.slots:
            return ("local", self.slots[name])
        if name in self.prog.gindex:
            return ("global", self.prog.gindex[name])
        raise SemanticError(f"undeclared variable {name!r}", line)

    def ensure_private_slot(self, name: str) -> int:
        """Make sure ``name`` maps to a function-local slot (auto-private
        loop variables)."""
        kind, idx = (None, None)
        if name in self.redirects or name in self.slots:
            return self.redirects.get(name, self.slots.get(name))
        # shadow a global with a local slot
        slot = self._new_slot(name)
        self.redirects[name] = slot
        return slot

    # ----------------------------------------------------------- functions

    def compile_function(self, f: A.FuncDef) -> None:
        self.compile_stmt(f.body)
        self.emit("const", 0)
        self.emit("ret")

    def compile_region_body(self, region: A.OmpParallel,
                            firstprivate_globals: List[Tuple[int, int]],
                            reductions: List[Tuple[str, int, int]]) -> None:
        """Region prologue + body + reduction epilogue + ret.

        ``firstprivate_globals``: (slot, gidx) pairs to copy in.
        ``reductions``: (op, gidx, slot) triples.
        """
        for slot, gidx in firstprivate_globals:
            self.emit("gload", gidx)
            self.emit("lstore", slot)
        for op, gidx, slot in reductions:
            self.emit("const", _REDUCTION_IDENTITY[op])
            self.emit("lstore", slot)
        self.compile_stmt(region.body)
        for op, gidx, slot in reductions:
            self.emit("lload", slot)
            self.emit("rt", ("reduce", (op, gidx), 1))
        self.emit("const", 0)
        self.emit("ret")

    # ----------------------------------------------------------- statements

    def compile_stmt(self, node: A.Node) -> None:
        m = getattr(self, "_stmt_" + type(node).__name__, None)
        if m is None:
            raise SemanticError(
                f"cannot compile {type(node).__name__} here", node.line)
        if node.line:
            self._line = node.line
        m(node)

    def _stmt_Block(self, node: A.Block) -> None:
        # A slipstream directive immediately preceding a parallel region
        # is region-scoped: "using the directive on a parallel region
        # takes precedence but does not override the global setting".
        before = set(self.slots) if node.is_scope else None
        stmts = node.stmts
        i = 0
        while i < len(stmts):
            s = stmts[i]
            if (isinstance(s, A.OmpSlipstream) and i + 1 < len(stmts)
                    and isinstance(stmts[i + 1], A.OmpParallel)):
                self._emit_slipstream(s, region_scoped=True)
            else:
                self.compile_stmt(s)
            i += 1
        if before is not None:
            # C lexical scoping: names declared in this block die with
            # it (their slots stay allocated; siblings get fresh ones).
            for name in [n for n in self.slots if n not in before]:
                del self.slots[name]
                self.local_dims.pop(name, None)

    def _stmt_VarDecl(self, node: A.VarDecl) -> None:
        slot = self._new_slot(node.name, node.dims)
        if node.dims:
            self.code.private_arrays.append((slot, node.typ, node.dims))
            if node.init is not None:
                raise SemanticError("array initializers are not supported",
                                    node.line)
        elif node.init is not None:
            self.compile_expr(node.init)
            self.emit("lstore", slot)

    def _stmt_Assign(self, node: A.Assign) -> None:
        tgt = node.target
        if isinstance(tgt, A.Var):
            kind, idx = self._resolve(tgt.name, tgt.line)
            if kind == "local":
                self.compile_expr(node.value)
                self.emit("lstore", idx)
            else:
                g = self.prog.globals[idx]
                if g.dims:
                    raise SemanticError(
                        f"cannot assign whole array {g.name!r}", node.line)
                self.compile_expr(node.value)
                self.emit("gstore", idx)
            return
        assert isinstance(tgt, A.Index)
        kind, idx = self._resolve(tgt.name, tgt.line)
        if kind == "local":
            dims = self.local_dims.get(tgt.name) or ()
            if not dims:
                raise SemanticError(f"{tgt.name!r} is not an array",
                                    tgt.line)
            self._emit_flat_index(tgt, dims)
            self.compile_expr(node.value)
            self.emit("astore", idx)
        else:
            g = self.prog.globals[idx]
            if not g.dims:
                raise SemanticError(f"{tgt.name!r} is not an array",
                                    tgt.line)
            self._emit_flat_index(tgt, g.dims)
            self.compile_expr(node.value)
            self.emit("gestore", idx)

    def _stmt_If(self, node: A.If) -> None:
        self.compile_expr(node.cond)
        jf = self.emit("jfalse", -1)
        self.compile_stmt(node.then)
        if node.orelse is not None:
            je = self.emit("jump", -1)
            self.patch(jf, self.here)
            self.compile_stmt(node.orelse)
            self.patch(je, self.here)
        else:
            self.patch(jf, self.here)

    def _stmt_While(self, node: A.While) -> None:
        head = self.here
        self.compile_expr(node.cond)
        jf = self.emit("jfalse", -1)
        self.loop_stack.append(([], []))
        self.compile_stmt(node.body)
        breaks, conts = self.loop_stack.pop()
        for c in conts:
            self.patch(c, head)
        self.emit("jump", head)
        self.patch(jf, self.here)
        for b in breaks:
            self.patch(b, self.here)

    def _stmt_For(self, node: A.For) -> None:
        if node.init is not None:
            self.compile_stmt_or_simple(node.init)
        head = self.here
        jf = None
        if node.cond is not None:
            self.compile_expr(node.cond)
            jf = self.emit("jfalse", -1)
        self.loop_stack.append(([], []))
        self.compile_stmt(node.body)
        breaks, conts = self.loop_stack.pop()
        cont_at = self.here
        for c in conts:
            self.patch(c, cont_at)
        if node.step is not None:
            self.compile_stmt_or_simple(node.step)
        self.emit("jump", head)
        if jf is not None:
            self.patch(jf, self.here)
        for b in breaks:
            self.patch(b, self.here)

    def compile_stmt_or_simple(self, node: A.Node) -> None:
        if isinstance(node, (A.Assign, A.ExprStmt)):
            self.compile_stmt(node)
        else:
            raise SemanticError("bad for-loop header statement", node.line)

    def _stmt_Break(self, node: A.Break) -> None:
        if not self.loop_stack:
            raise SemanticError("break outside loop", node.line)
        self.loop_stack[-1][0].append(self.emit("jump", -1))

    def _stmt_Continue(self, node: A.Continue) -> None:
        if not self.loop_stack:
            raise SemanticError("continue outside loop", node.line)
        self.loop_stack[-1][1].append(self.emit("jump", -1))

    def _stmt_Return(self, node: A.Return) -> None:
        if node.value is not None:
            self.compile_expr(node.value)
        else:
            self.emit("const", 0)
        self.emit("ret")

    def _stmt_ExprStmt(self, node: A.ExprStmt) -> None:
        self.compile_expr(node.expr)
        self.emit("pop")

    def _stmt_Print(self, node: A.Print) -> None:
        for a in node.args:
            if isinstance(a, A.Num) and isinstance(a.value, str):
                self.emit("const", a.value)
            else:
                self.compile_expr(a)
        self.emit("print", len(node.args))

    # ------------------------------------------------------ OpenMP lowering

    def _stmt_OmpSlipstream(self, node: A.OmpSlipstream) -> None:
        self._emit_slipstream(node, region_scoped=False)

    def _emit_slipstream(self, node: A.OmpSlipstream,
                         region_scoped: bool) -> None:
        if node.if_expr is not None:
            self.compile_expr(node.if_expr)
        else:
            self.emit("const", 1)
        self.emit("rt", ("slipstream_set",
                         (node.sync_type, node.tokens, region_scoped), 1))

    def _stmt_OmpBarrier(self, node: A.OmpBarrier) -> None:
        site = self.prog.new_site(f"barrier@{node.line}")
        self.emit("rt", ("barrier", (site,), 0))

    def _stmt_OmpFlush(self, node: A.OmpFlush) -> None:
        # §3.1 item 7: "For hardware cache-coherent systems, this
        # construct maps to void, since the flush semantics are
        # maintained with every transaction to the memory."  The
        # A-stream skipping a void construct is likewise a no-op, so no
        # code is emitted at all (exactly what Omni does on ccNUMA).
        pass

    def _stmt_OmpMaster(self, node: A.OmpMaster) -> None:
        self.emit("rt", ("is_master", (), 0))
        jf = self.emit("jfalse", -1)
        self.compile_stmt(node.body)
        self.patch(jf, self.here)

    def _stmt_OmpSingle(self, node: A.OmpSingle) -> None:
        site = self.prog.new_site(f"single@{node.line}")
        self.emit("rt", ("single_begin", (site,), 0))
        jf = self.emit("jfalse", -1)
        self.compile_stmt(node.body)
        self.patch(jf, self.here)
        if not node.nowait:
            self.emit("rt", ("barrier", (site,), 0))

    def _stmt_OmpCritical(self, node: A.OmpCritical) -> None:
        cid = self.prog.critical_id(node.name)
        self.emit("rt", ("crit_enter", (cid,), 0))
        jf = self.emit("jfalse", -1)
        self.compile_stmt(node.body)
        self.emit("rt", ("crit_exit", (cid,), 0))
        self.patch(jf, self.here)

    def _stmt_OmpAtomic(self, node: A.OmpAtomic) -> None:
        site = self.prog.new_site(f"atomic@{node.line}")
        self.emit("rt", ("atomic_enter", (site,), 0))
        self.compile_stmt(node.stmt)
        self.emit("rt", ("atomic_exit", (site,), 0))

    def _stmt_OmpSections(self, node: A.OmpSections) -> None:
        site = self.prog.new_site(f"sections@{node.line}")
        n = len(node.sections)
        self.emit("rt", ("sections_init", (site, n), 0))
        head = self.here
        self.emit("rt", ("sections_next", (site,), 0))
        jend = self.emit("jnone", -1)
        jumps_home = []
        checks: List[int] = []
        for k, sec in enumerate(node.sections):
            if checks:
                self.patch(checks.pop(), self.here)
            self.emit("dup")
            self.emit("const", k)
            self.emit("binop", "==")
            checks.append(self.emit("jfalse", -1))
            self.emit("pop")
            self.compile_stmt(sec.body)
            jumps_home.append(self.emit("jump", -1))
        if checks:
            self.patch(checks.pop(), self.here)
        self.emit("pop")           # unknown index: drop and refetch
        for j in jumps_home:
            self.patch(j, head)
        self.emit("jump", head)
        self.patch(jend, self.here)
        if not node.nowait:
            self.emit("rt", ("barrier", (site,), 0))

    def _stmt_OmpFor(self, node: A.OmpFor) -> None:
        sched = node.schedule or A.Schedule("static", None)
        loop = node.loop
        lo_e, hi_e, hi_adjust, step_e, negate_step, var = \
            _normalize_omp_loop(loop)
        site = self.prog.new_site(
            f"for@{node.line}({sched.kind},{sched.chunk})")

        # for-level reductions: private slots, scoped redirects
        red_triples: List[Tuple[str, int, int]] = []
        saved_redirects = {}
        for red in node.reductions:
            for name in red.names:
                gidx = self.prog.gindex[name]
                slot = self._temp(f"red_{name}")
                red_triples.append((red.op, gidx, slot))
                saved_redirects[name] = self.redirects.get(name)
                self.redirects[name] = slot
                self.emit("const", _REDUCTION_IDENTITY[red.op])
                self.emit("lstore", slot)
        # lastprivate: private slot during the loop; the thread that
        # executed the sequentially-last iteration writes it back.
        lp_pairs: List[Tuple[int, int]] = []
        for name in node.lastprivate:
            gidx = self.prog.gindex[name]
            slot = self._temp(f"lp_{name}")
            lp_pairs.append((gidx, slot))
            saved_redirects.setdefault(name, self.redirects.get(name))
            self.redirects[name] = slot
        for name in node.private:
            self.ensure_private_slot(name)

        i_slot = self.ensure_private_slot(var)
        lo_t, hi_t, step_t, n_t = (self._temp("lo"), self._temp("hi"),
                                   self._temp("step"), self._temp("n"))
        self.compile_expr(lo_e)
        self.emit("lstore", lo_t)
        self.compile_expr(hi_e)
        if hi_adjust:
            self.emit("const", hi_adjust)
            self.emit("binop", "+")
        self.emit("lstore", hi_t)
        self.compile_expr(step_e)
        if negate_step:
            self.emit("unop", "-")
        self.emit("lstore", step_t)
        self.emit("lload", lo_t)
        self.emit("lload", hi_t)
        self.emit("lload", step_t)
        self.emit("rt", ("sched_init", (site, sched.kind, sched.chunk), 3))

        chunk_head = self.here
        self.emit("rt", ("sched_next", (site,), 0))
        jdone = self.emit("jnone", -1)
        self.emit("unpack2")              # -> start, count (count on top)
        self.emit("lstore", n_t)
        self.emit("lload", step_t)        # i = lo + start*step
        self.emit("binop", "*")
        self.emit("lload", lo_t)
        self.emit("binop", "+")
        self.emit("lstore", i_slot)
        iter_head = self.here
        self.emit("lload", n_t)
        jchunk = self.emit("jfalse", -1)
        self.loop_stack.append(([], []))
        self.compile_stmt(loop.body)
        breaks, conts = self.loop_stack.pop()
        if breaks:
            raise SemanticError("break is not allowed in an omp for loop",
                                node.line)
        cont_at = self.here
        for c in conts:
            self.patch(c, cont_at)
        self.emit("lload", i_slot)
        self.emit("lload", step_t)
        self.emit("binop", "+")
        self.emit("lstore", i_slot)
        self.emit("lload", n_t)
        self.emit("const", 1)
        self.emit("binop", "-")
        self.emit("lstore", n_t)
        self.emit("jump", iter_head)
        self.patch(jchunk, chunk_head)
        self.patch(jdone, self.here)

        for op, gidx, slot in red_triples:
            self.emit("lload", slot)
            self.emit("rt", ("reduce", (op, gidx), 1))
        if lp_pairs:
            self.emit("rt", ("loop_is_last", (site,), 0))
            jskip = self.emit("jfalse", -1)
            for gidx, slot in lp_pairs:
                self.emit("lload", slot)
                self.emit("gstore", gidx)
            self.patch(jskip, self.here)
        for name, old in saved_redirects.items():
            if old is None:
                del self.redirects[name]
            else:
                self.redirects[name] = old
        if not node.nowait:
            self.emit("rt", ("barrier", (site,), 0))

    def _stmt_OmpParallel(self, node: A.OmpParallel) -> None:
        if self.code.is_region:
            raise SemanticError("nested parallel regions are not supported",
                                node.line)
        captured = self._captured_locals(node)
        fidx, code = self.prog.new_region_code(
            self.code.name, captured, node.line)
        rc = _FuncCompiler(self.prog, code)

        # Region-level privatization plumbing.
        fp_pairs: List[Tuple[int, int]] = []
        red_triples: List[Tuple[str, int, int]] = []
        for name in node.private:
            if name not in rc.slots:
                rc.redirects[name] = rc._new_slot(name)
        for name in node.firstprivate:
            if name in captured:
                continue        # captured-by-value is already firstprivate
            gidx = self.prog.gindex.get(name)
            if gidx is None:
                raise SemanticError(
                    f"firstprivate({name}): unknown variable", node.line)
            slot = rc._new_slot(name)
            rc.redirects[name] = slot
            fp_pairs.append((slot, gidx))
        for red in node.reductions:
            for name in red.names:
                gidx = self.prog.gindex[name]
                slot = rc._new_slot(f"{name}")
                rc.redirects[name] = slot
                red_triples.append((red.op, gidx, slot))
        rc.compile_region_body(node, fp_pairs, red_triples)

        # Invocation in the enclosing (serial) code.
        for name in captured:
            self.emit("lload", self.slots[name])
        if node.if_expr is not None:
            self.compile_expr(node.if_expr)
        else:
            self.emit("const", 1)
        if node.num_threads is not None:
            self.compile_expr(node.num_threads)
        else:
            self.emit("const", 0)
        self.emit("rt", ("parallel_begin", (fidx, len(captured)),
                         len(captured) + 2))
        for name in captured:
            self.emit("lload", self.slots[name])
        self.emit("call", (fidx, len(captured)))
        self.emit("pop")
        self.emit("rt", ("parallel_end", (), 0))

    def _captured_locals(self, node: A.OmpParallel) -> List[str]:
        """Enclosing-function locals referenced by the region, captured
        by value as region parameters (sorted for determinism)."""
        from ..lang.sema import declared_locals
        refs = collect_var_reads(node.body)
        inner = declared_locals(node.body)
        clause = (set(node.private) | set(node.firstprivate)
                  | {n for r in node.reductions for n in r.names})
        auto_private = set()
        for n in walk(node.body):
            if isinstance(n, A.OmpFor):
                init = n.loop.init
                if isinstance(init, A.Assign) and isinstance(init.target,
                                                             A.Var):
                    auto_private.add(init.target.name)
        captured = []
        for name in sorted(refs):
            if (name in inner or name in clause or name in auto_private
                    or name in self.prog.gindex
                    or name in self.prog.func_index
                    or name in INTRINSICS):
                continue
            if name in self.slots:
                if self.local_dims.get(name):
                    raise SemanticError(
                        f"cannot capture local array {name!r} into a "
                        f"parallel region; make it file-scope", node.line)
                captured.append(name)
        return captured

    # ---------------------------------------------------------- expressions

    def compile_expr(self, e: A.Node) -> None:
        if e.line:
            self._line = e.line
        if isinstance(e, A.Num):
            self.emit("const", e.value)
        elif isinstance(e, A.Var):
            kind, idx = self._resolve(e.name, e.line)
            if kind == "local":
                self.emit("lload", idx)
            else:
                g = self.prog.globals[idx]
                if g.dims:
                    raise SemanticError(
                        f"array {e.name!r} used without indices", e.line)
                self.emit("gload", idx)
        elif isinstance(e, A.Index):
            kind, idx = self._resolve(e.name, e.line)
            if kind == "local":
                dims = self.local_dims.get(e.name) or ()
                if not dims:
                    raise SemanticError(f"{e.name!r} is not an array",
                                        e.line)
                self._emit_flat_index(e, dims)
                self.emit("aload", idx)
            else:
                g = self.prog.globals[idx]
                if not g.dims:
                    raise SemanticError(f"{e.name!r} is not an array",
                                        e.line)
                self._emit_flat_index(e, g.dims)
                self.emit("geload", idx)
        elif isinstance(e, A.BinOp):
            if e.op == "&&":
                self.compile_expr(e.lhs)
                self.emit("dup")
                jf = self.emit("jfalse", -1)
                self.emit("pop")
                self.compile_expr(e.rhs)
                self.patch(jf, self.here)
            elif e.op == "||":
                self.compile_expr(e.lhs)
                self.emit("dup")
                self.emit("unop", "!")
                jf = self.emit("jfalse", -1)
                self.emit("pop")
                self.compile_expr(e.rhs)
                self.patch(jf, self.here)
            else:
                self.compile_expr(e.lhs)
                self.compile_expr(e.rhs)
                self.emit("binop", e.op)
        elif isinstance(e, A.UnOp):
            self.compile_expr(e.operand)
            self.emit("unop", e.op)
        elif isinstance(e, A.Call):
            if e.name in _RT_INTRINSICS:
                self.emit("rt", (_RT_INTRINSICS[e.name], (), 0))
            elif e.name in INTRINSICS:
                for a in e.args:
                    self.compile_expr(a)
                self.emit("icall", (e.name, len(e.args)))
            else:
                fidx = self.prog.func_index.get(e.name)
                if fidx is None:
                    raise SemanticError(f"undeclared function {e.name!r}",
                                        e.line)
                want = self.prog.funcs[fidx].n_params
                if len(e.args) != want:
                    raise SemanticError(
                        f"{e.name} takes {want} argument(s)", e.line)
                for a in e.args:
                    self.compile_expr(a)
                self.emit("call", (fidx, len(e.args)))
        else:
            raise SemanticError(f"cannot compile expression "
                                f"{type(e).__name__}", e.line)

    def _emit_flat_index(self, node: A.Index, dims: Tuple[int, ...]) -> None:
        if len(node.indices) != len(dims):
            raise SemanticError(
                f"{node.name}: expected {len(dims)} indices, got "
                f"{len(node.indices)}", node.line)
        self.compile_expr(node.indices[0])
        for k in range(1, len(dims)):
            self.emit("const", dims[k])
            self.emit("binop", "*")
            self.compile_expr(node.indices[k])
            self.emit("binop", "+")


def _const_eval(e: A.Node) -> float:
    if isinstance(e, A.Num):
        return e.value
    if isinstance(e, A.UnOp) and e.op == "-":
        return -_const_eval(e.operand)
    if isinstance(e, A.BinOp):
        lhs, rhs = _const_eval(e.lhs), _const_eval(e.rhs)
        try:
            return {"+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
                    "/": lhs / rhs}[e.op]
        except KeyError:
            pass
    raise SemanticError("global initializers must be constants", e.line)


def _normalize_omp_loop(loop: A.For):
    """Extract (lo_expr, hi_expr, hi_adjust, step_expr, negate, varname)
    from a canonical omp for loop."""
    line = loop.line
    if not (isinstance(loop.init, A.Assign)
            and isinstance(loop.init.target, A.Var)):
        raise SemanticError("omp for needs 'i = lo' initialization", line)
    var = loop.init.target.name
    lo_e = loop.init.value
    cond = loop.cond
    if not (isinstance(cond, A.BinOp) and isinstance(cond.lhs, A.Var)
            and cond.lhs.name == var and cond.op in ("<", "<=", ">", ">=")):
        raise SemanticError(
            "omp for condition must be 'i < e', 'i <= e', 'i > e' or "
            "'i >= e'", line)
    hi_e = cond.rhs
    hi_adjust = {"<": 0, "<=": 1, ">": 0, ">=": -1}[cond.op]
    step = loop.step
    if not (isinstance(step, A.Assign) and isinstance(step.target, A.Var)
            and step.target.name == var
            and isinstance(step.value, A.BinOp)
            and step.value.op in ("+", "-")):
        raise SemanticError("omp for step must be 'i = i +/- c'", line)
    sv = step.value
    negate = sv.op == "-"
    if isinstance(sv.lhs, A.Var) and sv.lhs.name == var:
        step_e = sv.rhs
    elif (isinstance(sv.rhs, A.Var) and sv.rhs.name == var
          and sv.op == "+"):
        step_e = sv.lhs
    else:
        raise SemanticError("omp for step must be 'i = i +/- c'", line)
    return lo_e, hi_e, hi_adjust, step_e, negate, var
