"""Compatibility facade over the execution pipeline.

The execution layer proper lives in four staged modules now --
:mod:`repro.harness.jobs` (RunSpec / WorkUnit / SweepPlan and the
bit-identical merge), :mod:`repro.harness.transport` (serial / pool /
spool-directory dispatch), :mod:`repro.harness.checkpoint` (resume
journal + run-result memo store) and :mod:`repro.harness.pipeline`
(the driver tying them together).  This module keeps the original
``ExecutionContext`` surface as thin wrappers so existing callers and
one-off scripts keep working:

* :class:`SerialContext` == pipeline over :class:`SerialTransport`;
* :class:`ProcessPoolContext` == pipeline over
  :class:`PoolTransport` (same hardened retry/degrade behaviour,
  same ``events``/``degraded`` reporting);
* :func:`make_context` -- the ``--jobs``-style factory.

New code should build an :class:`~repro.harness.pipeline.
ExecutionPipeline` directly (and gains checkpointing and memoization
for free); the wrappers exist so the one-line "switch a whole program
between serial and multi-process operation" idiom keeps its shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

# Re-exports: the historical home of these names.
from .jobs import (RunSpec, execute_spec, static_specs,  # noqa: F401
                   dynamic_specs)
from .pipeline import ExecutionPipeline
from .runner import BenchRun
from .transport import PoolTransport, SerialTransport, Transport

__all__ = ["RunSpec", "ExecutionContext", "SerialContext",
           "ProcessPoolContext", "execute_spec", "make_context",
           "static_specs", "dynamic_specs"]


class ExecutionContext:
    """Legacy facade: a pipeline pinned to one transport.

    :meth:`run` / :meth:`map` preserve the submission order of
    ``specs`` in their output regardless of completion order -- the
    determinism contract every caller (suites, figures, tests) relies
    on, now enforced by :meth:`repro.harness.jobs.SweepPlan.merge`.
    """

    def _transport(self) -> Transport:
        raise NotImplementedError

    def _pipeline(self) -> ExecutionPipeline:
        return ExecutionPipeline(transport=self._transport())

    def run(self, specs: Sequence[RunSpec]) -> List[BenchRun]:
        """Execute all specs; results in submission order."""
        pipe = self._pipeline()
        try:
            return pipe.run(specs)
        finally:
            self._adopt(pipe)

    def map(self, specs: Sequence[RunSpec]) -> Dict[Tuple, BenchRun]:
        """Execute all specs; results keyed by ``spec.key``."""
        specs = list(specs)
        return {s.key: r for s, r in zip(specs, self.run(specs))}

    def _adopt(self, pipe: ExecutionPipeline) -> None:
        """Mirror transport health onto the context (legacy surface)."""


class SerialContext(ExecutionContext):
    """Execute specs one after another in this process."""

    def _transport(self) -> Transport:
        return SerialTransport()


class ProcessPoolContext(ExecutionContext):
    """Fan specs out over a hardened process pool (``--jobs N``).

    Results are merged by submission order, so the output -- and
    therefore every downstream table -- is identical to
    :class:`SerialContext`'s; only wall-clock changes.  Worker loss
    costs one bounded retry, then a loud degradation to serial (see
    :class:`~repro.harness.transport.PoolTransport`); :attr:`events`
    and :attr:`degraded` report the last run's health.
    """

    def __init__(self, jobs: Optional[int] = None,
                 start_method: Optional[str] = None):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        import os
        self.jobs = jobs or os.cpu_count() or 1
        self.start_method = start_method
        #: Human-readable record of retries/degradation (last run()).
        self.events: List[str] = []
        #: True when any spec of the last run() fell back to serial.
        self.degraded = False

    def _transport(self) -> Transport:
        return PoolTransport(jobs=self.jobs,
                             start_method=self.start_method)

    def _adopt(self, pipe: ExecutionPipeline) -> None:
        self.events = list(pipe.events)
        self.degraded = pipe.degraded


def make_context(jobs: Optional[int]) -> ExecutionContext:
    """``--jobs``-style factory: None/0/1 -> serial, N>1 -> pool."""
    if jobs is None or jobs <= 1:
        return SerialContext()
    return ProcessPoolContext(jobs=jobs)
