"""Parallel experiment execution layer.

Every figure and ablation in this reproduction is a sweep of
*independent* simulations (bench x config x machine parameters), which
makes the suite embarrassingly parallel: the only coupling between runs
is the order their results are reported in.  This module factors the
"how do runs execute" question out of the harness into an
*execution context* (in the spirit of puma's execution contexts: switch
a whole program between serial and multi-process operation by changing
the one line that instantiates the context):

* :class:`RunSpec` -- a picklable, hashable description of one run
  (bench, config, size, schedule, parameter and machine overrides);
* :class:`SerialContext` -- executes specs in order, in process;
* :class:`ProcessPoolContext` -- fans specs out over a
  ``multiprocessing`` pool (``--jobs N`` on the CLI) and merges results
  *by spec*, so the returned list is in submission order no matter
  which worker finished first.

Determinism guarantee: each simulation is a pure function of its spec
(the engine breaks timestamp ties with a monotone sequence number, and
compilation is content-addressed), so simulated cycle counts are
bit-identical across worker counts and submission orders.  The
``tests/test_harness_exec.py`` suite pins this down.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..config.machine import MachineConfig, PAPER_MACHINE
from ..faults import FaultConfig
from ..npb import REGISTRY
from ..runtime import SimDeadlockError, run_program
from .runner import BenchRun, _env_for, _mode_for

__all__ = ["RunSpec", "ExecutionContext", "SerialContext",
           "ProcessPoolContext", "execute_spec", "make_context"]

_LOG = logging.getLogger("repro.harness.exec")


@dataclass(frozen=True)
class RunSpec:
    """One benchmark run, described by value.

    Everything here is hashable and picklable: the spec is both the job
    description shipped to pool workers and the merge key results are
    collated by.  ``params`` and ``machine_kw`` are stored as sorted
    item tuples (dicts are neither hashable nor order-canonical).
    """

    bench: str
    config: str                               # "single"|"double"|"G0"|"L1"
    size: str = "bench"
    schedule: Optional[Tuple[str, Optional[int]]] = None
    params: Tuple[Tuple[str, int], ...] = ()
    cfg: MachineConfig = PAPER_MACHINE
    verify: bool = True
    machine_kw: Tuple[Tuple[str, Any], ...] = ()
    #: Seeded fault campaign (chaos runs); the FaultPlan is rebuilt
    #: from this inside each worker, so schedules are identical for
    #: serial and pooled execution.
    faults: Optional[FaultConfig] = None
    #: Watchdog cycle budget (None = machine default).
    timeout_cycles: Optional[float] = None
    #: Capture failures as BenchRun.error instead of raising (chaos
    #: matrices must survive a hanging or wrong run and keep sweeping).
    capture_errors: bool = False

    @staticmethod
    def make(bench: str, config: str, size: str = "bench",
             schedule: Optional[Tuple[str, Optional[int]]] = None,
             params: Optional[Dict[str, int]] = None,
             cfg: MachineConfig = PAPER_MACHINE,
             verify: bool = True,
             faults: Optional[FaultConfig] = None,
             timeout_cycles: Optional[float] = None,
             capture_errors: bool = False, **machine_kw) -> "RunSpec":
        """Build a spec from the :func:`run_benchmark` argument shapes."""
        return RunSpec(
            bench=bench, config=config, size=size, schedule=schedule,
            params=tuple(sorted((params or {}).items())),
            cfg=cfg, verify=verify,
            machine_kw=tuple(sorted(machine_kw.items())),
            faults=faults, timeout_cycles=timeout_cycles,
            capture_errors=capture_errors)

    @property
    def key(self) -> Tuple:
        """Stable identity used to merge results deterministically."""
        return (self.bench, self.config, self.size, self.schedule,
                self.params, self.cfg, self.machine_kw, self.faults,
                self.timeout_cycles)

    def __str__(self) -> str:
        extra = f" {dict(self.params)}" if self.params else ""
        return f"{self.bench}/{self.config}({self.size}){extra}"


def execute_spec(spec: RunSpec) -> BenchRun:
    """Run one spec to completion (compile, simulate, verify).

    This is the single execution path shared by every context -- and by
    :func:`repro.harness.run_benchmark` -- so serial and pooled sweeps
    cannot drift apart.  Per-stage wall-clock timings are recorded on
    the returned run for the perf baseline.

    With ``spec.capture_errors``, failures (watchdog expiry, a wrong
    result, a crash) come back as ``BenchRun.error``/``error_kind``
    instead of raising, so a chaos sweep records the outcome and keeps
    going.
    """
    try:
        return _execute(spec)
    except Exception as e:                    # noqa: BLE001 - classified
        if not spec.capture_errors:
            raise
        if isinstance(e, SimDeadlockError):
            kind, msg = "hang", e.summary
        elif isinstance(e, AssertionError):
            kind, msg = "wrong-output", f"verification failed: {e}"
        else:
            kind, msg = "crash", f"{type(e).__name__}: {e}"
        run = BenchRun(spec.bench, spec.config, None, {})
        run.error = msg
        run.error_kind = kind
        return run


def _execute(spec: RunSpec) -> BenchRun:
    ks = REGISTRY[spec.bench]
    overrides = dict(spec.params)
    full_params = ks.params(spec.size, **overrides)
    run_kw: Dict[str, Any] = dict(spec.machine_kw)
    if spec.faults is not None:
        run_kw["faults"] = spec.faults
    if spec.timeout_cycles is not None:
        run_kw["max_cycles"] = spec.timeout_cycles
    t0 = time.perf_counter()
    image = ks.compile(spec.size, **overrides)
    t1 = time.perf_counter()
    result = run_program(image, cfg=spec.cfg, mode=_mode_for(spec.config),
                         env=_env_for(spec.config, spec.schedule),
                         **run_kw)
    t2 = time.perf_counter()
    if spec.verify:
        ks.verify(result.store, spec.size, **overrides)
    t3 = time.perf_counter()
    run = BenchRun(spec.bench, spec.config, result, full_params)
    run.timing = {"compile_s": t1 - t0, "sim_s": t2 - t1,
                  "verify_s": t3 - t2, "total_s": t3 - t0}
    return run


def _execute_indexed(item: Tuple[int, RunSpec]) -> Tuple[int, BenchRun]:
    """Pool worker entry point (module-level for picklability)."""
    index, spec = item
    return index, execute_spec(spec)


class ExecutionContext:
    """How a batch of independent :class:`RunSpec` jobs executes.

    Subclasses implement :meth:`run`; :meth:`map` adds the keyed view.
    Both preserve the submission order of ``specs`` in their output
    regardless of completion order -- the determinism contract every
    caller (suites, figures, tests) relies on.
    """

    def run(self, specs: Sequence[RunSpec]) -> List[BenchRun]:
        """Execute all specs; results in submission order."""
        raise NotImplementedError

    def map(self, specs: Sequence[RunSpec]) -> Dict[Tuple, BenchRun]:
        """Execute all specs; results keyed by ``spec.key``."""
        specs = list(specs)
        return {s.key: r for s, r in zip(specs, self.run(specs))}


class SerialContext(ExecutionContext):
    """Execute specs one after another in this process."""

    def run(self, specs: Sequence[RunSpec]) -> List[BenchRun]:
        return [execute_spec(s) for s in specs]


class ProcessPoolContext(ExecutionContext):
    """Fan specs out over a process pool, hardened against worker loss.

    Results are merged by submission index, so the output order -- and
    therefore every downstream table -- is identical to
    :class:`SerialContext`'s; only wall-clock changes.  ``jobs``
    defaults to the host's CPU count.  Batches of one spec (or
    ``jobs=1``) run inline: a pool would only add fork overhead.

    Crash handling: a killed or crashed worker (``BrokenProcessPool``)
    costs one bounded retry of the unfinished specs on a fresh pool;
    if that fails too, the remainder degrades gracefully to in-process
    serial execution.  Degradation is never silent: it is logged, and
    recorded on :attr:`events` / :attr:`degraded` for callers (the CLI
    turns it into a non-zero exit).  Exceptions raised *by a spec*
    (verification failures, watchdog expiry) still propagate normally
    -- only worker-process loss is retried.
    """

    #: Pool passes before degrading to serial (initial try + 1 retry).
    max_pool_attempts = 2

    def __init__(self, jobs: Optional[int] = None,
                 start_method: Optional[str] = None, chunksize: int = 1):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or os.cpu_count() or 1
        self.start_method = start_method
        self.chunksize = chunksize      # kept for API compatibility
        #: Human-readable record of retries/degradation (last run()).
        self.events: List[str] = []
        #: True when any spec of the last run() fell back to serial.
        self.degraded = False

    def run(self, specs: Sequence[RunSpec]) -> List[BenchRun]:
        specs = list(specs)
        self.events = []
        self.degraded = False
        if min(self.jobs, len(specs)) <= 1:
            return SerialContext().run(specs)
        results: List[Optional[BenchRun]] = [None] * len(specs)
        pending = list(range(len(specs)))
        for attempt in range(self.max_pool_attempts):
            if not pending:
                break
            pending = self._pool_pass(specs, results, pending, attempt)
        if pending:
            self.degraded = True
            self._note(f"degrading to serial execution for "
                       f"{len(pending)} of {len(specs)} spec(s)")
            for i in pending:
                results[i] = execute_spec(specs[i])
        return results               # type: ignore[return-value]

    def _pool_pass(self, specs: List[RunSpec],
                   results: List[Optional[BenchRun]],
                   pending: List[int], attempt: int) -> List[int]:
        """One pool attempt over ``pending``; returns what's still
        unfinished (non-empty only after a worker crash)."""
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool
        ctx = mp.get_context(self.start_method)
        broken = False
        try:
            with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(pending)),
                    mp_context=ctx) as pool:
                futures = {pool.submit(_execute_indexed, (i, specs[i])): i
                           for i in pending}
                for fut in as_completed(futures):
                    try:
                        index, run = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    results[index] = run
        except BrokenProcessPool:
            broken = True
        remaining = [i for i in pending if results[i] is None]
        if remaining:
            what = ("retrying once on a fresh pool"
                    if attempt + 1 < self.max_pool_attempts
                    else "falling back to serial execution")
            why = ("pool worker crashed" if broken
                   else "pool lost results")
            self._note(f"{why}: {len(remaining)} of {len(specs)} spec(s) "
                       f"unfinished after attempt {attempt + 1}; {what}")
        return remaining

    def _note(self, msg: str) -> None:
        self.events.append(msg)
        _LOG.warning(msg)


def make_context(jobs: Optional[int]) -> ExecutionContext:
    """``--jobs``-style factory: None/0/1 -> serial, N>1 -> pool."""
    if jobs is None or jobs <= 1:
        return SerialContext()
    return ProcessPoolContext(jobs=jobs)


# -- suite spec builders (used by runner.py and the perf baseline) ----------

def static_specs(cfg: MachineConfig, size: str,
                 benchmarks: Iterable[str], configs: Iterable[str],
                 verify: bool = True, **machine_kw) -> List[RunSpec]:
    """Specs of the Figure-2/3 static-scheduling sweep, in suite order."""
    return [RunSpec.make(b, c, size=size, cfg=cfg, verify=verify,
                         **machine_kw)
            for b in benchmarks for c in configs]


def dynamic_specs(cfg: MachineConfig, size: str,
                  benchmarks: Iterable[str], configs: Iterable[str],
                  verify: bool = True, **machine_kw) -> List[RunSpec]:
    """Specs of the Figure-4/5 dynamic-scheduling sweep, in suite order."""
    from .runner import DYNAMIC_PARAMS, dynamic_chunk
    specs = []
    for b in benchmarks:
        chunk = dynamic_chunk(b, cfg, size)
        params = DYNAMIC_PARAMS.get(b) if size == "bench" else None
        for c in configs:
            specs.append(RunSpec.make(
                b, c, size=size, schedule=("dynamic", chunk),
                params=params, cfg=cfg, verify=verify, **machine_kw))
    return specs
