"""Integrity-framed pickle publishing: the crash-consistency layer
every on-disk payload of the execution pipeline goes through.

Spool units and results, checkpoint-journal entries and memo-store
entries are all pickles published with ``os.replace``.  Atomic rename
protects readers from *torn* writes, but not from a disk flipping
bits, a writer dying mid-``write`` on the temp file of a filesystem
without ordered metadata, or an operator truncating a file -- and a
silently corrupt pickle is the one failure mode a deterministic
reproduction harness cannot tolerate (``pickle.loads`` on garbage can
return *anything*, including a plausible-looking wrong result).

So every publish is framed::

    RPF1 | 8-byte big-endian payload length | payload | sha256(payload)

and every load verifies the frame before unpickling.  A file that
fails verification is **quarantined** -- moved aside into a
``corrupt/`` sibling directory (never deleted: it is evidence) -- the
failure is recorded as an ``integrity.corrupt`` telemetry event, and
the caller sees a plain miss, never an exception.  Unframed legacy
pickles (pre-framing spools) still load, so mixed-version fleets
degrade gracefully rather than quarantining each other's output.

:func:`atomic_pickle` is also the harness-hazard injection seam: an
armed :mod:`repro.harness.hazards` plan may corrupt/truncate the
framed bytes or fail the publish with ENOSPC/EIO at deterministic
opportunity indices (zero cost when disarmed -- one module-attribute
test).
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import struct
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from ..obs.telemetry import NULL_TELEMETRY

__all__ = ["MAGIC", "IntegrityError", "frame", "unframe", "atomic_pickle",
           "load_verified", "quarantine_file", "gc_tmp"]

_LOG = logging.getLogger("repro.harness.integrity")

#: Frame marker.  Pickle streams start with ``\x80`` (protocol opcode),
#: JSON with ``{`` or ``[`` -- nothing the harness ever published can
#: collide with this prefix, which is what makes the legacy fallback
#: in :func:`load_verified` sound.
MAGIC = b"RPF1"

_HEADER = struct.Struct(">4sQ")           # magic + payload length
_DIGEST_LEN = hashlib.sha256().digest_size


class IntegrityError(ValueError):
    """A framed payload failed verification (bad magic, short read,
    length mismatch, digest mismatch)."""


def frame(payload: bytes) -> bytes:
    """Wrap serialized bytes in the length + sha256-trailer frame."""
    return (_HEADER.pack(MAGIC, len(payload)) + payload
            + hashlib.sha256(payload).digest())


def unframe(data: bytes) -> bytes:
    """Verify a framed blob and return the payload; raises
    :class:`IntegrityError` on any mismatch."""
    if len(data) < _HEADER.size:
        raise IntegrityError(f"short frame: {len(data)} bytes")
    magic, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise IntegrityError(f"bad magic {magic!r}")
    if len(data) != _HEADER.size + length + _DIGEST_LEN:
        raise IntegrityError(
            f"length mismatch: header says {length} payload bytes, "
            f"file holds {len(data) - _HEADER.size - _DIGEST_LEN}")
    payload = data[_HEADER.size:_HEADER.size + length]
    digest = data[_HEADER.size + length:]
    if hashlib.sha256(payload).digest() != digest:
        raise IntegrityError("sha256 digest mismatch")
    return payload


def atomic_pickle(obj, path: Path, what: str = "entry") -> None:
    """Frame-pickle ``obj`` and atomically publish it at ``path``.

    Same-directory temp file + ``os.replace``; the temp file is
    unlinked on any failure so a failing publish never litters.
    ``what`` labels the publish site for hazard injection ("unit" /
    "result" / "journal" / "memo") -- an armed hazard plan may rewrite
    the bytes or raise ``OSError`` here, which propagates to the
    caller exactly like a real full disk.
    """
    from . import hazards                   # local: hazards has no deps on us
    path = Path(path)
    data = frame(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    plan = hazards.current()
    if plan is not None:
        data = plan.on_publish(what, path, data)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_verified(path: Path, quarantine_to: Optional[Path] = None,
                  telemetry=NULL_TELEMETRY, what: str = "entry",
                  unit: Optional[str] = None):
    """Load a framed pickle, verifying integrity; None on miss.

    A missing file is a plain miss.  A present-but-unverifiable file
    (truncated, bit-flipped, not a pickle at all) is moved into
    ``quarantine_to`` (kept in place if no quarantine dir was given or
    the move fails), recorded as an ``integrity.corrupt`` event, and
    reported as a miss -- corruption must never be worse than
    re-executing the unit.  Unframed legacy pickles still load.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError:
        return None
    try:
        if data.startswith(MAGIC):
            return pickle.loads(unframe(data))
        # Legacy unframed entry (pre-integrity spool/journal): pickle
        # streams never start with the frame magic, so this branch is
        # unambiguous.  Still guarded -- garbage fails below.
        return pickle.loads(data)
    except Exception as exc:                # noqa: BLE001 - quarantined
        moved = quarantine_file(path, quarantine_to)
        telemetry.emit("integrity.corrupt", unit=unit, what=what,
                       file=path.name, error=f"{exc}"[:200],
                       quarantined=str(moved) if moved else None)
        telemetry.count("integrity.corrupt")
        _LOG.warning("integrity: corrupt %s %s (%s)%s", what, path.name,
                     exc, f" -> quarantined to {moved}" if moved else "")
        return None


def quarantine_file(path: Path, root: Optional[Path]) -> Optional[Path]:
    """Move a corrupt file under ``root`` (kept as evidence, out of
    every reader's glob); None when no root was given or the move
    failed (the file stays put and will re-quarantine next read)."""
    if root is None:
        return None
    root = Path(root)
    try:
        root.mkdir(parents=True, exist_ok=True)
        target = root / path.name
        n = 0
        while target.exists():
            n += 1
            target = root / f"{path.name}.{n}"
        os.replace(path, target)
        return target
    except OSError:
        return None


def gc_tmp(directory: Path, older_than_s: float = 0.0) -> List[Path]:
    """Collect ``*.tmp`` litter a writer killed between ``mkstemp``
    and ``os.replace`` left behind.

    Only files older than ``older_than_s`` are removed (a live
    writer's in-flight temp file must survive); readers never match
    ``*.tmp`` in the first place, so litter is cosmetic until it is
    collected here.
    """
    directory = Path(directory)
    removed: List[Path] = []
    if not directory.is_dir():
        return removed
    now = time.time()
    for tmp in directory.glob("*.tmp"):
        try:
            if now - tmp.stat().st_mtime >= older_than_s:
                tmp.unlink()
                removed.append(tmp)
        except OSError:
            continue
    return removed
