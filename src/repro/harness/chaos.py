"""Chaos harness: seeded fault matrices, the output oracle, reports.

This is the adversarial proof of the paper's correctness claim: a
matrix of seeded :class:`~repro.faults.FaultConfig` campaigns is run
over the mini-NPB kernels, and every faulted run's R-stream results are
checked against a fault-free serial reference execution of the same
compiled image (the **output oracle**).  A-stream corruption may cost
recovery cycles but must never change program output -- a scenario can
end "clean" or "recovered", never "wrong-output" or "hang".

The reference chain has two links: faulted runs must reproduce a
fault-free machine run of the same spec (to within reduction-order
ULPs -- see the oracle section below), and that baseline is anchored
to an independent serial :class:`~repro.interp.FunctionalRunner` pass.
Both references are memoized and compiled through the content-
addressed compile cache, so a 30-scenario matrix pays for at most a
handful of reference executions.

Everything here is deterministic: the same ``(benchmarks, seeds,
classes)`` arguments build the same spec list, and each spec's
injection schedule derives only from its config seed -- a chaos matrix
can be regression-gated exactly like cycle counts.

The second half of this module is the **harness** chaos matrix
(``repro chaos --harness``, :func:`run_harness_chaos`): the same
adversarial discipline pointed at the execution pipeline itself.
Seeded :class:`~repro.harness.hazards.HazardConfig` campaigns corrupt
published pickles, fail publishes with ENOSPC/EIO, plant stale claims,
skew lease clocks and kill workers, across the serial / pool / spool
transports -- and every scenario must still merge cycles bit-identical
to a hazard-free sweep, with the telemetry event log validating and
every anomaly explained by a ``hazard.injected`` record.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..config.machine import MachineConfig, PAPER_MACHINE
from ..faults import CLASS_KINDS, FAULT_CLASSES, FaultConfig
from ..interp.funcrunner import FunctionalRunner
from ..npb import REGISTRY
from ..obs.telemetry import (Telemetry, read_events, telemetry_area,
                             validate_events)
from . import hazards
from .checkpoint import CheckpointJournal, MemoStore
from .jobs import RunSpec, execute_spec
from .pipeline import ExecutionPipeline
from .runner import BenchRun
from .transport import DirQueueTransport, PoolTransport, SerialTransport

__all__ = ["CHAOS_BENCHMARKS", "SCENARIO_CLASS_SETS", "ChaosOutcome",
           "ChaosReport", "chaos_specs", "run_chaos", "oracle_check",
           "render_chaos",
           "HARNESS_TRANSPORTS", "HARNESS_CLASS_SETS",
           "HarnessChaosOutcome", "HarnessChaosReport",
           "run_harness_chaos", "render_harness_chaos"]

#: Default kernels of the chaos matrix: CG and MG exercise the dynamic-
#: scheduling mailbox, LU the static path.
CHAOS_BENCHMARKS = ("cg", "lu", "mg")

#: One scenario per fault class plus an everything-armed scenario.
SCENARIO_CLASS_SETS: Tuple[Tuple[str, ...], ...] = (
    ("vm",), ("channel",), ("kill",), ("net",), FAULT_CLASSES)

#: Watchdog budget for chaos runs.  Test-size runs finish well under
#: 5e5 cycles, so a 5e6 ceiling converts any injected hang into a
#: structured SimDeadlockError in bounded wall time.
DEFAULT_TIMEOUT_CYCLES = 5e6

#: Oracle tolerances: the machine's reductions associate differently
#: from the serial reference, so allow slightly more slack than the
#: NPB verifiers' 1e-9 (both paths already pass those).
_ORACLE_RTOL = 1e-8
_ORACLE_ATOL = 1e-10


def chaos_specs(benchmarks: Iterable[str] = CHAOS_BENCHMARKS,
                seeds: int = 2, base_seed: int = 0,
                classes: Optional[Sequence[Sequence[str]]] = None,
                size: str = "test",
                cfg: MachineConfig = PAPER_MACHINE,
                timeout_cycles: float = DEFAULT_TIMEOUT_CYCLES
                ) -> List[RunSpec]:
    """Build the seeded fault matrix: every benchmark x ``seeds`` seeds
    x scenario class set, all under the G0 slipstream configuration.

    Scenarios arming the ``channel`` class run with dynamic scheduling
    (where supported) so the mailbox actually carries traffic for
    ``mailbox_stale`` to corrupt.
    """
    class_sets = [tuple(c) for c in (classes or SCENARIO_CLASS_SETS)]
    specs: List[RunSpec] = []
    for bench in benchmarks:
        for s in range(seeds):
            for j, cls in enumerate(class_sets):
                seed = base_seed * 10_000 + s * 100 + j
                schedule = (("dynamic", 4)
                            if "channel" in cls and bench != "lu"
                            else None)
                specs.append(RunSpec.make(
                    bench, "G0", size=size, schedule=schedule, cfg=cfg,
                    verify=True, faults=FaultConfig(seed, classes=cls),
                    timeout_cycles=timeout_cycles, capture_errors=True))
    return specs


# -- output oracle ----------------------------------------------------------
#
# The oracle is a two-link chain:
#
#   faulted machine run  ~=  fault-free machine run of the same spec
#   fault-free machine run  ~=  serial FunctionalRunner reference
#
# The first link compares *every* global (including scratch state like
# LU's pipeline flags, which a serial reference legitimately leaves at
# different values) and all output rows.  It is tolerance-based, not
# bit-exact, for one reason only: the runtime merges OpenMP reduction
# partials in arrival order, and OpenMP leaves that order unspecified
# -- so a legal timing perturbation (even pure network jitter) may
# re-associate a reduction and drift the result a few ULPs.  Any
# genuine value corruption leaking out of the A-stream is orders of
# magnitude beyond these tolerances.  The second link anchors the
# chain to an independent serial execution of the same compiled image.

#: baseline spec.key -> (global arrays, output rows) of the fault-free
#: machine run.  Compilation inside goes through the content-addressed
#: compile cache, so this memo only saves re-execution.
_BASE_CACHE: Dict[Tuple, Tuple] = {}

#: (bench, size, params) -> serial-anchor verdict (None = ok).
_ANCHOR_CACHE: Dict[Tuple, Optional[str]] = {}


def _baseline(spec: RunSpec) -> Tuple:
    """Fault-free machine run of the same spec (memoized by identity)."""
    base = replace(spec, faults=None, timeout_cycles=None,
                   capture_errors=False)
    hit = _BASE_CACHE.get(base.key)
    if hit is None:
        result = execute_spec(base).result
        hit = _BASE_CACHE[base.key] = (
            list(result.store.arrays), list(result.output))
    return hit


def _serial_anchor(spec: RunSpec, base_output) -> Optional[str]:
    """Check the fault-free machine baseline against an independent
    serial FunctionalRunner pass of the same compiled image."""
    key = (spec.bench, spec.size, spec.params)
    if key not in _ANCHOR_CACHE:
        image = REGISTRY[spec.bench].compile(spec.size,
                                             **dict(spec.params))
        ref = FunctionalRunner(image).run()
        verdict = None
        if len(base_output) != len(ref.output):
            verdict = (f"serial anchor: output rows {len(base_output)}"
                       f" != reference {len(ref.output)}")
        else:
            for i, (got, want) in enumerate(zip(base_output, ref.output)):
                if len(got) != len(want) or not all(
                        _cell_close(a, b) for a, b in zip(got, want)):
                    verdict = (f"serial anchor: output row {i}: machine "
                               f"{tuple(got)!r} vs serial {tuple(want)!r}")
                    break
        _ANCHOR_CACHE[key] = verdict
    return _ANCHOR_CACHE[key]


def _cell_close(a, b) -> bool:
    """Output rows mix labels and numbers; floats get tolerance."""
    if isinstance(a, float) or isinstance(b, float):
        return bool(np.isclose(a, b, rtol=_ORACLE_RTOL,
                               atol=_ORACLE_ATOL))
    return a == b


def oracle_check(spec: RunSpec, result) -> Optional[str]:
    """Compare a (possibly faulted) run's architectural results against
    the fault-free reference chain.  Returns a mismatch description, or
    None when the paper's invariant holds."""
    base_arrays, base_output = _baseline(spec)
    anchor = _serial_anchor(spec, base_output)
    if anchor is not None:
        return anchor
    for gidx, g in enumerate(result.store.program.globals):
        got = result.store.arrays[gidx]
        want = base_arrays[gidx]
        close = np.isclose(got, want, rtol=_ORACLE_RTOL,
                           atol=_ORACLE_ATOL, equal_nan=True)
        if not close.all():
            bad = int(np.argmax(~close))
            return (f"global {g.name!r}[{bad}]: got {got[bad]!r}, "
                    f"fault-free machine {want[bad]!r}")
    if len(result.output) != len(base_output):
        return (f"output row count: got {len(result.output)}, "
                f"fault-free machine {len(base_output)}")
    for i, (got, want) in enumerate(zip(result.output, base_output)):
        if len(got) != len(want) or not all(
                _cell_close(a, b) for a, b in zip(got, want)):
            return (f"output row {i}: got {tuple(got)!r}, "
                    f"fault-free machine {tuple(want)!r}")
    return None


# -- outcomes ---------------------------------------------------------------

@dataclass
class ChaosOutcome:
    """One scenario's verdict."""

    bench: str
    config: str
    seed: int
    classes: Tuple[str, ...]
    #: "clean" | "recovered" | "hang" | "wrong-output" | "crash"
    status: str
    oracle: str                       # "ok" | "skipped" | mismatch text
    recoveries: int = 0
    #: Barrier sites divergence was detected at (source-attributable
    #: via the image's site table; negative ids = end-of-region joins).
    recovery_sites: List[Optional[int]] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)
    cycles: float = float("nan")
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Did the paper's invariant hold for this scenario?"""
        return self.status in ("clean", "recovered")

    def to_json(self) -> dict:
        return {"bench": self.bench, "config": self.config,
                "seed": self.seed, "classes": list(self.classes),
                "status": self.status, "oracle": self.oracle,
                "recoveries": self.recoveries,
                "recovery_sites": self.recovery_sites,
                "injected": dict(self.injected),
                "cycles": None if self.cycles != self.cycles
                else self.cycles,
                "error": self.error}


@dataclass
class ChaosReport:
    """A whole matrix's outcomes plus harness-health notes."""

    outcomes: List[ChaosOutcome]
    degraded: bool = False
    events: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Zero hangs, zero wrong outputs, zero crashes."""
        return all(o.ok for o in self.outcomes)

    @property
    def total_recoveries(self) -> int:
        return sum(o.recoveries for o in self.outcomes)

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for o in self.outcomes:
            counts[o.status] = counts.get(o.status, 0) + 1
        return counts

    def class_recovery(self) -> Dict[str, bool]:
        """Per fault class: did any scenario arming it both fire one of
        its kinds and trigger at least one recovery?  (``net`` jitter is
        protocol-legal and can only co-occur with recoveries via the
        all-classes scenarios -- see DESIGN.md §7.)"""
        cov = {}
        for cls in FAULT_CLASSES:
            kinds = set(CLASS_KINDS[cls])
            cov[cls] = any(
                cls in o.classes and o.recoveries > 0
                and any(k in kinds for k in o.injected)
                for o in self.outcomes)
        return cov

    def to_json(self) -> dict:
        return {"ok": self.ok,
                "summary": {"scenarios": len(self.outcomes),
                            "statuses": self.status_counts(),
                            "recoveries": self.total_recoveries,
                            "class_recovery": self.class_recovery()},
                "degraded": self.degraded,
                "events": list(self.events),
                "scenarios": [o.to_json() for o in self.outcomes]}


def _classify(spec: RunSpec, run: BenchRun) -> ChaosOutcome:
    seed = spec.faults.seed if spec.faults is not None else 0
    classes = spec.faults.classes if spec.faults is not None else ()
    if run.error is not None:
        return ChaosOutcome(spec.bench, spec.config, seed, classes,
                            status=run.error_kind or "crash",
                            oracle="skipped", error=run.error)
    result = run.result
    mismatch = oracle_check(spec, result)
    injected: Dict[str, int] = {}
    if result.faults is not None:
        for f in result.faults["fired"]:
            injected[f["kind"]] = injected.get(f["kind"], 0) + 1
    if mismatch is not None:
        status, oracle = "wrong-output", mismatch
    else:
        status = "recovered" if result.recoveries else "clean"
        oracle = "ok"
    return ChaosOutcome(
        spec.bench, spec.config, seed, classes, status=status,
        oracle=oracle, recoveries=len(result.recoveries),
        recovery_sites=[site for _, _, site in result.recoveries],
        injected=injected, cycles=result.cycles)


def run_chaos(specs: Sequence[RunSpec],
              context=None) -> ChaosReport:
    """Execute a fault matrix and classify every scenario.

    ``context`` is anything with a submission-order ``run(specs)``
    (an :class:`~repro.harness.pipeline.ExecutionPipeline` with any
    transport/journal/memo combination, or a legacy exec context);
    default serial pipeline."""
    specs = list(specs)
    context = context or ExecutionPipeline()
    runs = context.run(specs)
    return ChaosReport(
        outcomes=[_classify(s, r) for s, r in zip(specs, runs)],
        degraded=getattr(context, "degraded", False),
        events=list(getattr(context, "events", [])))


def render_chaos(report: ChaosReport, title: str = "chaos matrix") -> str:
    """Human-readable scenario table plus the summary verdict."""
    lines = [title, "=" * len(title),
             f"{'scenario':<22} {'classes':<24} {'fired':>5} "
             f"{'recov':>5}  status"]
    for o in report.outcomes:
        name = f"{o.bench}/{o.config} seed={o.seed}"
        fired = sum(o.injected.values())
        status = o.status if o.ok else f"** {o.status} **"
        lines.append(f"{name:<22} {','.join(o.classes):<24} "
                     f"{fired:>5} {o.recoveries:>5}  {status}")
        if o.error:
            lines.append(f"    {o.error}")
        elif o.oracle not in ("ok", "skipped"):
            lines.append(f"    oracle: {o.oracle}")
    counts = ", ".join(f"{v} {k}" for k, v in
                       sorted(report.status_counts().items()))
    lines.append(f"{len(report.outcomes)} scenarios: {counts}; "
                 f"{report.total_recoveries} recoveries")
    cov = report.class_recovery()
    lines.append("recovery coverage: " + ", ".join(
        f"{c}={'yes' if ok else 'no'}" for c, ok in sorted(cov.items())))
    for ev in report.events:
        lines.append(f"harness: {ev}")
    lines.append("oracle verdict: "
                 + ("OK -- faults never changed program output"
                    if report.ok else "FAILED"))
    return "\n".join(lines)


# -- harness chaos matrix (``repro chaos --harness``) ------------------------
#
# The pipeline-side mirror of the fault matrix above.  Each scenario
# arms a seeded hazard campaign (:mod:`repro.harness.hazards`) over one
# transport, runs the same small sweep twice -- a **cold** leg with
# hazards firing (corrupted publishes, ENOSPC, stale claims, killed
# workers), then a disarmed **resume** leg over the surviving
# journal/memo/spool state -- and demands:
#
# * both legs' merged cycle vectors are *bit-identical* to a
#   hazard-free serial baseline (zero silent data loss, zero wrong
#   results);
# * the shared telemetry event log validates (every started unit
#   reaches a terminal, every abandoned execution is explained);
# * every driver-side injection shows up as a ``hazard.injected``
#   event (each observed anomaly is explained by the log).
#
# The resume leg is what proves corrupt-entry recovery: entries the
# cold leg corrupted must be quarantined into ``corrupt/`` and
# recomputed, never crash the driver or leak wrong bytes into a merge.

HARNESS_TRANSPORTS: Tuple[str, ...] = ("serial", "pool", "spool")

#: Hazard-class scenario sets per transport: only the classes whose
#: injection sites the transport actually has (a serial sweep holds no
#: leases and kills no workers), plus an everything-armed scenario on
#: the spool -- the transport with the most moving parts.
HARNESS_CLASS_SETS: Dict[str, Tuple[Tuple[str, ...], ...]] = {
    "serial": (("corrupt",), ("disk",)),
    "pool": (("corrupt",), ("disk",), ("kill",)),
    "spool": (("corrupt",), ("disk",), ("lease",), ("kill",),
              hazards.HAZARD_CLASSES),
}


@dataclass
class HarnessChaosOutcome:
    """One harness-chaos scenario's verdict."""

    transport: str
    classes: Tuple[str, ...]
    seed: int
    #: hazard kind -> times applied (from ``hazard.injected`` events).
    injected: Dict[str, int] = field(default_factory=dict)
    #: Both legs merged bit-identical to the hazard-free baseline?
    cycles_identical: bool = False
    #: Units the resume leg had to deliver again (re-executions plus
    #: spool harvests) -- nonzero whenever corruption landed.
    reexecuted: int = 0
    quarantined: int = 0
    telemetry_problems: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (self.error is None and self.cycles_identical
                and not self.telemetry_problems)

    def to_json(self) -> dict:
        return {"transport": self.transport,
                "classes": list(self.classes), "seed": self.seed,
                "injected": dict(self.injected),
                "cycles_identical": self.cycles_identical,
                "reexecuted": self.reexecuted,
                "quarantined": self.quarantined,
                "telemetry_problems": list(self.telemetry_problems),
                "error": self.error}


@dataclass
class HarnessChaosReport:
    """The whole harness-chaos matrix's outcomes."""

    baseline: List[float]
    outcomes: List[HarnessChaosOutcome]

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def total_injected(self) -> int:
        return sum(sum(o.injected.values()) for o in self.outcomes)

    @property
    def total_quarantined(self) -> int:
        return sum(o.quarantined for o in self.outcomes)

    def class_injection(self) -> Dict[str, bool]:
        """Per hazard class: did any scenario arming it actually apply
        one of its kinds?  (Coverage visibility -- a seed whose draws
        all land past the sweep's opportunity count injects nothing.)"""
        cov = {}
        for cls in hazards.HAZARD_CLASSES:
            kinds = set(hazards.HAZARD_CLASS_KINDS[cls])
            cov[cls] = any(cls in o.classes
                           and any(k in kinds for k in o.injected)
                           for o in self.outcomes)
        return cov

    def to_json(self) -> dict:
        return {"ok": self.ok,
                "summary": {"scenarios": len(self.outcomes),
                            "injected": self.total_injected,
                            "quarantined": self.total_quarantined,
                            "class_injection": self.class_injection()},
                "baseline_cycles": list(self.baseline),
                "scenarios": [o.to_json() for o in self.outcomes]}


def _cycles_equal(got: Sequence[float], want: Sequence[float]) -> bool:
    """Bit-identical cycle vectors (NaN -- a quarantined placeholder --
    never compares equal, so a lost unit always fails the scenario)."""
    return (len(got) == len(want)
            and all(a == b for a, b in zip(got, want)))


def _build_harness_pipeline(transport: str, sdir: Path, spool_dir: Path,
                            jobs: int, lease_s: float,
                            tel) -> ExecutionPipeline:
    if transport == "serial":
        t = SerialTransport()
    elif transport == "pool":
        # Extra pool passes so a kill-armed fleet (at most rate deaths
        # per kill kind, budgeted by on-disk tokens) runs out of tokens
        # before the transport runs out of retries -- without crossing
        # the poison threshold.
        t = PoolTransport(jobs=jobs, max_pool_attempts=4)
    elif transport == "spool":
        t = DirQueueTransport(spool_dir, lease_s=lease_s, poll_s=0.02)
    else:
        raise ValueError(f"unknown transport {transport!r}; known: "
                         f"{HARNESS_TRANSPORTS}")
    return ExecutionPipeline(transport=t,
                             journal=CheckpointJournal(sdir / "journal"),
                             memo=MemoStore(sdir / "memo"),
                             telemetry=tel)


def _spawn_spool_worker(spool_dir: Path, lease_s: float):
    """An external ``repro worker`` attached to the scenario spool; it
    inherits ``REPRO_HAZARDS`` from the environment, so it arms itself
    worker-side (kill hazards may SIGKILL/SIGTERM it mid-sweep)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", str(spool_dir),
         "--wait", "--poll", "0.05", "--lease", str(lease_s)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _stop_worker(proc) -> None:
    """SIGTERM (graceful drain), escalating to SIGKILL only if the
    worker fails to exit -- which would itself be a drain bug."""
    if proc.poll() is None:
        proc.terminate()
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:    # pragma: no cover - drain bug
        proc.kill()
        proc.wait(timeout=15)


def _run_harness_scenario(transport: str, cls: Tuple[str, ...], seed: int,
                          specs: Sequence[RunSpec],
                          baseline: Sequence[float], workdir: Path,
                          rate: int, jobs: int, lease_s: float,
                          spawn_worker: bool) -> HarnessChaosOutcome:
    sdir = Path(workdir) / f"{transport}-{'+'.join(cls)}-s{seed}"
    spool_dir = sdir / "spool"
    tel_root = (telemetry_area(spool_dir) if transport == "spool"
                else sdir / "telemetry")
    config = hazards.HazardConfig(seed, classes=cls, rate=rate)
    outcome = HarnessChaosOutcome(transport=transport, classes=tuple(cls),
                                  seed=seed)
    proc = None
    try:
        # Leg A (cold): armed driver; subprocess workers and pool
        # children arm themselves worker-side from the environment.
        hazards.export_env(config, state_dir=sdir / "hazard-state",
                           telemetry_root=tel_root)
        tel = Telemetry(root=tel_root, role="driver")
        plan = hazards.arm(config, state_dir=sdir / "hazard-state",
                           telemetry=tel)
        try:
            if transport == "spool" and spawn_worker:
                proc = _spawn_spool_worker(spool_dir, lease_s)
                if "kill" in cls:
                    # Head start: the worker must attach (and start
                    # hitting kill boundaries) before the driver can
                    # drain the spool inline, or the scenario is
                    # vacuously kill-free.
                    time.sleep(1.0)
            pipe = _build_harness_pipeline(transport, sdir, spool_dir,
                                           jobs, lease_s, tel)
            cold = [r.cycles for r in pipe.run(specs)]
            outcome.quarantined += len(pipe.quarantined_units)
        finally:
            hazards.disarm()
            hazards.clear_env()
            if proc is not None:
                _stop_worker(proc)
            tel.close()
        # Leg B (resume, disarmed): same journal/memo/spool.  Every
        # entry the cold leg corrupted must quarantine as a logged
        # miss and recompute to the identical result.
        tel = Telemetry(root=tel_root, role="driver")
        try:
            pipe = _build_harness_pipeline(transport, sdir, spool_dir,
                                           jobs, lease_s, tel)
            resumed = [r.cycles for r in pipe.run(specs)]
            outcome.reexecuted = int(pipe.counters.get("unit.executed"))
            outcome.quarantined += len(pipe.quarantined_units)
        finally:
            tel.close()
        outcome.cycles_identical = (_cycles_equal(cold, baseline)
                                    and _cycles_equal(resumed, baseline))
        if not outcome.cycles_identical:
            outcome.error = (f"cycles diverged: baseline {list(baseline)}"
                             f" vs cold {cold} vs resumed {resumed}")
        problems: List[str] = []
        events = read_events(tel_root, problems)
        problems.extend(validate_events(events))
        for ev in events:
            if ev.get("event") == "hazard.injected":
                kind = str(ev.get("kind"))
                outcome.injected[kind] = outcome.injected.get(kind, 0) + 1
        if sum(outcome.injected.values()) < len(plan.injected):
            problems.append(
                f"{len(plan.injected)} driver-side injection(s) but only "
                f"{sum(outcome.injected.values())} hazard.injected "
                f"event(s) in the log")
        outcome.telemetry_problems = problems
    except Exception as e:   # noqa: BLE001 - the matrix reports, not dies
        outcome.error = f"{type(e).__name__}: {e}"
    finally:
        hazards.disarm()
        hazards.clear_env()
        if proc is not None:
            _stop_worker(proc)
    return outcome


def run_harness_chaos(workdir,
                      benchmarks: Sequence[str] = ("cg",),
                      configs: Sequence[str] = ("single", "G0"),
                      size: str = "test",
                      cfg: MachineConfig = PAPER_MACHINE,
                      transports: Sequence[str] = HARNESS_TRANSPORTS,
                      classes: Optional[Sequence[Sequence[str]]] = None,
                      base_seed: int = 0, rate: int = 2, jobs: int = 2,
                      lease_s: float = 2.0,
                      spawn_worker: bool = True) -> HarnessChaosReport:
    """Run the seeded hazard matrix over the execution pipeline.

    Per ``(transport, class set)`` scenario: a cold hazardous sweep,
    then a disarmed resume sweep over the surviving state, both checked
    bit-identical against one hazard-free serial baseline (see the
    section comment).  ``classes`` overrides the per-transport default
    scenario sets (:data:`HARNESS_CLASS_SETS`); ``rate`` is injections
    scheduled per hazard kind -- it is also the kill-token budget per
    kill kind, sized so a kill-armed fleet always runs out of kills
    before a unit crosses the poison threshold.
    """
    workdir = Path(workdir)
    specs = [RunSpec.make(b, c, size=size, cfg=cfg)
             for b in benchmarks for c in configs]
    if hazards.current() is not None:
        raise RuntimeError(
            "refusing to measure the baseline with hazards armed")
    baseline = [r.cycles for r in ExecutionPipeline().run(specs)]
    outcomes: List[HarnessChaosOutcome] = []
    for ti, transport in enumerate(transports):
        if transport not in HARNESS_CLASS_SETS:
            raise ValueError(f"unknown transport {transport!r}; known: "
                             f"{HARNESS_TRANSPORTS}")
        sets = ([tuple(c) for c in classes] if classes is not None
                else HARNESS_CLASS_SETS[transport])
        for ci, cls in enumerate(sets):
            seed = base_seed * 10_000 + ti * 100 + ci
            outcomes.append(_run_harness_scenario(
                transport, tuple(cls), seed, specs, baseline, workdir,
                rate, jobs, lease_s, spawn_worker))
    return HarnessChaosReport(baseline=list(baseline), outcomes=outcomes)


def render_harness_chaos(report: HarnessChaosReport,
                         title: str = "harness chaos matrix") -> str:
    """Human-readable scenario table plus the summary verdict."""
    lines = [title, "=" * len(title),
             f"{'scenario':<18} {'classes':<28} {'fired':>5} "
             f"{'re-ex':>5} {'quar':>4}  verdict"]
    for o in report.outcomes:
        name = f"{o.transport} seed={o.seed}"
        fired = sum(o.injected.values())
        verdict = "ok" if o.ok else "** FAILED **"
        lines.append(f"{name:<18} {','.join(o.classes):<28} {fired:>5} "
                     f"{o.reexecuted:>5} {o.quarantined:>4}  {verdict}")
        if o.error:
            lines.append(f"    {o.error[:240]}")
        for p in o.telemetry_problems[:4]:
            lines.append(f"    telemetry: {p}")
    cov = report.class_injection()
    lines.append(f"{len(report.outcomes)} scenario(s): "
                 f"{report.total_injected} hazard(s) injected, "
                 f"{report.total_quarantined} unit(s) quarantined")
    lines.append("injection coverage: " + ", ".join(
        f"{c}={'yes' if hit else 'no'}" for c, hit in sorted(cov.items())))
    lines.append("harness verdict: "
                 + ("OK -- every hazardous sweep merged bit-identical to "
                    "the hazard-free baseline"
                    if report.ok else "FAILED"))
    return "\n".join(lines)
