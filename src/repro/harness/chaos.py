"""Chaos harness: seeded fault matrices, the output oracle, reports.

This is the adversarial proof of the paper's correctness claim: a
matrix of seeded :class:`~repro.faults.FaultConfig` campaigns is run
over the mini-NPB kernels, and every faulted run's R-stream results are
checked against a fault-free serial reference execution of the same
compiled image (the **output oracle**).  A-stream corruption may cost
recovery cycles but must never change program output -- a scenario can
end "clean" or "recovered", never "wrong-output" or "hang".

The reference chain has two links: faulted runs must reproduce a
fault-free machine run of the same spec (to within reduction-order
ULPs -- see the oracle section below), and that baseline is anchored
to an independent serial :class:`~repro.interp.FunctionalRunner` pass.
Both references are memoized and compiled through the content-
addressed compile cache, so a 30-scenario matrix pays for at most a
handful of reference executions.

Everything here is deterministic: the same ``(benchmarks, seeds,
classes)`` arguments build the same spec list, and each spec's
injection schedule derives only from its config seed -- a chaos matrix
can be regression-gated exactly like cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..config.machine import MachineConfig, PAPER_MACHINE
from ..faults import CLASS_KINDS, FAULT_CLASSES, FaultConfig
from ..interp.funcrunner import FunctionalRunner
from ..npb import REGISTRY
from .jobs import RunSpec, execute_spec
from .pipeline import ExecutionPipeline
from .runner import BenchRun

__all__ = ["CHAOS_BENCHMARKS", "SCENARIO_CLASS_SETS", "ChaosOutcome",
           "ChaosReport", "chaos_specs", "run_chaos", "oracle_check",
           "render_chaos"]

#: Default kernels of the chaos matrix: CG and MG exercise the dynamic-
#: scheduling mailbox, LU the static path.
CHAOS_BENCHMARKS = ("cg", "lu", "mg")

#: One scenario per fault class plus an everything-armed scenario.
SCENARIO_CLASS_SETS: Tuple[Tuple[str, ...], ...] = (
    ("vm",), ("channel",), ("kill",), ("net",), FAULT_CLASSES)

#: Watchdog budget for chaos runs.  Test-size runs finish well under
#: 5e5 cycles, so a 5e6 ceiling converts any injected hang into a
#: structured SimDeadlockError in bounded wall time.
DEFAULT_TIMEOUT_CYCLES = 5e6

#: Oracle tolerances: the machine's reductions associate differently
#: from the serial reference, so allow slightly more slack than the
#: NPB verifiers' 1e-9 (both paths already pass those).
_ORACLE_RTOL = 1e-8
_ORACLE_ATOL = 1e-10


def chaos_specs(benchmarks: Iterable[str] = CHAOS_BENCHMARKS,
                seeds: int = 2, base_seed: int = 0,
                classes: Optional[Sequence[Sequence[str]]] = None,
                size: str = "test",
                cfg: MachineConfig = PAPER_MACHINE,
                timeout_cycles: float = DEFAULT_TIMEOUT_CYCLES
                ) -> List[RunSpec]:
    """Build the seeded fault matrix: every benchmark x ``seeds`` seeds
    x scenario class set, all under the G0 slipstream configuration.

    Scenarios arming the ``channel`` class run with dynamic scheduling
    (where supported) so the mailbox actually carries traffic for
    ``mailbox_stale`` to corrupt.
    """
    class_sets = [tuple(c) for c in (classes or SCENARIO_CLASS_SETS)]
    specs: List[RunSpec] = []
    for bench in benchmarks:
        for s in range(seeds):
            for j, cls in enumerate(class_sets):
                seed = base_seed * 10_000 + s * 100 + j
                schedule = (("dynamic", 4)
                            if "channel" in cls and bench != "lu"
                            else None)
                specs.append(RunSpec.make(
                    bench, "G0", size=size, schedule=schedule, cfg=cfg,
                    verify=True, faults=FaultConfig(seed, classes=cls),
                    timeout_cycles=timeout_cycles, capture_errors=True))
    return specs


# -- output oracle ----------------------------------------------------------
#
# The oracle is a two-link chain:
#
#   faulted machine run  ~=  fault-free machine run of the same spec
#   fault-free machine run  ~=  serial FunctionalRunner reference
#
# The first link compares *every* global (including scratch state like
# LU's pipeline flags, which a serial reference legitimately leaves at
# different values) and all output rows.  It is tolerance-based, not
# bit-exact, for one reason only: the runtime merges OpenMP reduction
# partials in arrival order, and OpenMP leaves that order unspecified
# -- so a legal timing perturbation (even pure network jitter) may
# re-associate a reduction and drift the result a few ULPs.  Any
# genuine value corruption leaking out of the A-stream is orders of
# magnitude beyond these tolerances.  The second link anchors the
# chain to an independent serial execution of the same compiled image.

#: baseline spec.key -> (global arrays, output rows) of the fault-free
#: machine run.  Compilation inside goes through the content-addressed
#: compile cache, so this memo only saves re-execution.
_BASE_CACHE: Dict[Tuple, Tuple] = {}

#: (bench, size, params) -> serial-anchor verdict (None = ok).
_ANCHOR_CACHE: Dict[Tuple, Optional[str]] = {}


def _baseline(spec: RunSpec) -> Tuple:
    """Fault-free machine run of the same spec (memoized by identity)."""
    base = replace(spec, faults=None, timeout_cycles=None,
                   capture_errors=False)
    hit = _BASE_CACHE.get(base.key)
    if hit is None:
        result = execute_spec(base).result
        hit = _BASE_CACHE[base.key] = (
            list(result.store.arrays), list(result.output))
    return hit


def _serial_anchor(spec: RunSpec, base_output) -> Optional[str]:
    """Check the fault-free machine baseline against an independent
    serial FunctionalRunner pass of the same compiled image."""
    key = (spec.bench, spec.size, spec.params)
    if key not in _ANCHOR_CACHE:
        image = REGISTRY[spec.bench].compile(spec.size,
                                             **dict(spec.params))
        ref = FunctionalRunner(image).run()
        verdict = None
        if len(base_output) != len(ref.output):
            verdict = (f"serial anchor: output rows {len(base_output)}"
                       f" != reference {len(ref.output)}")
        else:
            for i, (got, want) in enumerate(zip(base_output, ref.output)):
                if len(got) != len(want) or not all(
                        _cell_close(a, b) for a, b in zip(got, want)):
                    verdict = (f"serial anchor: output row {i}: machine "
                               f"{tuple(got)!r} vs serial {tuple(want)!r}")
                    break
        _ANCHOR_CACHE[key] = verdict
    return _ANCHOR_CACHE[key]


def _cell_close(a, b) -> bool:
    """Output rows mix labels and numbers; floats get tolerance."""
    if isinstance(a, float) or isinstance(b, float):
        return bool(np.isclose(a, b, rtol=_ORACLE_RTOL,
                               atol=_ORACLE_ATOL))
    return a == b


def oracle_check(spec: RunSpec, result) -> Optional[str]:
    """Compare a (possibly faulted) run's architectural results against
    the fault-free reference chain.  Returns a mismatch description, or
    None when the paper's invariant holds."""
    base_arrays, base_output = _baseline(spec)
    anchor = _serial_anchor(spec, base_output)
    if anchor is not None:
        return anchor
    for gidx, g in enumerate(result.store.program.globals):
        got = result.store.arrays[gidx]
        want = base_arrays[gidx]
        close = np.isclose(got, want, rtol=_ORACLE_RTOL,
                           atol=_ORACLE_ATOL, equal_nan=True)
        if not close.all():
            bad = int(np.argmax(~close))
            return (f"global {g.name!r}[{bad}]: got {got[bad]!r}, "
                    f"fault-free machine {want[bad]!r}")
    if len(result.output) != len(base_output):
        return (f"output row count: got {len(result.output)}, "
                f"fault-free machine {len(base_output)}")
    for i, (got, want) in enumerate(zip(result.output, base_output)):
        if len(got) != len(want) or not all(
                _cell_close(a, b) for a, b in zip(got, want)):
            return (f"output row {i}: got {tuple(got)!r}, "
                    f"fault-free machine {tuple(want)!r}")
    return None


# -- outcomes ---------------------------------------------------------------

@dataclass
class ChaosOutcome:
    """One scenario's verdict."""

    bench: str
    config: str
    seed: int
    classes: Tuple[str, ...]
    #: "clean" | "recovered" | "hang" | "wrong-output" | "crash"
    status: str
    oracle: str                       # "ok" | "skipped" | mismatch text
    recoveries: int = 0
    #: Barrier sites divergence was detected at (source-attributable
    #: via the image's site table; negative ids = end-of-region joins).
    recovery_sites: List[Optional[int]] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)
    cycles: float = float("nan")
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Did the paper's invariant hold for this scenario?"""
        return self.status in ("clean", "recovered")

    def to_json(self) -> dict:
        return {"bench": self.bench, "config": self.config,
                "seed": self.seed, "classes": list(self.classes),
                "status": self.status, "oracle": self.oracle,
                "recoveries": self.recoveries,
                "recovery_sites": self.recovery_sites,
                "injected": dict(self.injected),
                "cycles": None if self.cycles != self.cycles
                else self.cycles,
                "error": self.error}


@dataclass
class ChaosReport:
    """A whole matrix's outcomes plus harness-health notes."""

    outcomes: List[ChaosOutcome]
    degraded: bool = False
    events: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Zero hangs, zero wrong outputs, zero crashes."""
        return all(o.ok for o in self.outcomes)

    @property
    def total_recoveries(self) -> int:
        return sum(o.recoveries for o in self.outcomes)

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for o in self.outcomes:
            counts[o.status] = counts.get(o.status, 0) + 1
        return counts

    def class_recovery(self) -> Dict[str, bool]:
        """Per fault class: did any scenario arming it both fire one of
        its kinds and trigger at least one recovery?  (``net`` jitter is
        protocol-legal and can only co-occur with recoveries via the
        all-classes scenarios -- see DESIGN.md §7.)"""
        cov = {}
        for cls in FAULT_CLASSES:
            kinds = set(CLASS_KINDS[cls])
            cov[cls] = any(
                cls in o.classes and o.recoveries > 0
                and any(k in kinds for k in o.injected)
                for o in self.outcomes)
        return cov

    def to_json(self) -> dict:
        return {"ok": self.ok,
                "summary": {"scenarios": len(self.outcomes),
                            "statuses": self.status_counts(),
                            "recoveries": self.total_recoveries,
                            "class_recovery": self.class_recovery()},
                "degraded": self.degraded,
                "events": list(self.events),
                "scenarios": [o.to_json() for o in self.outcomes]}


def _classify(spec: RunSpec, run: BenchRun) -> ChaosOutcome:
    seed = spec.faults.seed if spec.faults is not None else 0
    classes = spec.faults.classes if spec.faults is not None else ()
    if run.error is not None:
        return ChaosOutcome(spec.bench, spec.config, seed, classes,
                            status=run.error_kind or "crash",
                            oracle="skipped", error=run.error)
    result = run.result
    mismatch = oracle_check(spec, result)
    injected: Dict[str, int] = {}
    if result.faults is not None:
        for f in result.faults["fired"]:
            injected[f["kind"]] = injected.get(f["kind"], 0) + 1
    if mismatch is not None:
        status, oracle = "wrong-output", mismatch
    else:
        status = "recovered" if result.recoveries else "clean"
        oracle = "ok"
    return ChaosOutcome(
        spec.bench, spec.config, seed, classes, status=status,
        oracle=oracle, recoveries=len(result.recoveries),
        recovery_sites=[site for _, _, site in result.recoveries],
        injected=injected, cycles=result.cycles)


def run_chaos(specs: Sequence[RunSpec],
              context=None) -> ChaosReport:
    """Execute a fault matrix and classify every scenario.

    ``context`` is anything with a submission-order ``run(specs)``
    (an :class:`~repro.harness.pipeline.ExecutionPipeline` with any
    transport/journal/memo combination, or a legacy exec context);
    default serial pipeline."""
    specs = list(specs)
    context = context or ExecutionPipeline()
    runs = context.run(specs)
    return ChaosReport(
        outcomes=[_classify(s, r) for s, r in zip(specs, runs)],
        degraded=getattr(context, "degraded", False),
        events=list(getattr(context, "events", [])))


def render_chaos(report: ChaosReport, title: str = "chaos matrix") -> str:
    """Human-readable scenario table plus the summary verdict."""
    lines = [title, "=" * len(title),
             f"{'scenario':<22} {'classes':<24} {'fired':>5} "
             f"{'recov':>5}  status"]
    for o in report.outcomes:
        name = f"{o.bench}/{o.config} seed={o.seed}"
        fired = sum(o.injected.values())
        status = o.status if o.ok else f"** {o.status} **"
        lines.append(f"{name:<22} {','.join(o.classes):<24} "
                     f"{fired:>5} {o.recoveries:>5}  {status}")
        if o.error:
            lines.append(f"    {o.error}")
        elif o.oracle not in ("ok", "skipped"):
            lines.append(f"    oracle: {o.oracle}")
    counts = ", ".join(f"{v} {k}" for k, v in
                       sorted(report.status_counts().items()))
    lines.append(f"{len(report.outcomes)} scenarios: {counts}; "
                 f"{report.total_recoveries} recoveries")
    cov = report.class_recovery()
    lines.append("recovery coverage: " + ", ".join(
        f"{c}={'yes' if ok else 'no'}" for c, ok in sorted(cov.items())))
    for ev in report.events:
        lines.append(f"harness: {ev}")
    lines.append("oracle verdict: "
                 + ("OK -- faults never changed program output"
                    if report.ok else "FAILED"))
    return "\n".join(lines)
