"""Seeded deterministic *harness* hazard injection.

:mod:`repro.faults` (PR 4) corrupts the simulated machine;
this module corrupts the machinery *around* it -- the spool, the
checkpoint stores, the worker fleet -- to prove the execution
pipeline's crash-consistency story the same way the fault injector
proves the paper's recovery story.  Same discipline throughout:

* every schedule is drawn from ``random.Random(seed)`` -- never from
  wall-clock or process state -- and injections fire by **opportunity
  index** (the k-th time a hazard site of that kind is reached), so a
  scenario replays identically on any host;
* zero-cost when disarmed: hot paths call :func:`current`, which is a
  cached module-attribute test (guarded to <= 2% by the disarmed-
  overhead benchmark);
* every applied injection is recorded as a ``hazard.injected``
  telemetry event, so the chaos harness can demand that each observed
  anomaly is explained by the log.

========================  =====================================  =========
kind                      injection point                        class
========================  =====================================  =========
``pickle_corrupt``        published bytes get a flipped byte     ``corrupt``
``pickle_truncate``       published bytes are cut short          ``corrupt``
``publish_enospc``        publish raises ENOSPC                  ``disk``
``publish_eio``           publish raises EIO                     ``disk``
``stale_claim``           a back-dated foreign claim appears     ``lease``
``clock_skew``            a claim-age reading is inflated        ``lease``
``kill_worker``           worker SIGKILLs itself at a boundary   ``kill``
``term_worker``           worker SIGTERMs itself at a boundary   ``kill``
========================  =====================================  =========

Kill hazards only fire in processes armed as *worker-side* (spool
workers, pool children -- armed through the ``REPRO_HAZARDS``
environment variable so they survive fork/spawn), never in the
driver, and are budgeted through on-disk ``O_EXCL`` kill tokens in a
shared state directory: a fleet whose workers respawn with fresh
opportunity counters would otherwise kill itself forever.
"""

from __future__ import annotations

import errno
import json
import os
import random
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..obs.telemetry import NULL_TELEMETRY

__all__ = ["HAZARD_KINDS", "HAZARD_CLASSES", "HAZARD_CLASS_KINDS",
           "HazardConfig", "HazardPlan", "arm", "disarm", "armed",
           "current", "export_env", "clear_env", "backoff_s", "ENV_VAR"]

#: Every injectable hazard kind, in the fixed order schedules are drawn.
HAZARD_KINDS: Tuple[str, ...] = (
    "pickle_corrupt", "pickle_truncate", "publish_enospc", "publish_eio",
    "stale_claim", "clock_skew", "kill_worker", "term_worker")

#: Hazard classes (CLI / scenario-matrix granularity) -> member kinds.
HAZARD_CLASS_KINDS: Dict[str, Tuple[str, ...]] = {
    "corrupt": ("pickle_corrupt", "pickle_truncate"),
    "disk": ("publish_enospc", "publish_eio"),
    "lease": ("stale_claim", "clock_skew"),
    "kill": ("kill_worker", "term_worker"),
}

HAZARD_CLASSES: Tuple[str, ...] = tuple(sorted(HAZARD_CLASS_KINDS))

#: Opportunity-index window each kind is drawn from, sized to the site
#: density of a test-scale sweep (publishes per unit are few; claim
#: scans are frequent; worker unit boundaries number in the dozens).
_WINDOWS: Dict[str, Tuple[int, int]] = {
    "pickle_corrupt": (0, 16),
    "pickle_truncate": (0, 16),
    "publish_enospc": (0, 16),
    "publish_eio": (0, 16),
    "stale_claim": (0, 8),
    "clock_skew": (1, 30),
    # Kill boundaries are scarce in a short sweep (a pool child may
    # see exactly one), so the window is tight: a kill-armed process
    # dies within its first few boundaries or not at all.
    "kill_worker": (0, 3),
    "term_worker": (0, 3),
}

#: Environment variable carrying an armed campaign into subprocesses
#: (spool workers, spawned pool children).
ENV_VAR = "REPRO_HAZARDS"


def _draw_payload(kind: str, rng: random.Random):
    """One scheduled injection's payload, drawn from the plan RNG."""
    if kind == "pickle_corrupt":
        # (position fraction within the payload, xor mask != 0)
        return (rng.random(), rng.randrange(1, 256))
    if kind == "pickle_truncate":
        return rng.uniform(0.05, 0.9)       # fraction of bytes kept
    if kind == "stale_claim":
        return rng.uniform(120.0, 900.0)    # seconds to back-date by
    if kind == "clock_skew":
        return rng.uniform(30.0, 600.0)     # seconds added to one reading
    return True     # publish_enospc / publish_eio / kill_* are boolean


@dataclass(frozen=True)
class HazardConfig:
    """Hashable, picklable description of one hazard campaign.

    The heavier :class:`HazardPlan` is rebuilt from this in every
    process (driver, worker, pool child), so each derives an identical
    schedule from the seed alone.
    """

    seed: int
    classes: Tuple[str, ...] = HAZARD_CLASSES
    rate: int = 2                           # scheduled injections per kind

    def __post_init__(self):
        bad = [c for c in self.classes if c not in HAZARD_CLASS_KINDS]
        if bad:
            raise ValueError(
                f"unknown hazard class(es) {bad}; known: {HAZARD_CLASSES}")
        if self.rate < 1:
            raise ValueError(f"rate must be >= 1, got {self.rate}")
        object.__setattr__(self, "classes",
                           tuple(sorted(set(self.classes))))

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Armed hazard kinds, in schedule-draw order."""
        on = {k for c in self.classes for k in HAZARD_CLASS_KINDS[c]}
        return tuple(k for k in HAZARD_KINDS if k in on)


class HazardPlan:
    """A materialized hazard schedule plus its injection record.

    Sites call the ``on_publish`` / ``skew_claim_age`` /
    ``maybe_stale_claim`` / ``boundary`` helpers; each consumes
    opportunity indices deterministically and, when an injection is
    actually applied, records it on :attr:`injected` and as a
    ``hazard.injected`` telemetry event.  ``worker_side`` gates the
    kill kinds: only processes that *are* expendable workers may be
    killed.
    """

    def __init__(self, config: HazardConfig, state_dir=None,
                 telemetry=NULL_TELEMETRY, worker_side: bool = False):
        self.config = config
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.telemetry = telemetry
        self.worker_side = worker_side
        rng = random.Random(config.seed)
        self.schedule: Dict[str, Dict[int, object]] = {}
        on = config.kinds
        for kind in HAZARD_KINDS:           # fixed order: deterministic
            if kind not in on:
                continue
            lo, hi = _WINDOWS[kind]
            n = min(config.rate, hi - lo)
            idxs = rng.sample(range(lo, hi), n)
            self.schedule[kind] = {i: _draw_payload(kind, rng)
                                   for i in idxs}
        self._seen: Dict[str, int] = {k: 0 for k in self.schedule}
        #: Applied injections (dicts: kind, site, index, ...).
        self.injected: List[dict] = []

    def fire(self, kind: str) -> Optional[object]:
        """Advance this kind's opportunity counter; the scheduled
        payload exactly at drawn indices, None elsewhere.  Firing does
        *not* record -- sites record via :meth:`_record` only when the
        injection is actually applied (a kill may be token-starved)."""
        sched = self.schedule.get(kind)
        if sched is None:
            return None
        idx = self._seen[kind]
        self._seen[kind] = idx + 1
        return sched.get(idx)

    def _record(self, kind: str, site: str, **detail) -> None:
        rec = {"kind": kind, "site": site,
               "index": self._seen[kind] - 1, **detail}
        self.injected.append(rec)
        self.telemetry.emit("hazard.injected", **{k: v for k, v in
                                                  rec.items()})
        self.telemetry.count("hazard.injected")

    # -- site helpers --------------------------------------------------------

    def on_publish(self, what: str, path, data: bytes) -> bytes:
        """Hazard hook inside :func:`~.integrity.atomic_pickle`: may
        corrupt/truncate the framed bytes or raise ENOSPC/EIO."""
        hit = self.fire("publish_enospc")
        if hit:
            self._record("publish_enospc", f"publish.{what}",
                         file=Path(path).name)
            raise OSError(errno.ENOSPC, "no space left on device (injected)")
        hit = self.fire("publish_eio")
        if hit:
            self._record("publish_eio", f"publish.{what}",
                         file=Path(path).name)
            raise OSError(errno.EIO, "i/o error (injected)")
        hit = self.fire("pickle_corrupt")
        if hit and len(data) > 0:
            frac, mask = hit
            pos = min(len(data) - 1, int(frac * len(data)))
            data = data[:pos] + bytes([data[pos] ^ mask]) + data[pos + 1:]
            self._record("pickle_corrupt", f"publish.{what}",
                         file=Path(path).name, pos=pos)
        hit = self.fire("pickle_truncate")
        if hit and len(data) > 0:
            keep = max(1, int(len(data) * hit))
            data = data[:keep]
            self._record("pickle_truncate", f"publish.{what}",
                         file=Path(path).name, kept=keep)
        return data

    def skew_claim_age(self, age_s: float) -> float:
        """Inflate one claim-age reading (the reaper's clock drifts)."""
        skew = self.fire("clock_skew")
        if skew is None:
            return age_s
        self._record("clock_skew", "spool.claim_age", skew_s=round(skew, 3))
        return age_s + float(skew)

    def maybe_stale_claim(self, spool, key: str) -> None:
        """Plant a back-dated claim by a phantom worker on an unclaimed
        unit, forcing the lease-reaping path to run."""
        age = self.fire("stale_claim")
        if age is None:
            return
        if not spool.try_claim(key, worker="hazard-phantom"):
            return
        then = time.time() - float(age)
        try:
            os.utime(spool.claim_path(key), times=(then, then))
        except OSError:
            pass
        self._record("stale_claim", "spool.claim", unit=key,
                     backdated_s=round(float(age), 3))

    def boundary(self, site: str) -> None:
        """Worker unit boundary: may SIGKILL/SIGTERM this process.

        Only fires worker-side and only while kill tokens remain in
        the shared state directory -- respawned workers re-derive the
        same schedule with reset counters, so without an on-disk
        budget a kill-armed fleet would never finish.
        """
        if not self.worker_side:
            return
        for kind, sig in (("kill_worker", signal.SIGKILL),
                          ("term_worker", signal.SIGTERM)):
            if self.fire(kind) and self._claim_kill_token(kind):
                self._record(kind, site, pid=os.getpid())
                os.kill(os.getpid(), sig)
                if sig == signal.SIGKILL:   # pragma: no cover - we die
                    time.sleep(5.0)

    def _claim_kill_token(self, kind: str) -> bool:
        if self.state_dir is None:
            return False
        tokens = self.state_dir / "kills"
        try:
            tokens.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        for i in range(self.config.rate):
            try:
                fd = os.open(tokens / f"{kind}-{i}.token",
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except OSError:
                continue
            os.close(fd)
            return True
        return False

    def summary(self) -> Dict[str, int]:
        """Applied injections per kind (this process only)."""
        out: Dict[str, int] = {}
        for rec in self.injected:
            out[rec["kind"]] = out.get(rec["kind"], 0) + 1
        return out


# -- arming ------------------------------------------------------------------
#
# `current()` is the one lookup every hazard site performs.  It is
# per-process: a fork/spawn child inherits the parent's module state
# but must not reuse the parent's plan (its opportunity counters, its
# worker_side flag), so the cache is keyed by pid and children re-arm
# from the environment variable -- or run disarmed when it is unset.

ACTIVE: Optional[HazardPlan] = None
_ACTIVE_PID: Optional[int] = None


def arm(config: HazardConfig, state_dir=None, telemetry=NULL_TELEMETRY,
        worker_side: bool = False) -> HazardPlan:
    """Arm a hazard plan for this process (the driver side)."""
    global ACTIVE, _ACTIVE_PID
    plan = HazardPlan(config, state_dir=state_dir, telemetry=telemetry,
                      worker_side=worker_side)
    ACTIVE = plan
    _ACTIVE_PID = os.getpid()
    return plan


def disarm() -> None:
    """Disarm this process (sites go back to zero-cost)."""
    global ACTIVE, _ACTIVE_PID
    ACTIVE = None
    _ACTIVE_PID = os.getpid()


@contextmanager
def armed(config: HazardConfig, state_dir=None, telemetry=NULL_TELEMETRY,
          worker_side: bool = False):
    plan = arm(config, state_dir=state_dir, telemetry=telemetry,
               worker_side=worker_side)
    try:
        yield plan
    finally:
        disarm()


def current(telemetry=None) -> Optional[HazardPlan]:
    """This process's armed plan, or None.

    First call in any process (including a fresh fork/spawn child that
    inherited stale module state) resolves ``REPRO_HAZARDS`` once and
    caches the verdict by pid; after that this is one comparison plus
    an attribute read.
    """
    if _ACTIVE_PID == os.getpid():
        return ACTIVE
    return _rearm_from_env(telemetry)


def _rearm_from_env(telemetry=None) -> Optional[HazardPlan]:
    global ACTIVE, _ACTIVE_PID
    plan = None
    raw = os.environ.get(ENV_VAR)
    if raw:
        try:
            body = json.loads(raw)
            config = HazardConfig(int(body["seed"]),
                                  classes=tuple(body["classes"]),
                                  rate=int(body["rate"]))
            tel = telemetry
            if tel is None and body.get("tel"):
                from ..obs.telemetry import Telemetry
                tel = Telemetry(root=body["tel"], role="hazard")
            plan = HazardPlan(config, state_dir=body.get("state") or None,
                              telemetry=tel or NULL_TELEMETRY,
                              worker_side=True)
        except Exception:                   # noqa: BLE001 - stay disarmed
            plan = None
    ACTIVE = plan
    _ACTIVE_PID = os.getpid()
    return plan


def export_env(config: HazardConfig, state_dir=None,
               telemetry_root=None) -> None:
    """Publish a campaign to ``REPRO_HAZARDS`` so subprocesses (spool
    workers, pool children) arm themselves worker-side; kill hazards
    require ``state_dir`` for the shared token budget."""
    os.environ[ENV_VAR] = json.dumps({
        "seed": config.seed, "classes": list(config.classes),
        "rate": config.rate,
        "state": str(state_dir) if state_dir is not None else None,
        "tel": str(telemetry_root) if telemetry_root is not None else None})


def clear_env() -> None:
    os.environ.pop(ENV_VAR, None)


# -- retry pacing ------------------------------------------------------------

def backoff_s(token: str, attempt: int, base: float = 0.05,
              cap: float = 2.0) -> float:
    """Deterministic seeded-jitter exponential backoff.

    ``base * 2^(attempt-1)``, capped, scaled by a jitter factor in
    [0.5, 1.5) drawn from ``Random(token:attempt)`` -- deterministic
    for a given (token, attempt) so tests can pin it, decorrelated
    across units so a reaped fleet doesn't re-stampede the same claim.
    """
    if attempt < 1:
        return 0.0
    rng = random.Random(f"{token}:{attempt}")
    return min(cap, base * (2.0 ** (attempt - 1))) * (0.5 + rng.random())
