"""The execution pipeline driver: jobs -> transport -> checkpoint -> merge.

:class:`ExecutionPipeline` is the one object consumers hand a spec
matrix to.  Per sweep it:

1. shards the specs into content-keyed units
   (:class:`~repro.harness.jobs.SweepPlan`), deduplicating identical
   specs;
2. **resumes**: units already in the checkpoint journal load instantly
   (``unit.resumed``) -- this is how a killed sweep continues instead
   of restarting;
3. **memoizes**: remaining units are looked up in the run-result memo
   store (``memo.hit``/``memo.miss``) -- a repeated sweep is served
   without simulating;
4. dispatches only the rest through the configured
   :class:`~repro.harness.transport.Transport`, journaling and
   memoizing each result the moment it reaches the driver;
5. merges everything back in submission order
   (:meth:`~repro.harness.jobs.SweepPlan.merge`).

Determinism contract, per stage: unit keys are pure functions of spec
+ code + tiers (jobs); transports may reorder completion but never
results (merge is submission-ordered); journal/memo entries are only
ever consulted under exactly the key that produced them -- so golden
cycles, chaos-matrix outcomes and regress baselines are bit-identical
through every transport and through any kill-and-resume.

Effectiveness counters are recorded through the standard
:class:`~repro.obs.probe.Probe` API on a ``pipeline`` track and
surface in :attr:`rt_stats` (mirroring ``RunResult.rt_stats``) and on
the CLI sweep summary line.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.aggregate import Counter
from ..obs.probe import Probe
from .checkpoint import CheckpointJournal, MemoStore
from .jobs import RunSpec, SweepPlan
from .runner import BenchRun
from .transport import SerialTransport, Transport

__all__ = ["ExecutionPipeline"]


class ExecutionPipeline:
    """Checkpointed, memoized, transport-pluggable sweep execution.

    ``transport`` defaults to :class:`SerialTransport`; pass a
    :class:`~repro.harness.transport.PoolTransport` or
    :class:`~repro.harness.transport.DirQueueTransport` to change how
    units are dispatched without changing a single result bit.
    ``journal`` (a :class:`CheckpointJournal`) makes the sweep
    resumable; ``memo`` (a :class:`MemoStore`) serves repeated unit
    keys from the store.  Both are optional and orthogonal.
    """

    def __init__(self, transport: Optional[Transport] = None,
                 journal: Optional[CheckpointJournal] = None,
                 memo: Optional[MemoStore] = None):
        self.transport = transport or SerialTransport()
        self.journal = journal
        self.memo = memo
        self.counters = Counter()
        #: Effectiveness counters (memo.hit/memo.miss/unit.resumed/
        #: unit.executed/unit.deduped), recorded via the Probe API.
        self.probe = Probe("pipeline", counters=self.counters)

    # -- execution -----------------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> List[BenchRun]:
        """Execute all specs; results in submission order."""
        return self.run_plan(SweepPlan(specs))

    def map(self, specs: Sequence[RunSpec]) -> Dict[Tuple, BenchRun]:
        """Execute all specs; results keyed by ``spec.key``."""
        specs = list(specs)
        return {s.key: r for s, r in zip(specs, self.run(specs))}

    def run_plan(self, plan: SweepPlan) -> List[BenchRun]:
        """Run one sharded sweep through resume -> memo -> transport,
        journaling/memoizing as results land, and merge."""
        results: Dict[str, BenchRun] = {}
        units = plan.distinct()
        self.probe.count("unit.planned", len(plan.units))
        if len(units) < len(plan.units):
            self.probe.count("unit.deduped", len(plan.units) - len(units))

        if self.journal is not None:
            resumed = self.journal.load([u.key for u in units])
            if resumed:
                self.probe.count("unit.resumed", len(resumed))
            results.update(resumed)

        if self.memo is not None:
            for unit in units:
                if unit.key in results:
                    continue
                hit = self.memo.get(unit.key)
                if hit is not None:
                    results[unit.key] = hit
                    self.probe.count("memo.hit")
                    # A memo hit is durable progress this sweep can
                    # resume from too.
                    if self.journal is not None:
                        self.journal.record(unit.key, hit)
                else:
                    self.probe.count("memo.miss")

        todo = [u for u in units if u.key not in results]

        def on_result(unit, run: BenchRun) -> None:
            results[unit.key] = run
            self.probe.count("unit.executed")
            if self.journal is not None:
                self.journal.record(unit.key, run)
            if self.memo is not None:
                self.memo.put(unit.key, run)

        if todo:
            self.transport.run(todo, on_result)
        return plan.merge(results)

    # -- observability -------------------------------------------------------

    @property
    def rt_stats(self) -> Dict[str, Dict[str, int]]:
        """Pipeline counters in ``RunResult.rt_stats`` shape."""
        counts = self.counters.as_dict()
        return {"pipeline": counts} if counts else {}

    def summary(self) -> str:
        """One-line sweep summary (the CLI prints this)."""
        c = self.counters.get
        parts = [f"{c('unit.planned')} unit(s) via "
                 f"{self.transport.describe()}"]
        if c("unit.deduped"):
            parts.append(f"{c('unit.deduped')} deduped")
        if c("unit.resumed"):
            parts.append(f"{c('unit.resumed')} resumed from checkpoint")
        if self.memo is not None:
            parts.append(f"memo {c('memo.hit')} hit(s) / "
                         f"{c('memo.miss')} miss(es)")
        parts.append(f"{c('unit.executed')} executed")
        return "pipeline: " + ", ".join(parts)

    # -- transport health (CLI exit-code plumbing) ---------------------------

    @property
    def degraded(self) -> bool:
        """Did the transport lose workers and fall back to serial?"""
        return self.transport.degraded

    @property
    def events(self) -> List[str]:
        """Transport retry/degradation notes (last run)."""
        return self.transport.events
