"""The execution pipeline driver: jobs -> transport -> checkpoint -> merge.

:class:`ExecutionPipeline` is the one object consumers hand a spec
matrix to.  Per sweep it:

1. shards the specs into content-keyed units
   (:class:`~repro.harness.jobs.SweepPlan`), deduplicating identical
   specs;
2. **resumes**: units already in the checkpoint journal load instantly
   (``unit.resumed``) -- this is how a killed sweep continues instead
   of restarting;
3. **memoizes**: remaining units are looked up in the run-result memo
   store (``memo.hit``/``memo.miss``) -- a repeated sweep is served
   without simulating;
4. dispatches only the rest through the configured
   :class:`~repro.harness.transport.Transport`, journaling and
   memoizing each result the moment it reaches the driver;
5. merges everything back in submission order
   (:meth:`~repro.harness.jobs.SweepPlan.merge`).

Determinism contract, per stage: unit keys are pure functions of spec
+ code + tiers (jobs); transports may reorder completion but never
results (merge is submission-ordered); journal/memo entries are only
ever consulted under exactly the key that produced them -- so golden
cycles, chaos-matrix outcomes and regress baselines are bit-identical
through every transport and through any kill-and-resume.

Effectiveness counters are recorded through the standard
:class:`~repro.obs.probe.Probe` API on a ``pipeline`` track and
surface in :attr:`rt_stats` (mirroring ``RunResult.rt_stats``) and on
the CLI sweep summary line.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.aggregate import Counter
from ..obs.probe import Probe
from ..obs.telemetry import NULL_TELEMETRY
from .checkpoint import CheckpointJournal, MemoStore
from .jobs import RunSpec, SweepPlan
from .runner import BenchRun
from .transport import SerialTransport, Transport

__all__ = ["ExecutionPipeline"]


class ExecutionPipeline:
    """Checkpointed, memoized, transport-pluggable sweep execution.

    ``transport`` defaults to :class:`SerialTransport`; pass a
    :class:`~repro.harness.transport.PoolTransport` or
    :class:`~repro.harness.transport.DirQueueTransport` to change how
    units are dispatched without changing a single result bit.
    ``journal`` (a :class:`CheckpointJournal`) makes the sweep
    resumable; ``memo`` (a :class:`MemoStore`) serves repeated unit
    keys from the store.  Both are optional and orthogonal.
    """

    def __init__(self, transport: Optional[Transport] = None,
                 journal: Optional[CheckpointJournal] = None,
                 memo: Optional[MemoStore] = None,
                 telemetry=None):
        self.transport = transport or SerialTransport()
        self.journal = journal
        self.memo = memo
        self.counters = Counter()
        #: Effectiveness counters (memo.hit/memo.miss/unit.resumed/
        #: unit.executed/unit.deduped), recorded via the Probe API.
        self.probe = Probe("pipeline", counters=self.counters)
        #: Wall-clock telemetry session (event log, metrics,
        #: heartbeats); default is the zero-cost null session.  The
        #: same session is attached to every stage so one record
        #: stream covers the whole sweep.
        self.telemetry = telemetry or NULL_TELEMETRY
        #: Unit keys quarantined as poison in the last run (from the
        #: transport or resumed from a journaled quarantine placeholder).
        self.quarantined_units: List[str] = []
        self.transport.telemetry = self.telemetry
        if self.journal is not None:
            self.journal.telemetry = self.telemetry
        if self.memo is not None:
            self.memo.telemetry = self.telemetry

    # -- execution -----------------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> List[BenchRun]:
        """Execute all specs; results in submission order."""
        return self.run_plan(SweepPlan(specs))

    def map(self, specs: Sequence[RunSpec]) -> Dict[Tuple, BenchRun]:
        """Execute all specs; results keyed by ``spec.key``."""
        specs = list(specs)
        return {s.key: r for s, r in zip(specs, self.run(specs))}

    def run_plan(self, plan: SweepPlan) -> List[BenchRun]:
        """Run one sharded sweep through resume -> memo -> transport,
        journaling/memoizing as results land, and merge."""
        results: Dict[str, BenchRun] = {}
        tel = self.telemetry
        t_sweep = time.perf_counter()
        units = plan.distinct()
        tel.emit("sweep.started", n_units=len(plan.units),
                 n_distinct=len(units),
                 transport=self.transport.describe())
        self.probe.count("unit.planned", len(plan.units))
        for unit in units:
            tel.emit("unit.planned", unit=unit.key, spec=unit.spec,
                     index=unit.index)
        if len(units) < len(plan.units):
            n_dup = len(plan.units) - len(units)
            self.probe.count("unit.deduped", n_dup)
            distinct_keys = {u.key for u in units}
            seen = set()
            for u in plan.units:
                if u.key in seen or u.key not in distinct_keys:
                    tel.emit("unit.deduped", unit=u.key, index=u.index)
                seen.add(u.key)

        if self.journal is not None:
            t0 = self._stage_start("resume")
            resumed = self.journal.load([u.key for u in units])
            if resumed:
                self.probe.count("unit.resumed", len(resumed))
                for key in resumed:
                    tel.emit("unit.resumed", unit=key)
            results.update(resumed)
            self._stage_finish("resume", t0, n_resumed=len(resumed))

        if self.memo is not None:
            t0 = self._stage_start("memo")
            hits = 0
            for unit in units:
                if unit.key in results:
                    continue
                hit = self.memo.get(unit.key)
                if hit is not None:
                    hits += 1
                    results[unit.key] = hit
                    self.probe.count("memo.hit")
                    tel.emit("memo.hit", unit=unit.key, spec=unit.spec)
                    # A memo hit is durable progress this sweep can
                    # resume from too.
                    if self.journal is not None:
                        self.journal.record(unit.key, hit)
                else:
                    self.probe.count("memo.miss")
                    tel.emit("memo.miss", unit=unit.key, spec=unit.spec)
            self._stage_finish("memo", t0, n_hits=hits)

        todo = [u for u in units if u.key not in results]

        def on_result(unit, run: BenchRun) -> None:
            results[unit.key] = run
            self.probe.count("unit.executed")
            if self.journal is not None:
                self.journal.record(unit.key, run)
            if self.memo is not None:
                self.memo.put(unit.key, run)

        if todo:
            t0 = self._stage_start("dispatch")
            self.transport.run(todo, on_result)
            self._stage_finish("dispatch", t0, n_units=len(todo))
        merged = plan.merge(results)
        # Poison units settle the merge with loud placeholders; keep
        # their keys (from any source -- this dispatch, a journaled
        # quarantine resumed above) so summaries and the CLI exit code
        # can report them.
        qkeys = sorted(
            u.key for u in plan.distinct()
            if getattr(results[u.key], "error_kind", None) == "quarantined")
        self.quarantined_units = qkeys
        if qkeys:
            self.probe.count("unit.quarantined", len(qkeys))
        tel.emit("sweep.finished",
                 wall_s=round(time.perf_counter() - t_sweep, 6),
                 n_executed=int(self.counters.get("unit.executed")))
        tel.heartbeat(state="idle", done=len(units), force=True)
        return merged

    def _stage_start(self, stage: str) -> float:
        self.telemetry.emit("stage.started", stage=stage)
        return time.perf_counter()

    def _stage_finish(self, stage: str, t0: float, **fields) -> None:
        dt = time.perf_counter() - t0
        self.telemetry.observe(f"stage.{stage}_s", dt)
        self.telemetry.emit("stage.finished", stage=stage,
                            wall_s=round(dt, 6), **fields)

    # -- observability -------------------------------------------------------

    @property
    def rt_stats(self) -> Dict[str, Dict[str, float]]:
        """Pipeline counters in ``RunResult.rt_stats`` shape.

        With a live telemetry session a second ``harness`` track holds
        the flattened wall-clock metrics (queue wait / execution-time
        histograms, retry counts, stage timings)."""
        counts = self.counters.as_dict()
        out: Dict[str, Dict[str, float]] = (
            {"pipeline": counts} if counts else {})
        if self.telemetry.enabled:
            flat = self.telemetry.metrics.flat()
            if flat:
                out["harness"] = flat
        return out

    def summary(self) -> str:
        """One-line sweep summary (the CLI prints this)."""
        c = self.counters.get
        parts = [f"{c('unit.planned')} unit(s) via "
                 f"{self.transport.describe()}"]
        if c("unit.deduped"):
            parts.append(f"{c('unit.deduped')} deduped")
        if c("unit.resumed"):
            parts.append(f"{c('unit.resumed')} resumed from checkpoint")
        if self.memo is not None:
            parts.append(f"memo {c('memo.hit')} hit(s) / "
                         f"{c('memo.miss')} miss(es)")
        parts.append(f"{c('unit.executed')} executed")
        if self.quarantined_units:
            parts.append(f"{len(self.quarantined_units)} QUARANTINED "
                         f"(poison)")
        if self.telemetry.enabled:
            hist = self.telemetry.metrics.histograms.get("unit.exec_s")
            if hist is not None and len(hist):
                parts.append(f"exec p50 {hist.percentile(50):.2f}s / "
                             f"p90 {hist.percentile(90):.2f}s / "
                             f"p99 {hist.percentile(99):.2f}s")
        return "pipeline: " + ", ".join(parts)

    # -- transport health (CLI exit-code plumbing) ---------------------------

    @property
    def degraded(self) -> bool:
        """Did the transport lose workers and fall back to serial?"""
        return self.transport.degraded

    @property
    def quarantined(self) -> bool:
        """Did the last sweep complete with poison units quarantined?"""
        return bool(self.quarantined_units)

    @property
    def events(self) -> List[str]:
        """Transport retry/degradation notes (last run)."""
        return self.transport.events
