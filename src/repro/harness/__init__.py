"""Experiment harness: the execution pipeline (jobs -> transport ->
checkpoint -> merge), paper-figure runners and renderers."""

from .figures import (BREAKDOWN_CATEGORIES, benchmark_inventory,
                      breakdown_table, classification_table,
                      render_breakdowns, render_classification,
                      render_pipeline, render_speedups, render_table,
                      speedup_table, summary_gains)
from .report import (classification_to_csv, profile_table, profile_to_csv,
                     suite_to_csv, suite_to_markdown)
from .runner import (DYNAMIC_BENCHMARKS, SLIP_CONFIGS, STATIC_BENCHMARKS,
                     BenchRun, dynamic_chunk, run_benchmark,
                     run_dynamic_suite, run_static_suite)
from .jobs import (RunSpec, SweepPlan, WorkUnit, code_fingerprint,
                   dynamic_specs, execute_spec, failure_run,
                   quarantined_run, static_specs, unit_key)
from .transport import (DirQueueTransport, PoolTransport, SerialTransport,
                        Transport, run_worker)
from .checkpoint import CheckpointJournal, MemoStore, default_memo_dir
from .pipeline import ExecutionPipeline
from .hazards import (HAZARD_CLASS_KINDS, HAZARD_CLASSES, HAZARD_KINDS,
                      HazardConfig, HazardPlan, backoff_s)
from .integrity import (IntegrityError, atomic_pickle, gc_tmp,
                        load_verified)
from ..obs.telemetry import (NULL_TELEMETRY, Telemetry, collect_status,
                             render_status, telemetry_area)
from .exec import (ExecutionContext, ProcessPoolContext, SerialContext,
                   make_context)
from .chaos import (CHAOS_BENCHMARKS, ChaosOutcome, ChaosReport,
                    HarnessChaosOutcome, HarnessChaosReport, chaos_specs,
                    oracle_check, render_chaos, render_harness_chaos,
                    run_chaos, run_harness_chaos)

__all__ = [
    "BREAKDOWN_CATEGORIES", "benchmark_inventory", "breakdown_table",
    "classification_table", "render_breakdowns", "render_classification",
    "render_pipeline", "render_speedups", "render_table", "speedup_table",
    "summary_gains",
    "DYNAMIC_BENCHMARKS", "SLIP_CONFIGS", "STATIC_BENCHMARKS", "BenchRun",
    "dynamic_chunk", "run_benchmark", "run_dynamic_suite",
    "run_static_suite", "classification_to_csv", "profile_table",
    "profile_to_csv", "suite_to_csv", "suite_to_markdown",
    "RunSpec", "SweepPlan", "WorkUnit", "code_fingerprint",
    "dynamic_specs", "execute_spec", "failure_run", "quarantined_run",
    "static_specs", "unit_key",
    "Transport", "SerialTransport", "PoolTransport", "DirQueueTransport",
    "run_worker", "CheckpointJournal", "MemoStore", "default_memo_dir",
    "ExecutionPipeline",
    "HAZARD_KINDS", "HAZARD_CLASSES", "HAZARD_CLASS_KINDS",
    "HazardConfig", "HazardPlan", "backoff_s",
    "IntegrityError", "atomic_pickle", "load_verified", "gc_tmp",
    "NULL_TELEMETRY", "Telemetry", "collect_status", "render_status",
    "telemetry_area",
    "ExecutionContext", "ProcessPoolContext", "SerialContext",
    "make_context",
    "CHAOS_BENCHMARKS", "ChaosOutcome", "ChaosReport", "chaos_specs",
    "oracle_check", "render_chaos", "run_chaos",
    "HarnessChaosOutcome", "HarnessChaosReport", "run_harness_chaos",
    "render_harness_chaos",
]
