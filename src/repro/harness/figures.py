"""Figure/table data extraction and ASCII rendering.

One function per paper exhibit:

* Figure 2 -- static-scheduling speedups over single mode plus
  execution-time breakdowns;
* Figure 3 -- shared-data request classification under static
  scheduling (reads and read-exclusives; A/R x Timely/Late/Only);
* Figure 4 -- dynamic-scheduling execution-time breakdowns;
* Figure 5 -- request classification under dynamic scheduling;
* Table 1  -- machine parameters (from MachineConfig.describe());
* Table 2  -- benchmark inventory.

Each extractor returns plain dict/list data (easy to test) and has a
``render_*`` companion that formats the same rows the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..obs import ClassStats
from ..npb import REGISTRY
from .runner import BenchRun

__all__ = [
    "BREAKDOWN_CATEGORIES", "speedup_table", "breakdown_table",
    "classification_table", "summary_gains", "render_table",
    "render_speedups", "render_breakdowns", "render_classification",
    "render_pipeline", "benchmark_inventory",
]

#: Paper Figure 2/4 time categories, in display order.  "jobwait" is the
#: paper's "job wait time", "scheduling" its scheduling time.
BREAKDOWN_CATEGORIES = ("busy", "memory", "lock", "barrier",
                        "scheduling", "jobwait", "io")


def speedup_table(suite: Dict[str, Dict[str, BenchRun]],
                  base: str = "single") -> Dict[str, Dict[str, float]]:
    """Speedup of every configuration normalized to ``base`` -- the
    paper's 'speedup normalized to single-mode execution'."""
    out: Dict[str, Dict[str, float]] = {}
    for bench, runs in suite.items():
        b = runs[base].cycles
        out[bench] = {cfg: b / r.cycles for cfg, r in runs.items()}
    return out


def breakdown_table(suite: Dict[str, Dict[str, BenchRun]],
                    base: str = "single"
                    ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Execution-time breakdown per benchmark/config, normalized so the
    base configuration totals 1.0 (the paper's stacked bars)."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for bench, runs in suite.items():
        base_total = sum(runs[base].result.r_breakdown.values())
        out[bench] = {}
        for cfg, run in runs.items():
            bd = run.result.r_breakdown
            # Equal-width bars: normalize each config by its own thread
            # count so single (16 R-threads) and double (32) compare.
            n_r = sum(1 for n in run.result.breakdowns if n.startswith("R"))
            base_n = sum(1 for n in runs[base].result.breakdowns
                         if n.startswith("R"))
            scale = base_total * (n_r / base_n)
            row = {c: bd.get(c, 0.0) / scale for c in BREAKDOWN_CATEGORIES}
            row["other"] = (sum(bd.values())
                            - sum(bd.get(c, 0.0)
                                  for c in BREAKDOWN_CATEGORIES)) / scale
            out[bench][cfg] = row
    return out


def classification_table(suite: Dict[str, Dict[str, BenchRun]],
                         configs: Sequence[str] = ("G0", "L1")
                         ) -> Dict[str, Dict[str, Dict[str, Dict[str, float]]]]:
    """Shared-data request breakdown: {bench: {config: {kind: {label:
    fraction}}}} for kind in read/rdex -- Figures 3 and 5."""
    out: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for bench, runs in suite.items():
        out[bench] = {}
        for cfg in configs:
            if cfg not in runs:
                continue
            cls: ClassStats = runs[cfg].result.classes
            out[bench][cfg] = {
                "read": cls.breakdown("read"),
                "rdex": cls.breakdown("rdex"),
            }
    return out


def summary_gains(suite: Dict[str, Dict[str, BenchRun]],
                  slip_configs: Sequence[str] = ("G0", "L1"),
                  base_configs: Sequence[str] = ("single", "double")
                  ) -> Dict[str, float]:
    """The paper's headline metric per benchmark: best slipstream over
    best of single/double ('performance advantage over the best of
    single and double mode')."""
    out = {}
    for bench, runs in suite.items():
        best_base = min(runs[c].cycles for c in base_configs if c in runs)
        best_slip = min(runs[c].cycles for c in slip_configs if c in runs)
        out[bench] = best_base / best_slip
    return out


def benchmark_inventory(names=None) -> List[Dict[str, object]]:
    """Table 2 analogue: the paper's benchmark suite with bench-size
    parameters (pass names to list others, e.g. the extra EP kernel)."""
    from .runner import STATIC_BENCHMARKS
    rows = []
    for name in sorted(names if names is not None else STATIC_BENCHMARKS):
        spec = REGISTRY[name]
        rows.append({
            "benchmark": name.upper(),
            "description": spec.description,
            "bench parameters": spec.sizes["bench"],
            "test parameters": spec.sizes["test"],
        })
    return rows


# ------------------------------------------------------------- rendering

def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Format rows as an aligned ASCII table."""
    cols = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
            else len(str(h)) for i, h in enumerate(headers)]
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, cols))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in cols))
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def render_speedups(suite, base: str = "single", title: str = "") -> str:
    """Figure 2a/4a-style speedup table with the headline gain row."""
    tbl = speedup_table(suite, base)
    configs = list(next(iter(tbl.values())))
    rows = [[bench.upper()] + [f"{tbl[bench][c]:.3f}" for c in configs]
            for bench in tbl]
    gains = summary_gains(suite)
    rows.append(["best-slip/best-base"]
                + ["" for _ in configs[:-1]]
                + [f"avg {sum(gains.values()) / len(gains):.3f}"])
    return render_table(["bench"] + configs, rows, title)


def render_pipeline(pipeline) -> str:
    """Sweep-summary line for an execution pipeline: unit counts,
    transport, checkpoint resumes and memo hit/miss effectiveness --
    the harness-side analogue of a run's ``rt_stats``."""
    return pipeline.summary()


def render_breakdowns(suite, base: str = "single", title: str = "") -> str:
    """Figure 2b/4b-style execution-time breakdown table."""
    tbl = breakdown_table(suite, base)
    cats = list(BREAKDOWN_CATEGORIES) + ["other"]
    rows = []
    for bench, cfgs in tbl.items():
        for cfg, row in cfgs.items():
            rows.append([bench.upper(), cfg]
                        + [f"{row[c]:.3f}" for c in cats]
                        + [f"{sum(row.values()):.3f}"])
    return render_table(["bench", "config"] + list(cats) + ["total"],
                        rows, title)


def render_classification(suite, configs=("G0", "L1"),
                          title: str = "") -> str:
    """Figure 3/5-style request-classification table."""
    tbl = classification_table(suite, configs)
    labels = ["A-Timely", "A-Late", "A-Only",
              "R-Timely", "R-Late", "R-Only"]
    rows = []
    for bench, cfgs in tbl.items():
        for cfg, kinds in cfgs.items():
            for kind, brk in kinds.items():
                rows.append([bench.upper(), cfg, kind]
                            + [f"{brk[label]:.3f}" for label in labels])
    return render_table(["bench", "config", "kind"] + labels, rows, title)
