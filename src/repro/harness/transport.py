"""Transports: how a batch of work units is dispatched (stage two).

A :class:`Transport` takes the distinct :class:`~repro.harness.jobs.
WorkUnit` shards of a sweep and executes them, reporting each finished
``(unit, BenchRun)`` back to the driver via a callback *in the driver
process*, in whatever order units complete.  Ordering is explicitly
not a transport concern -- the :class:`~repro.harness.jobs.SweepPlan`
merge restores submission order -- which is precisely what makes the
dispatch mechanism pluggable:

* :class:`SerialTransport` -- units in order, in process;
* :class:`PoolTransport` -- a hardened local ``multiprocessing`` pool:
  a killed or crashed worker costs one bounded retry on a fresh pool,
  then the remainder degrades (loudly, never silently) to in-process
  serial execution;
* :class:`DirQueueTransport` -- units leased through a shared **spool
  directory**: job files under ``units/``, exclusive-create claim
  files under ``claims/``, atomically-published results under
  ``results/``.  Any number of independent worker processes
  (``repro worker DIR`` -- see :func:`run_worker`) may attach to the
  same spool, on this host or any host sharing the filesystem; the
  driver itself works inline, so a sweep completes even with zero
  external workers.  Stalled leases (a worker SIGKILLed mid-unit) are
  reaped after ``lease_s`` and the unit re-executed -- determinism
  makes duplicated execution harmless (last atomic publish wins with
  identical content).

The spool's on-disk shape is deliberately the shape a multi-host work
queue needs (karambaci's queue-prefix/worker-prefix separation and
stalled-thread reaping are the exemplar): claim = lease, result =
completion record, and the ``results/`` directory doubles as a crash
journal -- re-running a driver over a half-finished spool harvests
completed units without re-executing them.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from ..obs.telemetry import NULL_TELEMETRY, Telemetry, telemetry_area
from ..runtime import SimDeadlockError
from .jobs import WorkUnit, execute_spec, unit_key

__all__ = ["Transport", "SerialTransport", "PoolTransport",
           "DirQueueTransport", "run_worker"]

_LOG = logging.getLogger("repro.harness.transport")

#: Driver callback: one finished unit, invoked in the driver process.
OnResult = Callable[[WorkUnit, object], None]


def _telemetered(tel, key: str, spec, fn):
    """Execute one unit under telemetry: ``unit.started`` -> run ``fn``
    -> terminal (``unit.finished``/``unit.failed``), recording the
    execution wall time and surfacing watchdog deadlocks as typed
    ``watchdog.deadlock`` events.  Captured failures (``BenchRun.error``
    set) terminate as ``unit.failed`` too -- the event log explains
    every outcome, not only raised ones.  Exceptions propagate after
    the terminal event is written."""
    tel.emit("unit.started", unit=key, spec=spec)
    t0 = time.perf_counter()
    try:
        run = fn()
    except BaseException as e:
        dt = time.perf_counter() - t0
        tel.observe("unit.exec_s", dt)
        if isinstance(e, SimDeadlockError):
            tel.emit("watchdog.deadlock", unit=key, spec=spec,
                     summary=e.summary)
        tel.emit("unit.failed", unit=key, spec=spec,
                 wall_s=round(dt, 6),
                 error=f"{type(e).__name__}: {e}"[:300],
                 error_kind=("hang" if isinstance(e, SimDeadlockError)
                             else "crash"))
        raise
    dt = time.perf_counter() - t0
    tel.observe("unit.exec_s", dt)
    _emit_terminal(tel, key, spec, run, dt)
    return run


def _emit_terminal(tel, key: str, spec, run, wall_s) -> None:
    """The terminal event for a finished BenchRun (shared by the
    inline execution path and pool/spool result arrival, where the
    wall time is the worker-recorded ``run.timing['total_s']``)."""
    error = getattr(run, "error", None)
    fields = {}
    if wall_s is not None:
        fields["wall_s"] = round(wall_s, 6)
    if error is not None:
        kind = getattr(run, "error_kind", None)
        if kind == "hang":
            tel.emit("watchdog.deadlock", unit=key, spec=spec,
                     summary=str(error)[:300])
        tel.emit("unit.failed", unit=key, spec=spec,
                 error=str(error)[:300], error_kind=kind, **fields)
    else:
        cycles = getattr(run, "cycles", None)
        if isinstance(cycles, (int, float)) and cycles == cycles:
            fields["cycles"] = cycles
        tel.emit("unit.finished", unit=key, spec=spec, **fields)


class Transport:
    """How distinct work units execute (see module docstring).

    Subclasses implement :meth:`run`, calling ``on_result(unit, run)``
    once per unit as results become available (any order).  A spec
    that *raises* (verification failure without ``capture_errors``,
    watchdog expiry) propagates out of :meth:`run` on every transport;
    only worker-process loss is retried/degraded.
    """

    name = "transport"

    def __init__(self):
        #: Human-readable record of retries/degradation (last run()).
        self.events: List[str] = []
        #: True when any unit of the last run() fell back to serial.
        self.degraded = False
        #: Telemetry session the driver records through (the pipeline
        #: attaches a live one; default is the zero-cost null session).
        self.telemetry = NULL_TELEMETRY

    def run(self, units: Sequence[WorkUnit], on_result: OnResult) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        """One-word-ish label for sweep summary lines."""
        return self.name

    def _note(self, msg: str) -> None:
        self.events.append(msg)
        _LOG.warning(msg)


class SerialTransport(Transport):
    """Execute units one after another in the driver process."""

    name = "serial"

    def run(self, units: Sequence[WorkUnit], on_result: OnResult) -> None:
        self.events = []
        self.degraded = False
        tel = self.telemetry
        t0 = time.perf_counter()
        for unit in units:
            # Queue wait for a serial transport is time spent behind
            # earlier units of the same dispatch.
            tel.observe("unit.queue_wait_s", time.perf_counter() - t0)
            run = _telemetered(tel, unit.key, unit.spec,
                               lambda spec=unit.spec: execute_spec(spec))
            on_result(unit, run)


# -- local process pool ------------------------------------------------------

def _run_spec(spec):
    """Worker-side execution seam (module-level for picklability; the
    crash tests monkeypatch this to kill workers mid-unit)."""
    return execute_spec(spec)


def _execute_indexed(item: Tuple[int, object]) -> Tuple[int, object]:
    """Pool worker entry point."""
    index, spec = item
    return index, _run_spec(spec)


class PoolTransport(Transport):
    """Fan units out over a process pool, hardened against worker loss.

    ``jobs`` defaults to the host's CPU count.  Batches of one unit
    (or ``jobs=1``) run inline: a pool would only add fork overhead.

    Crash handling: a killed or crashed worker (``BrokenProcessPool``)
    costs one bounded retry of the unfinished units on a fresh pool;
    if that fails too, the remainder degrades gracefully to in-process
    serial execution.  Degradation is never silent: it is logged and
    recorded on :attr:`events` / :attr:`degraded` for callers (the CLI
    turns it into a non-zero exit).
    """

    name = "pool"

    #: Pool passes before degrading to serial (initial try + 1 retry).
    max_pool_attempts = 2

    def __init__(self, jobs: Optional[int] = None,
                 start_method: Optional[str] = None):
        super().__init__()
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or os.cpu_count() or 1
        self.start_method = start_method

    def describe(self) -> str:
        return f"pool(jobs={self.jobs})"

    def run(self, units: Sequence[WorkUnit], on_result: OnResult) -> None:
        units = list(units)
        self.events = []
        self.degraded = False
        tel = self.telemetry
        if min(self.jobs, len(units)) <= 1:
            t0 = time.perf_counter()
            for unit in units:
                tel.observe("unit.queue_wait_s", time.perf_counter() - t0)
                run = _telemetered(tel, unit.key, unit.spec,
                                   lambda spec=unit.spec:
                                   execute_spec(spec))
                on_result(unit, run)
            return
        done = [False] * len(units)
        pending = list(range(len(units)))
        for attempt in range(self.max_pool_attempts):
            if not pending:
                break
            pending = self._pool_pass(units, done, pending, attempt,
                                      on_result)
        if pending:
            self.degraded = True
            tel.emit("pool.degraded", n_pending=len(pending),
                     n_units=len(units))
            tel.count("pool.degraded")
            self._note(f"degrading to serial execution for "
                       f"{len(pending)} of {len(units)} unit(s)")
            for i in pending:
                run = _telemetered(tel, units[i].key, units[i].spec,
                                   lambda spec=units[i].spec:
                                   execute_spec(spec))
                on_result(units[i], run)

    def _pool_pass(self, units: List[WorkUnit], done: List[bool],
                   pending: List[int], attempt: int,
                   on_result: OnResult) -> List[int]:
        """One pool attempt over ``pending``; returns what's still
        unfinished (non-empty only after a worker crash)."""
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool
        ctx = mp.get_context(self.start_method)
        tel = self.telemetry
        broken = False
        submitted = time.perf_counter()
        try:
            with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(pending)),
                    mp_context=ctx) as pool:
                futures = {
                    pool.submit(_execute_indexed, (i, units[i].spec)): i
                    for i in pending}
                for i in pending:
                    # Pool workers are uninstrumented; claimed-at-
                    # submit plus the terminal at arrival brackets each
                    # unit's pool residence on the driver's track.
                    tel.emit("unit.claimed", unit=units[i].key,
                             spec=units[i].spec, attempt=attempt + 1)
                    if attempt > 0:
                        tel.emit("unit.retried", unit=units[i].key,
                                 spec=units[i].spec, attempt=attempt + 1)
                        tel.count("unit.retries")
                for fut in as_completed(futures):
                    try:
                        index, run = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    done[index] = True
                    timing = getattr(run, "timing", None) or {}
                    wall = timing.get("total_s")
                    if wall is not None:
                        tel.observe("unit.exec_s", wall)
                    tel.observe("unit.queue_wait_s",
                                max(0.0, time.perf_counter() - submitted
                                    - (wall or 0.0)))
                    _emit_terminal(tel, units[index].key,
                                   units[index].spec, run, wall)
                    on_result(units[index], run)
        except BrokenProcessPool:
            broken = True
        remaining = [i for i in pending if not done[i]]
        if remaining:
            what = ("retrying once on a fresh pool"
                    if attempt + 1 < self.max_pool_attempts
                    else "falling back to serial execution")
            why = ("pool worker crashed" if broken
                   else "pool lost results")
            self._note(f"{why}: {len(remaining)} of {len(units)} unit(s) "
                       f"unfinished after attempt {attempt + 1}; {what}")
        return remaining


# -- shared spool directory --------------------------------------------------

class _UnitFailure:
    """A spec-raised exception, published so the driver re-raises it.

    Spool workers must not die on a failing unit (they would retry it
    forever across the fleet); they publish the failure as the unit's
    result and move on, and the driver raises it at harvest -- the
    same "spec errors propagate" contract the other transports keep.
    """

    def __init__(self, exc: BaseException):
        try:
            self._pickled = pickle.dumps(exc)
        except Exception:
            self._pickled = None
        self._repr = f"{type(exc).__name__}: {exc}"

    def unwrap(self) -> BaseException:
        if self._pickled is not None:
            try:
                return pickle.loads(self._pickled)
            except Exception:
                pass
        return RuntimeError(f"spool worker failure: {self._repr}")


def _atomic_pickle(payload, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    with os.fdopen(fd, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def _load_pickle(path: Path):
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except Exception:
        return None


class _Spool:
    """The on-disk protocol shared by driver and workers.

    ``units/<key>.spec``    pickled RunSpec (the job description);
    ``claims/<key>.claim``  lease: JSON ``{pid, time}``, created with
                            O_CREAT|O_EXCL so exactly one process
                            wins a unit;
    ``results/<key>.run``   pickled BenchRun (or :class:`_UnitFailure`),
                            atomically published.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.units = self.root / "units"
        self.claims = self.root / "claims"
        self.results = self.root / "results"

    def ensure(self) -> None:
        for d in (self.units, self.claims, self.results):
            d.mkdir(parents=True, exist_ok=True)

    # -- units ---------------------------------------------------------------

    def enqueue(self, key: str, spec) -> bool:
        """Publish a job file unless it (or its result) already
        exists; True if this call created it."""
        if self.has_result(key) or self.unit_path(key).is_file():
            return False
        _atomic_pickle(spec, self.unit_path(key))
        return True

    def unit_path(self, key: str) -> Path:
        return self.units / f"{key}.spec"

    def pending_keys(self) -> List[str]:
        """Enqueued units without a published result, sorted for a
        deterministic claim scan order."""
        if not self.units.is_dir():
            return []
        return sorted(p.name[:-5] for p in self.units.glob("*.spec")
                      if not self.has_result(p.name[:-5]))

    def load_spec(self, key: str):
        return _load_pickle(self.unit_path(key))

    # -- claims (leases) -----------------------------------------------------

    def claim_path(self, key: str) -> Path:
        return self.claims / f"{key}.claim"

    def try_claim(self, key: str) -> bool:
        """Atomically lease a unit (O_CREAT|O_EXCL claim file)."""
        try:
            fd = os.open(self.claim_path(key),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        with os.fdopen(fd, "w") as fh:
            json.dump({"pid": os.getpid(), "time": time.time()}, fh)
        return True

    def release(self, key: str) -> None:
        try:
            self.claim_path(key).unlink()
        except OSError:
            pass

    def claim_age(self, key: str) -> Optional[float]:
        """Seconds since the unit was claimed (None = unclaimed)."""
        try:
            return max(0.0, time.time()
                       - self.claim_path(key).stat().st_mtime)
        except OSError:
            return None

    def reap_stale(self, keys, lease_s: float) -> List[str]:
        """Drop claims older than the lease so the unit can be re-won.

        The dead worker's half-run is simply abandoned; if it was
        merely slow and publishes later, the atomic result replace is
        idempotent (deterministic content).
        """
        reaped = []
        for key in keys:
            age = self.claim_age(key)
            if age is not None and age > lease_s:
                self.release(key)
                reaped.append(key)
        return reaped

    # -- results -------------------------------------------------------------

    def result_path(self, key: str) -> Path:
        return self.results / f"{key}.run"

    def has_result(self, key: str) -> bool:
        return self.result_path(key).is_file()

    def publish(self, key: str, payload) -> None:
        _atomic_pickle(payload, self.result_path(key))

    def load_result(self, key: str):
        return _load_pickle(self.result_path(key))


class DirQueueTransport(Transport):
    """Lease units through a shared spool directory (see module
    docstring).  The driver enqueues every unit, then alternates
    between harvesting results published by attached workers and
    claiming+executing units itself, so progress never depends on
    external workers existing.

    ``lease_s`` bounds how long a crashed worker can pin a unit; set
    it above the longest expected single-unit wall time (a merely-slow
    worker whose lease is reaped causes a harmless duplicate
    execution, not an error).
    """

    name = "spool"

    def __init__(self, root, lease_s: float = 60.0, poll_s: float = 0.05):
        super().__init__()
        self.spool = _Spool(root)
        self.lease_s = lease_s
        self.poll_s = poll_s

    def describe(self) -> str:
        return f"spool({self.spool.root})"

    def run(self, units: Sequence[WorkUnit], on_result: OnResult) -> None:
        self.events = []
        self.degraded = False
        self.spool.ensure()
        tel = self.telemetry
        pending = {u.key: u for u in units}
        n_total = len(pending)
        for u in units:
            self.spool.enqueue(u.key, u.spec)
        while pending:
            tel.heartbeat(state="driving",
                          done=n_total - len(pending))
            # Harvest everything published since the last look (our own
            # inline work and any attached worker's).
            harvested = False
            for key in list(pending):
                payload = self.spool.load_result(key)
                if payload is None:
                    continue
                harvested = True
                unit = pending.pop(key)
                if isinstance(payload, _UnitFailure):
                    raise payload.unwrap()
                tel.count("unit.harvested")
                on_result(unit, payload)
            if not pending or harvested:
                continue
            # Work inline: lease the first claimable unit and run it.
            if self._work_one(pending):
                continue
            # Everything is leased out: reap the stalled, wait briefly.
            reaped = self.spool.reap_stale(pending, self.lease_s)
            for key in reaped:
                tel.emit("lease.reaped", unit=key,
                         lease_s=self.lease_s)
                tel.count("lease.reaped")
                self._note(f"reaped stalled lease on unit "
                           f"{key[:12]} (> {self.lease_s:g}s)")
            if not reaped:
                time.sleep(self.poll_s)
        tel.heartbeat(state="idle", done=n_total, force=True)

    def _work_one(self, pending) -> bool:
        """Claim + execute + publish one unit inline; False when every
        pending unit is currently leased by someone else."""
        tel = self.telemetry
        for key, unit in pending.items():
            if self.spool.claim_age(key) is not None:
                continue
            if not self.spool.try_claim(key):
                continue
            tel.emit("unit.claimed", unit=key, spec=unit.spec)
            try:
                wait = time.time() - self.spool.unit_path(key).stat().st_mtime
                tel.observe("unit.queue_wait_s", max(0.0, wait))
            except OSError:
                pass
            try:
                payload = _telemetered(tel, key, unit.spec,
                                       lambda: execute_spec(unit.spec))
            except Exception as e:          # noqa: BLE001 - republished
                # Publish so attached workers stop re-trying the unit,
                # then surface it exactly like the other transports.
                self.spool.publish(key, _UnitFailure(e))
                self.spool.release(key)
                raise
            self.spool.publish(key, payload)
            self.spool.release(key)
            return True
        return False


_WORKER_LOG = logging.getLogger("repro.worker")


def run_worker(root, poll_s: float = 0.1, lease_s: float = 60.0,
               max_units: Optional[int] = None, drain: bool = True,
               out=None) -> int:
    """Worker loop for ``repro worker DIR``: lease, execute, publish.

    Attaches to the spool at ``root`` and keeps winning claimable
    units until the spool is drained (``drain=True``, the default --
    the process exits 0 when no executable unit remains) or
    ``max_units`` have been executed.  A unit whose spec no longer
    hashes to its enqueued key (the worker runs different code or
    hot-path tiers than the driver) is *skipped*, never executed: a
    result the driver's key scheme can't trust must not be published.

    Failing specs are published as failure records for the driver to
    re-raise; the worker itself keeps going.  Returns the number of
    units this worker executed.

    Reporting is structured: per-unit console lines go through the
    ``repro.worker`` logger (mirrored to ``out`` when given, for the
    CLI and tests), and the full lifecycle -- attach, claims, skips,
    per-unit start/terminal, heartbeats, detach -- is recorded in the
    spool's shared ``telemetry/`` area, where ``repro status DIR``
    and the event-log validator read it.
    """
    log = _WORKER_LOG
    handler = None
    old_propagate = log.propagate
    if out is not None:
        # Mirror console lines to the caller's stream (the CLI's
        # stdout) without double-printing through root handlers.
        handler = logging.StreamHandler(out)
        handler.setFormatter(logging.Formatter("%(message)s"))
        log.addHandler(handler)
        log.propagate = False
    if log.level == logging.NOTSET and log.getEffectiveLevel() > logging.INFO:
        # Default to per-unit lines unless verbosity was configured
        # explicitly (repro worker --quiet sets this logger WARNING).
        log.setLevel(logging.INFO)

    spool = _Spool(root)
    spool.ensure()
    tel = Telemetry(root=telemetry_area(root), role="worker")
    tel.emit("worker.started", spool=str(spool.root))
    tel.heartbeat(state="idle", done=0, force=True)
    t_attach = time.perf_counter()
    executed = 0
    skipped = set()
    try:
        while max_units is None or executed < max_units:
            pending = [k for k in spool.pending_keys() if k not in skipped]
            if not pending:
                if drain:
                    break
                tel.heartbeat(state="idle", done=executed)
                time.sleep(poll_s)
                continue
            progressed = False
            for key in pending:
                if max_units is not None and executed >= max_units:
                    break
                if spool.claim_age(key) is not None:
                    continue
                if not spool.try_claim(key):
                    continue
                spec = spool.load_spec(key)
                if spec is None or unit_key(spec) != key:
                    spool.release(key)
                    skipped.add(key)
                    tel.emit("unit.skipped", unit=key,
                             reason="stale or foreign key")
                    log.warning("worker: skipping unit %s (stale or "
                                "foreign key -- code/tier mismatch?)",
                                key[:12])
                    continue
                tel.emit("unit.claimed", unit=key, spec=spec)
                try:
                    wait = (time.time()
                            - spool.unit_path(key).stat().st_mtime)
                    tel.observe("unit.queue_wait_s", max(0.0, wait))
                except OSError:
                    pass
                tel.heartbeat(state="running", unit=key, done=executed,
                              force=True)
                t0 = time.perf_counter()
                try:
                    payload = _telemetered(tel, key, spec,
                                           lambda: _run_spec(spec))
                except Exception as e:      # noqa: BLE001 - republished
                    payload = _UnitFailure(e)
                spool.publish(key, payload)
                spool.release(key)
                executed += 1
                progressed = True
                tel.heartbeat(state="idle", done=executed)
                status = ("FAILED" if isinstance(payload, _UnitFailure)
                          else f"{payload.cycles:,.0f} cycles")
                log.info("worker: %s -> %s [%.2fs] (%s)", spec, status,
                         time.perf_counter() - t0, key[:12])
            if not progressed:
                # Everything pending is leased elsewhere: reap stalled
                # claims, then wait for publishes or lease expiry.
                reaped = spool.reap_stale(pending, lease_s)
                for key in reaped:
                    tel.emit("lease.reaped", unit=key, lease_s=lease_s)
                    log.warning("worker: reaped stalled lease on unit "
                                "%s (> %gs)", key[:12], lease_s)
                if not reaped:
                    tel.heartbeat(state="waiting", done=executed)
                    time.sleep(poll_s)
        attached_s = time.perf_counter() - t_attach
        if attached_s > 0:
            tel.gauge("worker.units_per_s", executed / attached_s)
        tel.emit("worker.stopped", executed=executed,
                 skipped=len(skipped), attached_s=round(attached_s, 6))
        if skipped:
            log.info("worker: done, %d unit(s) executed, %d skipped "
                     "(key mismatch)", executed, len(skipped))
        else:
            log.info("worker: done, %d unit(s) executed", executed)
    finally:
        tel.close()
        if handler is not None:
            log.removeHandler(handler)
            log.propagate = old_propagate
    return executed
