"""Transports: how a batch of work units is dispatched (stage two).

A :class:`Transport` takes the distinct :class:`~repro.harness.jobs.
WorkUnit` shards of a sweep and executes them, reporting each finished
``(unit, BenchRun)`` back to the driver via a callback *in the driver
process*, in whatever order units complete.  Ordering is explicitly
not a transport concern -- the :class:`~repro.harness.jobs.SweepPlan`
merge restores submission order -- which is precisely what makes the
dispatch mechanism pluggable:

* :class:`SerialTransport` -- units in order, in process;
* :class:`PoolTransport` -- a hardened local ``multiprocessing`` pool:
  a killed or crashed worker costs bounded retries on fresh pools
  (seeded-jitter backoff between passes), a unit that breaks the pool
  ``poison_threshold`` times is **quarantined** (a loud placeholder
  result, never an infinite retry), and the remainder degrades
  (loudly, never silently) to in-process serial execution;
* :class:`DirQueueTransport` -- units leased through a shared **spool
  directory**: job files under ``units/``, exclusive-create claim
  files under ``claims/``, atomically-published results under
  ``results/``.  Any number of independent worker processes
  (``repro worker DIR`` -- see :func:`run_worker`) may attach to the
  same spool, on this host or any host sharing the filesystem; the
  driver itself works inline, so a sweep completes even with zero
  external workers.  Stalled leases (a worker SIGKILLed mid-unit) are
  reaped under the shared heartbeat-aware
  :func:`~repro.obs.telemetry.claim_is_stalled` predicate -- a live
  worker grinding a long unit keeps its lease; a dead one loses it --
  and the unit is re-executed after a seeded-jitter backoff.
  Determinism makes duplicated execution harmless (last atomic
  publish wins with identical content).

Crash-consistency (the harness-hazard hardening, proven by
``repro chaos --harness``):

* every publish goes through :func:`repro.harness.integrity.
  atomic_pickle` (sha256 frame, same-directory temp + ``os.replace``)
  and every load verifies -- a corrupt spec or result is quarantined
  into ``corrupt/`` and treated as a miss, never parsed;
* the driver delivers its own results to ``on_result`` directly from
  memory, so a failing publish (ENOSPC/EIO) degrades durability, not
  correctness -- the sweep still completes and merges;
* ``*.tmp`` litter from a writer SIGKILLed between temp write and
  rename is garbage-collected once older than the lease (readers
  never match it in the first place);
* a unit whose execution *process* dies ``quarantine_after`` times
  (tracked in an ``attempts/`` ledger) is quarantined with a
  placeholder result instead of wedging the fleet;
* :func:`run_worker` drains gracefully on SIGTERM: the in-flight unit
  finishes, publishes, and releases its claim before exit.

The spool's on-disk shape is deliberately the shape a multi-host work
queue needs (karambaci's queue-prefix/worker-prefix separation and
stalled-thread reaping are the exemplar): claim = lease, result =
completion record, and the ``results/`` directory doubles as a crash
journal -- re-running a driver over a half-finished spool harvests
completed units without re-executing them.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import signal
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.telemetry import (NULL_TELEMETRY, Telemetry, claim_is_stalled,
                             heartbeat_age, telemetry_area)
from ..runtime import SimDeadlockError
from . import hazards
from .integrity import atomic_pickle as _integrity_pickle
from .integrity import gc_tmp as _gc_tmp_dir
from .integrity import load_verified
from .jobs import WorkUnit, execute_spec, quarantined_run, unit_key

__all__ = ["Transport", "SerialTransport", "PoolTransport",
           "DirQueueTransport", "run_worker"]

_LOG = logging.getLogger("repro.harness.transport")

#: Driver callback: one finished unit, invoked in the driver process.
OnResult = Callable[[WorkUnit, object], None]


def _telemetered(tel, key: str, spec, fn):
    """Execute one unit under telemetry: ``unit.started`` -> run ``fn``
    -> terminal (``unit.finished``/``unit.failed``), recording the
    execution wall time and surfacing watchdog deadlocks as typed
    ``watchdog.deadlock`` events.  Captured failures (``BenchRun.error``
    set) terminate as ``unit.failed`` too -- the event log explains
    every outcome, not only raised ones.  Exceptions propagate after
    the terminal event is written."""
    tel.emit("unit.started", unit=key, spec=spec)
    t0 = time.perf_counter()
    try:
        run = fn()
    except BaseException as e:
        dt = time.perf_counter() - t0
        tel.observe("unit.exec_s", dt)
        if isinstance(e, SimDeadlockError):
            tel.emit("watchdog.deadlock", unit=key, spec=spec,
                     summary=e.summary)
        tel.emit("unit.failed", unit=key, spec=spec,
                 wall_s=round(dt, 6),
                 error=f"{type(e).__name__}: {e}"[:300],
                 error_kind=("hang" if isinstance(e, SimDeadlockError)
                             else "crash"))
        raise
    dt = time.perf_counter() - t0
    tel.observe("unit.exec_s", dt)
    _emit_terminal(tel, key, spec, run, dt)
    return run


def _emit_terminal(tel, key: str, spec, run, wall_s) -> None:
    """The terminal event for a finished BenchRun (shared by the
    inline execution path and pool/spool result arrival, where the
    wall time is the worker-recorded ``run.timing['total_s']``)."""
    error = getattr(run, "error", None)
    fields = {}
    if wall_s is not None:
        fields["wall_s"] = round(wall_s, 6)
    if error is not None:
        kind = getattr(run, "error_kind", None)
        if kind == "hang":
            tel.emit("watchdog.deadlock", unit=key, spec=spec,
                     summary=str(error)[:300])
        tel.emit("unit.failed", unit=key, spec=spec,
                 error=str(error)[:300], error_kind=kind, **fields)
    else:
        cycles = getattr(run, "cycles", None)
        if isinstance(cycles, (int, float)) and cycles == cycles:
            fields["cycles"] = cycles
        tel.emit("unit.finished", unit=key, spec=spec, **fields)


class Transport:
    """How distinct work units execute (see module docstring).

    Subclasses implement :meth:`run`, calling ``on_result(unit, run)``
    once per unit as results become available (any order).  A spec
    that *raises* (verification failure without ``capture_errors``,
    watchdog expiry) propagates out of :meth:`run` on every transport;
    only worker-process loss is retried/degraded -- and a unit whose
    process dies persistently is quarantined (see
    :attr:`quarantined`), never retried forever.
    """

    name = "transport"

    def __init__(self):
        #: Human-readable record of retries/degradation (last run()).
        self.events: List[str] = []
        #: True when any unit of the last run() fell back to serial.
        self.degraded = False
        #: Unit keys quarantined as poison during the last run().
        self.quarantined: List[str] = []
        #: Telemetry session the driver records through (the pipeline
        #: attaches a live one; default is the zero-cost null session).
        self.telemetry = NULL_TELEMETRY

    def run(self, units: Sequence[WorkUnit], on_result: OnResult) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        """One-word-ish label for sweep summary lines."""
        return self.name

    def _note(self, msg: str) -> None:
        self.events.append(msg)
        _LOG.warning(msg)

    def _quarantine(self, unit: WorkUnit, attempts: int,
                    on_result: OnResult) -> object:
        """Settle a poison unit with a loud placeholder result."""
        run = quarantined_run(unit.spec, attempts)
        tel = self.telemetry
        tel.emit("unit.quarantined", unit=unit.key, spec=unit.spec,
                 attempts=attempts)
        tel.count("unit.quarantined")
        self.quarantined.append(unit.key)
        self._note(f"QUARANTINED poison unit {unit.key[:12]} ({unit.spec}):"
                   f" {attempts} execution attempt(s) died without a "
                   f"result")
        on_result(unit, run)
        return run


class SerialTransport(Transport):
    """Execute units one after another in the driver process."""

    name = "serial"

    def run(self, units: Sequence[WorkUnit], on_result: OnResult) -> None:
        self.events = []
        self.degraded = False
        self.quarantined = []
        tel = self.telemetry
        t0 = time.perf_counter()
        for unit in units:
            # Queue wait for a serial transport is time spent behind
            # earlier units of the same dispatch.
            tel.observe("unit.queue_wait_s", time.perf_counter() - t0)
            run = _telemetered(tel, unit.key, unit.spec,
                               lambda spec=unit.spec: execute_spec(spec))
            on_result(unit, run)


# -- local process pool ------------------------------------------------------

def _run_spec(spec):
    """Worker-side execution seam (module-level for picklability; the
    crash tests monkeypatch this to kill workers mid-unit).  Also a
    hazard kill boundary: an armed worker-side plan may SIGKILL or
    SIGTERM the process here, *before* execution starts."""
    plan = hazards.current()
    if plan is not None:
        plan.boundary("pool.unit")
    return execute_spec(spec)


def _execute_indexed(item: Tuple[int, object]) -> Tuple[int, object]:
    """Pool worker entry point."""
    index, spec = item
    return index, _run_spec(spec)


class PoolTransport(Transport):
    """Fan units out over a process pool, hardened against worker loss.

    ``jobs`` defaults to the host's CPU count.  Batches of one unit
    (or ``jobs=1``) run inline: a pool would only add fork overhead.

    Crash handling: a killed or crashed worker (``BrokenProcessPool``)
    costs bounded retries of the unfinished units on fresh pools, with
    seeded-jitter backoff between passes so a respawning fleet doesn't
    stampede.  A unit still unfinished after ``poison_threshold``
    broken passes is *quarantined* -- it gets a loud placeholder
    result (``error_kind == "quarantined"``) instead of being handed
    to the serial fallback, where a poison spec would take the driver
    down with it.  The rest degrades gracefully to in-process serial
    execution.  Neither path is silent: both are logged and recorded
    on :attr:`events` / :attr:`degraded` / :attr:`quarantined` for
    callers (the CLI turns them into non-zero exits).
    """

    name = "pool"

    #: Pool passes before degrading to serial (initial try + 1 retry).
    max_pool_attempts = 2

    def __init__(self, jobs: Optional[int] = None,
                 start_method: Optional[str] = None,
                 max_pool_attempts: Optional[int] = None,
                 poison_threshold: int = 3,
                 backoff_base: float = 0.05):
        super().__init__()
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or os.cpu_count() or 1
        self.start_method = start_method
        if max_pool_attempts is not None:
            if max_pool_attempts < 1:
                raise ValueError("max_pool_attempts must be >= 1")
            self.max_pool_attempts = max_pool_attempts
        if poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        self.poison_threshold = poison_threshold
        self.backoff_base = backoff_base
        #: Per-unit-index count of pool passes that lost the unit.
        self._suspects: Dict[int, int] = {}

    def describe(self) -> str:
        return f"pool(jobs={self.jobs})"

    def run(self, units: Sequence[WorkUnit], on_result: OnResult) -> None:
        units = list(units)
        self.events = []
        self.degraded = False
        self.quarantined = []
        self._suspects = {}
        tel = self.telemetry
        if min(self.jobs, len(units)) <= 1:
            t0 = time.perf_counter()
            for unit in units:
                tel.observe("unit.queue_wait_s", time.perf_counter() - t0)
                run = _telemetered(tel, unit.key, unit.spec,
                                   lambda spec=unit.spec:
                                   execute_spec(spec))
                on_result(unit, run)
            return
        done = [False] * len(units)
        pending = list(range(len(units)))
        for attempt in range(self.max_pool_attempts):
            if not pending:
                break
            if attempt > 0:
                # Seeded-jitter backoff before respawning the pool, so
                # a crash loop doesn't hot-spin fork/exec.
                time.sleep(hazards.backoff_s("pool-pass", attempt,
                                             self.backoff_base))
            pending = self._pool_pass(units, done, pending, attempt,
                                      on_result)
        if pending:
            poison = [i for i in pending
                      if self._suspects.get(i, 0) >= self.poison_threshold]
            if poison:
                for i in poison:
                    self._quarantine(units[i], self._suspects[i], on_result)
                pending = [i for i in pending if i not in set(poison)]
        if pending:
            self.degraded = True
            tel.emit("pool.degraded", n_pending=len(pending),
                     n_units=len(units))
            tel.count("pool.degraded")
            self._note(f"degrading to serial execution for "
                       f"{len(pending)} of {len(units)} unit(s)")
            for i in pending:
                run = _telemetered(tel, units[i].key, units[i].spec,
                                   lambda spec=units[i].spec:
                                   execute_spec(spec))
                on_result(units[i], run)

    def _pool_pass(self, units: List[WorkUnit], done: List[bool],
                   pending: List[int], attempt: int,
                   on_result: OnResult) -> List[int]:
        """One pool attempt over ``pending``; returns what's still
        unfinished (non-empty only after a worker crash)."""
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool
        ctx = mp.get_context(self.start_method)
        tel = self.telemetry
        broken = False
        submitted = time.perf_counter()
        try:
            with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(pending)),
                    mp_context=ctx) as pool:
                futures = {
                    pool.submit(_execute_indexed, (i, units[i].spec)): i
                    for i in pending}
                for i in pending:
                    # Pool workers are uninstrumented; claimed-at-
                    # submit plus the terminal at arrival brackets each
                    # unit's pool residence on the driver's track.
                    tel.emit("unit.claimed", unit=units[i].key,
                             spec=units[i].spec, attempt=attempt + 1)
                    if attempt > 0:
                        tel.emit("unit.retried", unit=units[i].key,
                                 spec=units[i].spec, attempt=attempt + 1)
                        tel.count("unit.retries")
                for fut in as_completed(futures):
                    try:
                        index, run = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    done[index] = True
                    timing = getattr(run, "timing", None) or {}
                    wall = timing.get("total_s")
                    if wall is not None:
                        tel.observe("unit.exec_s", wall)
                    tel.observe("unit.queue_wait_s",
                                max(0.0, time.perf_counter() - submitted
                                    - (wall or 0.0)))
                    _emit_terminal(tel, units[index].key,
                                   units[index].spec, run, wall)
                    on_result(units[index], run)
        except BrokenProcessPool:
            broken = True
        remaining = [i for i in pending if not done[i]]
        if remaining:
            for i in remaining:
                # Every unit a broken pass lost is a poison suspect;
                # crossing poison_threshold quarantines it in run().
                self._suspects[i] = self._suspects.get(i, 0) + 1
            what = ("retrying once on a fresh pool"
                    if attempt + 1 < self.max_pool_attempts
                    else "falling back to serial execution")
            why = ("pool worker crashed" if broken
                   else "pool lost results")
            self._note(f"{why}: {len(remaining)} of {len(units)} unit(s) "
                       f"unfinished after attempt {attempt + 1}; {what}")
        return remaining


# -- shared spool directory --------------------------------------------------

class _UnitFailure:
    """A spec-raised exception, published so the driver re-raises it.

    Spool workers must not die on a failing unit (they would retry it
    forever across the fleet); they publish the failure as the unit's
    result and move on, and the driver raises it at harvest -- the
    same "spec errors propagate" contract the other transports keep.
    """

    def __init__(self, exc: BaseException):
        try:
            self._pickled = pickle.dumps(exc)
        except Exception:
            self._pickled = None
        self._repr = f"{type(exc).__name__}: {exc}"

    def unwrap(self) -> BaseException:
        if self._pickled is not None:
            try:
                return pickle.loads(self._pickled)
            except Exception:
                pass
        return RuntimeError(f"spool worker failure: {self._repr}")


def _atomic_pickle(payload, path: Path, what: str = "result") -> None:
    """Integrity-framed atomic publish (see :mod:`.integrity`); kept
    as the spool's single write seam."""
    _integrity_pickle(payload, path, what=what)


class _Spool:
    """The on-disk protocol shared by driver and workers.

    ``units/<key>.spec``    pickled RunSpec (the job description);
    ``claims/<key>.claim``  lease: JSON ``{pid, time, worker}``,
                            created with O_CREAT|O_EXCL so exactly one
                            process wins a unit;
    ``results/<key>.run``   pickled BenchRun (or :class:`_UnitFailure`),
                            atomically published;
    ``attempts/<key>.n``    one byte appended per claim that reached
                            execution -- the poison-unit ledger (file
                            size = attempts survived so far);
    ``corrupt/``            quarantined files that failed integrity
                            verification (kept as evidence).

    All payload files are integrity-framed; loads verify and treat a
    corrupt file as a quarantined miss.
    """

    def __init__(self, root, telemetry=NULL_TELEMETRY):
        self.root = Path(root)
        self.units = self.root / "units"
        self.claims = self.root / "claims"
        self.results = self.root / "results"
        self.corrupt = self.root / "corrupt"
        self.attempts = self.root / "attempts"
        #: Session integrity problems are reported through (attached
        #: by the transport / worker that owns this spool handle).
        self.telemetry = telemetry

    def ensure(self) -> None:
        for d in (self.units, self.claims, self.results):
            d.mkdir(parents=True, exist_ok=True)

    # -- units ---------------------------------------------------------------

    def enqueue(self, key: str, spec) -> bool:
        """Publish a job file unless it (or its result) already
        exists; True if this call created it.  May raise ``OSError``
        (disk full) -- callers treat that as a non-fatal durability
        loss, since the driver can still execute the unit inline."""
        if self.has_result(key) or self.unit_path(key).is_file():
            return False
        _atomic_pickle(spec, self.unit_path(key), what="unit")
        return True

    def unit_path(self, key: str) -> Path:
        return self.units / f"{key}.spec"

    def pending_keys(self) -> List[str]:
        """Enqueued units without a published result, sorted for a
        deterministic claim scan order."""
        if not self.units.is_dir():
            return []
        return sorted(p.name[:-5] for p in self.units.glob("*.spec")
                      if not self.has_result(p.name[:-5]))

    def load_spec(self, key: str):
        return load_verified(self.unit_path(key),
                             quarantine_to=self.corrupt,
                             telemetry=self.telemetry, what="unit",
                             unit=key)

    # -- claims (leases) -----------------------------------------------------

    def claim_path(self, key: str) -> Path:
        return self.claims / f"{key}.claim"

    def try_claim(self, key: str, worker: Optional[str] = None) -> bool:
        """Atomically lease a unit (O_CREAT|O_EXCL claim file).

        ``worker`` names the claiming telemetry session so lease
        reaping can consult the owner's heartbeat before stealing.
        """
        try:
            fd = os.open(self.claim_path(key),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        with os.fdopen(fd, "w") as fh:
            json.dump({"pid": os.getpid(), "time": time.time(),
                       "worker": worker}, fh)
        return True

    def release(self, key: str) -> None:
        try:
            self.claim_path(key).unlink()
        except OSError:
            pass

    def claim_owner(self, key: str) -> Optional[str]:
        """The telemetry worker id recorded in a claim, if any."""
        try:
            body = json.loads(self.claim_path(key).read_text())
        except (OSError, ValueError):
            return None
        return body.get("worker") if isinstance(body, dict) else None

    def claim_age(self, key: str) -> Optional[float]:
        """Seconds since the unit was claimed (None = unclaimed).

        A hazard site: an armed plan may skew this reading (the
        reaper's clock drifts), which must only ever cause a harmless
        duplicate execution, never a lost or wrong result.
        """
        try:
            age = max(0.0, time.time()
                      - self.claim_path(key).stat().st_mtime)
        except OSError:
            return None
        plan = hazards.current()
        if plan is not None:
            age = plan.skew_claim_age(age)
        return age

    def reap_stale(self, keys, lease_s: float,
                   heartbeats=None) -> List[str]:
        """Drop stalled claims so their units can be re-won.

        Stalled is the shared heartbeat-aware predicate
        (:func:`~repro.obs.telemetry.claim_is_stalled`): a claim past
        the lease whose owner still heartbeats is a live straggler and
        keeps its lease; one whose owner is silent (or anonymous) is
        reaped.  The dead worker's half-run is simply abandoned; if it
        was merely slow and publishes later, the atomic result replace
        is idempotent (deterministic content).
        """
        reaped = []
        for key in keys:
            age = self.claim_age(key)
            if age is None:
                continue
            hb_age = heartbeat_age(heartbeats, self.claim_owner(key))
            if claim_is_stalled(age, hb_age, lease_s):
                self.release(key)
                reaped.append(key)
        return reaped

    # -- attempts (poison-unit ledger) ---------------------------------------

    def attempt_path(self, key: str) -> Path:
        return self.attempts / f"{key}.n"

    def record_attempt(self, key: str) -> int:
        """Record that an execution attempt is starting (one appended
        byte; crash-safe across SIGKILL); returns total attempts."""
        try:
            self.attempts.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.attempt_path(key),
                         os.O_CREAT | os.O_APPEND | os.O_WRONLY, 0o644)
            try:
                os.write(fd, b".")
            finally:
                os.close(fd)
        except OSError:
            pass
        return self.attempt_count(key)

    def attempt_count(self, key: str) -> int:
        """Execution attempts recorded for this unit (ledger size)."""
        try:
            return self.attempt_path(key).stat().st_size
        except OSError:
            return 0

    def clear_attempts(self, key: str) -> None:
        """Forget the ledger after a successful publish -- only
        *consecutive* dead attempts count toward quarantine."""
        try:
            self.attempt_path(key).unlink()
        except OSError:
            pass

    # -- results -------------------------------------------------------------

    def result_path(self, key: str) -> Path:
        return self.results / f"{key}.run"

    def has_result(self, key: str) -> bool:
        return self.result_path(key).is_file()

    def publish(self, key: str, payload) -> None:
        _atomic_pickle(payload, self.result_path(key), what="result")

    def load_result(self, key: str):
        return load_verified(self.result_path(key),
                             quarantine_to=self.corrupt,
                             telemetry=self.telemetry, what="result",
                             unit=key)

    # -- hygiene -------------------------------------------------------------

    def gc_tmp(self, older_than_s: float = 0.0) -> List[Path]:
        """Collect ``*.tmp`` litter from writers killed between temp
        write and rename, across every payload directory."""
        removed: List[Path] = []
        for d in (self.units, self.claims, self.results, self.attempts):
            removed.extend(_gc_tmp_dir(d, older_than_s))
        return removed


class DirQueueTransport(Transport):
    """Lease units through a shared spool directory (see module
    docstring).  The driver enqueues every unit, then alternates
    between harvesting results published by attached workers and
    claiming+executing units itself, so progress never depends on
    external workers existing.

    ``lease_s`` bounds how long a crashed worker can pin a unit; set
    it above the longest expected single-unit wall time.  Reaping is
    heartbeat-aware: a merely-slow worker that still heartbeats keeps
    its lease past ``lease_s``; one with a stale (or no) heartbeat is
    reaped, and the reaped unit is retried after a seeded-jitter
    exponential backoff rather than instantly (a crash-looping unit
    must not hot-spin the fleet).  A unit whose attempts ledger shows
    ``quarantine_after`` dead executions is quarantined with a
    placeholder result.
    """

    name = "spool"

    def __init__(self, root, lease_s: float = 60.0, poll_s: float = 0.05,
                 quarantine_after: int = 3, backoff_base: float = 0.05):
        super().__init__()
        self.spool = _Spool(root)
        self.lease_s = lease_s
        self.poll_s = poll_s
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.quarantine_after = quarantine_after
        self.backoff_base = backoff_base
        self._not_before: Dict[str, float] = {}
        self._reaps: Dict[str, int] = {}

    def describe(self) -> str:
        return f"spool({self.spool.root})"

    def _heartbeats_dir(self) -> Path:
        """Where every session attached to this spool heartbeats."""
        return telemetry_area(self.spool.root) / "heartbeats"

    def run(self, units: Sequence[WorkUnit], on_result: OnResult) -> None:
        self.events = []
        self.degraded = False
        self.quarantined = []
        self._not_before = {}
        self._reaps = {}
        self.spool.ensure()
        tel = self.telemetry
        self.spool.telemetry = tel
        litter = self.spool.gc_tmp(older_than_s=self.lease_s)
        if litter:
            self._note(f"collected {len(litter)} leftover tmp file(s) "
                       f"from a dead writer")
        pending = {u.key: u for u in units}
        n_total = len(pending)
        for u in units:
            try:
                self.spool.enqueue(u.key, u.spec)
            except OSError as e:
                tel.count("publish.failed")
                self._note(f"enqueue failed for unit {u.key[:12]} ({e}); "
                           f"driver will execute it inline")
        while pending:
            tel.heartbeat(state="driving",
                          done=n_total - len(pending))
            # Harvest everything attached workers published since the
            # last look (the driver's own inline results are delivered
            # directly, so a failed publish cannot lose them).
            harvested = False
            for key in list(pending):
                payload = self.spool.load_result(key)
                if payload is None:
                    continue
                harvested = True
                unit = pending.pop(key)
                if isinstance(payload, _UnitFailure):
                    raise payload.unwrap()
                tel.count("unit.harvested")
                on_result(unit, payload)
            if not pending or harvested:
                continue
            # Work inline: lease the first claimable unit and run it.
            if self._work_one(pending, on_result):
                continue
            # Everything is leased out (or backing off): reap the
            # stalled, collect litter, wait briefly.
            reaped = self.spool.reap_stale(pending, self.lease_s,
                                           heartbeats=self._heartbeats_dir())
            for key in reaped:
                tel.emit("lease.reaped", unit=key,
                         lease_s=self.lease_s)
                tel.count("lease.reaped")
                n = self._reaps[key] = self._reaps.get(key, 0) + 1
                delay = hazards.backoff_s(key, n, self.backoff_base)
                self._not_before[key] = time.monotonic() + delay
                self._note(f"reaped stalled lease on unit "
                           f"{key[:12]} (> {self.lease_s:g}s); retry "
                           f"backoff {delay:.3f}s")
            if not reaped:
                self.spool.gc_tmp(older_than_s=self.lease_s)
                time.sleep(self.poll_s)
        tel.heartbeat(state="idle", done=n_total, force=True)

    def _work_one(self, pending, on_result: OnResult) -> bool:
        """Claim + execute one unit inline, delivering the result
        directly to the driver (publish is best-effort durability for
        attached workers); False when every pending unit is currently
        leased by someone else or backing off."""
        tel = self.telemetry
        plan = hazards.current()
        now = time.monotonic()
        for key, unit in list(pending.items()):
            if now < self._not_before.get(key, 0.0):
                continue
            if plan is not None:
                plan.maybe_stale_claim(self.spool, key)
            if self.spool.claim_age(key) is not None:
                continue
            if not self.spool.try_claim(key, worker=tel.worker):
                continue
            attempts = self.spool.attempt_count(key)
            if attempts >= self.quarantine_after:
                run = self._quarantine(unit, attempts, on_result)
                self._publish_safe(key, run)
                self.spool.release(key)
                pending.pop(key)
                return True
            self.spool.record_attempt(key)
            tel.emit("unit.claimed", unit=key, spec=unit.spec)
            try:
                wait = time.time() - self.spool.unit_path(key).stat().st_mtime
                tel.observe("unit.queue_wait_s", max(0.0, wait))
            except OSError:
                pass
            try:
                payload = _telemetered(tel, key, unit.spec,
                                       lambda: execute_spec(unit.spec))
            except Exception as e:          # noqa: BLE001 - republished
                # Publish so attached workers stop re-trying the unit,
                # then surface it exactly like the other transports.
                self._publish_safe(key, _UnitFailure(e))
                self.spool.release(key)
                raise
            self.spool.clear_attempts(key)
            self._publish_safe(key, payload)
            self.spool.release(key)
            pending.pop(key)
            on_result(unit, payload)
            return True
        return False

    def _publish_safe(self, key: str, payload) -> bool:
        """Best-effort spool publish: an ENOSPC/EIO here costs
        durability for attached workers (they may re-execute the
        unit), never the driver's in-memory result."""
        try:
            self.spool.publish(key, payload)
            return True
        except OSError as e:
            self.telemetry.count("publish.failed")
            self._note(f"publish failed for unit {key[:12]} ({e}); "
                       f"result kept in memory, spool copy skipped")
            return False


_WORKER_LOG = logging.getLogger("repro.worker")


class _GracefulDrain:
    """SIGTERM -> drain: finish the in-flight unit, publish, release
    the claim, then exit cleanly.

    The handler only flips a flag -- no I/O, no telemetry from signal
    context -- and the worker loop checks it at every unit boundary.
    """

    def __init__(self):
        self.requested = False
        self._old = None
        self._installed = False

    def _handle(self, signum, frame):      # pragma: no cover - signal ctx
        self.requested = True

    def install(self) -> "_GracefulDrain":
        try:
            self._old = signal.signal(signal.SIGTERM, self._handle)
            self._installed = True
        except ValueError:
            # Not the main thread (embedded/test use): run without a
            # handler; SIGTERM keeps its default disposition.
            self._installed = False
        return self

    def restore(self) -> None:
        if self._installed:
            try:
                signal.signal(signal.SIGTERM, self._old)
            except (ValueError, TypeError):
                pass
            self._installed = False


def run_worker(root, poll_s: float = 0.1, lease_s: float = 60.0,
               max_units: Optional[int] = None, drain: bool = True,
               out=None, quarantine_after: int = 3) -> int:
    """Worker loop for ``repro worker DIR``: lease, execute, publish.

    Attaches to the spool at ``root`` and keeps winning claimable
    units until the spool is drained (``drain=True``, the default --
    the process exits 0 when no executable unit remains) or
    ``max_units`` have been executed.  A unit whose spec no longer
    hashes to its enqueued key (the worker runs different code or
    hot-path tiers than the driver) is *skipped*, never executed: a
    result the driver's key scheme can't trust must not be published.

    Robustness contract:

    * **SIGTERM drains**: the in-flight unit finishes, publishes, and
      releases its claim before the loop exits (``worker.stopped``
      carries ``reason="sigterm"``); only SIGKILL abandons work, and
      that is exactly what lease reaping recovers.
    * Lease reaping is heartbeat-aware (shared
      :func:`~repro.obs.telemetry.claim_is_stalled` predicate) and a
      publish that fails (disk full) releases the claim so another
      process retries -- the worker never wedges on a bad disk.
    * A unit whose attempts ledger shows ``quarantine_after`` dead
      executions is quarantined (placeholder result published) rather
      than executed again.
    * Failing specs are published as failure records for the driver to
      re-raise; the worker itself keeps going.

    Returns the number of units this worker executed.

    Reporting is structured: per-unit console lines go through the
    ``repro.worker`` logger (mirrored to ``out`` when given, for the
    CLI and tests), and the full lifecycle -- attach, claims, skips,
    per-unit start/terminal, heartbeats, detach -- is recorded in the
    spool's shared ``telemetry/`` area, where ``repro status DIR``
    and the event-log validator read it.
    """
    log = _WORKER_LOG
    handler = None
    old_propagate = log.propagate
    if out is not None:
        # Mirror console lines to the caller's stream (the CLI's
        # stdout) without double-printing through root handlers.
        handler = logging.StreamHandler(out)
        handler.setFormatter(logging.Formatter("%(message)s"))
        log.addHandler(handler)
        log.propagate = False
    if log.level == logging.NOTSET and log.getEffectiveLevel() > logging.INFO:
        # Default to per-unit lines unless verbosity was configured
        # explicitly (repro worker --quiet sets this logger WARNING).
        log.setLevel(logging.INFO)

    tel = Telemetry(root=telemetry_area(root), role="worker")
    spool = _Spool(root, telemetry=tel)
    spool.ensure()
    heartbeats = telemetry_area(root) / "heartbeats"
    stop = _GracefulDrain().install()
    plan = hazards.current(telemetry=tel)
    litter = spool.gc_tmp(older_than_s=lease_s)
    if litter:
        log.info("worker: collected %d leftover tmp file(s)", len(litter))
    tel.emit("worker.started", spool=str(spool.root))
    tel.heartbeat(state="idle", done=0, force=True)
    t_attach = time.perf_counter()
    executed = 0
    skipped = set()
    try:
        while ((max_units is None or executed < max_units)
               and not stop.requested):
            if plan is not None:
                plan.boundary("worker.scan")
            pending = [k for k in spool.pending_keys() if k not in skipped]
            if not pending:
                if drain:
                    break
                tel.heartbeat(state="idle", done=executed)
                time.sleep(poll_s)
                continue
            progressed = False
            for key in pending:
                if max_units is not None and executed >= max_units:
                    break
                if stop.requested:
                    break
                if spool.claim_age(key) is not None:
                    continue
                if not spool.try_claim(key, worker=tel.worker):
                    continue
                spec = spool.load_spec(key)
                if spec is None or unit_key(spec) != key:
                    spool.release(key)
                    skipped.add(key)
                    tel.emit("unit.skipped", unit=key,
                             reason="stale or foreign key")
                    log.warning("worker: skipping unit %s (stale or "
                                "foreign key -- code/tier mismatch?)",
                                key[:12])
                    continue
                attempts = spool.attempt_count(key)
                if attempts >= quarantine_after:
                    run = quarantined_run(spec, attempts)
                    tel.emit("unit.quarantined", unit=key, spec=spec,
                             attempts=attempts)
                    tel.count("unit.quarantined")
                    published = True
                    try:
                        spool.publish(key, run)
                    except OSError:
                        published = False
                    spool.release(key)
                    progressed = published
                    log.warning("worker: QUARANTINED poison unit %s "
                                "(%d dead execution attempts)",
                                key[:12], attempts)
                    continue
                spool.record_attempt(key)
                tel.emit("unit.claimed", unit=key, spec=spec)
                try:
                    wait = (time.time()
                            - spool.unit_path(key).stat().st_mtime)
                    tel.observe("unit.queue_wait_s", max(0.0, wait))
                except OSError:
                    pass
                tel.heartbeat(state="running", unit=key, done=executed,
                              force=True)
                if plan is not None:
                    plan.boundary("worker.claimed")
                t0 = time.perf_counter()
                try:
                    payload = _telemetered(tel, key, spec,
                                           lambda: _run_spec(spec))
                except Exception as e:      # noqa: BLE001 - republished
                    payload = _UnitFailure(e)
                try:
                    spool.publish(key, payload)
                except OSError as e:
                    # Disk full / I/O error: release so another
                    # process (or this one, later) re-executes; the
                    # attempts ledger keeps its entry -- a publish
                    # failure is not a dead execution, but the re-run
                    # will record its own attempt.
                    spool.release(key)
                    tel.count("publish.failed")
                    log.warning("worker: publish failed for unit %s "
                                "(%s); claim released for retry",
                                key[:12], e)
                    progressed = True
                    continue
                if not isinstance(payload, _UnitFailure):
                    spool.clear_attempts(key)
                spool.release(key)
                executed += 1
                progressed = True
                tel.heartbeat(state="idle", done=executed)
                status = ("FAILED" if isinstance(payload, _UnitFailure)
                          else f"{payload.cycles:,.0f} cycles")
                log.info("worker: %s -> %s [%.2fs] (%s)", spec, status,
                         time.perf_counter() - t0, key[:12])
            if not progressed and not stop.requested:
                # Everything pending is leased elsewhere: reap stalled
                # claims (heartbeat-aware), then wait for publishes or
                # lease expiry.
                reaped = spool.reap_stale(pending, lease_s,
                                          heartbeats=heartbeats)
                for key in reaped:
                    tel.emit("lease.reaped", unit=key, lease_s=lease_s)
                    log.warning("worker: reaped stalled lease on unit "
                                "%s (> %gs)", key[:12], lease_s)
                if not reaped:
                    spool.gc_tmp(older_than_s=lease_s)
                    tel.heartbeat(state="waiting", done=executed)
                    time.sleep(poll_s)
        attached_s = time.perf_counter() - t_attach
        if attached_s > 0:
            tel.gauge("worker.units_per_s", executed / attached_s)
        reason = "sigterm" if stop.requested else "done"
        tel.emit("worker.stopped", executed=executed,
                 skipped=len(skipped), attached_s=round(attached_s, 6),
                 reason=reason)
        if stop.requested:
            log.info("worker: SIGTERM received -- drained in-flight "
                     "unit, %d unit(s) executed, exiting cleanly",
                     executed)
        elif skipped:
            log.info("worker: done, %d unit(s) executed, %d skipped "
                     "(key mismatch)", executed, len(skipped))
        else:
            log.info("worker: done, %d unit(s) executed", executed)
    finally:
        stop.restore()
        tel.close()
        if handler is not None:
            log.removeHandler(handler)
            log.propagate = old_propagate
    return executed
