"""Result export: CSV and Markdown renderings of suite results.

The ASCII tables in ``figures.py`` match the paper's presentation; this
module adds machine-readable CSV and Markdown for downstream analysis
and documentation.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Sequence

from ..obs import MEM_LEVELS, line_totals, profile_total
from .figures import (BREAKDOWN_CATEGORIES, breakdown_table,
                      classification_table, render_table, speedup_table,
                      summary_gains)
from .runner import BenchRun

__all__ = ["suite_to_csv", "suite_to_markdown", "classification_to_csv",
           "profile_table", "profile_to_csv"]


def suite_to_csv(suite: Dict[str, Dict[str, BenchRun]]) -> str:
    """One row per (benchmark, configuration) with cycles, speedup, and
    the full time breakdown."""
    out = io.StringIO()
    cats = list(BREAKDOWN_CATEGORIES) + ["other"]
    w = csv.writer(out)
    w.writerow(["benchmark", "config", "cycles", "speedup_vs_single"]
               + [f"t_{c}" for c in cats])
    speeds = speedup_table(suite)
    brk = breakdown_table(suite)
    for bench, runs in suite.items():
        for cfg, run in runs.items():
            row = brk[bench][cfg]
            w.writerow([bench, cfg, f"{run.cycles:.0f}",
                        f"{speeds[bench][cfg]:.4f}"]
                       + [f"{row[c]:.4f}" for c in cats])
    return out.getvalue()


def classification_to_csv(suite: Dict[str, Dict[str, BenchRun]],
                          configs: Sequence[str] = ("G0", "L1")) -> str:
    """CSV rows of the Figure-3/5 classification per benchmark/config."""
    out = io.StringIO()
    w = csv.writer(out)
    labels = ["A-Timely", "A-Late", "A-Only",
              "R-Timely", "R-Late", "R-Only"]
    w.writerow(["benchmark", "config", "kind"] + labels + ["rdex_coverage"])
    tbl = classification_table(suite, configs)
    for bench, cfgs in tbl.items():
        for cfg, kinds in cfgs.items():
            cov = suite[bench][cfg].result.classes.coverage("rdex")
            for kind, row in kinds.items():
                w.writerow([bench, cfg, kind]
                           + [f"{row[l]:.4f}" for l in labels]
                           + [f"{cov:.4f}"])
    return out.getvalue()


def profile_table(profile: Dict[str, Dict], top: int = 20,
                  title: str = "") -> str:
    """Top-N per-source-line profile as an aligned ASCII table.

    One row per (function, line), hottest first: total simulated
    cycles, share of all profiled cycles, busy cycles, the memory
    cycles split by resolution level (CMP hits vs local home vs clean
    remote vs dirty 3-hop), and the R-vs-A split for slipstream runs.
    """
    rows = line_totals(profile)
    grand = profile_total(profile) or 1.0
    lv_cols = [lv for lv in MEM_LEVELS
               if any(r["levels"].get(lv) for r in rows.values())]
    show_streams = any(r["streams"]["A"] for r in rows.values())
    headers = ["function", "line", "cycles", "%", "busy"] + lv_cols
    if show_streams:
        headers += ["R", "A"]
    table = []
    ranked = sorted(rows.items(), key=lambda kv: (-kv[1]["total"], kv[0]))
    for (func, line), r in ranked[:top]:
        row = [func or "<runtime>", line, f"{r['total']:.0f}",
               f"{100.0 * r['total'] / grand:.1f}", f"{r['busy']:.0f}"]
        row += [f"{r['levels'].get(lv, 0.0):.0f}" for lv in lv_cols]
        if show_streams:
            row += [f"{r['streams']['R']:.0f}", f"{r['streams']['A']:.0f}"]
        table.append(row)
    return render_table(headers, table, title)


def profile_to_csv(profile: Dict[str, Dict]) -> str:
    """Full per-line profile as CSV (every line, every bucket)."""
    out = io.StringIO()
    w = csv.writer(out)
    w.writerow(["function", "line", "total", "busy"]
               + list(MEM_LEVELS) + ["r_cycles", "a_cycles"])
    rows = line_totals(profile)
    for (func, line), r in sorted(rows.items(),
                                  key=lambda kv: (-kv[1]["total"], kv[0])):
        w.writerow([func, line, f"{r['total']:.1f}", f"{r['busy']:.1f}"]
                   + [f"{r['levels'].get(lv, 0.0):.1f}"
                      for lv in MEM_LEVELS]
                   + [f"{r['streams']['R']:.1f}",
                      f"{r['streams']['A']:.1f}"])
    return out.getvalue()


def suite_to_markdown(suite: Dict[str, Dict[str, BenchRun]],
                      title: str = "") -> str:
    """A Markdown speedup table with the headline gains column."""
    speeds = speedup_table(suite)
    gains = summary_gains(suite)
    configs = list(next(iter(speeds.values())))
    lines = []
    if title:
        lines += [f"### {title}", ""]
    lines.append("| bench | " + " | ".join(configs)
                 + " | best-slip gain |")
    lines.append("|" + "---|" * (len(configs) + 2))
    for bench in sorted(speeds):
        cells = " | ".join(f"{speeds[bench][c]:.3f}" for c in configs)
        lines.append(f"| {bench.upper()} | {cells} "
                     f"| {gains[bench]:.3f} |")
    avg = sum(gains.values()) / len(gains)
    lines.append(f"| **average** | " + " | ".join("" for _ in configs)
                 + f" | **{avg:.3f}** |")
    return "\n".join(lines)
