"""Checkpoint journal and run-result memo store (pipeline stage three).

Both are directories of atomically-published pickled
:class:`~repro.harness.runner.BenchRun` payloads named by unit content
key -- the same content-addressing discipline
:mod:`repro.npb.cache` applies to compiled images, extended to full
simulation results.  The two differ only in scope and lifetime:

* :class:`CheckpointJournal` -- per-sweep, at a caller-chosen path
  (``--resume DIR``).  Every finished unit is journaled the moment its
  result reaches the driver, so a sweep killed mid-run (lost pool, a
  SIGKILLed spool worker, the driver itself dying) resumes from the
  journal: completed units load instantly and only the remainder
  re-executes.  Because entries are keyed by content, a journal can
  never resurrect stale results -- a code or spec change shifts the
  key and the old entry is simply never consulted.

* :class:`MemoStore` -- process- and sweep-spanning, under the shared
  cache root (``REPRO_CACHE_DIR``/``~/.cache/repro``, override with
  ``REPRO_MEMO_DIR``).  A repeated ``(program, config, seed, hotpath,
  faults, code-fingerprint)`` unit is served from the store without
  simulating at all; determinism (cycle counts are a pure function of
  the key -- see :func:`repro.harness.jobs.unit_key`) makes the served
  result bit-identical to a fresh run.

Durability rules: entries publish through
:func:`repro.harness.integrity.atomic_pickle` -- ``os.replace`` so
readers (other workers, a concurrent resume) never observe a torn
write, plus a sha256 integrity frame so a corrupt entry (bit rot, a
writer SIGKILLed mid-temp-write, an operator truncation) is *detected*
on load, quarantined into ``<root>/corrupt/`` as evidence, recorded as
an ``integrity.corrupt`` telemetry event, and served as a miss --
never an error, and never a silently-wrong memo hit.  Failed runs are
journaled (a resume must not redo a 5e6-cycle hang) but only
*deterministic* failures are memoized: ``hang`` and ``wrong-output``
replay identically, while a ``crash`` may be environmental (OOM, a
signal) and must stay retryable -- as must a ``quarantined`` poison
placeholder.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..npb.cache import cache_root
from ..obs.telemetry import NULL_TELEMETRY
from .integrity import atomic_pickle, load_verified
from .runner import BenchRun

__all__ = ["ResultStore", "CheckpointJournal", "MemoStore",
           "default_memo_dir"]


class ResultStore:
    """A directory of content-keyed, atomically-published results.

    The shared base of the journal and the memo store: ``put`` pickles
    a payload to ``<root>/<key>.run`` via a same-directory temp file +
    ``os.replace`` (atomic on POSIX), ``get`` unpickles it, treating
    any read/decode failure as a miss.  An unwritable root degrades to
    a no-op store rather than failing the sweep.
    """

    suffix = ".run"

    #: Prefix of the wall-clock histograms this store records
    #: (``<prefix>.lookup_s`` / ``<prefix>.store_s``); subclasses
    #: override so journal and memo latencies stay distinguishable.
    metric_prefix = "store"

    def __init__(self, root: Path):
        self.root = Path(root)
        #: Telemetry session lookups/publishes are timed through (the
        #: pipeline attaches its own; default is the null session).
        self.telemetry = NULL_TELEMETRY

    def _path(self, key: str) -> Path:
        return self.root / f"{key}{self.suffix}"

    def get(self, key: str) -> Optional[BenchRun]:
        """The verified stored payload for ``key``, or None (miss).

        An entry that fails the integrity check is quarantined into
        ``<root>/corrupt/`` (a logged miss, so the unit simply
        re-executes) -- a hit is only ever served after verification.
        """
        t0 = time.perf_counter()
        try:
            payload = load_verified(
                self._path(key), quarantine_to=self.root / "corrupt",
                telemetry=self.telemetry, what=self.metric_prefix,
                unit=key)
        finally:
            self.telemetry.observe(f"{self.metric_prefix}.lookup_s",
                                   time.perf_counter() - t0)
        return payload if isinstance(payload, BenchRun) else None

    def put(self, key: str, run: BenchRun) -> bool:
        """Atomically publish ``run`` under ``key`` (integrity-framed);
        False if the store is unwritable (the sweep proceeds without
        durability)."""
        t0 = time.perf_counter()
        try:
            atomic_pickle(run, self._path(key), what=self.metric_prefix)
            return True
        except OSError:
            return False
        finally:
            self.telemetry.observe(f"{self.metric_prefix}.store_s",
                                   time.perf_counter() - t0)

    def keys(self) -> List[str]:
        """Keys currently published (sorted, for determinism)."""
        if not self.root.is_dir():
            return []
        return sorted(p.name[:-len(self.suffix)]
                      for p in self.root.glob(f"*{self.suffix}"))

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        return len(self.keys())


class CheckpointJournal(ResultStore):
    """Per-sweep resume journal (see module docstring).

    ``load`` is the resume step: given the plan's unit keys it returns
    every already-journaled result, and the pipeline executes only the
    rest.  Keys not in the plan are ignored -- a journal directory may
    be reused across differently-shaped sweeps without harm.
    """

    metric_prefix = "journal"

    def __init__(self, root):
        super().__init__(Path(root))

    def load(self, keys: Iterable[str]) -> Dict[str, BenchRun]:
        """Journaled results for the given unit keys."""
        out: Dict[str, BenchRun] = {}
        for key in keys:
            run = self.get(key)
            if run is not None:
                out[key] = run
        return out

    def record(self, key: str, run: BenchRun) -> bool:
        """Journal one finished unit (atomic; the checkpoint write)."""
        return self.put(key, run)


def default_memo_dir() -> Path:
    """Resolved memo-store directory (``REPRO_MEMO_DIR`` override,
    else ``<cache root>/results`` next to the compile cache)."""
    override = os.environ.get("REPRO_MEMO_DIR")
    if override:
        return Path(override)
    return cache_root() / "results"


class MemoStore(ResultStore):
    """Cross-sweep run-result memo store (see module docstring)."""

    metric_prefix = "memo"

    #: Captured-failure kinds that are pure functions of the unit key
    #: and therefore safe to serve from the store.
    _MEMOIZABLE_ERRORS = ("hang", "wrong-output")

    def __init__(self, root: Optional[Path] = None):
        super().__init__(Path(root) if root is not None
                         else default_memo_dir())

    def memoizable(self, run: BenchRun) -> bool:
        """Should this finished run be published to the store?"""
        if run.error is None:
            return True
        return run.error_kind in self._MEMOIZABLE_ERRORS

    def put(self, key: str, run: BenchRun) -> bool:
        if not self.memoizable(run):
            return False
        return super().put(key, run)
