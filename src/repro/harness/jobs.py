"""Work-unit layer: what one run *is*, and how a sweep shards and merges.

First stage of the execution pipeline (jobs -> transport -> checkpoint
-> merge).  This module owns the two identities everything downstream
keys on:

* :class:`RunSpec` -- a picklable, hashable description of one run
  (bench, config, size, schedule, parameter and machine overrides,
  fault campaign).  ``spec.key`` is the spec's *full* identity: two
  specs with equal keys must produce interchangeable results, so every
  field that can change a run's outcome or the way its failure is
  reported participates (including ``verify`` and ``capture_errors``).

* :class:`WorkUnit` / :class:`SweepPlan` -- a sweep sharded into
  content-keyed units.  The unit key extends the spec's by-value
  identity with the things the process environment contributes: a
  fingerprint of the simulator's own sources and the latched
  ``REPRO_HOTPATH`` tier set.  Cycle counts are a pure function of
  that triple, which is what lets the checkpoint journal and the
  run-result memo store treat a unit key as a full content address
  (same scheme as :mod:`repro.npb.cache` uses for compiled images).

The **bit-identical-merge contract** lives here: a transport may
complete units in any order, on any process or host, but
:meth:`SweepPlan.merge` reassembles results strictly in submission
order, so every downstream table is independent of scheduling.  The
contract is property-tested in isolation in ``tests/test_jobs.py``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple)

from ..config.machine import MachineConfig, PAPER_MACHINE
from ..faults import FaultConfig
from ..hotpath import hotpath_tiers
from ..npb import REGISTRY
from ..runtime import SimDeadlockError, run_program
from .runner import BenchRun, _env_for, _mode_for

__all__ = ["RunSpec", "WorkUnit", "SweepPlan", "execute_spec",
           "failure_run", "quarantined_run", "code_fingerprint",
           "unit_key", "static_specs", "dynamic_specs"]


@dataclass(frozen=True)
class RunSpec:
    """One benchmark run, described by value.

    Everything here is hashable and picklable: the spec is both the job
    description shipped to transport workers and the merge key results
    are collated by.  ``params`` and ``machine_kw`` are stored as
    sorted item tuples (dicts are neither hashable nor order-canonical).
    """

    bench: str
    config: str                               # "single"|"double"|"G0"|"L1"
    size: str = "bench"
    schedule: Optional[Tuple[str, Optional[int]]] = None
    params: Tuple[Tuple[str, int], ...] = ()
    cfg: MachineConfig = PAPER_MACHINE
    verify: bool = True
    machine_kw: Tuple[Tuple[str, Any], ...] = ()
    #: Seeded fault campaign (chaos runs); the FaultPlan is rebuilt
    #: from this inside each worker, so schedules are identical for
    #: serial and distributed execution.
    faults: Optional[FaultConfig] = None
    #: Watchdog cycle budget (None = machine default).
    timeout_cycles: Optional[float] = None
    #: Capture failures as BenchRun.error instead of raising (chaos
    #: matrices must survive a hanging or wrong run and keep sweeping).
    capture_errors: bool = False

    @staticmethod
    def make(bench: str, config: str, size: str = "bench",
             schedule: Optional[Tuple[str, Optional[int]]] = None,
             params: Optional[Dict[str, int]] = None,
             cfg: MachineConfig = PAPER_MACHINE,
             verify: bool = True,
             faults: Optional[FaultConfig] = None,
             timeout_cycles: Optional[float] = None,
             capture_errors: bool = False, **machine_kw) -> "RunSpec":
        """Build a spec from the :func:`run_benchmark` argument shapes."""
        return RunSpec(
            bench=bench, config=config, size=size, schedule=schedule,
            params=tuple(sorted((params or {}).items())),
            cfg=cfg, verify=verify,
            machine_kw=tuple(sorted(machine_kw.items())),
            faults=faults, timeout_cycles=timeout_cycles,
            capture_errors=capture_errors)

    @property
    def key(self) -> Tuple:
        """Full by-value identity, used to merge and memoize results.

        Covers *every* field: ``verify`` decides whether a wrong result
        raises at all, and ``capture_errors`` decides whether a failure
        comes back as data or an exception -- results produced either
        way are not interchangeable, so both are part of the identity
        (two specs differing only there must not collide).
        """
        return (self.bench, self.config, self.size, self.schedule,
                self.params, self.cfg, self.machine_kw, self.faults,
                self.timeout_cycles, self.verify, self.capture_errors)

    def __str__(self) -> str:
        extra = f" {dict(self.params)}" if self.params else ""
        return f"{self.bench}/{self.config}({self.size}){extra}"


# -- content addressing ------------------------------------------------------

_code_fp: Optional[str] = None


def code_fingerprint() -> str:
    """Hex digest over every ``repro`` source file (memoized).

    The run-result memo store serves *simulated results* across
    process invocations, so its keys must miss on any change to the
    code that produces them -- not just the compiler (the compile
    cache's scope) but the engine, memory system, runtime and harness
    too.  Hashing the whole package is coarse but sound: an edit
    anywhere invalidates everything, and a fresh run repopulates the
    store in one sweep.
    """
    global _code_fp
    if _code_fp is None:
        h = hashlib.sha256()
        root = Path(__file__).resolve().parent.parent
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(path.read_bytes())
        _code_fp = h.hexdigest()
    return _code_fp


def unit_key(spec: RunSpec) -> str:
    """Content address of one work unit's result.

    ``repr`` of a frozen dataclass tree (spec, nested MachineConfig /
    CacheConfig / FaultConfig, tuples) is canonical and deterministic,
    so it serves as the serialized identity; the code fingerprint and
    the latched hot-path tier set fold in everything else a simulated
    cycle count depends on.  Equal keys => bit-identical results, on
    any host, in any process.
    """
    h = hashlib.sha256()
    h.update(code_fingerprint().encode())
    h.update(",".join(sorted(hotpath_tiers())).encode())
    h.update(repr(spec).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class WorkUnit:
    """One shard of a sweep: a spec plus its submission slot and
    content key.  What transports dispatch and checkpoints journal."""

    index: int                   # submission position within the plan
    spec: RunSpec
    key: str                     # content address (:func:`unit_key`)

    def __str__(self) -> str:
        return f"unit[{self.index}] {self.spec} {self.key[:12]}"


class SweepPlan:
    """A spec matrix sharded into content-keyed work units.

    The plan is the keeper of the bit-identical-merge contract:
    results arrive keyed by unit key, in whatever order the transport
    completed them, and :meth:`merge` reassembles the submission-order
    list every consumer (suites, figures, regression gates) relies on.
    Identical specs shard to the same key, so a transport executes
    each distinct unit once and the merge fans the shared result back
    out to every submission slot.
    """

    def __init__(self, specs: Sequence[RunSpec]):
        self.specs: List[RunSpec] = list(specs)
        self.units: List[WorkUnit] = [
            WorkUnit(i, s, unit_key(s)) for i, s in enumerate(self.specs)]

    def distinct(self) -> List[WorkUnit]:
        """First unit of each content key, in submission order -- the
        work a transport actually has to execute."""
        seen = set()
        out = []
        for u in self.units:
            if u.key not in seen:
                seen.add(u.key)
                out.append(u)
        return out

    @property
    def keys(self) -> List[str]:
        """Distinct unit keys, in first-submission order."""
        return [u.key for u in self.distinct()]

    def merge(self, results: Mapping[str, BenchRun]) -> List[BenchRun]:
        """Reassemble transport results into submission order.

        ``results`` maps unit key -> finished run; a missing key means
        the transport lost a unit, which is always a harness bug (the
        hardened transports retry or degrade rather than drop), so it
        raises instead of returning a short list.
        """
        missing = [u for u in self.units if u.key not in results]
        if missing:
            raise KeyError(
                f"merge is missing {len(missing)} of {len(self.units)} "
                f"unit result(s): {', '.join(str(u) for u in missing[:3])}"
                + ("..." if len(missing) > 3 else ""))
        return [results[u.key] for u in self.units]

    def __len__(self) -> int:
        return len(self.units)


# -- single-unit execution ---------------------------------------------------

def execute_spec(spec: RunSpec) -> BenchRun:
    """Run one spec to completion (compile, simulate, verify).

    This is the single execution path shared by every transport -- and
    by :func:`repro.harness.run_benchmark` -- so serial and distributed
    sweeps cannot drift apart.  Per-stage wall-clock timings are
    recorded on the returned run for the perf baseline.

    With ``spec.capture_errors``, failures (watchdog expiry, a wrong
    result, a crash) come back as ``BenchRun.error``/``error_kind``
    instead of raising, so a chaos sweep records the outcome and keeps
    going.
    """
    try:
        return _execute(spec)
    except Exception as e:                    # noqa: BLE001 - classified
        if not spec.capture_errors:
            raise
        if isinstance(e, SimDeadlockError):
            kind, msg = "hang", e.summary
        elif isinstance(e, AssertionError):
            kind, msg = "wrong-output", f"verification failed: {e}"
        else:
            kind, msg = "crash", f"{type(e).__name__}: {e}"
        return failure_run(spec, kind, msg)


def failure_run(spec: RunSpec, kind: str, msg: str) -> BenchRun:
    """A resultless :class:`BenchRun` carrying a classified failure --
    the shape every captured-error and quarantine path returns, so
    merges and tables stay total (``cycles`` reads as NaN)."""
    run = BenchRun(spec.bench, spec.config, None, {})
    run.error = msg
    run.error_kind = kind
    return run


def quarantined_run(spec: RunSpec, attempts: int) -> BenchRun:
    """The stand-in result for a poison unit.

    A unit whose execution *process* died ``attempts`` times in a row
    (worker SIGKILLed mid-unit, pool repeatedly broken) without ever
    publishing a result is quarantined rather than retried forever:
    the sweep completes, the merge carries this loud placeholder
    (``error_kind == "quarantined"``), and the CLI exits 5.  Never
    journaled as a real result by the memo store (``crash``-adjacent:
    a poison unit may be environmental and must stay retryable after
    the operator clears the quarantine).
    """
    return failure_run(
        spec, "quarantined",
        f"poison unit: {attempts} execution attempt(s) died without a "
        f"result; quarantined")


def _execute(spec: RunSpec) -> BenchRun:
    ks = REGISTRY[spec.bench]
    overrides = dict(spec.params)
    full_params = ks.params(spec.size, **overrides)
    run_kw: Dict[str, Any] = dict(spec.machine_kw)
    if spec.faults is not None:
        run_kw["faults"] = spec.faults
    if spec.timeout_cycles is not None:
        run_kw["max_cycles"] = spec.timeout_cycles
    t0 = time.perf_counter()
    image = ks.compile(spec.size, **overrides)
    t1 = time.perf_counter()
    result = run_program(image, cfg=spec.cfg, mode=_mode_for(spec.config),
                         env=_env_for(spec.config, spec.schedule),
                         **run_kw)
    t2 = time.perf_counter()
    if spec.verify:
        ks.verify(result.store, spec.size, **overrides)
    t3 = time.perf_counter()
    run = BenchRun(spec.bench, spec.config, result, full_params)
    run.timing = {"compile_s": t1 - t0, "sim_s": t2 - t1,
                  "verify_s": t3 - t2, "total_s": t3 - t0}
    return run


# -- suite spec builders (used by runner.py and the perf baseline) ----------

def static_specs(cfg: MachineConfig, size: str,
                 benchmarks: Iterable[str], configs: Iterable[str],
                 verify: bool = True, **machine_kw) -> List[RunSpec]:
    """Specs of the Figure-2/3 static-scheduling sweep, in suite order."""
    return [RunSpec.make(b, c, size=size, cfg=cfg, verify=verify,
                         **machine_kw)
            for b in benchmarks for c in configs]


def dynamic_specs(cfg: MachineConfig, size: str,
                  benchmarks: Iterable[str], configs: Iterable[str],
                  verify: bool = True, **machine_kw) -> List[RunSpec]:
    """Specs of the Figure-4/5 dynamic-scheduling sweep, in suite order."""
    from .runner import DYNAMIC_PARAMS, dynamic_chunk
    specs = []
    for b in benchmarks:
        chunk = dynamic_chunk(b, cfg, size)
        params = DYNAMIC_PARAMS.get(b) if size == "bench" else None
        for c in configs:
            specs.append(RunSpec.make(
                b, c, size=size, schedule=("dynamic", chunk),
                params=params, cfg=cfg, verify=verify, **machine_kw))
    return specs
