"""Bench-regression gate: hold the committed baseline's cycle counts.

``BENCH_parallel_runner.json`` (repository root) records, besides its
wall-clock trajectory, the **simulated cycle count of every run** in
the CI smoke sweep.  Simulated cycles are a pure function of the
compiled image and machine model -- any drift means an (intended or
not) behaviour change of the simulator, so the gate re-runs the sweep
described *by the baseline itself* and demands:

* **cycles**: exact match, run by run (bit-for-bit; no tolerance);
* **wall time**: the serial sweep may not take longer than
  ``tol x serial_cold_s`` from the baseline (default tolerance 5.0 --
  a coarse guard against pathological slowdowns, loose enough for
  noisy CI hosts; override with ``--wall-tol`` or
  ``REPRO_REGRESS_WALL_TOL``).

Usage::

    PYTHONPATH=src python -m repro.harness.regress BENCH_parallel_runner.json

Exit codes: 0 pass, 1 regression detected, 2 unusable baseline.
After an *intended* cycle change, regenerate the baseline (see
README.md, "Updating the bench baseline") and commit it with the
change that caused it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from ..config.machine import PAPER_MACHINE
from .jobs import static_specs
from .pipeline import ExecutionPipeline

__all__ = ["main", "check_baseline", "DEFAULT_WALL_TOL"]

DEFAULT_WALL_TOL = 5.0


def check_baseline(data: dict, wall_tol: float, out) -> List[str]:
    """Re-run the baseline's sweep; return a list of failure strings
    (empty on a clean pass)."""
    sweep = data["sweep"]
    cfg = PAPER_MACHINE.with_(n_cmps=sweep["n_cmps"])
    specs = static_specs(cfg, sweep["size"], sweep["benchmarks"],
                         sweep["configs"])
    t0 = time.perf_counter()
    runs = ExecutionPipeline().run(specs)
    wall = time.perf_counter() - t0

    failures: List[str] = []
    expected = data["cycles"]
    seen = set()
    for run in runs:
        key = f"{run.bench}/{run.config}"
        seen.add(key)
        want = expected.get(key)
        if want is None:
            failures.append(f"{key}: not in baseline (stale baseline? "
                            f"regenerate it)")
        elif run.cycles != want:
            failures.append(f"{key}: cycles {run.cycles:.0f} != baseline "
                            f"{want:.0f} (drift {run.cycles - want:+.0f})")
        else:
            print(f"  ok {key}: {run.cycles:,.0f} cycles", file=out)
    for key in sorted(set(expected) - seen):
        failures.append(f"{key}: in baseline but not produced by the sweep")

    budget = wall_tol * data["serial_cold_s"]
    verdict = "ok" if wall <= budget else "FAIL"
    print(f"  {verdict} wall: {wall:.2f}s (budget {budget:.2f}s = "
          f"{wall_tol:g} x baseline {data['serial_cold_s']:.2f}s)",
          file=out)
    if wall > budget:
        failures.append(f"wall time {wall:.2f}s exceeds "
                        f"{wall_tol:g}x baseline ({budget:.2f}s)")
    return failures


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness.regress",
        description="re-run the committed bench baseline's sweep and "
                    "fail on simulated-cycle drift or gross wall-time "
                    "regression")
    ap.add_argument("baseline", help="path to BENCH_parallel_runner.json")
    ap.add_argument("--wall-tol", type=float, default=None, metavar="X",
                    help="fail when serial wall time exceeds X times the "
                         "baseline's serial_cold_s (default from "
                         "REPRO_REGRESS_WALL_TOL, else "
                         f"{DEFAULT_WALL_TOL:g})")
    args = ap.parse_args(argv)
    try:
        data = json.loads(open(args.baseline).read())
    except FileNotFoundError:
        print(f"regress: baseline not found: {args.baseline}",
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        print(f"regress: unreadable baseline {args.baseline}: {e}",
              file=sys.stderr)
        return 2
    if "sweep" not in data or "cycles" not in data:
        print(f"regress: {args.baseline} has no sweep/cycles section -- "
              "regenerate it (see README.md)", file=sys.stderr)
        return 2
    wall_tol = args.wall_tol if args.wall_tol is not None else float(
        os.environ.get("REPRO_REGRESS_WALL_TOL", DEFAULT_WALL_TOL))

    sweep = data["sweep"]
    print(f"regress: {len(data['cycles'])} pinned runs "
          f"({','.join(sweep['benchmarks'])} x "
          f"{','.join(sweep['configs'])}, {sweep['size']} size, "
          f"{sweep['n_cmps']} CMPs)", file=out)
    failures = check_baseline(data, wall_tol, out)
    if failures:
        print("regress: FAIL", file=out)
        for f in failures:
            print(f"  - {f}", file=out)
        return 1
    print("regress: PASS (cycles bit-identical to baseline)", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
