"""Experiment runner: executes mini-NPB benchmarks in the paper's
configurations and collects the data behind each figure.

Terminology follows §5: *single* = one task per CMP (second CPU idle);
*double* = two tasks per CMP; *slipstream* runs are named by their A-R
synchronization -- ``G0`` (zero-token global) and ``L1`` (one-token
local), the two policies of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..config.machine import MachineConfig, PAPER_MACHINE
from ..npb import REGISTRY
from ..runtime import RunResult, RuntimeEnv, run_program

__all__ = ["BenchRun", "run_benchmark", "run_static_suite",
           "run_dynamic_suite", "SLIP_CONFIGS", "STATIC_BENCHMARKS",
           "DYNAMIC_BENCHMARKS", "dynamic_chunk"]

#: Benchmarks of the static-scheduling study (Fig 2/3).
STATIC_BENCHMARKS = ("bt", "cg", "lu", "mg", "sp")
#: LU is excluded from the dynamic study: "static scheduling is
#: programatically specified in this benchmark" (§5.2).
DYNAMIC_BENCHMARKS = ("bt", "cg", "mg", "sp")

#: The two A-R synchronization policies of Figure 2.
SLIP_CONFIGS: Dict[str, Tuple[str, int]] = {
    "G0": ("GLOBAL_SYNC", 0),
    "L1": ("LOCAL_SYNC", 1),
}


@dataclass
class BenchRun:
    """One benchmark executed under one configuration."""

    bench: str
    config: str                  # "single" | "double" | "G0" | "L1" | ...
    result: Optional[RunResult]
    params: Dict[str, int] = field(default_factory=dict)
    #: wall-clock stage split recorded by the execution layer
    #: ({"compile_s", "sim_s", "verify_s", "total_s"})
    timing: Dict[str, float] = field(default_factory=dict)
    #: Captured failure (chaos runs with ``capture_errors`` only):
    #: one-line description and its kind ("hang"|"wrong-output"|
    #: "crash").  ``result`` is None when set.
    error: Optional[str] = None
    error_kind: Optional[str] = None

    @property
    def cycles(self) -> float:
        """Simulated execution time of this run (cycles; NaN when the
        run failed and the error was captured)."""
        if self.result is None:
            return float("nan")
        return self.result.cycles

    def speedup_over(self, base: "BenchRun") -> float:
        """This run's speedup relative to a baseline run."""
        return base.cycles / self.cycles


def _env_for(config: str, schedule=None) -> Optional[RuntimeEnv]:
    kw = {}
    if schedule is not None:
        kw["schedule"] = schedule
    if config in SLIP_CONFIGS:
        kw["slipstream"] = SLIP_CONFIGS[config]
        kw["slipstream_set"] = True
    return RuntimeEnv(**kw) if kw else None


def _mode_for(config: str) -> str:
    if config in ("single", "double"):
        return config
    return "slipstream"


def run_benchmark(bench: str, config: str,
                  cfg: MachineConfig = PAPER_MACHINE,
                  size: str = "bench",
                  schedule: Optional[Tuple[str, Optional[int]]] = None,
                  verify: bool = True,
                  params: Optional[Dict[str, int]] = None,
                  **machine_kw) -> BenchRun:
    """Run one mini-NPB benchmark in one configuration and verify the
    computed values against the NumPy reference.

    Thin wrapper over the execution layer: the spec/execute split in
    :mod:`repro.harness.jobs` is the single execution path, shared
    with every pipeline transport."""
    from .jobs import RunSpec, execute_spec
    return execute_spec(RunSpec.make(
        bench, config, size=size, schedule=schedule, params=params,
        cfg=cfg, verify=verify, **machine_kw))


def dynamic_chunk(bench: str, cfg: MachineConfig, size: str = "bench"
                  ) -> Optional[int]:
    """§5.2 chunk policy: compiler defaults except CG, where the chunk
    is half the static block assignment.  For MG the mini-kernel's
    loops are far finer-grained than real NPB-MG's (whose iterations
    each carry a plane of work), so a chunk of a few rows is the
    work-equivalent of the paper's default chunk of one."""
    if bench == "cg":
        n = REGISTRY["cg"].params(size)["n"]
        return max(1, n // (2 * cfg.n_cmps))
    if bench == "mg" and size == "bench":
        return 3
    return None


#: Benchmark-parameter overrides for the dynamic study.  Mini-MG runs a
#: coarser hierarchy under dynamic scheduling so that each scheduling
#: decision carries work comparable to the paper's coarse-grained loops
#: (see EXPERIMENTS.md).
DYNAMIC_PARAMS: Dict[str, Dict[str, int]] = {
    "mg": dict(g=96, levels=3, cycles=2),
}


def _merge_suite(specs, runs) -> Dict[str, Dict[str, BenchRun]]:
    """Collate context results into {bench: {config: BenchRun}}, keyed
    by spec so the nesting is identical for any execution order."""
    out: Dict[str, Dict[str, BenchRun]] = {}
    for spec, run in zip(specs, runs):
        out.setdefault(spec.bench, {})[spec.config] = run
    return out


def run_static_suite(cfg: MachineConfig = PAPER_MACHINE,
                     size: str = "bench",
                     benchmarks=STATIC_BENCHMARKS,
                     configs=("single", "double", "G0", "L1"),
                     verify: bool = True,
                     context=None,
                     **machine_kw) -> Dict[str, Dict[str, BenchRun]]:
    """All Figure-2/3 runs: {bench: {config: BenchRun}}.

    ``context`` selects how the independent runs execute: anything
    with a submission-order-preserving ``run(specs)`` -- an
    :class:`~repro.harness.pipeline.ExecutionPipeline` (serial by
    default; give it a pool or spool transport, a checkpoint journal,
    a memo store) or a legacy :mod:`~repro.harness.exec` context.
    Results are bit-identical through any of them."""
    from .jobs import static_specs
    from .pipeline import ExecutionPipeline
    specs = static_specs(cfg, size, benchmarks, configs, verify=verify,
                         **machine_kw)
    runs = (context or ExecutionPipeline()).run(specs)
    return _merge_suite(specs, runs)


def run_dynamic_suite(cfg: MachineConfig = PAPER_MACHINE,
                      size: str = "bench",
                      benchmarks=DYNAMIC_BENCHMARKS,
                      configs=("single", "G0"),
                      verify: bool = True,
                      context=None,
                      **machine_kw) -> Dict[str, Dict[str, BenchRun]]:
    """All Figure-4/5 runs.  §5.2: comparison against one task/CMP only,
    zero-token-global synchronization only (scheduling points make any
    looser policy converge to G0)."""
    from .jobs import dynamic_specs
    from .pipeline import ExecutionPipeline
    specs = dynamic_specs(cfg, size, benchmarks, configs, verify=verify,
                          **machine_kw)
    runs = (context or ExecutionPipeline()).run(specs)
    return _merge_suite(specs, runs)
