"""Experiment runner: executes mini-NPB benchmarks in the paper's
configurations and collects the data behind each figure.

Terminology follows §5: *single* = one task per CMP (second CPU idle);
*double* = two tasks per CMP; *slipstream* runs are named by their A-R
synchronization -- ``G0`` (zero-token global) and ``L1`` (one-token
local), the two policies of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..config.machine import MachineConfig, PAPER_MACHINE
from ..npb import REGISTRY
from ..runtime import RunResult, RuntimeEnv, run_program

__all__ = ["BenchRun", "run_benchmark", "run_static_suite",
           "run_dynamic_suite", "SLIP_CONFIGS", "STATIC_BENCHMARKS",
           "DYNAMIC_BENCHMARKS", "dynamic_chunk"]

#: Benchmarks of the static-scheduling study (Fig 2/3).
STATIC_BENCHMARKS = ("bt", "cg", "lu", "mg", "sp")
#: LU is excluded from the dynamic study: "static scheduling is
#: programatically specified in this benchmark" (§5.2).
DYNAMIC_BENCHMARKS = ("bt", "cg", "mg", "sp")

#: The two A-R synchronization policies of Figure 2.
SLIP_CONFIGS: Dict[str, Tuple[str, int]] = {
    "G0": ("GLOBAL_SYNC", 0),
    "L1": ("LOCAL_SYNC", 1),
}


@dataclass
class BenchRun:
    """One benchmark executed under one configuration."""

    bench: str
    config: str                  # "single" | "double" | "G0" | "L1" | ...
    result: RunResult
    params: Dict[str, int] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        """Simulated execution time of this run (cycles)."""
        return self.result.cycles

    def speedup_over(self, base: "BenchRun") -> float:
        """This run's speedup relative to a baseline run."""
        return base.cycles / self.cycles


def _env_for(config: str, schedule=None) -> Optional[RuntimeEnv]:
    kw = {}
    if schedule is not None:
        kw["schedule"] = schedule
    if config in SLIP_CONFIGS:
        kw["slipstream"] = SLIP_CONFIGS[config]
        kw["slipstream_set"] = True
    return RuntimeEnv(**kw) if kw else None


def _mode_for(config: str) -> str:
    if config in ("single", "double"):
        return config
    return "slipstream"


def run_benchmark(bench: str, config: str,
                  cfg: MachineConfig = PAPER_MACHINE,
                  size: str = "bench",
                  schedule: Optional[Tuple[str, Optional[int]]] = None,
                  verify: bool = True,
                  params: Optional[Dict[str, int]] = None,
                  **machine_kw) -> BenchRun:
    """Run one mini-NPB benchmark in one configuration and verify the
    computed values against the NumPy reference."""
    spec = REGISTRY[bench]
    overrides = params or {}
    full_params = spec.params(size, **overrides)
    image = spec.compile(size, **overrides)
    result = run_program(image, cfg=cfg, mode=_mode_for(config),
                         env=_env_for(config, schedule), **machine_kw)
    if verify:
        spec.verify(result.store, size, **overrides)
    return BenchRun(bench, config, result, full_params)


def dynamic_chunk(bench: str, cfg: MachineConfig, size: str = "bench"
                  ) -> Optional[int]:
    """§5.2 chunk policy: compiler defaults except CG, where the chunk
    is half the static block assignment.  For MG the mini-kernel's
    loops are far finer-grained than real NPB-MG's (whose iterations
    each carry a plane of work), so a chunk of a few rows is the
    work-equivalent of the paper's default chunk of one."""
    if bench == "cg":
        n = REGISTRY["cg"].params(size)["n"]
        return max(1, n // (2 * cfg.n_cmps))
    if bench == "mg" and size == "bench":
        return 3
    return None


#: Benchmark-parameter overrides for the dynamic study.  Mini-MG runs a
#: coarser hierarchy under dynamic scheduling so that each scheduling
#: decision carries work comparable to the paper's coarse-grained loops
#: (see EXPERIMENTS.md).
DYNAMIC_PARAMS: Dict[str, Dict[str, int]] = {
    "mg": dict(g=96, levels=3, cycles=2),
}


def run_static_suite(cfg: MachineConfig = PAPER_MACHINE,
                     size: str = "bench",
                     benchmarks=STATIC_BENCHMARKS,
                     configs=("single", "double", "G0", "L1"),
                     verify: bool = True,
                     **machine_kw) -> Dict[str, Dict[str, BenchRun]]:
    """All Figure-2/3 runs: {bench: {config: BenchRun}}."""
    out: Dict[str, Dict[str, BenchRun]] = {}
    for b in benchmarks:
        out[b] = {}
        for c in configs:
            out[b][c] = run_benchmark(b, c, cfg=cfg, size=size,
                                      verify=verify, **machine_kw)
    return out


def run_dynamic_suite(cfg: MachineConfig = PAPER_MACHINE,
                      size: str = "bench",
                      benchmarks=DYNAMIC_BENCHMARKS,
                      configs=("single", "G0"),
                      verify: bool = True,
                      **machine_kw) -> Dict[str, Dict[str, BenchRun]]:
    """All Figure-4/5 runs.  §5.2: comparison against one task/CMP only,
    zero-token-global synchronization only (scheduling points make any
    looser policy converge to G0)."""
    out: Dict[str, Dict[str, BenchRun]] = {}
    for b in benchmarks:
        chunk = dynamic_chunk(b, cfg, size)
        sched = ("dynamic", chunk)
        params = DYNAMIC_PARAMS.get(b) if size == "bench" else None
        out[b] = {}
        for c in configs:
            out[b][c] = run_benchmark(b, c, cfg=cfg, size=size,
                                      schedule=sched, verify=verify,
                                      params=params, **machine_kw)
    return out
