"""Set-associative caches with LRU replacement.

One :class:`Cache` class serves both levels: per-CPU L1s (which only
need presence/valid bits -- timing filters) and the per-CMP shared L2
(whose lines carry coherence state plus the slipstream classification
metadata used for the paper's Figures 3 and 5).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from ..config.machine import CacheConfig

__all__ = ["CacheLine", "Cache", "MESIState"]


class MESIState:
    """Line states.  The L2 protocol is a directory MSI (the paper's
    'invalidate-based fully-mapped directory protocol'); EXCLUSIVE here
    means modifiable ownership (M/E folded together)."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2

    NAMES = {0: "I", 1: "S", 2: "E"}


class CacheLine:
    """One cache line's tag-store entry."""

    __slots__ = ("line_addr", "state", "dirty",
                 # --- slipstream classification metadata (L2 only) ---
                 "fetcher",        # "A" | "R" | None: which stream filled it
                 "fill_kind",      # "read" | "rdex"
                 "sibling_hit",    # sibling stream referenced after fill?
                 "merged_late",    # sibling merged into the in-flight miss?
                 "fill_time", "last_ref_time", "epoch")

    def __init__(self, line_addr: int, state: int = MESIState.SHARED):
        self.line_addr = line_addr
        self.state = state
        self.dirty = False
        self.fetcher: Optional[str] = None
        self.fill_kind = "read"
        self.sibling_hit = False
        self.merged_late = False
        self.fill_time = 0.0
        self.last_ref_time = 0.0
        self.epoch = -1

    def __repr__(self) -> str:
        return (f"CacheLine({self.line_addr:#x}, "
                f"{MESIState.NAMES[self.state]}{'*' if self.dirty else ''})")


class Cache:
    """Tag store: set-associative, true-LRU, write-allocate.

    Values are not stored -- the simulator tracks timing and coherence
    only; program values live in the interpreter's arrays (see
    DESIGN.md).  ``on_evict`` is called for every line displaced by a
    fill, letting the L2 finalize slipstream classification and notify
    the directory of silent drops / writebacks.
    """

    def __init__(self, cfg: CacheConfig, name: str = "",
                 on_evict: Optional[Callable[[CacheLine], None]] = None):
        self.cfg = cfg
        self.name = name
        self.on_evict = on_evict
        # Per-set tag index: line_addr -> CacheLine.  Python dicts
        # preserve insertion order, so the dict doubles as the LRU
        # chain (first key = LRU victim, delete+reinsert = touch) while
        # making the tag match O(1) instead of an O(ways) scan on every
        # L1/L2 access -- the hottest lookup in the simulator.
        self._sets: List[Dict[int, CacheLine]] = [
            {} for _ in range(cfg.num_sets)]
        self._set_mask = cfg.num_sets - 1
        self._line_shift = cfg.line_bytes.bit_length() - 1
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- address helpers -----------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """Align an address down to its line base."""
        return addr >> self._line_shift << self._line_shift

    def _set_index(self, line_addr: int) -> int:
        return (line_addr >> self._line_shift) & self._set_mask

    # -- operations ----------------------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line containing ``addr`` (or None),
        updating LRU order and hit/miss counters."""
        shift = self._line_shift
        la = addr >> shift << shift
        s = self._sets[(la >> shift) & self._set_mask]
        line = s.get(la)
        if line is not None and line.state != MESIState.INVALID:
            if touch:
                # Delete + reinsert moves the key to the MRU (last)
                # position of the set's insertion-ordered dict.
                del s[la]
                s[la] = line
            self.hits += 1
            return line
        self.misses += 1
        return None

    def peek(self, addr: int) -> Optional[CacheLine]:
        """lookup() without statistics or LRU side effects."""
        shift = self._line_shift
        la = addr >> shift << shift
        line = self._sets[(la >> shift) & self._set_mask].get(la)
        if line is not None and line.state != MESIState.INVALID:
            return line
        return None

    def insert(self, addr: int, state: int) -> CacheLine:
        """Fill a new line (evicting the LRU victim if the set is full)
        and return it.  If the line is already resident its state is
        upgraded instead."""
        la = self.line_addr(addr)
        s = self._sets[self._set_index(la)]
        existing = s.get(la)
        if existing is not None and existing.state != MESIState.INVALID:
            existing.state = max(existing.state, state)
            return existing
        if len(s) >= self.cfg.assoc:
            victim = s.pop(next(iter(s)))     # first key = LRU
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)
        line = CacheLine(la, state)
        s[la] = line
        return line

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Remove the line containing ``addr``; returns it if present."""
        la = self.line_addr(addr)
        s = self._sets[self._set_index(la)]
        line = s.get(la)
        if line is not None and line.state != MESIState.INVALID:
            del s[la]
            self.invalidations += 1
            return line
        return None

    def downgrade(self, addr: int) -> Optional[CacheLine]:
        """EXCLUSIVE -> SHARED (for interventions); clears dirty."""
        line = self.peek(addr)
        if line is not None and line.state == MESIState.EXCLUSIVE:
            line.state = MESIState.SHARED
            line.dirty = False
        return line

    def lines(self) -> Iterator[CacheLine]:
        """Iterate over all resident lines."""
        for s in self._sets:
            yield from s.values()

    def resident_count(self) -> int:
        """Number of valid resident lines."""
        return sum(len(s) for s in self._sets)

    def clear(self) -> None:
        """Drop every line (no callbacks)."""
        for s in self._sets:
            s.clear()

    @property
    def accesses(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        return self.hits / self.accesses if self.accesses else 0.0
