"""Fully-mapped invalidate-based directory.

Each shared line has one directory entry at its home node recording the
global coherence state: UNOWNED (memory holds the only copy), SHARED
(a set of caching nodes), or EXCLUSIVE (one owning node whose L2 may be
dirty).  Racing transactions on the same line are serialized by a
per-line mutex at the home -- a simplification over transient-state
NACK/retry protocols that preserves the timing behaviour (a race costs
the loser a queueing delay either way) while making the protocol
trivially deadlock- and livelock-free.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..obs.probe import NULL_PROBE, Probe
from ..sim import Engine, Mutex

__all__ = ["DirEntry", "DirLock", "Directory", "DirState"]


class DirLock(Mutex):
    """Per-line transaction lock with a monotone *epoch* witness.

    The epoch advances on every acquisition and on every directory
    state transition of the line, locked or not (evictions drop copies
    without taking the lock).  The memory fast path snapshots it when a
    plan acquires the lock and re-validates at each deferred resumption
    point: an unexpected move means some lock-free actor touched the
    line mid-plan, and the plan must re-derive its view instead of
    trusting the forecast (DESIGN §6)."""

    def __init__(self, engine: Engine, name: str):
        super().__init__(engine, name)
        self.epoch = 0

    def is_free_now(self) -> bool:
        """Would an ``acquire()`` issued now succeed immediately and in
        zero simulated time?  (The public form of the fast path's old
        ``count``/``_waiters``/``op_latency`` pokes.)"""
        return self.count > 0 and not self._waiters and self.op_latency == 0.0

    def try_acquire(self) -> bool:
        ok = super().try_acquire()
        if ok:
            self.epoch += 1
        return ok

    def acquire(self):
        result = yield from super().acquire()
        self.epoch += 1
        return result


class DirState:
    """Directory line states: UNOWNED / SHARED / EXCLUSIVE."""
    UNOWNED = 0
    SHARED = 1
    EXCLUSIVE = 2

    NAMES = {0: "U", 1: "S", 2: "E"}


class DirEntry:
    """Directory state for one line."""

    __slots__ = ("state", "owner", "sharers")

    def __init__(self):
        self.state = DirState.UNOWNED
        self.owner: Optional[int] = None
        self.sharers: Set[int] = set()

    def __repr__(self) -> str:
        return (f"DirEntry({DirState.NAMES[self.state]}, owner={self.owner}, "
                f"sharers={sorted(self.sharers)})")


class Directory:
    """All directory entries plus the per-line transaction locks.

    The directory is logically distributed (entries live at the line's
    home node; the protocol engine charges the home's controller for
    every access) but stored centrally for convenience.
    """

    def __init__(self, engine: Engine, probe: Probe = NULL_PROBE):
        self.engine = engine
        self.probe = probe
        self._entries: Dict[int, DirEntry] = {}
        self._locks: Dict[int, DirLock] = {}

    def entry(self, line_addr: int) -> DirEntry:
        """Get (creating on demand) a line's directory entry."""
        e = self._entries.get(line_addr)
        if e is None:
            e = DirEntry()
            self._entries[line_addr] = e
            self.probe.count("dir.lines")
        return e

    def lock(self, line_addr: int) -> DirLock:
        """Per-line transaction-serialization mutex at the home."""
        m = self._locks.get(line_addr)
        if m is None:
            m = DirLock(self.engine, f"dir:{line_addr:#x}")
            self._locks[line_addr] = m
            self.probe.count("dir.locks")
        return m

    def _bump(self, line_addr: int) -> None:
        lk = self._locks.get(line_addr)
        if lk is not None:
            lk.epoch += 1

    # -- state transitions (zero simulated time; timing is charged by the
    # -- protocol engine around these calls) ----------------------------------

    def add_sharer(self, line_addr: int, node: int) -> None:
        """Record a new sharer (read grant)."""
        e = self.entry(line_addr)
        if e.state == DirState.EXCLUSIVE:
            raise RuntimeError(f"add_sharer on EXCLUSIVE line {line_addr:#x}")
        e.state = DirState.SHARED
        e.sharers.add(node)
        self._bump(line_addr)

    def set_exclusive(self, line_addr: int, node: int) -> None:
        """Grant exclusive ownership to one node."""
        e = self.entry(line_addr)
        e.state = DirState.EXCLUSIVE
        e.owner = node
        e.sharers.clear()
        self._bump(line_addr)

    def demote_to_shared(self, line_addr: int, extra_sharer: Optional[int] = None) -> None:
        """EXCLUSIVE -> SHARED after an intervention; the old owner keeps
        a shared copy."""
        e = self.entry(line_addr)
        if e.state != DirState.EXCLUSIVE:
            raise RuntimeError(f"demote on non-EXCLUSIVE line {line_addr:#x}")
        e.state = DirState.SHARED
        e.sharers = {e.owner}
        if extra_sharer is not None:
            e.sharers.add(extra_sharer)
        e.owner = None
        self._bump(line_addr)

    def drop_node(self, line_addr: int, node: int) -> None:
        """Remove a node's copy (eviction notification or invalidation)."""
        e = self._entries.get(line_addr)
        if e is None:
            return
        if e.state == DirState.EXCLUSIVE and e.owner == node:
            e.state = DirState.UNOWNED
            e.owner = None
        else:
            e.sharers.discard(node)
            if e.state == DirState.SHARED and not e.sharers:
                e.state = DirState.UNOWNED
        self._bump(line_addr)

    def sharers_excluding(self, line_addr: int, node: int) -> Set[int]:
        """Sharer set minus the requesting node (invalidation targets)."""
        e = self.entry(line_addr)
        return e.sharers - {node}

    @property
    def n_entries(self) -> int:
        """Number of lines with directory state."""
        return len(self._entries)
