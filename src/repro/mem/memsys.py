"""The coherent memory system: L1s, shared L2s, directory protocol.

This is the substitute for SimOS's NUMA memory model.  Latencies compose
from the paper's Table-1 parameters (see ``MachineConfig``): an
uncontended local L2 miss costs 170 ns and a remote clean miss 290 ns,
both validated by ``benchmarks/bench_table1_latencies.py``.  Contention
is modelled -- as in the paper -- at the network inputs and outputs
(``ni_in``/``ni_out``), at the home directory/memory controller
(``dirctrl``/``mem``), and on each CMP's local bus.

Only *shared* addresses flow through here.  Private data is CMP-local by
the paper's slipstream model ("control flow and address generation rely
mostly on private variables"), so the processor charges private accesses
a fixed L1 hit without simulating them.

Each L2 fill carries the slipstream classification record (which stream
fetched it, read vs read-exclusive) that feeds Figures 3 and 5; see
``classify.py`` for the Timely/Late/Only rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config.machine import MachineConfig
from ..hotpath import hotpath_enabled
from ..obs import Counter, line_outcome, make_sink
from ..obs.probe import NULL_PROBE, Probe
from ..sim import Engine
from ..sim.engine import Process, _PlanWake
from ..sim.resources import Server
from .address import Placement, SharedAllocator, is_shared_addr
from .cache import Cache, CacheLine, MESIState
from .directory import Directory, DirState

__all__ = ["AccessResult", "NodeMemory", "CoherentMemorySystem",
           "PerfectMemory"]


@dataclass
class AccessResult:
    """Outcome of one shared-memory access, for the caller's accounting."""

    level: str          # "l1" | "l2" | "local" | "remote" | "remote3" | "merged"
    cycles: float       # total latency the caller experienced

    @property
    def was_miss(self) -> bool:
        """True when the access left the CMP."""
        return self.level not in ("l1", "l2")


class _Mshr:
    """One outstanding L2 miss; secondary requesters merge onto it."""

    __slots__ = ("event", "fetcher", "kind", "late", "is_prefetch")

    def __init__(self, event, fetcher: str, kind: str, is_prefetch: bool):
        self.event = event
        self.fetcher = fetcher
        self.kind = kind
        self.late = False          # a sibling-stream request merged in
        self.is_prefetch = is_prefetch


class _PlanTick:
    """A scheduled (or handoff-parked) plan boundary.  Stepping it
    advances the plan's bookkeeping directly -- no coroutine-stack
    resumption -- which is where the tier's wall-clock win lives: the
    plan fires the *same number* of events as the generator twin (the
    cadence is what keeps event order exact), but each one costs a
    method call instead of re-entering the transaction's generator
    chain.  The owning process is only stepped at phase boundaries."""

    __slots__ = ("plan", "name", "alive")

    footprint = None

    def __init__(self, plan):
        self.plan = plan
        self.name = "mem.plan"
        self.alive = True

    def _step(self, value) -> None:
        self.plan._advance()


class _MissPlan:
    """One in-flight contention-forecast plan (DESIGN §6).

    The planner walks the transaction's legs on the same *wake cadence*
    the generator twin would run them -- each leg is booked at the
    instant the twin would schedule that leg's arrival, a tick fires at
    every leg boundary (so the plan's own schedule calls land in the
    same event buckets, in the same within-bucket order, as the
    twin's), and a leg that chains behind in-flight occupancy parks its
    tick on a *handoff* that the occupancy's ender appends at the
    release instant, exactly like a FIFO queue-gate fire.  By induction
    the plan steps in the generator's event order at every instant, so
    same-instant arrival ties at a server resolve identically with the
    tier on or off.  When real traffic invalidates the booked window,
    the server preempts the plan (``preempt``) and the rest of the
    phase degrades to ordinary ``serve()`` calls; later phases plan
    afresh, so one collision does not forfeit the whole transaction.
    """

    __slots__ = ("engine", "proc", "window", "_wake", "_abort",
                 "_abort_arrival", "phase_ops", "_k", "degrade_reason")

    def __init__(self, engine: Engine, proc: Process):
        self.engine = engine
        self.proc = proc
        self.window = None       # the single currently-booked leg window
        self._wake = None
        self._abort = None       # op index of a preempted leg, if any
        self._abort_arrival = 0.0
        self.phase_ops: list = []
        self._k = 0              # op cursor within the current phase
        self.degrade_reason: Optional[str] = None

    # -- phase protocol ---------------------------------------------------

    def plan_phase(self, ops) -> bool:
        """Stage ``ops`` -- a list of ``(server, duration)`` legs and
        ``(None, delay)`` pure gaps -- as the current phase and dry-run
        the booking chain.  Nothing is reserved here (each leg books at
        its own boundary in ``run_phase``, matching the instant the
        generator twin would take its queue position); the return value
        is the admission screen: False when some leg's timeline is
        undecidable *now* (queued waiters, a unit mid-handoff, jitter
        injection armed)."""
        self.stage(ops)
        t = self.engine.now
        for srv, dur in ops:
            if srv is None:
                t += dur
                continue
            s = srv.free_at(t, dur)
            if s is None:
                return False
            t = s + dur
        return True

    def stage(self, ops) -> None:
        """Set ``ops`` as the current phase without the dry-run.  For
        every phase after the admission trip the walk itself is the
        probe -- an undecidable leg degrades the remainder to ordinary
        serves -- so the chained ``free_at`` pass would be discarded
        work on the planner's hottest path."""
        self.phase_ops = ops

    def run_phase(self):
        """Generator: walk the phase's ops on the twin's wake cadence.
        The process parks once; ticks do the boundary work and step it
        back in at phase end (or on a degrade, where the remaining ops
        replay through ordinary serves).  Returns True when the phase
        completed purely from the plan."""
        self._k = 0
        k = None
        st = self._walk()
        if st == "pure":
            return True
        if st == "parked":
            self._abort = None
            yield Engine.PAUSE
            if self._abort is not None:
                # Preempted at op k: the window was cancelled and the
                # re-wake landed where the generator twin would issue
                # the leg's request; replay the rest of the phase real.
                k = self._abort
                if self.degrade_reason is None:
                    self.degrade_reason = "preempt"
                lag = self.engine.now - self._abort_arrival
                if lag > 0:
                    # Repositioning woke us *after* the twin's arrival:
                    # it queued from _abort_arrival on, the replacement
                    # serve only charges from now.
                    self.phase_ops[k][0].total_queue_wait += lag
            elif self._k >= len(self.phase_ops):
                return True
        if k is None:
            k = self._k          # walk hit an undecidable timeline
        if self.degrade_reason is None:
            self.degrade_reason = "server_queue"
        for srv, dur in self.phase_ops[k:]:
            if srv is None:
                yield dur
            else:
                yield from srv.serve(dur)
        return False

    def _walk(self) -> str:
        """Advance through ops from the cursor until the next tick is
        staged ("parked"), the phase is over ("pure"), or a leg's
        timeline is undecidable ("degrade")."""
        engine = self.engine
        ops = self.phase_ops
        n = len(ops)
        while self._k < n:
            srv, dur = ops[self._k]
            now = engine.now
            if srv is None:
                # Pure gap: the twin schedules its resumption here too.
                self._k += 1
                self._tick(now + dur)
                return "parked"
            s = srv.free_at(now, dur)
            if s is None:
                if self.degrade_reason is None:
                    self.degrade_reason = "server_queue"
                return "degrade"
            w = srv.reserve(now, s, dur, plan=self, leg=self._k)
            self.window = w
            if s > now or srv._pending_release_at(now):
                # Queued behind occupancy: the twin would be resumed by
                # the occupant's FIFO handoff, so this tick must be
                # *appended* at the release instant, not pre-scheduled.
                srv.park_handoff(s, self._next_tick())
            else:
                # Leg start: the twin begins its hold, schedules its end.
                self._tick(w.end)
            return "parked"
        return "pure"

    def _next_tick(self) -> "_PlanTick":
        # Reuse the tick that just fired: at most one is outstanding per
        # plan, and a preempt retires it (alive=False) rather than
        # recycling it, so a dead copy can never be revived in-queue.
        t = self._wake
        if type(t) is not _PlanTick or not t.alive:
            t = _PlanTick(self)
        self._wake = t
        return t

    def _tick(self, t: float) -> None:
        w = self._next_tick()
        self.engine._schedule(w, t - self.engine.now, None)

    def _advance(self) -> None:
        """Tick callback: perform this boundary's bookkeeping and stage
        the next tick; step the owning process only when the phase is
        over (pure completion or degrade), in this event's step -- the
        exact position the generator twin's serve-return would run."""
        engine = self.engine
        w = self.window
        if w is not None:
            if engine.now < w.end:
                # Leg start (the handoff landed): twin begins its hold.
                self._tick(w.end)
                return
            w.server.complete(w)  # releases the unit to whoever chained
            self.window = None
            self._k += 1
        if self._walk() == "parked":
            return
        proc = self.proc
        engine._current = proc
        if proc.alive:
            proc._step(None)

    def preempt(self, leg: int) -> None:
        """Server callback: the booked window was invalidated (a real
        hold it chained behind ended early).  Cancel it (refunding
        statistics) and re-wake the parked plan where the generator
        twin would issue the leg's request: its planned arrival, or now
        if the timeline repositioned into the past."""
        w = self.window
        if w is None:
            return
        w.server.cancel(w)
        self.window = None
        self._abort = leg
        self._abort_arrival = w.arrival
        if self._wake is not None:
            self._wake.alive = False
        t = self.engine.now
        if w.arrival > t:
            t = w.arrival
        nw = _PlanWake(self.proc, name="mem.plan.abort")
        self._wake = nw
        self.engine._schedule(nw, t - self.engine.now, None)

    def unwind(self) -> None:
        """Interrupt/kill mid-plan: cancel the in-flight window (an
        elapsed one keeps its charges, exactly as an interrupted real
        serve does)."""
        if self._wake is not None:
            self._wake.alive = False
            self._wake = None
        w = self.window
        if w is not None:
            w.server.cancel(w)
            self.window = None


class NodeMemory:
    """Per-CMP memory-side hardware: L1s, shared L2, NI, controllers."""

    def __init__(self, engine: Engine, cfg: MachineConfig, node_id: int,
                 on_l2_evict, probe: Probe = NULL_PROBE,
                 stats: Optional[Counter] = None):
        self.node_id = node_id
        self.l1s: List[Cache] = [
            Cache(cfg.l1, name=f"n{node_id}.l1[{c}]")
            for c in range(cfg.cpus_per_cmp)]
        self.l2 = Cache(cfg.l2, name=f"n{node_id}.l2", on_evict=on_l2_evict)
        self.bus = Server(engine, f"n{node_id}.bus")
        self.ni_in = Server(engine, f"n{node_id}.ni_in")
        self.ni_out = Server(engine, f"n{node_id}.ni_out")
        self.dirctrl = Server(engine, f"n{node_id}.dirctrl")
        self.mem = Server(engine, f"n{node_id}.mem")
        self.mshrs: Dict[int, _Mshr] = {}
        self.outstanding_prefetches = 0
        self.epoch = 0
        self.probe = probe
        # The sink's counter bag for this track: reads through
        # ``nm.stats`` see everything ``nm.probe.count`` recorded.
        self.stats = stats if stats is not None else Counter()


class CoherentMemorySystem:
    """Directory-coherent DSM across ``cfg.n_cmps`` CMP nodes."""

    #: Prefetch-exclusive conversions are dropped beyond this many in
    #: flight per node -- the paper's "no resource contention" condition.
    MAX_PREFETCHES = 8

    def __init__(self, engine: Engine, cfg: MachineConfig, sink=None):
        self.engine = engine
        self.cfg = cfg
        self.obs = make_sink(sink)
        self.probe = self.obs.probe("mem")
        self.directory = Directory(engine, probe=self.probe)
        self.placement = Placement(cfg.placement, cfg.n_cmps, cfg.page_bytes)
        self.allocator = SharedAllocator()
        self.nodes: List[NodeMemory] = []
        for n in range(cfg.n_cmps):
            track = f"mem:n{n}"
            self.nodes.append(NodeMemory(
                engine, cfg, n,
                on_l2_evict=self._make_evict_handler(n),
                probe=self.obs.probe(track),
                stats=self.obs.counter(track)))
        # cycle-denominated latency components
        self.c_bus = cfg.cycles(cfg.bus_time_ns)
        self.c_nil = cfg.cycles(cfg.ni_local_dc_time_ns)
        self.c_nir = cfg.cycles(cfg.ni_remote_dc_time_ns)
        self.c_net = cfg.cycles(cfg.net_time_ns)
        self.c_mem = cfg.cycles(cfg.mem_time_ns)
        self.c_l1 = float(cfg.l1.hit_cycles)
        self.c_l2 = float(cfg.l2.hit_cycles)
        self.selfinv_drops = 0
        #: Addresses >= this are runtime-internal (locks, barrier words,
        #: job flags): they are timed like any shared line but excluded
        #: from the Figure-3/5 "shared data" classification.
        self.noclass_base: Optional[int] = None
        #: Uncontended-miss fast path (``REPRO_HOTPATH`` tier ``mem``),
        #: resolved once at construction like the engine's queue choice.
        self._fastmiss = hotpath_enabled("mem")

    @property
    def classes(self):
        """The run-wide Figure-3/5 classification collector (lives on
        the sink, shared with every other producer of the run)."""
        return self.obs.classes

    def arm_faults(self, plan) -> None:
        """Arm deterministic network-jitter injection on every node's
        network-interface servers.  Jitter only stretches serve times
        within protocol-legal bounds (the interconnect gives no timing
        guarantees), so it can perturb A-R skew but never correctness.
        """
        for nm in self.nodes:
            nm.ni_in.faults = plan
            nm.ni_out.faults = plan

    # ------------------------------------------------------------------ utils

    def line_addr(self, addr: int) -> int:
        """Align an address to its cache line."""
        return self.nodes[0].l2.line_addr(addr)

    def _make_evict_handler(self, node_id: int):
        def handler(line: CacheLine) -> None:
            self._finalize_line(line)
            self.directory.drop_node(line.line_addr, node_id)
            for l1 in self.nodes[node_id].l1s:
                l1.invalidate(line.line_addr)
            if line.dirty:
                # Background writeback: occupy the home memory controller.
                home = self.placement.home(line.line_addr)
                self.engine.process(
                    self._writeback(node_id, home), name="wb",
                    footprint=())
        return handler

    def _writeback(self, node: int, home: int):
        yield from self.nodes[node].bus.serve(self.c_bus)
        if home != node:
            yield from self.nodes[node].ni_out.serve(self.c_nir)
            yield self.c_net
        yield from self.nodes[home].mem.serve(self.c_mem)

    def _finalize_line(self, line: CacheLine) -> None:
        if line.fetcher is not None:
            self.probe.classify(line.fetcher, line.fill_kind,
                                line_outcome(line), self.engine.now)
            line.fetcher = None

    def _set_record(self, line: CacheLine, fetcher: str, kind: str,
                    merged_late: bool) -> None:
        """Attach a fresh classification record to a line (finalizing any
        previous one, e.g. on a shared->exclusive upgrade)."""
        self._finalize_line(line)
        if (self.noclass_base is not None
                and line.line_addr >= self.noclass_base):
            return
        line.fetcher = fetcher
        line.fill_kind = kind
        line.sibling_hit = False
        line.merged_late = merged_late
        line.fill_time = self.engine.now

    def _touch(self, node: int, line: CacheLine, stream: str) -> None:
        """Record a reference for classification + self-invalidation."""
        line.last_ref_time = self.engine.now
        line.epoch = self.nodes[node].epoch
        if line.fetcher is not None and stream != line.fetcher:
            line.sibling_hit = True

    # ------------------------------------------------------------ public API

    def l1_probe(self, node: int, cpu: int, addr: int) -> bool:
        """Synchronous L1 load probe (caller charges the 1-cycle hit)."""
        return self.nodes[node].l1s[cpu].lookup(addr) is not None

    def try_fast_load(self, node: int, cpu: int, addr: int,
                      stream: str):
        """Synchronous hit path: returns the hit latency in cycles, or
        None when the access misses the CMP (caller takes the timed
        transaction path).  Hits have no externally visible contention,
        so they can bypass the event engine entirely."""
        nm = self.nodes[node]
        if nm.l1s[cpu].lookup(addr) is not None:
            return self.c_l1
        if nm.l2.peek(addr) is None:
            return None
        line = nm.l2.lookup(addr)        # hit statistics + LRU touch
        self._touch(node, line, stream)
        nm.l1s[cpu].insert(self.line_addr(addr), MESIState.SHARED)
        nm.probe.count("l2_hits")
        nm.probe.count("loads")
        return self.c_l2

    def try_fast_store(self, node: int, cpu: int, addr: int,
                       stream: str):
        """Synchronous store-hit path: only an EXCLUSIVE L2 hit can
        complete without coherence actions.  Returns cycles or None."""
        nm = self.nodes[node]
        line = nm.l2.peek(addr)
        if line is None or line.state != MESIState.EXCLUSIVE:
            return None
        nm.l2.lookup(addr)
        self._touch(node, line, stream)
        line.dirty = True
        self._store_update_l1s(nm, cpu, self.line_addr(addr))
        nm.probe.count("l2_hits")
        nm.probe.count("stores")
        return self.c_l2

    def prefetch_would_fire(self, node: int, addr: int) -> bool:
        """Cheap precheck mirroring prefetch_exclusive's drop rules (with
        the same classification side effect on an already-owned line)."""
        nm = self.nodes[node]
        la = self.line_addr(addr)
        line = nm.l2.peek(la)
        if line is not None and line.state == MESIState.EXCLUSIVE:
            if line.fetcher is not None and line.fetcher != "A":
                line.sibling_hit = True
            return False
        if la in nm.mshrs:
            return False
        return nm.outstanding_prefetches < self.MAX_PREFETCHES

    def load(self, node: int, cpu: int, addr: int, stream: str = "R"):
        """Generator: an L1-missing shared load.  Returns AccessResult."""
        assert is_shared_addr(addr), hex(addr)
        nm = self.nodes[node]
        nm.probe.count("loads")
        la = self.line_addr(addr)
        start = self.engine.now
        while True:
            line = nm.l2.lookup(addr)
            if line is not None:
                yield self.c_l2
                self._touch(node, line, stream)
                nm.l1s[cpu].insert(la, MESIState.SHARED)
                nm.probe.count("l2_hits")
                return AccessResult("l2", self.engine.now - start)
            mshr = nm.mshrs.get(la)
            if mshr is not None:
                # Merge onto the outstanding miss.
                if stream != mshr.fetcher:
                    mshr.late = True
                nm.probe.count("mshr_merges")
                yield mshr.event
                continue  # re-probe: the fill is now resident (usually)
            # Primary miss: run the GETS transaction.
            level = yield from self._gets(node, la, stream)
            line = nm.l2.peek(la)
            if line is not None:
                self._touch(node, line, stream)
            nm.l1s[cpu].insert(la, MESIState.SHARED)
            nm.probe.count(level)
            return AccessResult(level, self.engine.now - start)

    def store(self, node: int, cpu: int, addr: int, stream: str = "R"):
        """Generator: a shared store (write-through L1, allocate in L2)."""
        assert is_shared_addr(addr), hex(addr)
        nm = self.nodes[node]
        nm.probe.count("stores")
        la = self.line_addr(addr)
        start = self.engine.now
        while True:
            line = nm.l2.lookup(addr)
            if line is not None and line.state == MESIState.EXCLUSIVE:
                yield self.c_l2
                self._touch(node, line, stream)
                line.dirty = True
                self._store_update_l1s(nm, cpu, la)
                nm.probe.count("l2_hits")
                return AccessResult("l2", self.engine.now - start)
            mshr = nm.mshrs.get(la)
            if mshr is not None:
                if stream != mshr.fetcher:
                    mshr.late = True
                nm.probe.count("mshr_merges")
                yield mshr.event
                continue
            upgrade = line is not None  # resident SHARED: permission only
            if line is not None:
                self._touch(node, line, stream)
            level = yield from self._getx(node, la, stream, upgrade=upgrade)
            self._store_update_l1s(nm, cpu, la)
            nm.probe.count(level)
            return AccessResult(level, self.engine.now - start)

    def _store_update_l1s(self, nm: NodeMemory, cpu: int, la: int) -> None:
        """Write-through: keep the writer's L1 copy, invalidate siblings'."""
        for i, l1 in enumerate(nm.l1s):
            if i != cpu:
                l1.invalidate(la)
        nm.l1s[cpu].insert(la, MESIState.SHARED)

    def prefetch_exclusive(self, node: int, addr: int, stream: str = "A") -> bool:
        """Non-binding prefetch-for-ownership: the A-stream's converted
        shared store.  Fire-and-forget; returns False if dropped (line
        already owned, already in flight, or MSHRs saturated)."""
        assert is_shared_addr(addr), hex(addr)
        nm = self.nodes[node]
        la = self.line_addr(addr)
        line = nm.l2.peek(la)
        if line is not None and line.state == MESIState.EXCLUSIVE:
            if line.fetcher is not None and stream != line.fetcher:
                line.sibling_hit = True
            return False
        if la in nm.mshrs:
            return False
        if nm.outstanding_prefetches >= self.MAX_PREFETCHES:
            nm.probe.count("prefetch_dropped")
            return False
        nm.outstanding_prefetches += 1
        nm.probe.count("prefetch_ex")
        nm.probe.instant("coh.pfx", self.engine.now, {"addr": la})

        def body():
            try:
                yield from self._getx(node, la, stream,
                                      upgrade=nm.l2.peek(la) is not None)
            finally:
                nm.outstanding_prefetches -= 1

        self.engine.process(body(), name=f"pfx:n{node}", footprint=(la,))
        return True

    # --------------------------------------- epoch-forecast fast path
    #
    # A miss's event sequence is almost always *arithmetically*
    # determined at issue time even when the machine is not quiescent:
    # each server leg starts at the later of its arrival and the end of
    # the occupancy already in flight there.  The planner books each
    # leg as a reservation window on its server (``free_at`` /
    # ``reserve``) at the instant the generator twin would take its
    # queue position, computes the whole timeline arithmetically, and
    # parks the process (``Engine.PAUSE``) between leg boundaries --
    # waking on exactly the twin's cadence so its schedule calls keep
    # the twin's within-bucket event order (same-instant FIFO ties at
    # a server resolve identically tier on or off), and performing the
    # transaction's side effects -- lock acquire, directory updates,
    # commit -- at the twin's exact instants.  Real traffic that would
    # have queued *ahead* of a planned leg preempts the plan (the
    # window is cancelled and that leg replays through an ordinary
    # ``serve()``), so cycle streams are equal by construction, not by
    # an eligibility screen.  DESIGN.md §6 gives the decidability and
    # order-exactness arguments; tests/test_mem_fastpath.py checks the
    # race and ablation properties directly.

    def _fast_miss(self, node: int, la: int, stream: str, nm, mshr,
                   rdex: bool, upgrade: bool):
        """Attempt the forecast miss plan.  Returns the latency class
        name, or ``None`` -- before any yield -- when ineligible (the
        caller then falls back to the generator transaction)."""
        engine = self.engine
        t0 = engine.now
        home = self.placement.home(la, toucher=node)
        remote = home != node
        hm = self.nodes[home]
        count = nm.probe.count
        c_bus, c_nil, c_nir = self.c_bus, self.c_nil, self.c_nir
        c_net, c_mem = self.c_net, self.c_mem
        proc = engine._current
        if not isinstance(proc, Process) or not proc.alive:
            count("fallback.no_proc")
            return None
        # Zero-length legs would collapse distinct resumption points
        # onto their neighbours; decline (paper configs are positive).
        if c_bus <= 0 or c_nil <= 0 or c_mem <= 0 or c_nir <= 0 or c_net <= 0:
            count("fallback.config")
            return None
        lock = self.directory.lock(la)
        if lock.op_latency != 0.0:
            count("fallback.config")
            return None
        # Conservative classifier: known same-line work queued inside
        # the horizon (a pending invalidation, a prefetch conversion)
        # will contend on the directory lock mid-plan; take the
        # generator path now rather than plan-and-degrade.
        base = 2 * c_bus + c_nil + c_mem + (2 * (c_net + c_nir) if remote
                                            else 0.0)
        if la in engine.pending_lines(t0 + 2.0 * base):
            count("fallback.queued_conflict")
            return None
        plan = _MissPlan(engine, proc)
        # Request trip out: requester bus, NI egress + network when
        # remote, home directory controller.  All-or-nothing: if any
        # trip leg's timeline is undecidable (queued waiters, a unit
        # mid-handoff, jitter injection armed on an NI), decline before
        # yielding so the generator body runs instead.
        trip = [(nm.bus, c_bus)]
        if remote:
            trip += [(nm.ni_out, c_nir), (None, c_net)]
        trip.append((hm.dirctrl, c_nil))
        if not plan.plan_phase(trip):
            plan.unwind()
            count("fallback.server_queue")
            return None
        level = "remote" if remote else "local"
        acquired = False
        try:
            yield from plan.run_phase()
            # The line lock is taken at its true arrival instant (the
            # trip's end), so racing same-line transactions keep their
            # FIFO order; a contended lock is waited out for real.
            if not lock.is_free_now():
                count("forecast.lock_wait")
            yield from lock.acquire()
            acquired = True
            epoch0 = lock.epoch
            # The shape decision reads directory state *here*, under
            # the lock at the true decision instant -- the forecast
            # never guesses coherence state, only server timelines.
            entry = self.directory.entry(la)
            if entry.state == DirState.EXCLUSIVE and entry.owner != node:
                level = "remote3"
                owner = entry.owner
                onm = self.nodes[owner]
                ops = []
                if owner != home:
                    ops += [(None, c_net), (onm.ni_in, c_nir)]
                ops.append((onm.bus, c_bus))
                plan.stage(ops)
                yield from plan.run_phase()
                if rdex:
                    self._invalidate_node_line(owner, la)
                    ops = []
                    if owner != node:
                        ops += [(onm.ni_out, c_nir), (None, c_net)]
                    if node != home:
                        ops.append((nm.ni_in, c_nir))
                    ops.append((nm.bus, c_bus))
                    plan.stage(ops)
                    yield from plan.run_phase()
                else:
                    oline = onm.l2.peek(la)
                    if oline is not None:
                        oline.state = MESIState.SHARED
                        oline.dirty = False
                    ops = []
                    if owner != node:
                        ops += [(onm.ni_out, c_nir), (None, c_net)]
                    plan.stage(ops)
                    yield from plan.run_phase()
                    engine.process(hm.mem.serve(c_mem), name="3hop-wb",
                                   footprint=())
                    self.directory.demote_to_shared(la, extra_sharer=node)
                    epoch0 = lock.epoch
                    ops = []
                    if node != home:
                        ops.append((nm.ni_in, c_nir))
                    ops.append((nm.bus, c_bus))
                    plan.stage(ops)
                    yield from plan.run_phase()
            elif rdex:
                sharers = self.directory.sharers_excluding(la, node)
                acks = [self._spawn_inv(home, s, la) for s in sharers]
                if sharers:
                    count("inv_rounds")
                    count("invs_sent", len(sharers))
                if not upgrade:
                    plan.stage([(hm.mem, c_mem)])
                    yield from plan.run_phase()
                if acks:
                    yield engine.all_of(acks)
                ops = []
                if remote:
                    ops += [(None, c_net), (nm.ni_in, c_nir)]
                ops.append((nm.bus, c_bus))
                plan.stage(ops)
                yield from plan.run_phase()
            else:
                plan.stage([(hm.mem, c_mem)])
                yield from plan.run_phase()
                self.directory.add_sharer(la, node)  # at the mem-leg end
                epoch0 = lock.epoch
                ops = []
                if remote:
                    ops += [(None, c_net), (nm.ni_in, c_nir)]
                ops.append((nm.bus, c_bus))
                plan.stage(ops)
                yield from plan.run_phase()
            if lock.epoch != epoch0:
                # A lock-free actor (an eviction's drop_node) moved the
                # line mid-plan.  Every update the plan defers commutes
                # with drops (DESIGN §6), so the commit below is still
                # the generator's final state; record the staleness.
                count("forecast.epoch_moved")
        except BaseException:
            # Interrupted (slipstream recovery, or a kill): cancel the
            # unrendered windows; every mid-flight directory update was
            # already applied at its exact instant, so the remaining
            # unwind is just the lock, as in the generator's finally.
            plan.unwind()
            if acquired:
                lock.release()
            raise
        # ---- commit: replay the generator's completion order ------------
        if rdex:
            self.directory.set_exclusive(la, node)
        lock.release()
        line = nm.l2.insert(
            la, MESIState.EXCLUSIVE if rdex else MESIState.SHARED)
        if rdex:
            line.state = MESIState.EXCLUSIVE
            line.dirty = True
        self._set_record(line, stream, "rdex" if rdex else "read",
                         merged_late=mshr.late)
        if plan.degrade_reason is None:
            count("fast_misses")
            count("forecast.hit")
        else:
            count("forecast.abort")
            count("forecast.abort." + plan.degrade_reason)
        return level

    # ------------------------------------------------------- transactions

    def _request_trip_out(self, node: int, home: int):
        """Requester -> home: bus, NI egress, network, home controller."""
        yield from self.nodes[node].bus.serve(self.c_bus)
        if home != node:
            yield from self.nodes[node].ni_out.serve(self.c_nir)
            yield self.c_net
        yield from self.nodes[home].dirctrl.serve(self.c_nil)

    def _reply_trip_back(self, node: int, home: int):
        """Home -> requester: network, NI ingress, requester bus fill."""
        if home != node:
            yield self.c_net
            yield from self.nodes[node].ni_in.serve(self.c_nir)
        yield from self.nodes[node].bus.serve(self.c_bus)

    def _gets(self, node: int, la: int, stream: str):
        """Read miss transaction.  Returns the latency class name."""
        nm = self.nodes[node]
        evt = self.engine.event(name=f"gets:{la:#x}")
        mshr = _Mshr(evt, stream, "read", is_prefetch=False)
        nm.mshrs[la] = mshr
        try:
            level = None
            if self._fastmiss:
                level = yield from self._fast_miss(
                    node, la, stream, nm, mshr, rdex=False, upgrade=False)
            if level is None:
                level = yield from self._gets_body(node, la, stream, nm,
                                                   mshr)
            nm.probe.instant("coh.gets", self.engine.now,
                             {"addr": la, "level": level, "stream": stream})
            return level
        finally:
            # Runs on success AND on interruption (slipstream recovery can
            # abort an A-stream mid-miss): release waiters either way.
            if nm.mshrs.get(la) is mshr:
                del nm.mshrs[la]
            if not evt.fired:
                evt.fire()

    def _gets_body(self, node: int, la: int, stream: str, nm, mshr):
        home = self.placement.home(la, toucher=node)
        level = "local" if home == node else "remote"
        yield from self._request_trip_out(node, home)
        lock = self.directory.lock(la)
        yield from lock.acquire()
        try:
            entry = self.directory.entry(la)
            if entry.state == DirState.EXCLUSIVE and entry.owner != node:
                level = "remote3"
                owner = entry.owner
                # Intervention: home forwards to the owner...
                if owner != home:
                    yield self.c_net
                    yield from self.nodes[owner].ni_in.serve(self.c_nir)
                yield from self.nodes[owner].bus.serve(self.c_bus)
                oline = self.nodes[owner].l2.peek(la)
                if oline is not None:
                    oline.state = MESIState.SHARED
                    oline.dirty = False
                # ...owner replies with data straight to the requester and
                # writes back to home memory in the background.
                if owner != node:
                    yield from self.nodes[owner].ni_out.serve(self.c_nir)
                    yield self.c_net
                self.engine.process(
                    self.nodes[home].mem.serve(self.c_mem), name="3hop-wb",
                    footprint=())
                self.directory.demote_to_shared(la, extra_sharer=node)
                if node != home:
                    yield from self.nodes[node].ni_in.serve(self.c_nir)
                yield from self.nodes[node].bus.serve(self.c_bus)
            else:
                yield from self.nodes[home].mem.serve(self.c_mem)
                self.directory.add_sharer(la, node)
                yield from self._reply_trip_back(node, home)
        finally:
            lock.release()
        line = nm.l2.insert(la, MESIState.SHARED)
        self._set_record(line, stream, "read", merged_late=mshr.late)
        return level

    def _getx(self, node: int, la: int, stream: str, upgrade: bool):
        """Write-ownership transaction (GETX, or upgrade when the line is
        already resident SHARED)."""
        nm = self.nodes[node]
        evt = self.engine.event(name=f"getx:{la:#x}")
        mshr = _Mshr(evt, stream, "rdex", is_prefetch=False)
        nm.mshrs[la] = mshr
        try:
            level = None
            if self._fastmiss:
                level = yield from self._fast_miss(
                    node, la, stream, nm, mshr, rdex=True, upgrade=upgrade)
            if level is None:
                level = yield from self._getx_body(node, la, stream,
                                                   upgrade, nm, mshr)
            nm.probe.instant("coh.getx", self.engine.now,
                             {"addr": la, "level": level, "stream": stream})
            return level
        finally:
            if nm.mshrs.get(la) is mshr:
                del nm.mshrs[la]
            if not evt.fired:
                evt.fire()

    def _getx_body(self, node: int, la: int, stream: str, upgrade: bool,
                   nm, mshr):
        home = self.placement.home(la, toucher=node)
        level = "local" if home == node else "remote"
        yield from self._request_trip_out(node, home)
        lock = self.directory.lock(la)
        yield from lock.acquire()
        try:
            entry = self.directory.entry(la)
            if entry.state == DirState.EXCLUSIVE and entry.owner != node:
                level = "remote3"
                owner = entry.owner
                if owner != home:
                    yield self.c_net
                    yield from self.nodes[owner].ni_in.serve(self.c_nir)
                yield from self.nodes[owner].bus.serve(self.c_bus)
                self._invalidate_node_line(owner, la)
                if owner != node:
                    yield from self.nodes[owner].ni_out.serve(self.c_nir)
                    yield self.c_net
                if node != home:
                    yield from self.nodes[node].ni_in.serve(self.c_nir)
                yield from self.nodes[node].bus.serve(self.c_bus)
            else:
                # Invalidate all other sharers (concurrently) while memory
                # is accessed (skipped on an upgrade: permission only).
                sharers = self.directory.sharers_excluding(la, node)
                acks = [self._spawn_inv(home, s, la) for s in sharers]
                if sharers:
                    nm.probe.count("inv_rounds")
                    nm.probe.count("invs_sent", len(sharers))
                if not upgrade:
                    yield from self.nodes[home].mem.serve(self.c_mem)
                if acks:
                    yield self.engine.all_of(acks)
                yield from self._reply_trip_back(node, home)
            self.directory.set_exclusive(la, node)
        finally:
            lock.release()
        line = nm.l2.insert(la, MESIState.EXCLUSIVE)
        line.state = MESIState.EXCLUSIVE
        line.dirty = True
        self._set_record(line, stream, "rdex", merged_late=mshr.late)
        return level

    def _spawn_inv(self, home: int, sharer: int, la: int):
        ack = self.engine.event(name=f"invack:{la:#x}")

        def body():
            if sharer != home:
                yield self.c_net
                yield from self.nodes[sharer].ni_in.serve(self.c_nir)
            self._invalidate_node_line(sharer, la)
            if sharer != home:
                yield from self.nodes[sharer].ni_out.serve(self.c_nir)
                yield self.c_net
            self.nodes[sharer].probe.instant(
                "coh.inv", self.engine.now, {"addr": la})
            ack.fire()

        self.engine.process(body(), name=f"inv:n{sharer}", footprint=(la,))
        return ack

    def _invalidate_node_line(self, node: int, la: int) -> None:
        nm = self.nodes[node]
        line = nm.l2.invalidate(la)
        if line is not None:
            self._finalize_line(line)
        for l1 in nm.l1s:
            l1.invalidate(la)

    # ---------------------------------------------- slipstream-side hooks

    def bump_epoch(self, node: int) -> None:
        """Advance the node's reference epoch (called at barriers)."""
        self.nodes[node].epoch += 1

    def self_invalidate_stale(self, node: int) -> int:
        """Self-invalidate SHARED lines not referenced in the current
        epoch (the A-stream's view of the future says they will migrate).
        Returns the number of lines dropped."""
        nm = self.nodes[node]
        dropped = 0
        for ln in list(nm.l2.lines()):
            if (ln.state != MESIState.SHARED or ln.dirty
                    or ln.epoch >= nm.epoch):
                continue
            # Leave lines alone while a coherence transaction holds them
            # (their directory state is mid-flight).
            lock = self.directory._locks.get(ln.line_addr)
            if lock is not None and lock.count == 0:
                continue
            if ln.line_addr in nm.mshrs:
                continue
            self._invalidate_node_line(node, ln.line_addr)
            self.directory.drop_node(ln.line_addr, node)
            dropped += 1
        self.selfinv_drops += dropped
        if dropped:
            nm.probe.count("selfinv_drops", dropped)
            nm.probe.instant("selfinv", self.engine.now, {"dropped": dropped})
        return dropped

    # ------------------------------------------------------------ teardown

    def finalize(self) -> None:
        """Classify every still-resident fill at end of simulation."""
        for nm in self.nodes:
            for line in nm.l2.lines():
                self._finalize_line(line)

    def publish_cache_stats(self) -> None:
        """Fold the caches' local hit/miss tallies into each node's
        counter track (called once at collection time; the caches keep
        plain ints on their hot paths)."""
        for nm in self.nodes:
            count = nm.probe.count
            count("cache.l2.hits", nm.l2.hits)
            count("cache.l2.misses", nm.l2.misses)
            count("cache.l2.evictions", nm.l2.evictions)
            count("cache.l2.invalidations", nm.l2.invalidations)
            for l1 in nm.l1s:
                count("cache.l1.hits", l1.hits)
                count("cache.l1.misses", l1.misses)
                count("cache.l1.invalidations", l1.invalidations)

    def machine_stats(self) -> Counter:
        """Aggregate per-node counters machine-wide."""
        agg = Counter()
        for nm in self.nodes:
            agg.merge(nm.stats)
        return agg


class PerfectMemory:
    """Zero-latency memory model for functional (correctness) runs.

    Implements the same surface the processor uses so compiled programs
    run unchanged; every access costs one cycle and always 'hits'."""

    def __init__(self, engine: Engine, cfg: MachineConfig, sink=None):
        self.engine = engine
        self.cfg = cfg
        self.obs = make_sink(sink)
        self.allocator = SharedAllocator()
        self.accesses = 0

    @property
    def classes(self):
        """Empty classification collector (nothing misses here)."""
        return self.obs.classes

    def publish_cache_stats(self) -> None:
        """No caches to publish."""
        pass

    def l1_probe(self, node: int, cpu: int, addr: int) -> bool:
        """Always hits (flat memory)."""
        self.accesses += 1
        return True

    def load(self, node: int, cpu: int, addr: int, stream: str = "R"):
        """One-cycle load."""
        self.accesses += 1
        yield 1.0
        return AccessResult("l1", 1.0)

    def store(self, node: int, cpu: int, addr: int, stream: str = "R"):
        """One-cycle store."""
        self.accesses += 1
        yield 1.0
        return AccessResult("l1", 1.0)

    def prefetch_exclusive(self, node: int, addr: int, stream: str = "A") -> bool:
        """No-op (nothing to prefetch into)."""
        return False

    def bump_epoch(self, node: int) -> None:
        """No-op."""
        pass

    def self_invalidate_stale(self, node: int) -> int:
        """No-op; returns 0."""
        return 0

    def finalize(self) -> None:
        """No-op."""
        pass

    def machine_stats(self) -> Counter:
        """Access count only."""
        c = Counter()
        c.add("accesses", self.accesses)
        return c
