"""The coherent memory system: L1s, shared L2s, directory protocol.

This is the substitute for SimOS's NUMA memory model.  Latencies compose
from the paper's Table-1 parameters (see ``MachineConfig``): an
uncontended local L2 miss costs 170 ns and a remote clean miss 290 ns,
both validated by ``benchmarks/bench_table1_latencies.py``.  Contention
is modelled -- as in the paper -- at the network inputs and outputs
(``ni_in``/``ni_out``), at the home directory/memory controller
(``dirctrl``/``mem``), and on each CMP's local bus.

Only *shared* addresses flow through here.  Private data is CMP-local by
the paper's slipstream model ("control flow and address generation rely
mostly on private variables"), so the processor charges private accesses
a fixed L1 hit without simulating them.

Each L2 fill carries the slipstream classification record (which stream
fetched it, read vs read-exclusive) that feeds Figures 3 and 5; see
``classify.py`` for the Timely/Late/Only rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config.machine import MachineConfig
from ..faults import MAX_NET_JITTER
from ..hotpath import hotpath_enabled
from ..obs import Counter, line_outcome, make_sink
from ..obs.probe import NULL_PROBE, Probe
from ..sim import Engine
from ..sim.resources import Server
from .address import Placement, SharedAllocator, is_shared_addr
from .cache import Cache, CacheLine, MESIState
from .directory import Directory, DirState

__all__ = ["AccessResult", "NodeMemory", "CoherentMemorySystem",
           "PerfectMemory"]


@dataclass
class AccessResult:
    """Outcome of one shared-memory access, for the caller's accounting."""

    level: str          # "l1" | "l2" | "local" | "remote" | "remote3" | "merged"
    cycles: float       # total latency the caller experienced

    @property
    def was_miss(self) -> bool:
        """True when the access left the CMP."""
        return self.level not in ("l1", "l2")


class _Mshr:
    """One outstanding L2 miss; secondary requesters merge onto it."""

    __slots__ = ("event", "fetcher", "kind", "late", "is_prefetch")

    def __init__(self, event, fetcher: str, kind: str, is_prefetch: bool):
        self.event = event
        self.fetcher = fetcher
        self.kind = kind
        self.late = False          # a sibling-stream request merged in
        self.is_prefetch = is_prefetch


class NodeMemory:
    """Per-CMP memory-side hardware: L1s, shared L2, NI, controllers."""

    def __init__(self, engine: Engine, cfg: MachineConfig, node_id: int,
                 on_l2_evict, probe: Probe = NULL_PROBE,
                 stats: Optional[Counter] = None):
        self.node_id = node_id
        self.l1s: List[Cache] = [
            Cache(cfg.l1, name=f"n{node_id}.l1[{c}]")
            for c in range(cfg.cpus_per_cmp)]
        self.l2 = Cache(cfg.l2, name=f"n{node_id}.l2", on_evict=on_l2_evict)
        self.bus = Server(engine, f"n{node_id}.bus")
        self.ni_in = Server(engine, f"n{node_id}.ni_in")
        self.ni_out = Server(engine, f"n{node_id}.ni_out")
        self.dirctrl = Server(engine, f"n{node_id}.dirctrl")
        self.mem = Server(engine, f"n{node_id}.mem")
        self.mshrs: Dict[int, _Mshr] = {}
        self.outstanding_prefetches = 0
        self.epoch = 0
        self.probe = probe
        # The sink's counter bag for this track: reads through
        # ``nm.stats`` see everything ``nm.probe.count`` recorded.
        self.stats = stats if stats is not None else Counter()


class CoherentMemorySystem:
    """Directory-coherent DSM across ``cfg.n_cmps`` CMP nodes."""

    #: Prefetch-exclusive conversions are dropped beyond this many in
    #: flight per node -- the paper's "no resource contention" condition.
    MAX_PREFETCHES = 8

    def __init__(self, engine: Engine, cfg: MachineConfig, sink=None):
        self.engine = engine
        self.cfg = cfg
        self.obs = make_sink(sink)
        self.probe = self.obs.probe("mem")
        self.directory = Directory(engine, probe=self.probe)
        self.placement = Placement(cfg.placement, cfg.n_cmps, cfg.page_bytes)
        self.allocator = SharedAllocator()
        self.nodes: List[NodeMemory] = []
        for n in range(cfg.n_cmps):
            track = f"mem:n{n}"
            self.nodes.append(NodeMemory(
                engine, cfg, n,
                on_l2_evict=self._make_evict_handler(n),
                probe=self.obs.probe(track),
                stats=self.obs.counter(track)))
        # cycle-denominated latency components
        self.c_bus = cfg.cycles(cfg.bus_time_ns)
        self.c_nil = cfg.cycles(cfg.ni_local_dc_time_ns)
        self.c_nir = cfg.cycles(cfg.ni_remote_dc_time_ns)
        self.c_net = cfg.cycles(cfg.net_time_ns)
        self.c_mem = cfg.cycles(cfg.mem_time_ns)
        self.c_l1 = float(cfg.l1.hit_cycles)
        self.c_l2 = float(cfg.l2.hit_cycles)
        self.selfinv_drops = 0
        #: Addresses >= this are runtime-internal (locks, barrier words,
        #: job flags): they are timed like any shared line but excluded
        #: from the Figure-3/5 "shared data" classification.
        self.noclass_base: Optional[int] = None
        #: Uncontended-miss fast path (``REPRO_HOTPATH`` tier ``mem``),
        #: resolved once at construction like the engine's queue choice.
        self._fastmiss = hotpath_enabled("mem")

    @property
    def classes(self):
        """The run-wide Figure-3/5 classification collector (lives on
        the sink, shared with every other producer of the run)."""
        return self.obs.classes

    def arm_faults(self, plan) -> None:
        """Arm deterministic network-jitter injection on every node's
        network-interface servers.  Jitter only stretches serve times
        within protocol-legal bounds (the interconnect gives no timing
        guarantees), so it can perturb A-R skew but never correctness.
        """
        for nm in self.nodes:
            nm.ni_in.faults = plan
            nm.ni_out.faults = plan

    # ------------------------------------------------------------------ utils

    def line_addr(self, addr: int) -> int:
        """Align an address to its cache line."""
        return self.nodes[0].l2.line_addr(addr)

    def _make_evict_handler(self, node_id: int):
        def handler(line: CacheLine) -> None:
            self._finalize_line(line)
            self.directory.drop_node(line.line_addr, node_id)
            for l1 in self.nodes[node_id].l1s:
                l1.invalidate(line.line_addr)
            if line.dirty:
                # Background writeback: occupy the home memory controller.
                home = self.placement.home(line.line_addr)
                self.engine.process(
                    self._writeback(node_id, home), name="wb")
        return handler

    def _writeback(self, node: int, home: int):
        yield from self.nodes[node].bus.serve(self.c_bus)
        if home != node:
            yield from self.nodes[node].ni_out.serve(self.c_nir)
            yield self.c_net
        yield from self.nodes[home].mem.serve(self.c_mem)

    def _finalize_line(self, line: CacheLine) -> None:
        if line.fetcher is not None:
            self.probe.classify(line.fetcher, line.fill_kind,
                                line_outcome(line), self.engine.now)
            line.fetcher = None

    def _set_record(self, line: CacheLine, fetcher: str, kind: str,
                    merged_late: bool) -> None:
        """Attach a fresh classification record to a line (finalizing any
        previous one, e.g. on a shared->exclusive upgrade)."""
        self._finalize_line(line)
        if (self.noclass_base is not None
                and line.line_addr >= self.noclass_base):
            return
        line.fetcher = fetcher
        line.fill_kind = kind
        line.sibling_hit = False
        line.merged_late = merged_late
        line.fill_time = self.engine.now

    def _touch(self, node: int, line: CacheLine, stream: str) -> None:
        """Record a reference for classification + self-invalidation."""
        line.last_ref_time = self.engine.now
        line.epoch = self.nodes[node].epoch
        if line.fetcher is not None and stream != line.fetcher:
            line.sibling_hit = True

    # ------------------------------------------------------------ public API

    def l1_probe(self, node: int, cpu: int, addr: int) -> bool:
        """Synchronous L1 load probe (caller charges the 1-cycle hit)."""
        return self.nodes[node].l1s[cpu].lookup(addr) is not None

    def try_fast_load(self, node: int, cpu: int, addr: int,
                      stream: str):
        """Synchronous hit path: returns the hit latency in cycles, or
        None when the access misses the CMP (caller takes the timed
        transaction path).  Hits have no externally visible contention,
        so they can bypass the event engine entirely."""
        nm = self.nodes[node]
        if nm.l1s[cpu].lookup(addr) is not None:
            return self.c_l1
        if nm.l2.peek(addr) is None:
            return None
        line = nm.l2.lookup(addr)        # hit statistics + LRU touch
        self._touch(node, line, stream)
        nm.l1s[cpu].insert(self.line_addr(addr), MESIState.SHARED)
        nm.probe.count("l2_hits")
        nm.probe.count("loads")
        return self.c_l2

    def try_fast_store(self, node: int, cpu: int, addr: int,
                       stream: str):
        """Synchronous store-hit path: only an EXCLUSIVE L2 hit can
        complete without coherence actions.  Returns cycles or None."""
        nm = self.nodes[node]
        line = nm.l2.peek(addr)
        if line is None or line.state != MESIState.EXCLUSIVE:
            return None
        nm.l2.lookup(addr)
        self._touch(node, line, stream)
        line.dirty = True
        self._store_update_l1s(nm, cpu, self.line_addr(addr))
        nm.probe.count("l2_hits")
        nm.probe.count("stores")
        return self.c_l2

    def prefetch_would_fire(self, node: int, addr: int) -> bool:
        """Cheap precheck mirroring prefetch_exclusive's drop rules (with
        the same classification side effect on an already-owned line)."""
        nm = self.nodes[node]
        la = self.line_addr(addr)
        line = nm.l2.peek(la)
        if line is not None and line.state == MESIState.EXCLUSIVE:
            if line.fetcher is not None and line.fetcher != "A":
                line.sibling_hit = True
            return False
        if la in nm.mshrs:
            return False
        return nm.outstanding_prefetches < self.MAX_PREFETCHES

    def load(self, node: int, cpu: int, addr: int, stream: str = "R"):
        """Generator: an L1-missing shared load.  Returns AccessResult."""
        assert is_shared_addr(addr), hex(addr)
        nm = self.nodes[node]
        nm.probe.count("loads")
        la = self.line_addr(addr)
        start = self.engine.now
        while True:
            line = nm.l2.lookup(addr)
            if line is not None:
                yield self.c_l2
                self._touch(node, line, stream)
                nm.l1s[cpu].insert(la, MESIState.SHARED)
                nm.probe.count("l2_hits")
                return AccessResult("l2", self.engine.now - start)
            mshr = nm.mshrs.get(la)
            if mshr is not None:
                # Merge onto the outstanding miss.
                if stream != mshr.fetcher:
                    mshr.late = True
                nm.probe.count("mshr_merges")
                yield mshr.event
                continue  # re-probe: the fill is now resident (usually)
            # Primary miss: run the GETS transaction.
            level = yield from self._gets(node, la, stream)
            line = nm.l2.peek(la)
            if line is not None:
                self._touch(node, line, stream)
            nm.l1s[cpu].insert(la, MESIState.SHARED)
            nm.probe.count(level)
            return AccessResult(level, self.engine.now - start)

    def store(self, node: int, cpu: int, addr: int, stream: str = "R"):
        """Generator: a shared store (write-through L1, allocate in L2)."""
        assert is_shared_addr(addr), hex(addr)
        nm = self.nodes[node]
        nm.probe.count("stores")
        la = self.line_addr(addr)
        start = self.engine.now
        while True:
            line = nm.l2.lookup(addr)
            if line is not None and line.state == MESIState.EXCLUSIVE:
                yield self.c_l2
                self._touch(node, line, stream)
                line.dirty = True
                self._store_update_l1s(nm, cpu, la)
                nm.probe.count("l2_hits")
                return AccessResult("l2", self.engine.now - start)
            mshr = nm.mshrs.get(la)
            if mshr is not None:
                if stream != mshr.fetcher:
                    mshr.late = True
                nm.probe.count("mshr_merges")
                yield mshr.event
                continue
            upgrade = line is not None  # resident SHARED: permission only
            if line is not None:
                self._touch(node, line, stream)
            level = yield from self._getx(node, la, stream, upgrade=upgrade)
            self._store_update_l1s(nm, cpu, la)
            nm.probe.count(level)
            return AccessResult(level, self.engine.now - start)

    def _store_update_l1s(self, nm: NodeMemory, cpu: int, la: int) -> None:
        """Write-through: keep the writer's L1 copy, invalidate siblings'."""
        for i, l1 in enumerate(nm.l1s):
            if i != cpu:
                l1.invalidate(la)
        nm.l1s[cpu].insert(la, MESIState.SHARED)

    def prefetch_exclusive(self, node: int, addr: int, stream: str = "A") -> bool:
        """Non-binding prefetch-for-ownership: the A-stream's converted
        shared store.  Fire-and-forget; returns False if dropped (line
        already owned, already in flight, or MSHRs saturated)."""
        assert is_shared_addr(addr), hex(addr)
        nm = self.nodes[node]
        la = self.line_addr(addr)
        line = nm.l2.peek(la)
        if line is not None and line.state == MESIState.EXCLUSIVE:
            if line.fetcher is not None and stream != line.fetcher:
                line.sibling_hit = True
            return False
        if la in nm.mshrs:
            return False
        if nm.outstanding_prefetches >= self.MAX_PREFETCHES:
            nm.probe.count("prefetch_dropped")
            return False
        nm.outstanding_prefetches += 1
        nm.probe.count("prefetch_ex")
        nm.probe.instant("coh.pfx", self.engine.now, {"addr": la})

        def body():
            try:
                yield from self._getx(node, la, stream,
                                      upgrade=nm.l2.peek(la) is not None)
            finally:
                nm.outstanding_prefetches -= 1

        self.engine.process(body(), name=f"pfx:n{node}")
        return True

    # ---------------------------------------------- uncontended fast path
    #
    # When the engine is quiescent until after the miss would complete,
    # the whole GETS/GETX event sequence is fully determined at issue
    # time: plan the occupancy windows arithmetically, reserve them on
    # the path's servers, sleep once for the end-to-end latency, and
    # replay the state updates at completion in exactly the order the
    # generator transaction performs them.  DESIGN.md §6 gives the
    # cycle-exactness argument; tests/test_mem_fastpath.py checks the
    # race and ablation properties directly.

    def _fast_miss(self, node: int, la: int, stream: str, nm, mshr,
                   rdex: bool, upgrade: bool):
        """Attempt the synchronous miss plan.  Returns the latency class
        name, or ``None`` -- before any yield -- when ineligible (the
        caller then falls back to the generator transaction)."""
        engine = self.engine
        t0 = engine.now
        home = self.placement.home(la, toucher=node)
        remote = home != node
        hm = self.nodes[home]
        c_bus, c_nil, c_mem = self.c_bus, self.c_nil, self.c_mem
        need_mem = not upgrade
        # Leg durations must all be positive so an abort can only be
        # delivered at the single resumption point (the final bus leg),
        # where the rollback below matches the generator's unwind.
        if c_bus <= 0 or c_nil <= 0 or (need_mem and c_mem <= 0):
            return None
        if remote and (self.c_nir <= 0 or self.c_net <= 0):
            return None
        # Every server on the path must be idle, unqueued, unreserved.
        if not (nm.bus.idle_at(t0) and hm.dirctrl.idle_at(t0)
                and (not need_mem or hm.mem.idle_at(t0))):
            return None
        if remote and not (nm.ni_out.idle_at(t0) and nm.ni_in.idle_at(t0)):
            return None
        lock = self.directory.lock(la)
        if lock.count <= 0 or lock._waiters or lock.op_latency != 0.0:
            return None
        entry = self.directory.entry(la)
        if entry.state == DirState.EXCLUSIVE and entry.owner != node:
            return None                      # 3-hop intervention path
        if rdex and self.directory.sharers_excluding(la, node):
            return None                      # invalidation round needed
        base = 2 * c_bus + c_nil + (c_mem if need_mem else 0.0)
        if remote:
            base += 2 * (self.c_net + self.c_nir)
        # Quiescence: nothing else may run strictly before completion
        # (entries at exactly t0+L are fine -- they cannot reach any
        # mid-flight state the plan defers, see DESIGN §6).  Jitter
        # draws are irreversible (each consumes a schedule index), so
        # with injection armed the horizon is padded by the largest
        # jitter the two NI legs could draw *before* drawing.
        jittery = remote and (nm.ni_out.faults is not None
                              or nm.ni_in.faults is not None)
        horizon = base + 2 * MAX_NET_JITTER if jittery else base
        nt = engine.next_time()
        if nt is not None and nt < t0 + horizon:
            return None
        # ---- committed: draw jitter, reserve the windows ----------------
        j_out = j_in = 0.0
        if remote:
            plan = nm.ni_out.faults
            if plan is not None:
                extra = plan.fire("net_jitter", nm.ni_out.name)
                if extra is not None:
                    j_out = extra
            plan = nm.ni_in.faults
            if plan is not None:
                extra = plan.fire("net_jitter", nm.ni_in.name)
                if extra is not None:
                    j_in = extra
        lock.try_acquire()
        bus = nm.bus
        t = t0
        bus.reserve(t, c_bus)
        t += c_bus
        if remote:
            d = self.c_nir + j_out
            nm.ni_out.reserve(t, d)
            t += d + self.c_net
        hm.dirctrl.reserve(t, c_nil)
        t += c_nil
        if need_mem:
            hm.mem.reserve(t, c_mem)
            t += c_mem
        if remote:
            t += self.c_net
            d = self.c_nir + j_in
            nm.ni_in.reserve(t, d)
            t += d
        # Final fill leg: physically hold a bus unit, so a racer
        # arriving at the completion instant queues behind it exactly
        # as it queues behind the generator's still-held fill leg.
        bus.total_requests += 1
        bus._busy += 1
        end = t + c_bus
        if end > bus.busy_until:
            bus.busy_until = end
        level = "remote" if remote else "local"
        try:
            yield end - t0
        except BaseException:
            # Aborted (slipstream recovery interrupt, or a kill) -- by
            # quiescence, deliverable only at the completion instant.
            # Replay what the generator had already committed mid-
            # flight, drop what it had not, and unwind in its order:
            # fill-leg release first, then the line lock.
            if not rdex:
                self.directory.add_sharer(la, node)  # done at mem-leg end
            bus._release()           # fill leg never adds total_service
            lock.release()
            raise
        # ---- completion: replay the generator's commit order ------------
        bus.total_service += c_bus
        bus._release()
        if rdex:
            self.directory.set_exclusive(la, node)
        else:
            self.directory.add_sharer(la, node)
        lock.release()
        line = nm.l2.insert(
            la, MESIState.EXCLUSIVE if rdex else MESIState.SHARED)
        if rdex:
            line.state = MESIState.EXCLUSIVE
            line.dirty = True
        self._set_record(line, stream, "rdex" if rdex else "read",
                         merged_late=mshr.late)
        nm.probe.count("fast_misses")
        return level

    # ------------------------------------------------------- transactions

    def _request_trip_out(self, node: int, home: int):
        """Requester -> home: bus, NI egress, network, home controller."""
        yield from self.nodes[node].bus.serve(self.c_bus)
        if home != node:
            yield from self.nodes[node].ni_out.serve(self.c_nir)
            yield self.c_net
        yield from self.nodes[home].dirctrl.serve(self.c_nil)

    def _reply_trip_back(self, node: int, home: int):
        """Home -> requester: network, NI ingress, requester bus fill."""
        if home != node:
            yield self.c_net
            yield from self.nodes[node].ni_in.serve(self.c_nir)
        yield from self.nodes[node].bus.serve(self.c_bus)

    def _gets(self, node: int, la: int, stream: str):
        """Read miss transaction.  Returns the latency class name."""
        nm = self.nodes[node]
        evt = self.engine.event(name=f"gets:{la:#x}")
        mshr = _Mshr(evt, stream, "read", is_prefetch=False)
        nm.mshrs[la] = mshr
        try:
            level = None
            if self._fastmiss:
                level = yield from self._fast_miss(
                    node, la, stream, nm, mshr, rdex=False, upgrade=False)
            if level is None:
                level = yield from self._gets_body(node, la, stream, nm,
                                                   mshr)
            nm.probe.instant("coh.gets", self.engine.now,
                             {"addr": la, "level": level, "stream": stream})
            return level
        finally:
            # Runs on success AND on interruption (slipstream recovery can
            # abort an A-stream mid-miss): release waiters either way.
            if nm.mshrs.get(la) is mshr:
                del nm.mshrs[la]
            if not evt.fired:
                evt.fire()

    def _gets_body(self, node: int, la: int, stream: str, nm, mshr):
        home = self.placement.home(la, toucher=node)
        level = "local" if home == node else "remote"
        yield from self._request_trip_out(node, home)
        lock = self.directory.lock(la)
        yield from lock.acquire()
        try:
            entry = self.directory.entry(la)
            if entry.state == DirState.EXCLUSIVE and entry.owner != node:
                level = "remote3"
                owner = entry.owner
                # Intervention: home forwards to the owner...
                if owner != home:
                    yield self.c_net
                    yield from self.nodes[owner].ni_in.serve(self.c_nir)
                yield from self.nodes[owner].bus.serve(self.c_bus)
                oline = self.nodes[owner].l2.peek(la)
                if oline is not None:
                    oline.state = MESIState.SHARED
                    oline.dirty = False
                # ...owner replies with data straight to the requester and
                # writes back to home memory in the background.
                if owner != node:
                    yield from self.nodes[owner].ni_out.serve(self.c_nir)
                    yield self.c_net
                self.engine.process(
                    self.nodes[home].mem.serve(self.c_mem), name="3hop-wb")
                self.directory.demote_to_shared(la, extra_sharer=node)
                if node != home:
                    yield from self.nodes[node].ni_in.serve(self.c_nir)
                yield from self.nodes[node].bus.serve(self.c_bus)
            else:
                yield from self.nodes[home].mem.serve(self.c_mem)
                self.directory.add_sharer(la, node)
                yield from self._reply_trip_back(node, home)
        finally:
            lock.release()
        line = nm.l2.insert(la, MESIState.SHARED)
        self._set_record(line, stream, "read", merged_late=mshr.late)
        return level

    def _getx(self, node: int, la: int, stream: str, upgrade: bool):
        """Write-ownership transaction (GETX, or upgrade when the line is
        already resident SHARED)."""
        nm = self.nodes[node]
        evt = self.engine.event(name=f"getx:{la:#x}")
        mshr = _Mshr(evt, stream, "rdex", is_prefetch=False)
        nm.mshrs[la] = mshr
        try:
            level = None
            if self._fastmiss:
                level = yield from self._fast_miss(
                    node, la, stream, nm, mshr, rdex=True, upgrade=upgrade)
            if level is None:
                level = yield from self._getx_body(node, la, stream,
                                                   upgrade, nm, mshr)
            nm.probe.instant("coh.getx", self.engine.now,
                             {"addr": la, "level": level, "stream": stream})
            return level
        finally:
            if nm.mshrs.get(la) is mshr:
                del nm.mshrs[la]
            if not evt.fired:
                evt.fire()

    def _getx_body(self, node: int, la: int, stream: str, upgrade: bool,
                   nm, mshr):
        home = self.placement.home(la, toucher=node)
        level = "local" if home == node else "remote"
        yield from self._request_trip_out(node, home)
        lock = self.directory.lock(la)
        yield from lock.acquire()
        try:
            entry = self.directory.entry(la)
            if entry.state == DirState.EXCLUSIVE and entry.owner != node:
                level = "remote3"
                owner = entry.owner
                if owner != home:
                    yield self.c_net
                    yield from self.nodes[owner].ni_in.serve(self.c_nir)
                yield from self.nodes[owner].bus.serve(self.c_bus)
                self._invalidate_node_line(owner, la)
                if owner != node:
                    yield from self.nodes[owner].ni_out.serve(self.c_nir)
                    yield self.c_net
                if node != home:
                    yield from self.nodes[node].ni_in.serve(self.c_nir)
                yield from self.nodes[node].bus.serve(self.c_bus)
            else:
                # Invalidate all other sharers (concurrently) while memory
                # is accessed (skipped on an upgrade: permission only).
                sharers = self.directory.sharers_excluding(la, node)
                acks = [self._spawn_inv(home, s, la) for s in sharers]
                if sharers:
                    nm.probe.count("inv_rounds")
                    nm.probe.count("invs_sent", len(sharers))
                if not upgrade:
                    yield from self.nodes[home].mem.serve(self.c_mem)
                if acks:
                    yield self.engine.all_of(acks)
                yield from self._reply_trip_back(node, home)
            self.directory.set_exclusive(la, node)
        finally:
            lock.release()
        line = nm.l2.insert(la, MESIState.EXCLUSIVE)
        line.state = MESIState.EXCLUSIVE
        line.dirty = True
        self._set_record(line, stream, "rdex", merged_late=mshr.late)
        return level

    def _spawn_inv(self, home: int, sharer: int, la: int):
        ack = self.engine.event(name=f"invack:{la:#x}")

        def body():
            if sharer != home:
                yield self.c_net
                yield from self.nodes[sharer].ni_in.serve(self.c_nir)
            self._invalidate_node_line(sharer, la)
            if sharer != home:
                yield from self.nodes[sharer].ni_out.serve(self.c_nir)
                yield self.c_net
            self.nodes[sharer].probe.instant(
                "coh.inv", self.engine.now, {"addr": la})
            ack.fire()

        self.engine.process(body(), name=f"inv:n{sharer}")
        return ack

    def _invalidate_node_line(self, node: int, la: int) -> None:
        nm = self.nodes[node]
        line = nm.l2.invalidate(la)
        if line is not None:
            self._finalize_line(line)
        for l1 in nm.l1s:
            l1.invalidate(la)

    # ---------------------------------------------- slipstream-side hooks

    def bump_epoch(self, node: int) -> None:
        """Advance the node's reference epoch (called at barriers)."""
        self.nodes[node].epoch += 1

    def self_invalidate_stale(self, node: int) -> int:
        """Self-invalidate SHARED lines not referenced in the current
        epoch (the A-stream's view of the future says they will migrate).
        Returns the number of lines dropped."""
        nm = self.nodes[node]
        dropped = 0
        for ln in list(nm.l2.lines()):
            if (ln.state != MESIState.SHARED or ln.dirty
                    or ln.epoch >= nm.epoch):
                continue
            # Leave lines alone while a coherence transaction holds them
            # (their directory state is mid-flight).
            lock = self.directory._locks.get(ln.line_addr)
            if lock is not None and lock.count == 0:
                continue
            if ln.line_addr in nm.mshrs:
                continue
            self._invalidate_node_line(node, ln.line_addr)
            self.directory.drop_node(ln.line_addr, node)
            dropped += 1
        self.selfinv_drops += dropped
        if dropped:
            nm.probe.count("selfinv_drops", dropped)
            nm.probe.instant("selfinv", self.engine.now, {"dropped": dropped})
        return dropped

    # ------------------------------------------------------------ teardown

    def finalize(self) -> None:
        """Classify every still-resident fill at end of simulation."""
        for nm in self.nodes:
            for line in nm.l2.lines():
                self._finalize_line(line)

    def publish_cache_stats(self) -> None:
        """Fold the caches' local hit/miss tallies into each node's
        counter track (called once at collection time; the caches keep
        plain ints on their hot paths)."""
        for nm in self.nodes:
            count = nm.probe.count
            count("cache.l2.hits", nm.l2.hits)
            count("cache.l2.misses", nm.l2.misses)
            count("cache.l2.evictions", nm.l2.evictions)
            count("cache.l2.invalidations", nm.l2.invalidations)
            for l1 in nm.l1s:
                count("cache.l1.hits", l1.hits)
                count("cache.l1.misses", l1.misses)
                count("cache.l1.invalidations", l1.invalidations)

    def machine_stats(self) -> Counter:
        """Aggregate per-node counters machine-wide."""
        agg = Counter()
        for nm in self.nodes:
            agg.merge(nm.stats)
        return agg


class PerfectMemory:
    """Zero-latency memory model for functional (correctness) runs.

    Implements the same surface the processor uses so compiled programs
    run unchanged; every access costs one cycle and always 'hits'."""

    def __init__(self, engine: Engine, cfg: MachineConfig, sink=None):
        self.engine = engine
        self.cfg = cfg
        self.obs = make_sink(sink)
        self.allocator = SharedAllocator()
        self.accesses = 0

    @property
    def classes(self):
        """Empty classification collector (nothing misses here)."""
        return self.obs.classes

    def publish_cache_stats(self) -> None:
        """No caches to publish."""
        pass

    def l1_probe(self, node: int, cpu: int, addr: int) -> bool:
        """Always hits (flat memory)."""
        self.accesses += 1
        return True

    def load(self, node: int, cpu: int, addr: int, stream: str = "R"):
        """One-cycle load."""
        self.accesses += 1
        yield 1.0
        return AccessResult("l1", 1.0)

    def store(self, node: int, cpu: int, addr: int, stream: str = "R"):
        """One-cycle store."""
        self.accesses += 1
        yield 1.0
        return AccessResult("l1", 1.0)

    def prefetch_exclusive(self, node: int, addr: int, stream: str = "A") -> bool:
        """No-op (nothing to prefetch into)."""
        return False

    def bump_epoch(self, node: int) -> None:
        """No-op."""
        pass

    def self_invalidate_stale(self, node: int) -> int:
        """No-op; returns 0."""
        return 0

    def finalize(self) -> None:
        """No-op."""
        pass

    def machine_stats(self) -> Counter:
        """Access count only."""
        c = Counter()
        c.add("accesses", self.accesses)
        return c
