"""Shared-data request classification (paper Figures 3 and 5).

Every L2 fill of a shared line is eventually assigned exactly one label:

* ``A-Timely`` -- fetched by the A-stream, later referenced by the
  R-stream after the fill completed;
* ``A-Late``   -- the R-stream referenced the line while the A-stream's
  miss was still in flight (MSHR merge);
* ``A-Only``   -- evicted or invalidated without an R-stream reference
  (the harmful, traffic-increasing category);

and symmetrically ``R-Timely`` / ``R-Late`` / ``R-Only`` for fills
initiated by the R-stream.  Reads and read-exclusives (stores /
prefetch-exclusives) are classified separately, as in the paper.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["ClassStats", "OUTCOMES", "FETCHERS", "KINDS"]

FETCHERS = ("A", "R")
KINDS = ("read", "rdex")
OUTCOMES = ("timely", "late", "only")


class ClassStats:
    """Counts of classified fills, keyed by (fetcher, kind, outcome)."""

    def __init__(self):
        self._c: Dict[Tuple[str, str, str], int] = {}

    def record(self, fetcher: str, kind: str, outcome: str, n: int = 1) -> None:
        """Count n fills of (fetcher, kind, outcome)."""
        if fetcher not in FETCHERS or kind not in KINDS or outcome not in OUTCOMES:
            raise ValueError(f"bad classification {(fetcher, kind, outcome)}")
        key = (fetcher, kind, outcome)
        self._c[key] = self._c.get(key, 0) + n

    def classify_line(self, line) -> None:
        """Finalize a CacheLine's fill at eviction/invalidation/teardown."""
        if line.fetcher is None:
            return
        if line.merged_late:
            outcome = "late"
        elif line.sibling_hit:
            outcome = "timely"
        else:
            outcome = "only"
        self.record(line.fetcher, line.fill_kind, outcome)

    # -- queries ---------------------------------------------------------------

    def get(self, fetcher: str, kind: str, outcome: str) -> int:
        """Count for one (fetcher, kind, outcome) cell."""
        return self._c.get((fetcher, kind, outcome), 0)

    def total(self, kind: str) -> int:
        """All fills of one kind (read or rdex)."""
        return sum(v for (f, k, o), v in self._c.items() if k == kind)

    def fraction(self, fetcher: str, kind: str, outcome: str) -> float:
        """Share of all ``kind`` fills, e.g. the paper's '26% A-timely
        read requests'."""
        tot = self.total(kind)
        return self.get(fetcher, kind, outcome) / tot if tot else 0.0

    def breakdown(self, kind: str) -> Dict[str, float]:
        """{'A-Timely': 0.26, ...} over one request kind."""
        tot = self.total(kind)
        out = {}
        for f in FETCHERS:
            for o in OUTCOMES:
                label = f"{f}-{o.capitalize()}"
                out[label] = (self.get(f, kind, o) / tot) if tot else 0.0
        return out

    def coverage(self, kind: str) -> float:
        """Fraction of fills provided by the A-stream and used by R
        (timely + late) -- the paper's 'read exclusive coverage'."""
        tot = self.total(kind)
        if not tot:
            return 0.0
        return (self.get("A", kind, "timely") + self.get("A", kind, "late")) / tot

    def merge(self, other: "ClassStats") -> None:
        """Accumulate another collector's counts."""
        for k, v in other._c.items():
            self._c[k] = self._c.get(k, 0) + v

    def as_dict(self) -> Dict[str, int]:
        """Flat {'A-read-timely': n, ...} view."""
        return {f"{f}-{k}-{o}": v for (f, k, o), v in sorted(self._c.items())}
