"""Compatibility shim: request classification lives in ``repro.obs``.

``ClassStats`` (the paper's Figure 3/5 Timely/Late/Only taxonomy) and
its label constants moved to :mod:`repro.obs.aggregate` when all
instrumentation was unified under the observability layer.  This module
keeps the historical import path working; new code should import from
:mod:`repro.obs`.
"""

from ..obs.aggregate import ClassStats, FETCHERS, KINDS, OUTCOMES, line_outcome

__all__ = ["ClassStats", "OUTCOMES", "FETCHERS", "KINDS", "line_outcome"]
