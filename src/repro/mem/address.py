"""Virtual address spaces and data placement.

The paper requires that "the virtual shared space must be either
contiguous or non-contiguous but not interleaved with private space, to
ease delineation of what is shared and what is not shared", and notes
that the Omni UNIX-process thread model allocates shared virtual
addresses contiguously.  We model exactly that: one contiguous shared
segment served by a bump allocator, and disjoint per-thread private
segments above it.

Home-node placement maps shared addresses to the CMP node holding the
directory entry and memory for that line ("each processing node consists
of a dual-processor CMP and a portion of the globally-shared memory").
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["SHARED_BASE", "PRIVATE_BASE", "PRIVATE_STRIDE",
           "SharedAllocator", "Placement", "is_shared_addr"]

#: Base of the contiguous shared segment.
SHARED_BASE = 0x1000_0000
#: Shared segment capacity (256 MB is far beyond any mini-NPB working set).
SHARED_LIMIT = 0x2000_0000
#: Base of the first private segment.
PRIVATE_BASE = 0x7000_0000
#: Size reserved per thread's private segment.
PRIVATE_STRIDE = 0x0100_0000


def is_shared_addr(addr: int) -> bool:
    """The cheap shared/private test the runtime relies on."""
    return SHARED_BASE <= addr < SHARED_LIMIT


def private_base(thread_id: int) -> int:
    """Base of thread ``thread_id``'s private segment."""
    return PRIVATE_BASE + thread_id * PRIVATE_STRIDE


class SharedAllocator:
    """Bump allocator over the contiguous shared segment."""

    def __init__(self, base: int = SHARED_BASE, limit: int = SHARED_LIMIT):
        self.base = base
        self.limit = limit
        self._next = base
        self.allocations: Dict[int, int] = {}  # base -> size

    def alloc(self, nbytes: int, align: int = 128) -> int:
        """Allocate ``nbytes`` aligned to ``align`` (line-aligned by
        default so distinct arrays never false-share a line)."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        if align & (align - 1):
            raise ValueError("alignment must be a power of two")
        addr = (self._next + align - 1) & ~(align - 1)
        if addr + nbytes > self.limit:
            raise MemoryError(
                f"shared segment exhausted ({addr + nbytes - self.base} bytes)")
        self._next = addr + nbytes
        self.allocations[addr] = nbytes
        return addr

    @property
    def used(self) -> int:
        """Bytes allocated so far."""
        return self._next - self.base

    def reset(self) -> None:
        """Forget all allocations (fresh machine load)."""
        self._next = self.base
        self.allocations.clear()


class Placement:
    """Maps a shared address to its home node.

    * ``round_robin``: pages are striped across nodes -- the classic
      IRIX/Origin default for shared segments.
    * ``first_touch``: a page's home is the node that touches it first
      (misses before any touch are resolved to round-robin).
    * ``block``: the shared segment is divided into ``n_nodes`` equal
      contiguous regions.
    """

    def __init__(self, policy: str, n_nodes: int, page_bytes: int = 4096,
                 base: int = SHARED_BASE, limit: int = SHARED_LIMIT):
        if policy not in ("round_robin", "first_touch", "block"):
            raise ValueError(f"unknown placement policy {policy!r}")
        self.policy = policy
        self.n_nodes = n_nodes
        self.page_bytes = page_bytes
        self.base = base
        self.limit = limit
        self._first_touch: Dict[int, int] = {}

    def _page(self, addr: int) -> int:
        return (addr - self.base) // self.page_bytes

    def home(self, addr: int, toucher: Optional[int] = None) -> int:
        """Home node of ``addr``.  ``toucher`` (a node id) establishes
        first-touch placement when the policy asks for it."""
        page = self._page(addr)
        if self.policy == "round_robin":
            return page % self.n_nodes
        if self.policy == "block":
            span = (self.limit - self.base) // self.page_bytes
            return min(page * self.n_nodes // span, self.n_nodes - 1)
        # first_touch
        node = self._first_touch.get(page)
        if node is None:
            node = toucher if toucher is not None else page % self.n_nodes
            self._first_touch[page] = node
        return node

    def touched_pages(self) -> int:
        """Pages with an established first-touch home."""
        return len(self._first_touch)
