"""Memory-system substrate: address spaces, caches, directory coherence."""

from .address import (PRIVATE_BASE, PRIVATE_STRIDE, SHARED_BASE,
                      Placement, SharedAllocator, is_shared_addr,
                      private_base)
from .cache import Cache, CacheLine, MESIState
from .directory import DirEntry, Directory, DirState
from .memsys import (AccessResult, CoherentMemorySystem, NodeMemory,
                     PerfectMemory)

__all__ = [
    "PRIVATE_BASE", "PRIVATE_STRIDE", "SHARED_BASE",
    "Placement", "SharedAllocator", "is_shared_addr", "private_base",
    "Cache", "CacheLine", "MESIState",
    "DirEntry", "Directory", "DirState",
    "AccessResult", "CoherentMemorySystem", "NodeMemory", "PerfectMemory",
]
