"""Omni-style OpenMP runtime over the simulated machine."""

from .env import RuntimeEnv, parse_slipstream
from .machine import (MODES, DeadlockError, Machine, RunResult,
                      SimDeadlockError, run_program)
from .shell import ThreadShell
from .team import Job, LoopLocal, LoopShared, Team
from .words import RTWord, SenseBarrier, SpinLock

__all__ = ["RuntimeEnv", "parse_slipstream", "MODES", "Machine",
           "RunResult", "run_program", "SimDeadlockError", "DeadlockError",
           "ThreadShell", "Job", "LoopLocal", "LoopShared", "Team",
           "RTWord", "SenseBarrier", "SpinLock"]
