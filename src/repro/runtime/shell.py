"""Thread shells: the simulated execution context of each stream.

A shell owns one simulated CPU and drives a bytecode VM over it,
servicing the VM's yield points against the machine:

* shared loads/stores go through the coherence protocol (an A-stream
  *suppresses* shared stores and converts them to prefetch-exclusives
  when it is in the same session as its R-stream -- §2, §5.1);
* runtime calls implement the Omni library, with the role-dependent
  behaviour of §3.1 (A-streams skip barriers via tokens, skip single/
  critical/flush/I-O, execute master/atomic/reductions-as-user-code);
* dynamic scheduling decisions flow R -> A through the pair channel's
  syscall semaphore and mailbox (§3.2.2);
* divergence is detected by the R-stream at barriers and repaired by
  re-forking the A-stream from the R-stream's architectural state
  (VM snapshot/restore), the paper's recovery routine.

Execution-time accounting follows the paper's Figure 2/4 categories:
busy, memory, lock, barrier, scheduling, jobwait (plus a_wait and io).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..interp.events import Done, IoOut, MemRead, MemWrite, RtCall, TimeSlice
from ..interp.interpreter import MISS, VM, VMError
from ..sim import Interrupt
from ..slipstream.control import SlipControl
from .team import Job, LoopLocal
from .words import (JOBWAIT_BACKOFF_CAP, word_load, word_rmw, word_store,
                    spin_until)

__all__ = ["ThreadShell"]


def _join_site(fidx: int) -> int:
    """Synthetic barrier-site id for a region's end-of-region join."""
    return -(fidx + 1)


class ThreadShell:
    """One stream (R or A) bound to one simulated CPU."""

    def __init__(self, machine, team, tid: int, role: str, node: int,
                 cpu: int):
        self.machine = machine
        self.team = team
        self.tid = tid                  # task id (A shares its R's id)
        self.role = role                # "R" | "A"
        self.node = node
        self.cpu = cpu
        self.name = f"{role}{tid}@n{node}c{cpu}"
        self.probe = machine.obs.probe(self.name, start=machine.engine.now)
        # Cached profile recorder (None unless a ProfileSink is live):
        # the memory fast paths test this once per access.
        self._prof = self.probe.prof
        self.vm: Optional[VM] = None
        self.channel = None             # PairChannel, slipstream mode only
        self.pair: Optional["ThreadShell"] = None
        self.control = SlipControl(machine.env, machine.slip_resources,
                                   probe=self.probe)
        self.barrier_sense = 0
        self.site_seq: Dict[int, int] = {}
        self.active_loops: Dict[int, LoopLocal] = {}
        self.current_job: Optional[Job] = None
        self.in_region = False
        self.current_gen = 0
        self.proc = None                # sim.Process, set by the machine
        self._restored = False
        self.finished = False
        #: FaultPlan (A-streams only, armed by the machine); every hook
        #: is a single is-None test so disarmed runs are bit-identical.
        self._faults = None
        # Synchronous-hit accounting: busy cycles and cache-hit stall
        # cycles accumulated outside the event engine, flushed as one
        # lump before the next real event.  fast_mem_cycles is moved
        # from "busy" to "memory" when the run's breakdown is collected.
        self._debt = 0.0
        self.fast_mem_cycles = 0.0

    # ------------------------------------------------------------ accounting

    def _push(self, cat: str) -> None:
        self.probe.push(cat, self.machine.engine.now)

    def _pop(self) -> None:
        self.probe.pop(self.machine.engine.now)

    def arm_faults(self, plan) -> None:
        """Arm the seeded fault plan on this (A-stream) shell."""
        self._faults = plan

    def _bind_vm(self, vm: VM) -> VM:
        """Install a (new) VM, attaching the line profiler when live.
        Shells with an armed fault plan run their VMs interpreted: the
        injection hooks (corrupt, mid-run restore) need architectural
        state live in Frame objects at every instruction, and the
        generated-code tier only syncs it at yield points."""
        self.vm = vm
        if self._faults is not None:
            vm.disable_compiled()
        if self._prof is not None:
            self._prof.bind_vm(vm)
        return vm

    # ------------------------------------------------------- effective state

    @property
    def is_master(self) -> bool:
        """True for the task-0 pair."""
        return self.tid == 0

    @property
    def team_size(self) -> int:
        """Width of the active region's team (1 outside regions)."""
        if self.in_region and self.current_job is not None:
            return self.current_job.team_size
        return 1

    def _setting(self) -> Tuple[str, int]:
        """The slipstream (type, tokens) governing right now."""
        if self.in_region and self.current_job is not None:
            return self.current_job.slip_setting
        return self.control.effective

    @property
    def slipping(self) -> bool:
        """Is the A-R protocol engaged for this shell right now?"""
        return (self.channel is not None
                and self._setting()[0] != "NONE")

    @property
    def dormant(self) -> bool:
        """A-stream with slipstream disabled (type NONE): executes but
        touches no shared memory and takes no part in token exchange."""
        return self.role == "A" and self._setting()[0] == "NONE"

    # ------------------------------------------------------------ memory ops

    def timed_load(self, addr: int):
        """Generator: timed shared load at this shell's CPU."""
        ms = self.machine.memsys
        if ms.l1_probe(self.node, self.cpu, addr):
            yield float(self.machine.cfg.l1.hit_cycles)
            return
        top = self.probe.depth == 0
        if top:
            self._push("memory")
        try:
            res = yield from ms.load(self.node, self.cpu, addr, self.role)
            if top and res is not None:
                self.probe.mem_level(res.level)
        finally:
            if top:
                self._pop()

    def timed_store(self, addr: int):
        """Generator: timed shared store at this shell's CPU."""
        top = self.probe.depth == 0
        if top:
            self._push("memory")
        try:
            res = yield from self.machine.memsys.store(self.node, self.cpu,
                                                       addr, self.role)
            if top and res is not None:
                self.probe.mem_level(res.level)
        finally:
            if top:
                self._pop()

    def _same_session(self) -> bool:
        """Store->prefetch conversion applies only when the A-stream is
        in the same (barrier-delimited) session as its R-stream."""
        ch = self.channel
        return ch is not None and len(ch.a_sites) == len(ch.r_sites)

    #: Force a slow (engine-visible) load once this much synchronous time
    #: has accumulated, so user-level spin loops observe other streams'
    #: stores with bounded timing skew.
    DEBT_LIMIT = 400.0

    def _fast_read(self, gidx: int, flat: int):
        """VM callback: synchronous load path for cache hits."""
        if self.dormant:
            self._debt += 1.0
            if self._prof is not None:
                self._prof.fast(1.0, 0.0, "l1")
            return self.machine.store.read(gidx, flat)
        if self._debt > self.DEBT_LIMIT:
            return MISS
        addr = self.machine.gaddr(gidx, flat)
        lat = self.machine.memsys.try_fast_load(self.node, self.cpu, addr,
                                                self.role)
        if lat is None:
            return MISS
        self._debt += 1.0
        if lat > 1.0:
            self.fast_mem_cycles += lat - 1.0
            self._debt += lat - 1.0
        if self._prof is not None:
            self._prof.fast(1.0, lat - 1.0 if lat > 1.0 else 0.0,
                            "l1" if lat <= 1.0 else "l2")
        return self.machine.store.read(gidx, flat)

    def _fast_write(self, gidx: int, flat: int, value) -> bool:
        """VM callback: synchronous store path.  Returns True when fully
        handled (A-stream skip without prefetch, or an exclusive hit)."""
        if self.role == "A":
            if self.dormant or not self._same_session():
                self._debt += 1.0
                if self._prof is not None:
                    self._prof.fast(1.0, 0.0, "l1")
                return True
            addr = self.machine.gaddr(gidx, flat)
            if not self.machine.memsys.prefetch_would_fire(self.node, addr):
                self._debt += 1.0
                if self._prof is not None:
                    self._prof.fast(1.0, 0.0, "l1")
                return True
            return False               # slow path issues the prefetch
        addr = self.machine.gaddr(gidx, flat)
        lat = self.machine.memsys.try_fast_store(self.node, self.cpu, addr,
                                                 self.role)
        if lat is None:
            return False
        self._debt += lat
        self.fast_mem_cycles += lat - 1.0
        if self._prof is not None:
            self._prof.fast(1.0, lat - 1.0,
                            "l1" if lat <= 1.0 else "l2")
        self.machine.store.write(gidx, flat, value)
        return True

    def _flush_debt(self):
        d = self._debt
        if d:
            self._debt = 0.0
            yield d

    def _mem_read(self, ev: MemRead):
        """Slow path: the access missed the CMP."""
        addr = self.machine.gaddr(ev.gidx, ev.flat)
        yield from self.timed_load(addr)
        self.vm.push(self.machine.store.read(ev.gidx, ev.flat))

    def _mem_write(self, ev: MemWrite):
        if self.role == "A":
            # In-session shared store converted to a non-binding
            # prefetch-exclusive (§5.1: "converting some of the shared
            # stores into prefetches").
            addr = self.machine.gaddr(ev.gidx, ev.flat)
            self.machine.memsys.prefetch_exclusive(self.node, addr, "A")
            yield 1.0
            return
        addr = self.machine.gaddr(ev.gidx, ev.flat)
        yield from self.timed_store(addr)
        self.machine.store.write(ev.gidx, ev.flat, ev.value)

    # ------------------------------------------------------------- VM driving

    def _vm_loop(self):
        """Run the current VM to completion, servicing its events."""
        vm = self.vm
        vm.fast_read = self._fast_read
        vm.fast_write = self._fast_write
        while True:
            try:
                ev = vm.run()
            except (VMError, ArithmeticError, IndexError, TypeError,
                    ValueError, KeyError) as e:
                if self.role == "A":
                    # Speculative fault (wild index, integer trap, ...
                    # computed from stale shared values): park until the
                    # R-stream's next barrier repairs us.
                    if self.channel is not None:
                        self.channel.mark_fault(f"VM fault: {e}")
                    yield from self._park()
                    continue            # unreachable (park never returns)
                raise
            self._debt += vm.take_cycles()
            yield from self._flush_debt()
            if self._faults is not None:
                yield from self._inject_faults()
            k = type(ev)
            try:
                if k is MemRead:
                    yield from self._mem_read(ev)
                elif k is MemWrite:
                    yield from self._mem_write(ev)
                elif k is RtCall:
                    yield from self._rt(ev)
                elif k is IoOut:
                    yield from self._io_out(ev)
                elif k is TimeSlice:
                    continue            # debt already flushed above
                else:                   # Done
                    return ev.value
            except (VMError, ArithmeticError, IndexError, TypeError,
                    ValueError, KeyError, AssertionError,
                    OverflowError) as e:
                if self.role != "A":
                    raise
                # Speculative fault escaping into the shell's slow path
                # (e.g. a corrupted index resolving to a wild address
                # that trips the memory system's validity checks).
                # Both assertion sites fire before any resource is
                # acquired, so parking here leaks nothing.
                if self.channel is not None:
                    self.channel.mark_fault(
                        f"speculative {k.__name__} fault: {e}")
                yield from self._park()

    def _park(self):
        """Block forever (until interrupted by recovery or teardown)."""
        self.machine.note_parked(self)
        yield self.machine.engine.event(name=f"park:{self.name}")
        raise RuntimeError(f"{self.name}: park event fired unexpectedly")

    def _inject_faults(self):
        """One A-stream injection opportunity (armed plans only).

        Corruption perturbs the speculative VM's architectural state;
        spurious faults and kills park the stream exactly like an
        organic speculative fault, so the R-stream repairs it at its
        next barrier -- the recovery path under test.
        """
        plan = self._faults
        spec = plan.fire("a_corrupt", self.name)
        if spec is not None and self.vm is not None:
            self.vm.corrupt(spec)
        if plan.fire("a_vmfault", self.name) is not None:
            if self.channel is not None:
                self.channel.mark_fault("injected spurious VM fault")
            yield from self._park()
        if plan.fire("a_kill", self.name) is not None:
            if self.channel is not None:
                self.channel.mark_fault("injected A-stream kill")
            yield from self._park()

    # -------------------------------------------------------------- top level

    def run_master(self):
        """Process body for the master pair (R-master runs main; the
        A-master shadows it in reduced form)."""
        try:
            while True:
                try:
                    if not self._restored:
                        self._bind_vm(VM(self.machine.program,
                                         self.machine.program.main_index))
                    self._restored = False
                    result = yield from self._vm_loop()
                    if self.role == "R":
                        self.machine.master_done(result)
                    self.finished = True
                    return result
                except Interrupt:
                    if self.role != "A":
                        raise
                    self._restore_from_recovery()
        finally:
            self.probe.close(self.machine.engine.now)

    def run_slave(self):
        """Process body for slave pairs: spin for a job, run it, repeat.
        R-slaves signal completion; A-slaves run the reduced version."""
        flag = self.team.job_flags[self.tid - 1]
        done_w = self.team.done_words[self.tid - 1]
        try:
            while True:
                try:
                    if not self._restored:
                        want = self.current_gen + 1
                        self._push("jobwait")
                        try:
                            yield from spin_until(self, flag,
                                                  lambda v: v >= want,
                                                  cap=JOBWAIT_BACKOFF_CAP)
                        finally:
                            self._pop()
                        self.current_gen = want
                        job = self.team.job_at(want)
                        if (job is None or job.serial
                                or self.tid >= job.team_size):
                            continue    # serial region, or we are outside
                                        # this region's (narrowed) team
                        yield from self._read_job_descriptor(job)
                        self.current_job = job
                        self.in_region = True
                        if self.channel is not None and self.role == "R":
                            self.channel.begin_region(*job.slip_setting)
                        self._bind_vm(VM(self.machine.program, job.fidx,
                                         job.args))
                    self._restored = False
                    yield from self._vm_loop()
                    yield from self._job_epilogue(done_w)
                except Interrupt:
                    if self.role != "A":
                        raise
                    self._restore_from_recovery()
        finally:
            self.probe.close(self.machine.engine.now)

    def _read_job_descriptor(self, job: Job):
        """Load the master-published descriptor (timing)."""
        nwords = min(2 + len(job.args), len(self.team.desc_words))
        for w in self.team.desc_words[:nwords]:
            yield from word_load(self, w)

    def _job_epilogue(self, done_w):
        """End-of-region join handling for a slave."""
        job = self.current_job
        site = _join_site(job.fidx)
        if self.role == "R":
            if self.slipping:
                ch = self.channel
                ch.r_reached_barrier(site)
                reason = ch.divergence_detected()
                if reason is not None:
                    self._do_recovery(reason, site)
                if ch.sync_type == "LOCAL_SYNC":
                    ch.insert_token()
            yield from word_store(self, done_w, job.gen)
            if self.slipping and self.channel.sync_type == "GLOBAL_SYNC":
                self.channel.insert_token()
        else:
            if self.slipping:
                self.channel.a_reached_barrier(site)
                self._push("a_wait")
                try:
                    yield from self.channel.consume_token()
                finally:
                    self._pop()
                self._maybe_self_invalidate()
        self.in_region = False
        self.current_job = None
        self.vm = None

    # ----------------------------------------------------- recovery plumbing

    def _do_recovery(self, reason: str, site: Optional[int] = None) -> None:
        """R-stream side: re-fork the A-stream from our state (§2.2:
        'recovery is invoked if divergence is detected').  ``site`` is
        the barrier site at which we detected the divergence."""
        a = self.pair
        ch = self.channel
        self.machine.log_recovery(self, reason, site)
        ch.pending_restore = {
            "frames": self.vm.snapshot() if self.vm is not None else None,
            "site_seq": dict(self.site_seq),
            "active_loops": {s: LoopLocal(l.seq, l.kind, l.chunk, l.total,
                                          l.pos, l.block_given, l.decisions)
                             for s, l in self.active_loops.items()},
            "current_gen": self.current_gen,
            "current_job": self.current_job,
            "in_region": self.in_region,
        }
        ch.reset_after_recovery()
        a.proc.interrupt("slipstream-recovery")

    def _restore_from_recovery(self) -> None:
        """A-stream side: adopt the R-stream's architectural state."""
        snap = self.channel.pending_restore
        self.probe.instant("slip.restore", self.machine.engine.now)
        self.machine.unpark(self)
        if snap["frames"] is not None:
            if self.vm is None:
                self._bind_vm(VM(self.machine.program,
                                 self.machine.program.main_index))
            self.vm.restore(snap["frames"])
        self.site_seq = dict(snap["site_seq"])
        self.active_loops = {
            s: LoopLocal(l.seq, l.kind, l.chunk, l.total, l.pos,
                         l.block_given, l.decisions)
            for s, l in snap["active_loops"].items()}
        self.current_gen = snap["current_gen"]
        self.current_job = snap["current_job"]
        self.in_region = snap["in_region"]
        self._restored = True

    # ------------------------------------------------------------ I/O events

    def _io_out(self, ev: IoOut):
        if self.role == "A":
            self.probe.instant("a.skip", self.machine.engine.now,
                               {"what": "io_out"})
            yield 1.0                   # irreversible: A-streams skip I/O
            return
        self._push("io")
        try:
            yield float(self.machine.io_cycles)
        finally:
            self._pop()
        self.machine.output.append(tuple(ev.values))

    # ------------------------------------------------------- runtime dispatch

    def _rt(self, ev: RtCall):
        handler = getattr(self, "_rt_" + ev.name, None)
        if handler is None:
            raise RuntimeError(f"unknown runtime call {ev.name!r}")
        yield from handler(ev)

    # -- parallel region management -------------------------------------

    def _team_size_for(self, nthreads_val, serial: bool) -> int:
        """Resolve the region's team width: if(false) => 1; else the
        num_threads clause, else OMP_NUM_THREADS, else the full pool --
        all capped by available tasks."""
        if serial:
            return 1
        if nthreads_val and nthreads_val > 0:
            return max(1, min(int(nthreads_val), self.team.n_tasks))
        env_n = self.machine.env.num_threads
        if env_n is not None:
            return max(1, min(env_n, self.team.n_tasks))
        return self.team.n_tasks

    def _rt_parallel_begin(self, ev: RtCall):
        fidx, ncap = ev.static
        if_val, nthreads_val = ev.args[-2], ev.args[-1]
        captured = ev.args[:ncap]
        setting = self.control.region_enter()
        serial = not bool(if_val)
        team_size = self._team_size_for(nthreads_val, serial)
        if self.role == "R":
            job = self.team.new_job(fidx, captured, setting, serial,
                                    team_size=team_size)
            self.team.region_setting = setting
            self.current_job = job
            self.current_gen = job.gen
            if self.channel is not None:
                self.channel.begin_region(*setting)
            if not serial:
                # Publish the descriptor, then raise every slave's flag.
                nwords = min(2 + len(captured), len(self.team.desc_words))
                for w in self.team.desc_words[:nwords]:
                    yield from word_store(self, w, job.gen)
                for flag in self.team.job_flags:
                    yield from word_store(self, flag, job.gen)
        else:
            # The A-master does not post jobs (its shared stores are
            # skipped); it mirrors the bookkeeping and runs the region.
            self.current_gen += 1
            job = self.team.job_at(self.current_gen)
            if job is None:
                job = Job(self.current_gen, fidx, tuple(captured), setting,
                          serial=serial, team_size=team_size)
            self.current_job = job
            yield 1.0
        self.in_region = True

    def _rt_parallel_end(self, ev: RtCall):
        job = self.current_job
        site = _join_site(job.fidx if job is not None else 0)
        if self.role == "R":
            if self.slipping:
                ch = self.channel
                ch.r_reached_barrier(site)
                reason = ch.divergence_detected()
                if reason is not None:
                    self._do_recovery(reason, site)
                if ch.sync_type == "LOCAL_SYNC":
                    ch.insert_token()
            if job is not None and not job.serial:
                self._push("barrier")
                try:
                    # Join only the slaves that participated (slave t
                    # has done-word index t-1).
                    for done_w in self.team.done_words[:job.team_size - 1]:
                        yield from spin_until(self, done_w,
                                              lambda v, g=job.gen: v >= g)
                finally:
                    self._pop()
            if self.slipping and self.channel.sync_type == "GLOBAL_SYNC":
                self.channel.insert_token()
        else:
            if self.slipping:
                self.channel.a_reached_barrier(site)
                self._push("a_wait")
                try:
                    yield from self.channel.consume_token()
                finally:
                    self._pop()
                self._maybe_self_invalidate()
            else:
                yield 1.0
        self.in_region = False
        self.current_job = None
        self.control.region_exit()

    # -- barriers ---------------------------------------------------------

    def _rt_barrier(self, ev: RtCall):
        site = ev.static[0]
        yield from self._barrier(site)

    def _barrier(self, site: int):
        if self.role == "R":
            if self.slipping:
                ch = self.channel
                ch.r_reached_barrier(site)
                reason = ch.divergence_detected()
                if reason is not None:
                    self._do_recovery(reason, site)
                if ch.sync_type == "LOCAL_SYNC":
                    ch.insert_token()
            self.machine.memsys.bump_epoch(self.node)
            if self.team_size > 1:
                self._push("barrier")
                try:
                    yield from self.team.barrier.wait(
                        self, participants=self.team_size)
                finally:
                    self._pop()
            else:
                yield 1.0
            if self.slipping and self.channel.sync_type == "GLOBAL_SYNC":
                self.channel.insert_token()
        else:
            if self.slipping:
                self.channel.a_reached_barrier(site)
                self._push("a_wait")
                try:
                    yield from self.channel.consume_token()
                finally:
                    self._pop()
                self._maybe_self_invalidate()
            else:
                yield 1.0               # dormant A sails through

    def _maybe_self_invalidate(self) -> None:
        """Slipstream self-invalidation: tied to global synchronization
        (§3.2.1) and enabled by machine option."""
        if (self.machine.selfinv
                and self.channel.sync_type == "GLOBAL_SYNC"):
            self.machine.memsys.self_invalidate_stale(self.node)

    # -- worksharing --------------------------------------------------------

    def _next_seq(self, site: int) -> int:
        seq = self.site_seq.get(site, 0)
        self.site_seq[site] = seq + 1
        return seq

    def _rt_sched_init(self, ev: RtCall):
        site, kind, chunk = ev.static
        lo, hi, step = ev.args
        if kind == "runtime":
            kind, env_chunk = self.machine.env.schedule
            chunk = chunk if chunk is not None else env_chunk
        n = max(0, -((int(lo) - int(hi)) // int(step)))
        seq = self._next_seq(site)
        ll = LoopLocal(seq=seq, kind=kind, chunk=chunk, total=n)
        if kind == "static":
            ll.pos = self.tid          # chunked static starts at own index
        self.active_loops[site] = ll
        if (kind in ("dynamic", "guided") and self.role == "R"
                and not self.dormant):
            self.team.loop_shared(site, seq, n)   # materialize shared state
        yield 2.0

    def _rt_sched_next(self, ev: RtCall):
        site = ev.static[0]
        ll = self.active_loops[site]
        if ll.kind == "static":
            result = self._static_next(ll)
            yield 3.0
        elif self.role == "A" and not self.dormant:
            result = yield from self._a_take(("sched", site, ll.decisions))
            ll.decisions += 1
            self._note_last(ll, result)
        else:
            self._push("scheduling")
            try:
                result = yield from self._shared_next(site, ll)
            finally:
                self._pop()
            if self.role == "R" and self.slipping:
                self.channel.publish("sched", site, ll.decisions, result)
            ll.decisions += 1
        self.vm.push(result)

    def _static_next(self, ll: LoopLocal):
        T = self.team_size
        t = self.tid if self.team_size > 1 else 0
        if ll.chunk is None:
            if ll.block_given:
                return None
            ll.block_given = True
            start = ll.total * t // T
            end = ll.total * (t + 1) // T
            if end <= start:
                return None
            return self._note_last(ll, (start, end - start))
        # static,chunk: round-robin chunks of fixed size
        start = ll.pos * ll.chunk
        if start >= ll.total:
            return None
        ll.pos += T
        return self._note_last(ll, (start, min(ll.chunk, ll.total - start)))

    @staticmethod
    def _note_last(ll: LoopLocal, chunk):
        """Track whether this thread's chunk contained the final
        iteration (lastprivate semantics)."""
        if chunk is not None and chunk[0] + chunk[1] >= ll.total:
            ll.had_last = True
        return chunk

    def _rt_loop_is_last(self, ev: RtCall):
        site = ev.static[0]
        yield 1.0
        ll = self.active_loops.get(site)
        self.vm.push(1 if ll is not None and ll.had_last else 0)

    def _shared_next(self, site: int, ll: LoopLocal):
        """Dynamic/guided chunk grab under the scheduler critical section."""
        ls = self.team.loop_shared(site, ll.seq, ll.total)
        yield from ls.lock.acquire(self)
        try:
            nxt = yield from word_load(self, ls.next_word)
            if nxt >= ls.total:
                return None
            if ll.kind == "dynamic":
                cnt = min(ll.chunk or 1, ls.total - nxt)
            else:  # guided: proportional to remaining work
                T = max(1, self.team_size)
                cnt = max(ll.chunk or 1, (ls.total - nxt) // (2 * T))
                cnt = min(cnt, ls.total - nxt)
            yield from word_store(self, ls.next_word, nxt + cnt)
            return self._note_last(ll, (nxt, cnt))
        finally:
            yield from ls.lock.release(self)

    def _a_take(self, key):
        """A-stream retrieves its R-stream's published decision (§3.2.2:
        'it synchronizes, waiting for its R-stream to reach this
        region')."""
        kind, site, idx = key
        self._push("a_wait")
        try:
            ok, payload = yield from self.channel.take(kind, site, idx)
        finally:
            self._pop()
        if not ok:
            self.channel.mark_fault(
                f"mailbox mismatch at {kind} site {site} #{idx}",
                site=site)
            yield from self._park()
        return payload

    # -- sections --------------------------------------------------------

    def _rt_sections_init(self, ev: RtCall):
        site, n = ev.static
        seq = self._next_seq(site)
        kind = "static" if self.machine.sections_static else "dynamic"
        ll = LoopLocal(seq=seq, kind=kind, chunk=1, total=n)
        if kind == "static":
            ll.pos = self.tid
        self.active_loops[site] = ll
        if kind == "dynamic" and self.role == "R" and not self.dormant:
            self.team.loop_shared(site, seq, n)
        yield 2.0

    def _rt_sections_next(self, ev: RtCall):
        site = ev.static[0]
        ll = self.active_loops[site]
        if ll.kind == "static":
            if ll.pos >= ll.total:
                result = None
            else:
                result = ll.pos
                ll.pos += max(1, self.team_size)
            yield 2.0
        elif self.role == "A" and not self.dormant:
            chunk = yield from self._a_take(("sect", site, ll.decisions))
            ll.decisions += 1
            result = chunk
        else:
            self._push("scheduling")
            try:
                chunk = yield from self._shared_next(site, ll)
            finally:
                self._pop()
            result = chunk[0] if chunk is not None else None
            if self.role == "R" and self.slipping:
                self.channel.publish("sect", site, ll.decisions, result)
            ll.decisions += 1
        self.vm.push(result)

    # -- single / master / critical / atomic / flush -------------------------

    def _rt_single_begin(self, ev: RtCall):
        site = ev.static[0]
        seq = self._next_seq(site)
        if self.role == "A":
            # "There is no clear way an A-stream can tell that its
            # R-stream will execute this section ... skipped" (§3.1).
            self.probe.instant("a.skip", self.machine.engine.now,
                               {"what": "single"})
            yield 1.0
            self.vm.push(0)
            return
        if self.team_size == 1:
            yield 1.0
            self.vm.push(1)
            return
        ticket = self.team.single_ticket(site, seq)
        self._push("lock")
        try:
            old = yield from word_rmw(self, ticket, lambda v: v + 1)
        finally:
            self._pop()
        self.vm.push(1 if old == 0 else 0)

    def _rt_is_master(self, ev: RtCall):
        yield 1.0
        self.vm.push(1 if self.tid == 0 else 0)

    def _rt_crit_enter(self, ev: RtCall):
        cid = ev.static[0]
        if self.role == "A":
            # Skipped: prefetched data "highly likely not to be migrated"
            # does not hold for critical sections (§3.1 item 5) -- unless
            # the ablation option forces execution (lock-free, stores
            # suppressed anyway).
            if not self.machine.a_exec_critical:
                self.probe.instant("a.skip", self.machine.engine.now,
                                   {"what": "critical"})
            yield 1.0
            self.vm.push(1 if self.machine.a_exec_critical else 0)
            return
        self._push("lock")
        try:
            yield from self.team.crit_lock(cid).acquire(self)
        finally:
            self._pop()
        self.vm.push(1)

    def _rt_crit_exit(self, ev: RtCall):
        cid = ev.static[0]
        if self.role == "A":
            yield 1.0
            return
        yield from self.team.crit_lock(cid).release(self)

    def _rt_atomic_enter(self, ev: RtCall):
        site = ev.static[0]
        if self.role == "A":
            yield 1.0                   # executes the update, lock-free
            return
        self._push("lock")
        try:
            yield from self.team.atomic_lock(site).acquire(self)
        finally:
            self._pop()

    def _rt_atomic_exit(self, ev: RtCall):
        site = ev.static[0]
        if self.role == "A":
            yield 1.0
            return
        yield from self.team.atomic_lock(site).release(self)

    def _rt_flush(self, ev: RtCall):
        # Hardware-coherent system: "this construct maps to void"; the
        # A-stream skips it outright (§3.1 item 7).
        if self.role == "A":
            self.probe.instant("a.skip", self.machine.engine.now,
                               {"what": "flush"})
        yield 1.0 if self.role == "A" else 2.0

    # -- reductions --------------------------------------------------------

    def _rt_reduce(self, ev: RtCall):
        op, gidx = ev.static
        (value,) = ev.args
        sync = self.machine.sync_after_reduction and self.slipping
        if self.role == "A":
            if sync:
                # §3.1: "The A-stream may need to synchronize with its
                # R-stream, if the outcome of the reduction operation
                # will affect program control flow."  Wait for our
                # R-stream's combine before proceeding.
                idx = self.site_seq.get(("red", gidx), 0)
                self.site_seq[("red", gidx)] = idx + 1
                yield from self._a_take(("red", gidx, idx))
            self.probe.instant("a.skip", self.machine.engine.now,
                               {"what": "reduce"})
            yield 1.0                   # combine touches shared state: skip
            return
        addr = self.machine.gaddr(gidx, 0)
        self._push("lock")
        try:
            yield from self.team.reduction_lock.acquire(self)
            yield from self.timed_load(addr)
            cur = self.machine.store.read(gidx, 0)
            yield from self.timed_store(addr)
            self.machine.store.write(gidx, 0, _combine(op, cur, value))
            yield from self.team.reduction_lock.release(self)
        finally:
            self._pop()
        if sync:
            idx = self.site_seq.get(("red", gidx), 0)
            self.site_seq[("red", gidx)] = idx + 1
            self.channel.publish("red", gidx, idx, None)

    # -- misc queries -------------------------------------------------------

    def _rt_astream_probe(self, ev: RtCall):
        yield 1.0
        self.vm.push(1 if self.role == "A" else 0)

    def _rt_tid(self, ev: RtCall):
        yield 1.0
        self.vm.push(self.tid if self.team_size > 1 else 0)

    def _rt_nthreads(self, ev: RtCall):
        yield 1.0
        self.vm.push(self.team_size)

    def _rt_wtime(self, ev: RtCall):
        yield 1.0
        ghz = self.machine.cfg.clock_ghz
        self.vm.push(self.machine.engine.now / (ghz * 1e9))

    def _rt_io_read(self, ev: RtCall):
        if self.role == "A":
            # "Input operations ... the A-stream should see the same
            # image of the data that the R-stream sees" (§3.1): wait on
            # the syscall semaphore for the recorded value.
            if self.dormant or not self.slipping:
                yield 1.0
                self.vm.push(0.0)
                return
            idx = self.site_seq.get("io", 0)
            self.site_seq["io"] = idx + 1
            value = yield from self._a_take(("input", 0, idx))
            self.vm.push(value)
            return
        self._push("io")
        try:
            yield float(self.machine.io_cycles)
        finally:
            self._pop()
        value = self.machine.next_input()
        if self.slipping:
            idx = self.site_seq.get("io", 0)
            self.site_seq["io"] = idx + 1
            self.channel.publish("input", 0, idx, value)
        self.vm.push(value)

    # -- slipstream directive -------------------------------------------------

    def _rt_slipstream_set(self, ev: RtCall):
        sync_type, tokens, region_scoped = ev.static
        (cond,) = ev.args
        self.control.directive(sync_type, tokens, bool(cond), region_scoped)
        yield 1.0


def _combine(op: str, a, b):
    if op == "+":
        return a + b
    if op == "*":
        return a * b
    if op == "max":
        return a if a > b else b
    return a if a < b else b
