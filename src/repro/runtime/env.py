"""Environment-variable handling (OpenMP style runtime control).

The paper adds ``OMP_SLIPSTREAM`` to the standard set: it "takes the
same arguments (type and tokens) used in the SLIPSTREAM directive" and
"may take an additional value of NONE, which disables running in
slipstream mode".  Combined with ``schedule(runtime)`` /
``OMP_SCHEDULE``, this is what lets a single compiled image be steered
between modes without recompilation (§5.1: "We changed the
synchronization method as well as activating/deactivating slipstream at
runtime while using the same binary").
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

__all__ = ["RuntimeEnv", "SYNC_TYPES"]

SYNC_TYPES = ("GLOBAL_SYNC", "LOCAL_SYNC", "NONE")


@dataclass
class RuntimeEnv:
    """Resolved runtime environment for one program run."""

    num_threads: Optional[int] = None
    schedule: Tuple[str, Optional[int]] = ("static", None)
    slipstream: Tuple[str, int] = ("GLOBAL_SYNC", 0)
    slipstream_set: bool = False       # was OMP_SLIPSTREAM given at all?

    @classmethod
    def from_mapping(cls, env: Mapping[str, str]) -> "RuntimeEnv":
        """Parse OMP_* variables from a mapping (e.g. os.environ)."""
        out = cls()
        if "OMP_NUM_THREADS" in env:
            out.num_threads = int(env["OMP_NUM_THREADS"])
            if out.num_threads < 1:
                raise ValueError("OMP_NUM_THREADS must be >= 1")
        if "OMP_SCHEDULE" in env:
            out.schedule = _parse_schedule(env["OMP_SCHEDULE"])
        if "OMP_SLIPSTREAM" in env:
            out.slipstream = parse_slipstream(env["OMP_SLIPSTREAM"])
            out.slipstream_set = True
        return out

    @classmethod
    def from_os(cls) -> "RuntimeEnv":
        """Parse OMP_* variables from the process environment."""
        return cls.from_mapping(os.environ)


def _parse_schedule(text: str) -> Tuple[str, Optional[int]]:
    parts = [p.strip() for p in text.split(",")]
    kind = parts[0].lower()
    if kind not in ("static", "dynamic", "guided"):
        raise ValueError(f"bad OMP_SCHEDULE kind {kind!r}")
    chunk = int(parts[1]) if len(parts) > 1 and parts[1] else None
    if chunk is not None and chunk < 1:
        raise ValueError("OMP_SCHEDULE chunk must be >= 1")
    return kind, chunk


def parse_slipstream(text: str) -> Tuple[str, int]:
    """Parse an OMP_SLIPSTREAM value: 'TYPE[,tokens]' or 'NONE'."""
    parts = [p.strip() for p in text.split(",")]
    typ = parts[0].upper()
    if typ not in SYNC_TYPES:
        raise ValueError(f"bad OMP_SLIPSTREAM type {typ!r} "
                         f"(want one of {SYNC_TYPES})")
    tokens = int(parts[1]) if len(parts) > 1 and parts[1] else 0
    if tokens < 0:
        raise ValueError("OMP_SLIPSTREAM token count must be >= 0")
    return typ, tokens
