"""Runtime-internal shared words and the sync primitives built on them.

The Omni runtime keeps its own state (barrier counters, lock words, job
flags, scheduling counters) in shared memory; on a DSM machine every
touch of that state is coherence traffic, which is exactly where the
paper's "lock", "barrier", "scheduling", and "job wait" time categories
come from.  :class:`RTWord` pairs a Python-side value with a simulated
shared address so each access is timed through the coherence protocol.

All generators here take the accessing *shell* (thread context) first,
so latency lands on the right simulated CPU and time category.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["RTWord", "SpinLock", "SenseBarrier", "word_load", "word_store",
           "word_rmw", "spin_until", "SPIN_BACKOFF0", "SPIN_BACKOFF_CAP",
           "JOBWAIT_BACKOFF_CAP"]

#: Initial / maximum spin backoff (cycles).  Spin loops probe a shared
#: word, then idle exponentially longer between probes -- both a realism
#: measure (Omni's spin loops back off) and what keeps simulated event
#: counts bounded during long waits.
SPIN_BACKOFF0 = 20.0
SPIN_BACKOFF_CAP = 400.0
JOBWAIT_BACKOFF_CAP = 2000.0


class RTWord:
    """One runtime word: a shared address plus its current value."""

    __slots__ = ("addr", "value", "name")

    def __init__(self, addr: int, value=0, name: str = ""):
        self.addr = addr
        self.value = value
        self.name = name

    def __repr__(self) -> str:
        return f"RTWord({self.name}@{self.addr:#x}={self.value!r})"


def word_load(shell, word: RTWord):
    """Timed load of a runtime word; returns its value."""
    yield from shell.timed_load(word.addr)
    return word.value


def word_store(shell, word: RTWord, value) -> None:
    """Timed store (write-ownership) of a runtime word."""
    yield from shell.timed_store(word.addr)
    word.value = value


def word_rmw(shell, word: RTWord, fn: Callable):
    """Timed atomic read-modify-write; returns the OLD value.

    Atomicity holds because the logical update is applied at the
    completion time of the write-ownership transaction, and transactions
    on one line are serialized by the home directory.
    """
    yield from shell.timed_store(word.addr)
    old = word.value
    word.value = fn(old)
    return old


def spin_until(shell, word: RTWord, pred: Callable[[object], bool],
               cap: float = SPIN_BACKOFF_CAP):
    """Test-loop on a shared word with exponential backoff.  Returns the
    satisfying value."""
    backoff = SPIN_BACKOFF0
    while True:
        v = yield from word_load(shell, word)
        if pred(v):
            return v
        yield backoff
        backoff = min(cap, backoff * 2)


class SpinLock:
    """Test-and-test-and-set lock over one shared word."""

    __slots__ = ("word", "acquisitions", "contended")

    def __init__(self, word: RTWord):
        self.word = word
        self.acquisitions = 0
        self.contended = 0

    def acquire(self, shell):
        """Generator: test-and-test-and-set until acquired."""
        first = True
        while True:
            old = yield from word_rmw(shell, self.word, lambda v: 1)
            if old == 0:
                self.acquisitions += 1
                return
            if first:
                self.contended += 1
                first = False
            yield from spin_until(shell, self.word, lambda v: v == 0)

    def release(self, shell):
        """Generator: store 0 (timed) to free the lock."""
        yield from word_store(shell, self.word, 0)

    @property
    def held(self) -> bool:
        """Is the lock currently taken?"""
        return bool(self.word.value)


class SenseBarrier:
    """Centralized barrier over two shared words (count + generation).

    A generation-counting variant of the classic sense-reversing
    barrier: arrivals atomically increment the count; the last arriver
    resets it and bumps the generation word, releasing the spinners.
    Unlike per-thread sense bits, the shared generation stays correct
    when consecutive episodes involve different subsets of threads
    (regions narrowed by a num_threads clause).  Every arrival is a
    write-ownership transaction and every spin probe a shared load --
    the coherence storm a real centralized barrier produces.
    """

    def __init__(self, count_word: RTWord, sense_word: RTWord,
                 participants: int):
        self.count = count_word
        self.gen = sense_word
        self.participants = participants
        self.episodes = 0

    def wait(self, shell, participants: Optional[int] = None):
        """Wait among ``participants`` threads (defaults to the team
        width; regions narrowed by a num_threads clause pass their own
        count)."""
        n = participants if participants is not None else self.participants
        my_gen = yield from word_load(shell, self.gen)
        old = yield from word_rmw(shell, self.count, lambda v: v + 1)
        if old + 1 == n:
            self.episodes += 1
            yield from word_store(shell, self.count, 0)
            yield from word_store(shell, self.gen, my_gen + 1)
        else:
            yield from spin_until(shell, self.gen,
                                  lambda v, g=my_gen: v != g)
