"""The simulated machine: builds the hardware, places the streams,
loads a compiled image, and runs it to completion.

Three execution modes, as evaluated in the paper (§5.1):

* ``single``     -- one task per CMP, the second processor idle;
* ``double``     -- two tasks per CMP (maximum parallelism);
* ``slipstream`` -- one task per CMP run redundantly: the R-stream on
  processor 0, its reduced A-stream on processor 1.

The same compiled image runs in every mode; slipstream behaviour is
steered by ``OMP_SLIPSTREAM`` / the slipstream directive at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compiler.bytecode import CompiledProgram
from ..config.machine import MachineConfig, PAPER_MACHINE
from ..faults import FaultConfig, FaultPlan
from ..interp.funcrunner import GlobalStore
from ..mem.address import SHARED_BASE, SHARED_LIMIT
from ..mem.memsys import CoherentMemorySystem
from ..obs import make_sink
from ..sim import Engine
from ..slipstream.channel import PairChannel
from .env import RuntimeEnv
from .shell import ThreadShell
from .team import Team
from .words import RTWord

__all__ = ["Machine", "RunResult", "run_program", "MODES",
           "SimDeadlockError", "DeadlockError"]

MODES = ("single", "double", "slipstream")

#: Runtime-internal words live in the top half of the shared segment so
#: they can be excluded from the Figure-3/5 shared-data classification.
RT_WORD_BASE = SHARED_BASE + (SHARED_LIMIT - SHARED_BASE) // 2


@dataclass
class RunResult:
    """Everything one simulated run produces."""

    mode: str
    cycles: float
    result: object
    output: List[Tuple]
    store: GlobalStore
    breakdowns: Dict[str, Dict[str, float]]
    r_breakdown: Dict[str, float]
    classes: object                  # ClassStats
    mem_stats: object                # Counter
    #: (shell name, reason, barrier site) per divergence recovery; the
    #: site is the barrier at which the R-stream detected divergence
    #: (negative ids are synthetic end-of-region joins, None means the
    #: detection point had no site).
    recoveries: List[Tuple[str, str, Optional[int]]]
    channel_stats: Dict[int, Dict[str, int]] = field(default_factory=dict)
    rt_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    trace: Optional[List[dict]] = None   # Chrome trace events (TraceSink)
    #: Per-track line profile (ProfileSink): track -> {(func, line,
    #: category, level): cycles}.  None unless the run was profiled.
    profile: Optional[Dict[str, Dict]] = None
    #: Fault-injection report (FaultPlan.report()): seed, schedule and
    #: the fired injections.  None unless a plan was armed.
    faults: Optional[dict] = None

    @property
    def time_ns(self) -> float:
        """Wall-clock nanoseconds at the paper's 1.2 GHz clock."""
        return self.cycles / 1.2     # informational; harness uses cycles

    def breakdown_fractions(self) -> Dict[str, float]:
        """Machine-wide R-stream time breakdown, normalized to 1."""
        tot = sum(self.r_breakdown.values())
        if tot <= 0:
            return {}
        return {k: v / tot for k, v in self.r_breakdown.items()}


class SimDeadlockError(RuntimeError):
    """Structured simulation-hang diagnostic.

    Raised when the event queue drains with streams still unfinished
    (``kind="deadlock"``) or when the watchdog's cycle/step budget
    expires (``kind="watchdog"``).  Carries a machine-readable table of
    every stream -- name, state, the event it is waiting on, and its
    current time category -- so a hang converts into an actionable
    report instead of an opaque timeout.
    """

    def __init__(self, kind: str, cycle: float, mode: str,
                 blocked: List[Dict[str, str]], detail: str = ""):
        self.kind = kind                 # "deadlock" | "watchdog"
        self.cycle = cycle
        self.mode = mode
        self.blocked = blocked
        self.detail = detail
        lines = [self.summary]
        if blocked:
            w = max(len(r["process"]) for r in blocked)
            w = max(w, len("process"))
            lines.append(f"  {'process':<{w}}  {'state':<8}  "
                         f"{'waiting on':<22}  category")
            for r in blocked:
                lines.append(f"  {r['process']:<{w}}  {r['state']:<8}  "
                             f"{r['waiting_on']:<22}  {r['category']}")
        super().__init__("\n".join(lines))

    def __reduce__(self):
        # Exception pickling replays __init__ with .args (the rendered
        # message) by default, which doesn't match this signature --
        # and an unpicklable worker exception masquerades as a pool
        # crash.  Rebuild from the structured fields instead.
        return (SimDeadlockError, (self.kind, self.cycle, self.mode,
                                   self.blocked, self.detail))

    @property
    def summary(self) -> str:
        """One-line actionable description (what the CLI prints)."""
        what = ("deadlocked" if self.kind == "deadlock"
                else "watchdog expired")
        s = f"simulation {what} at {self.cycle:.0f} cycles (mode={self.mode})"
        if self.detail:
            s += f": {self.detail}"
        stuck = sum(1 for r in self.blocked
                    if r["state"] in ("blocked", "parked"))
        if stuck:
            s += f"; {stuck} blocked stream(s)"
        return s


#: Backward-compatible alias (pre-watchdog name).
DeadlockError = SimDeadlockError


class Machine:
    """One run-instance of the simulated CMP multiprocessor."""

    def __init__(self, program: CompiledProgram,
                 cfg: MachineConfig = PAPER_MACHINE,
                 mode: str = "single",
                 env: Optional[RuntimeEnv] = None,
                 selfinv: bool = False,
                 a_exec_critical: bool = False,
                 sections_static: bool = False,
                 sync_after_reduction: bool = False,
                 io_cycles: float = 200.0,
                 obs="aggregate",
                 faults: Optional[FaultConfig] = None):
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}")
        if mode in ("double", "slipstream") and cfg.cpus_per_cmp < 2:
            raise ValueError(f"mode {mode!r} needs 2 CPUs per CMP")
        self.program = program
        self.cfg = cfg
        self.mode = mode
        self.env = env or RuntimeEnv()
        self.selfinv = selfinv
        self.a_exec_critical = a_exec_critical
        self.sections_static = sections_static
        self.sync_after_reduction = sync_after_reduction
        self.io_cycles = io_cycles
        self.slip_resources = (mode == "slipstream")

        # One sink per run: every producer's probe is minted from it.
        self.obs = make_sink(obs)
        self.engine = Engine(obs=self.obs.probe("engine"))
        self.memsys = CoherentMemorySystem(self.engine, cfg, sink=self.obs)
        self.memsys.noclass_base = RT_WORD_BASE
        self._rt_next = RT_WORD_BASE

        # Program image load: allocate the shared segment.
        self.gbase: List[int] = []
        for g in program.globals:
            self.gbase.append(self.memsys.allocator.alloc(
                g.nbytes, align=cfg.line_bytes))
        self.store = GlobalStore(program)
        self.output: List[Tuple] = []
        self.inputs: List[float] = []
        self._input_pos = 0
        self.recoveries: List[Tuple[str, str, Optional[int]]] = []
        self._parked: List[ThreadShell] = []
        self._done = False
        self._result = None

        # Streams and team.
        n_tasks = cfg.n_cmps * 2 if mode == "double" else cfg.n_cmps
        self.team = Team(self, n_tasks)
        self.shells: List[ThreadShell] = []
        self.channels: Dict[int, PairChannel] = {}
        self._build_shells()

        # Fault injection: materialize the seeded plan and arm every
        # hook.  Armed hooks only ever touch A-streams, channels, and
        # protocol-legal NI delays -- never R-stream state -- so a
        # faulted run must still produce correct output (the paper's
        # invariant the chaos harness asserts).
        self.fault_plan: Optional[FaultPlan] = None
        if faults is not None:
            plan = self.fault_plan = FaultPlan(faults)
            plan.bind(self.engine, self.obs.probe("faults"))
            for ch in self.channels.values():
                ch.faults = plan
            for shell in self.shells:
                if shell.role == "A":
                    shell.arm_faults(plan)
            self.memsys.arm_faults(plan)

    # ------------------------------------------------------------- topology

    def _build_shells(self) -> None:
        n = self.cfg.n_cmps
        if self.mode == "double":
            for t in range(2 * n):
                self.shells.append(ThreadShell(
                    self, self.team, t, "R", node=t // 2, cpu=t % 2))
            return
        for t in range(n):
            self.shells.append(ThreadShell(
                self, self.team, t, "R", node=t, cpu=0))
        if self.mode == "slipstream":
            sem_lat = self.cfg.cycles(self.cfg.pi_local_dc_time_ns)
            for t in range(n):
                ch = PairChannel(self.engine, t, op_latency=sem_lat,
                                 probe=self.obs.probe(f"chan:n{t}"))
                self.channels[t] = ch
                a = ThreadShell(self, self.team, t, "A", node=t, cpu=1)
                r = self.shells[t]
                r.channel = ch
                a.channel = ch
                r.pair = a
                a.pair = r
                self.shells.append(a)

    # ------------------------------------------------------------ services

    def rt_word(self, name: str) -> RTWord:
        """Allocate a runtime-internal shared word on its own line."""
        addr = self._rt_next
        self._rt_next += self.cfg.line_bytes
        if self._rt_next >= SHARED_LIMIT:
            raise MemoryError("runtime word space exhausted")
        return RTWord(addr, 0, name)

    def gaddr(self, gidx: int, flat: int) -> int:
        """Simulated address of one element of a shared global."""
        return self.gbase[gidx] + flat * 8

    def next_input(self) -> float:
        """Consume the next read_input() value."""
        if self._input_pos >= len(self.inputs):
            raise RuntimeError("read_input(): input exhausted")
        v = self.inputs[self._input_pos]
        self._input_pos += 1
        return v

    def master_done(self, result) -> None:
        """Master R-stream finished: stop the run."""
        self._done = True
        self._result = result

    def log_recovery(self, shell: ThreadShell, reason: str,
                     site: Optional[int] = None) -> None:
        """Record a divergence-recovery event.  ``site`` is the barrier
        site at which the R-stream detected divergence (negative for
        synthetic end-of-region joins), so reports can attribute
        recoveries to source lines via the image's site table."""
        self.recoveries.append((shell.name, reason, site))
        shell.probe.instant("slip.recovery", self.engine.now,
                            {"reason": reason, "site": site})
        shell.probe.count("slip.recoveries")

    def note_parked(self, shell: ThreadShell) -> None:
        """Track a parked (faulted) A-stream for diagnostics."""
        self._parked.append(shell)

    def unpark(self, shell: ThreadShell) -> None:
        """Remove a shell from the parked list after recovery."""
        try:
            self._parked.remove(shell)
        except ValueError:
            pass

    # ------------------------------------------------------------------ run

    def run(self, inputs: Optional[List[float]] = None,
            max_cycles: float = 2e9, max_steps: int = 200_000_000
            ) -> RunResult:
        """Simulate until main() returns; returns the RunResult."""
        self.inputs = list(inputs or [])
        for shell in self.shells:
            body = (shell.run_master() if shell.is_master
                    else shell.run_slave())
            shell.proc = self.engine.process(body, name=shell.name)
        steps = 0
        while not self._done:
            if not self.engine.step():
                raise self._hang_error("deadlock", "no runnable process")
            steps += 1
            if self.engine.now > max_cycles:
                raise self._hang_error(
                    "watchdog",
                    f"cycle budget max_cycles={max_cycles:g} exhausted")
            if steps > max_steps:
                raise self._hang_error(
                    "watchdog",
                    f"step budget max_steps={max_steps} exhausted")
        end = self.engine.now
        for shell in self.shells:
            if shell.proc.alive:
                shell.proc.kill()
        self.memsys.finalize()
        return self._collect(end)

    def _hang_error(self, kind: str, detail: str) -> SimDeadlockError:
        """Build the structured hang diagnostic (deadlock or watchdog):
        one row per stream with its state and wait reason."""
        rows: List[Dict[str, str]] = []
        for shell in self.shells:
            proc = shell.proc
            if proc is None:
                state, waiting = "unstarted", "-"
            elif not proc.alive or shell.finished:
                state, waiting = "finished", "-"
            elif shell in self._parked:
                state = "parked"
                waiting = (proc._waiting_on.name or "<event>"
                           if proc._waiting_on is not None else "-")
            elif proc._waiting_on is not None:
                state = "blocked"
                waiting = proc._waiting_on.name or "<event>"
            else:
                state, waiting = "runnable", "-"
            category = (shell.probe.current
                        if not shell.probe.closed else "-")
            rows.append({"process": shell.name, "state": state,
                         "waiting_on": waiting, "category": category})
        return SimDeadlockError(kind, self.engine.now, self.mode, rows,
                                detail)

    def _collect(self, end: float) -> RunResult:
        self.memsys.publish_cache_stats()
        self.team.publish_stats(self.obs.probe("team"))
        breakdowns = {}
        r_breakdown: Dict[str, float] = {}
        for shell in self.shells:
            probe = shell.probe
            if not probe.closed:
                probe.close(end)
            # Cache-hit stall cycles were flushed as lumped "busy" time
            # (synchronous fast path); reattribute them to "memory".
            fm = min(shell.fast_mem_cycles, probe.get("busy"))
            if fm:
                probe.transfer("busy", "memory", fm)
            shell.fast_mem_cycles = 0.0
            part = probe.as_dict()
            breakdowns[shell.name] = part
            if shell.role == "R":
                for k, v in part.items():
                    r_breakdown[k] = r_breakdown.get(k, 0.0) + v
        chan_stats = {
            n: {"tokens_consumed": ch.tokens_consumed,
                "decisions_forwarded": ch.decisions_forwarded,
                "recoveries": ch.recoveries}
            for n, ch in self.channels.items()}
        rt_stats = {track: counts
                    for track, c in sorted(self.obs.counters.items())
                    if (counts := c.as_dict())}
        return RunResult(
            mode=self.mode,
            cycles=end,
            result=self._result,
            output=self.output,
            store=self.store,
            breakdowns=breakdowns,
            r_breakdown=r_breakdown,
            classes=self.memsys.classes,
            mem_stats=self.memsys.machine_stats(),
            recoveries=self.recoveries,
            channel_stats=chan_stats,
            rt_stats=rt_stats,
            trace=self.obs.trace_events(),
            profile=self.obs.profile_data(),
            faults=(self.fault_plan.report()
                    if self.fault_plan is not None else None))


def run_program(program: CompiledProgram,
                cfg: MachineConfig = PAPER_MACHINE,
                mode: str = "single",
                env: Optional[RuntimeEnv] = None,
                inputs: Optional[List[float]] = None,
                max_cycles: float = 2e9,
                max_steps: int = 200_000_000,
                **kw) -> RunResult:
    """Convenience: build a machine and run the image once.
    ``max_cycles``/``max_steps`` bound the watchdog (a hang raises a
    structured :class:`SimDeadlockError` instead of running forever)."""
    return Machine(program, cfg, mode, env, **kw).run(
        inputs=inputs, max_cycles=max_cycles, max_steps=max_steps)
