"""The simulated machine: builds the hardware, places the streams,
loads a compiled image, and runs it to completion.

Three execution modes, as evaluated in the paper (§5.1):

* ``single``     -- one task per CMP, the second processor idle;
* ``double``     -- two tasks per CMP (maximum parallelism);
* ``slipstream`` -- one task per CMP run redundantly: the R-stream on
  processor 0, its reduced A-stream on processor 1.

The same compiled image runs in every mode; slipstream behaviour is
steered by ``OMP_SLIPSTREAM`` / the slipstream directive at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compiler.bytecode import CompiledProgram
from ..config.machine import MachineConfig, PAPER_MACHINE
from ..interp.funcrunner import GlobalStore
from ..mem.address import SHARED_BASE, SHARED_LIMIT
from ..mem.memsys import CoherentMemorySystem
from ..obs import make_sink
from ..sim import Engine
from ..slipstream.channel import PairChannel
from .env import RuntimeEnv
from .shell import ThreadShell
from .team import Team
from .words import RTWord

__all__ = ["Machine", "RunResult", "run_program", "MODES"]

MODES = ("single", "double", "slipstream")

#: Runtime-internal words live in the top half of the shared segment so
#: they can be excluded from the Figure-3/5 shared-data classification.
RT_WORD_BASE = SHARED_BASE + (SHARED_LIMIT - SHARED_BASE) // 2


@dataclass
class RunResult:
    """Everything one simulated run produces."""

    mode: str
    cycles: float
    result: object
    output: List[Tuple]
    store: GlobalStore
    breakdowns: Dict[str, Dict[str, float]]
    r_breakdown: Dict[str, float]
    classes: object                  # ClassStats
    mem_stats: object                # Counter
    recoveries: List[Tuple[str, str]]
    channel_stats: Dict[int, Dict[str, int]] = field(default_factory=dict)
    rt_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    trace: Optional[List[dict]] = None   # Chrome trace events (TraceSink)
    #: Per-track line profile (ProfileSink): track -> {(func, line,
    #: category, level): cycles}.  None unless the run was profiled.
    profile: Optional[Dict[str, Dict]] = None

    @property
    def time_ns(self) -> float:
        """Wall-clock nanoseconds at the paper's 1.2 GHz clock."""
        return self.cycles / 1.2     # informational; harness uses cycles

    def breakdown_fractions(self) -> Dict[str, float]:
        """Machine-wide R-stream time breakdown, normalized to 1."""
        tot = sum(self.r_breakdown.values())
        if tot <= 0:
            return {}
        return {k: v / tot for k, v in self.r_breakdown.items()}


class DeadlockError(RuntimeError):
    pass


class Machine:
    """One run-instance of the simulated CMP multiprocessor."""

    def __init__(self, program: CompiledProgram,
                 cfg: MachineConfig = PAPER_MACHINE,
                 mode: str = "single",
                 env: Optional[RuntimeEnv] = None,
                 selfinv: bool = False,
                 a_exec_critical: bool = False,
                 sections_static: bool = False,
                 sync_after_reduction: bool = False,
                 io_cycles: float = 200.0,
                 obs="aggregate"):
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}")
        if mode in ("double", "slipstream") and cfg.cpus_per_cmp < 2:
            raise ValueError(f"mode {mode!r} needs 2 CPUs per CMP")
        self.program = program
        self.cfg = cfg
        self.mode = mode
        self.env = env or RuntimeEnv()
        self.selfinv = selfinv
        self.a_exec_critical = a_exec_critical
        self.sections_static = sections_static
        self.sync_after_reduction = sync_after_reduction
        self.io_cycles = io_cycles
        self.slip_resources = (mode == "slipstream")

        # One sink per run: every producer's probe is minted from it.
        self.obs = make_sink(obs)
        self.engine = Engine(obs=self.obs.probe("engine"))
        self.memsys = CoherentMemorySystem(self.engine, cfg, sink=self.obs)
        self.memsys.noclass_base = RT_WORD_BASE
        self._rt_next = RT_WORD_BASE

        # Program image load: allocate the shared segment.
        self.gbase: List[int] = []
        for g in program.globals:
            self.gbase.append(self.memsys.allocator.alloc(
                g.nbytes, align=cfg.line_bytes))
        self.store = GlobalStore(program)
        self.output: List[Tuple] = []
        self.inputs: List[float] = []
        self._input_pos = 0
        self.recoveries: List[Tuple[str, str]] = []
        self._parked: List[ThreadShell] = []
        self._done = False
        self._result = None

        # Streams and team.
        n_tasks = cfg.n_cmps * 2 if mode == "double" else cfg.n_cmps
        self.team = Team(self, n_tasks)
        self.shells: List[ThreadShell] = []
        self.channels: Dict[int, PairChannel] = {}
        self._build_shells()

    # ------------------------------------------------------------- topology

    def _build_shells(self) -> None:
        n = self.cfg.n_cmps
        if self.mode == "double":
            for t in range(2 * n):
                self.shells.append(ThreadShell(
                    self, self.team, t, "R", node=t // 2, cpu=t % 2))
            return
        for t in range(n):
            self.shells.append(ThreadShell(
                self, self.team, t, "R", node=t, cpu=0))
        if self.mode == "slipstream":
            sem_lat = self.cfg.cycles(self.cfg.pi_local_dc_time_ns)
            for t in range(n):
                ch = PairChannel(self.engine, t, op_latency=sem_lat,
                                 probe=self.obs.probe(f"chan:n{t}"))
                self.channels[t] = ch
                a = ThreadShell(self, self.team, t, "A", node=t, cpu=1)
                r = self.shells[t]
                r.channel = ch
                a.channel = ch
                r.pair = a
                a.pair = r
                self.shells.append(a)

    # ------------------------------------------------------------ services

    def rt_word(self, name: str) -> RTWord:
        """Allocate a runtime-internal shared word on its own line."""
        addr = self._rt_next
        self._rt_next += self.cfg.line_bytes
        if self._rt_next >= SHARED_LIMIT:
            raise MemoryError("runtime word space exhausted")
        return RTWord(addr, 0, name)

    def gaddr(self, gidx: int, flat: int) -> int:
        """Simulated address of one element of a shared global."""
        return self.gbase[gidx] + flat * 8

    def next_input(self) -> float:
        """Consume the next read_input() value."""
        if self._input_pos >= len(self.inputs):
            raise RuntimeError("read_input(): input exhausted")
        v = self.inputs[self._input_pos]
        self._input_pos += 1
        return v

    def master_done(self, result) -> None:
        """Master R-stream finished: stop the run."""
        self._done = True
        self._result = result

    def log_recovery(self, shell: ThreadShell, reason: str) -> None:
        """Record a divergence-recovery event."""
        self.recoveries.append((shell.name, reason))
        shell.probe.instant("slip.recovery", self.engine.now,
                            {"reason": reason})
        shell.probe.count("slip.recoveries")

    def note_parked(self, shell: ThreadShell) -> None:
        """Track a parked (faulted) A-stream for diagnostics."""
        self._parked.append(shell)

    def unpark(self, shell: ThreadShell) -> None:
        """Remove a shell from the parked list after recovery."""
        try:
            self._parked.remove(shell)
        except ValueError:
            pass

    # ------------------------------------------------------------------ run

    def run(self, inputs: Optional[List[float]] = None,
            max_cycles: float = 2e9, max_steps: int = 200_000_000
            ) -> RunResult:
        """Simulate until main() returns; returns the RunResult."""
        self.inputs = list(inputs or [])
        for shell in self.shells:
            body = (shell.run_master() if shell.is_master
                    else shell.run_slave())
            shell.proc = self.engine.process(body, name=shell.name)
        steps = 0
        while not self._done:
            if not self.engine.step():
                raise DeadlockError(
                    f"simulation deadlocked at {self.engine.now:.0f} cycles "
                    f"(mode={self.mode}); parked={[]}".replace(
                        "[]", str([s.name for s in self._parked])))
            steps += 1
            if self.engine.now > max_cycles:
                raise RuntimeError(
                    f"exceeded max_cycles={max_cycles:g} "
                    f"(mode={self.mode})")
            if steps > max_steps:
                raise RuntimeError(f"exceeded max_steps={max_steps}")
        end = self.engine.now
        for shell in self.shells:
            if shell.proc.alive:
                shell.proc.kill()
        self.memsys.finalize()
        return self._collect(end)

    def _collect(self, end: float) -> RunResult:
        self.memsys.publish_cache_stats()
        self.team.publish_stats(self.obs.probe("team"))
        breakdowns = {}
        r_breakdown: Dict[str, float] = {}
        for shell in self.shells:
            probe = shell.probe
            if not probe.closed:
                probe.close(end)
            # Cache-hit stall cycles were flushed as lumped "busy" time
            # (synchronous fast path); reattribute them to "memory".
            fm = min(shell.fast_mem_cycles, probe.get("busy"))
            if fm:
                probe.transfer("busy", "memory", fm)
            shell.fast_mem_cycles = 0.0
            part = probe.as_dict()
            breakdowns[shell.name] = part
            if shell.role == "R":
                for k, v in part.items():
                    r_breakdown[k] = r_breakdown.get(k, 0.0) + v
        chan_stats = {
            n: {"tokens_consumed": ch.tokens_consumed,
                "decisions_forwarded": ch.decisions_forwarded,
                "recoveries": ch.recoveries}
            for n, ch in self.channels.items()}
        rt_stats = {track: counts
                    for track, c in sorted(self.obs.counters.items())
                    if (counts := c.as_dict())}
        return RunResult(
            mode=self.mode,
            cycles=end,
            result=self._result,
            output=self.output,
            store=self.store,
            breakdowns=breakdowns,
            r_breakdown=r_breakdown,
            classes=self.memsys.classes,
            mem_stats=self.memsys.machine_stats(),
            recoveries=self.recoveries,
            channel_stats=chan_stats,
            rt_stats=rt_stats,
            trace=self.obs.trace_events(),
            profile=self.obs.profile_data())


def run_program(program: CompiledProgram,
                cfg: MachineConfig = PAPER_MACHINE,
                mode: str = "single",
                env: Optional[RuntimeEnv] = None,
                inputs: Optional[List[float]] = None,
                **kw) -> RunResult:
    """Convenience: build a machine and run the image once."""
    return Machine(program, cfg, mode, env, **kw).run(inputs=inputs)
