"""Thread team: Omni-style master/slave pool, job dispatch, worksharing.

The Omni runtime creates all processes at program start and parks the
slaves in an idle pool: "The idle processes spin (on a flag), waiting
for jobs by the master.  When a parallel region is encountered, the
master assigns the job ... to a global variable, then sets the flags".
We reproduce that structure: per-slave job-flag words (spun on -> the
paper's *job wait* time), a job descriptor read by every participant,
per-slave done words for the join, and shared scheduler state for
dynamic/guided worksharing (a lock-protected counter -- "the scheduling
decision should be serialized using a critical section").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .words import RTWord, SpinLock, SenseBarrier

__all__ = ["Job", "LoopShared", "LoopLocal", "Team"]

#: Maximum captured args a job descriptor publishes (timing only).
MAX_JOB_ARGS = 16


@dataclass
class Job:
    """One posted parallel region."""

    gen: int
    fidx: int
    args: Tuple
    slip_setting: Tuple[str, int]
    serial: bool = False        # if(...) clause was false: team of one
    team_size: int = 1


@dataclass
class LoopShared:
    """Shared scheduler state for one dynamic/guided loop instance."""

    lock: SpinLock
    next_word: RTWord
    total: int


@dataclass
class LoopLocal:
    """Per-thread view of the active worksharing construct at a site."""

    seq: int
    kind: str
    chunk: Optional[int]
    total: int
    # static scheduling cursor
    pos: int = 0
    block_given: bool = False
    # index of the next decision (for A-R mailbox alignment)
    decisions: int = 0
    # did one of this thread's chunks contain the final iteration?
    had_last: bool = False


class Team:
    """All runtime-shared state for one program run."""

    def __init__(self, machine, n_tasks: int):
        self.machine = machine
        self.n_tasks = n_tasks              # parallel tasks (R-streams)
        self.jobs: List[Optional[Job]] = [None]   # gen 0 unused
        self.gen = 0
        # Per-slave words, placed on distinct lines (first touch by the
        # spinning slave homes them at the slave's node).
        self.job_flags: List[RTWord] = [
            machine.rt_word(f"jobflag{t}") for t in range(1, n_tasks)]
        self.done_words: List[RTWord] = [
            machine.rt_word(f"done{t}") for t in range(1, n_tasks)]
        self.desc_words: List[RTWord] = [
            machine.rt_word(f"jobdesc{k}") for k in range(2 + MAX_JOB_ARGS)]
        self.barrier = SenseBarrier(
            machine.rt_word("bar.count"), machine.rt_word("bar.sense"),
            participants=n_tasks)
        self.reduction_lock = SpinLock(machine.rt_word("redlock"))
        self._crit_locks: Dict[int, SpinLock] = {}
        self._atomic_locks: Dict[int, SpinLock] = {}
        self._loops: Dict[Tuple[int, int], LoopShared] = {}
        self._singles: Dict[Tuple[int, int], RTWord] = {}
        self.region_setting: Tuple[str, int] = ("GLOBAL_SYNC", 0)

    # ------------------------------------------------------------- lookups

    def crit_lock(self, cid: int) -> SpinLock:
        """Lock backing one named critical section."""
        lk = self._crit_locks.get(cid)
        if lk is None:
            lk = SpinLock(self.machine.rt_word(f"crit{cid}"))
            self._crit_locks[cid] = lk
        return lk

    def atomic_lock(self, site: int) -> SpinLock:
        """Lock backing one atomic construct site."""
        lk = self._atomic_locks.get(site)
        if lk is None:
            lk = SpinLock(self.machine.rt_word(f"atomic{site}"))
            self._atomic_locks[site] = lk
        return lk

    def loop_shared(self, site: int, seq: int, total: int) -> LoopShared:
        """Get-or-create the shared counter for a loop instance (the
        first thread to reach sched_init materializes it)."""
        key = (site, seq)
        ls = self._loops.get(key)
        if ls is None:
            ls = LoopShared(
                lock=SpinLock(self.machine.rt_word(f"schedlock{site}.{seq}")),
                next_word=self.machine.rt_word(f"schednext{site}.{seq}"),
                total=total)
            self._loops[key] = ls
        return ls

    def single_ticket(self, site: int, seq: int) -> RTWord:
        """Shared ticket word for one single-construct instance."""
        key = (site, seq)
        w = self._singles.get(key)
        if w is None:
            w = self.machine.rt_word(f"single{site}.{seq}")
            self._singles[key] = w
        return w

    # ---------------------------------------------------------- job posting

    def new_job(self, fidx: int, args: Tuple,
                slip_setting: Tuple[str, int], serial: bool,
                team_size: Optional[int] = None) -> Job:
        """Post the next parallel-region job descriptor."""
        self.gen += 1
        if team_size is None:
            team_size = 1 if serial else self.n_tasks
        job = Job(self.gen, fidx, tuple(args), slip_setting,
                  serial=serial, team_size=team_size)
        self.jobs.append(job)
        return job

    def job_at(self, gen: int) -> Optional[Job]:
        """Job for a generation number (None if not yet posted)."""
        return self.jobs[gen] if gen < len(self.jobs) else None

    # ------------------------------------------------------------ reporting

    def publish_stats(self, probe) -> None:
        """Fold runtime-side tallies (barrier episodes, lock traffic,
        posted jobs) into one probe track at collection time."""
        probe.count("barrier.episodes", self.barrier.episodes)
        probe.count("jobs.posted", self.gen)
        probe.count("loops.materialized", len(self._loops))
        locks = ([self.reduction_lock]
                 + list(self._crit_locks.values())
                 + list(self._atomic_locks.values())
                 + [ls.lock for ls in self._loops.values()])
        probe.count("lock.acquisitions",
                    sum(lk.acquisitions for lk in locks))
        probe.count("lock.contended", sum(lk.contended for lk in locks))
