"""AST node definitions for SlipC (the analogue of Omni's Xobject IR).

Nodes are plain attribute holders with a ``line`` for diagnostics.
Directive nodes (OmpParallel, OmpFor, ...) wrap the statements they
apply to, mirroring how Omni attaches pragma info to the parallel flow
graph before outlining.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Node", "Program", "VarDecl", "FuncDef", "Block",
    "Assign", "If", "For", "While", "Return", "Break", "Continue",
    "ExprStmt", "Print",
    "Num", "Var", "Index", "BinOp", "UnOp", "Call",
    "OmpParallel", "OmpFor", "OmpSingle", "OmpMaster", "OmpCritical",
    "OmpAtomic", "OmpBarrier", "OmpFlush", "OmpSections", "OmpSection",
    "OmpSlipstream", "Schedule", "Reduction",
]


class Node:
    """Base class: every AST node carries a source line."""
    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line

    def __repr__(self) -> str:
        pairs = []
        for klass in type(self).__mro__:
            for s in getattr(klass, "__slots__", ()):
                if s != "line":
                    pairs.append(f"{s}={getattr(self, s)!r}")
        return f"{type(self).__name__}({', '.join(pairs)})"


# --------------------------------------------------------------- top level

class Program(Node):
    """A full translation unit: file-scope declarations + functions."""
    __slots__ = ("globals", "funcs")

    def __init__(self, globals_: List["VarDecl"], funcs: List["FuncDef"],
                 line: int = 0):
        super().__init__(line)
        self.globals = globals_
        self.funcs = funcs


class VarDecl(Node):
    """``double a[64][64];`` or ``int n;`` with optional scalar init."""

    __slots__ = ("typ", "name", "dims", "init")

    def __init__(self, typ: str, name: str, dims: Sequence[int],
                 init: Optional["Node"] = None, line: int = 0):
        super().__init__(line)
        self.typ = typ              # "int" | "double"
        self.name = name
        self.dims = tuple(dims)     # () for scalars
        self.init = init


class FuncDef(Node):
    """Function definition with typed parameters and a body block."""
    __slots__ = ("ret", "name", "params", "body")

    def __init__(self, ret: str, name: str,
                 params: List[Tuple[str, str]], body: "Block", line: int = 0):
        super().__init__(line)
        self.ret = ret
        self.name = name
        self.params = params        # [(type, name), ...]
        self.body = body


# --------------------------------------------------------------- statements

class Block(Node):
    """Braced statement list ({...}); opens a C lexical scope."""
    __slots__ = ("stmts", "is_scope")

    def __init__(self, stmts: List[Node], line: int = 0,
                 is_scope: bool = True):
        super().__init__(line)
        self.stmts = stmts
        #: False for parser-synthesized wrappers (comma declaration
        #: lists), which must not open a C lexical scope.
        self.is_scope = is_scope


class Assign(Node):
    """``target = value`` where target is Var or Index."""

    __slots__ = ("target", "value")

    def __init__(self, target: Node, value: Node, line: int = 0):
        super().__init__(line)
        self.target = target
        self.value = value


class If(Node):
    """if/else statement."""
    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond: Node, then: Node,
                 orelse: Optional[Node], line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.orelse = orelse


class For(Node):
    """C-style ``for (init; cond; step) body`` (init/step are Assigns)."""

    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init: Optional[Node], cond: Optional[Node],
                 step: Optional[Node], body: Node, line: int = 0):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class While(Node):
    """while loop."""
    __slots__ = ("cond", "body")

    def __init__(self, cond: Node, body: Node, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class Return(Node):
    """return statement (value optional)."""
    __slots__ = ("value",)

    def __init__(self, value: Optional[Node], line: int = 0):
        super().__init__(line)
        self.value = value


class Break(Node):
    """break statement."""
    __slots__ = ()


class Continue(Node):
    """continue statement."""
    __slots__ = ()


class ExprStmt(Node):
    """Expression evaluated for effect (e.g. a call)."""
    __slots__ = ("expr",)

    def __init__(self, expr: Node, line: int = 0):
        super().__init__(line)
        self.expr = expr


class Print(Node):
    """``print(fmt, args...)`` -- an output I/O operation."""

    __slots__ = ("args",)

    def __init__(self, args: List[Node], line: int = 0):
        super().__init__(line)
        self.args = args


# -------------------------------------------------------------- expressions

class Num(Node):
    """Numeric (or string, for print formats) literal."""
    __slots__ = ("value",)

    def __init__(self, value, line: int = 0):
        super().__init__(line)
        self.value = value


class Var(Node):
    """Scalar variable reference."""
    __slots__ = ("name",)

    def __init__(self, name: str, line: int = 0):
        super().__init__(line)
        self.name = name


class Index(Node):
    """``arr[i][j]...`` -- multi-dimensional element access."""

    __slots__ = ("name", "indices")

    def __init__(self, name: str, indices: List[Node], line: int = 0):
        super().__init__(line)
        self.name = name
        self.indices = indices


class BinOp(Node):
    """Binary operation (arithmetic, comparison, logical)."""
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Node, rhs: Node, line: int = 0):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class UnOp(Node):
    """Unary operation (- or !)."""
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Node, line: int = 0):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Call(Node):
    """Function or intrinsic call."""
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: List[Node], line: int = 0):
        super().__init__(line)
        self.name = name
        self.args = args


# ---------------------------------------------------------- OpenMP clauses

class Schedule:
    """schedule(kind[, chunk]) clause."""

    __slots__ = ("kind", "chunk")

    KINDS = ("static", "dynamic", "guided", "runtime")

    def __init__(self, kind: str = "static", chunk: Optional[int] = None):
        if kind not in self.KINDS:
            raise ValueError(f"bad schedule kind {kind!r}")
        self.kind = kind
        self.chunk = chunk

    def __repr__(self) -> str:
        return f"Schedule({self.kind},{self.chunk})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, Schedule)
                and (self.kind, self.chunk) == (other.kind, other.chunk))


class Reduction:
    """reduction(op: var, var...) clause."""

    __slots__ = ("op", "names")

    OPS = ("+", "*", "max", "min")

    def __init__(self, op: str, names: List[str]):
        if op not in self.OPS:
            raise ValueError(f"bad reduction op {op!r}")
        self.op = op
        self.names = names

    def __repr__(self) -> str:
        return f"Reduction({self.op},{self.names})"


# -------------------------------------------------------- OpenMP directives

class OmpParallel(Node):
    """#pragma omp parallel region with its data clauses."""
    __slots__ = ("body", "private", "firstprivate", "shared", "reductions",
                 "if_expr", "num_threads")

    def __init__(self, body: Node, private=(), firstprivate=(), shared=(),
                 reductions=(), if_expr=None, num_threads=None, line: int = 0):
        super().__init__(line)
        self.body = body
        self.private = list(private)
        self.firstprivate = list(firstprivate)
        self.shared = list(shared)
        self.reductions = list(reductions)
        self.if_expr = if_expr
        self.num_threads = num_threads


class OmpFor(Node):
    """#pragma omp for worksharing loop with schedule/clauses."""
    __slots__ = ("loop", "schedule", "nowait", "private", "lastprivate",
                 "reductions")

    def __init__(self, loop: For, schedule: Optional[Schedule] = None,
                 nowait: bool = False, private=(), reductions=(),
                 lastprivate=(), line: int = 0):
        super().__init__(line)
        self.loop = loop
        self.schedule = schedule
        self.nowait = nowait
        self.private = list(private)
        self.lastprivate = list(lastprivate)
        self.reductions = list(reductions)


class OmpSingle(Node):
    """#pragma omp single block (A-streams skip it, SS 3.1)."""
    __slots__ = ("body", "nowait")

    def __init__(self, body: Node, nowait: bool = False, line: int = 0):
        super().__init__(line)
        self.body = body
        self.nowait = nowait


class OmpMaster(Node):
    """#pragma omp master block (A-stream of the master executes it)."""
    __slots__ = ("body",)

    def __init__(self, body: Node, line: int = 0):
        super().__init__(line)
        self.body = body


class OmpCritical(Node):
    """#pragma omp critical [name] block (A-streams skip it)."""
    __slots__ = ("body", "name")

    def __init__(self, body: Node, name: str = "", line: int = 0):
        super().__init__(line)
        self.body = body
        self.name = name or "_default_"


class OmpAtomic(Node):
    """#pragma omp atomic update (A-streams execute it, SS 3.1)."""
    __slots__ = ("stmt",)

    def __init__(self, stmt: Assign, line: int = 0):
        super().__init__(line)
        self.stmt = stmt


class OmpBarrier(Node):
    """#pragma omp barrier (an A-R token synchronization point)."""
    __slots__ = ()


class OmpFlush(Node):
    """#pragma omp flush: void on hardware-coherent machines."""
    __slots__ = ("names",)

    def __init__(self, names=(), line: int = 0):
        super().__init__(line)
        self.names = list(names)


class OmpSections(Node):
    """#pragma omp sections functional-parallelism construct."""
    __slots__ = ("sections", "nowait")

    def __init__(self, sections: List["OmpSection"], nowait: bool = False,
                 line: int = 0):
        super().__init__(line)
        self.sections = sections
        self.nowait = nowait


class OmpSection(Node):
    """One #pragma omp section within a sections construct."""
    __slots__ = ("body",)

    def __init__(self, body: Node, line: int = 0):
        super().__init__(line)
        self.body = body


class OmpSlipstream(Node):
    """The paper's new directive: ``#pragma omp slipstream(type[, tokens])``
    optionally guarded by ``if(expr)``."""

    __slots__ = ("sync_type", "tokens", "if_expr")

    TYPES = ("GLOBAL_SYNC", "LOCAL_SYNC", "RUNTIME_SYNC", "NONE")

    def __init__(self, sync_type: str, tokens: int = 0,
                 if_expr: Optional[Node] = None, line: int = 0):
        super().__init__(line)
        if sync_type not in self.TYPES:
            raise ValueError(f"bad slipstream sync type {sync_type!r}")
        self.sync_type = sync_type
        self.tokens = tokens
        self.if_expr = if_expr
