"""Recursive-descent parser for SlipC.

Produces the AST defined in ``ast.py``.  OpenMP pragmas are parsed by
``pragmas.py`` and attached as directive nodes wrapping the statement
(or loop / structured block) that follows them, matching OpenMP's
"directive applies to the next statement" rule.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast as A
from .errors import ParseError
from .lexer import Token, tokenize
from .pragmas import Directive, parse_pragma

__all__ = ["parse", "parse_expression"]

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/="}
_TYPE_WORDS = {"int", "double", "float", "void"}


def parse(source: str) -> A.Program:
    """Parse a full translation unit."""
    return _Parser(tokenize(source)).program()


def parse_expression(text: str, line: int = 0) -> A.Node:
    """Parse a standalone expression (used for pragma if-clauses)."""
    p = _Parser(tokenize(text))
    expr = p.expression()
    p.expect_kind("eof")
    return expr


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.toks = tokens
        self.pos = 0

    # ------------------------------------------------------------- helpers

    @property
    def cur(self) -> Token:
        return self.toks[self.pos]

    def advance(self) -> Token:
        t = self.toks[self.pos]
        if t.kind != "eof":
            self.pos += 1
        return t

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        t = self.cur
        return t.kind == kind and (text is None or t.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str) -> Token:
        if not self.check(kind, text):
            raise ParseError(
                f"expected {text!r}, found {self.cur.text!r}", self.cur.line)
        return self.advance()

    def expect_kind(self, kind: str) -> Token:
        if self.cur.kind != kind:
            raise ParseError(
                f"expected {kind}, found {self.cur.text!r}", self.cur.line)
        return self.advance()

    def _is_type(self) -> bool:
        return self.cur.kind == "kw" and self.cur.text in _TYPE_WORDS

    # ------------------------------------------------------------ top level

    def program(self) -> A.Program:
        globals_: List[A.VarDecl] = []
        funcs: List[A.FuncDef] = []
        prelude: List[A.Node] = []
        while not self.check("eof"):
            if self.cur.kind == "pragma":
                dv = parse_pragma(self.cur.text, self.cur.line)
                self.advance()
                if dv is None:
                    continue
                if dv.name != "slipstream":
                    raise ParseError(
                        f"only the slipstream directive may appear at file "
                        f"scope, not omp {dv.name}", dv.line)
                prelude.append(_slipstream_node(dv))
                continue
            if not self._is_type():
                raise ParseError(
                    f"expected declaration, found {self.cur.text!r}",
                    self.cur.line)
            typ = self.advance().text
            name = self.expect_kind("id").text
            if self.check("op", "("):
                funcs.append(self._funcdef(typ, name))
            else:
                globals_.extend(self._global_declarators(typ, name))
        prog = A.Program(globals_, funcs)
        # File-scope slipstream directives become the program's initial
        # global setting, executed before main().
        for f in prog.funcs:
            if f.name == "main" and prelude:
                f.body.stmts[0:0] = prelude
                break
        else:
            if prelude:
                raise ParseError("file-scope slipstream directive requires "
                                 "a main() function", prelude[0].line)
        return prog

    def _global_declarators(self, typ: str, first_name: str) -> List[A.VarDecl]:
        decls = []
        name = first_name
        while True:
            dims = self._dims()
            init = None
            if self.accept("op", "="):
                init = self.expression()
            decls.append(A.VarDecl(_norm_type(typ), name, dims, init,
                                   self.cur.line))
            if self.accept("op", ","):
                name = self.expect_kind("id").text
                continue
            self.expect("op", ";")
            return decls

    def _dims(self) -> List[int]:
        dims = []
        while self.accept("op", "["):
            n = self.expect_kind("num")
            try:
                dims.append(int(n.text))
            except ValueError:
                raise ParseError("array dimensions must be integer "
                                 "constants", n.line) from None
            self.expect("op", "]")
        return dims

    def _funcdef(self, ret: str, name: str) -> A.FuncDef:
        line = self.cur.line
        self.expect("op", "(")
        params = []
        if not self.check("op", ")"):
            while True:
                if not self._is_type():
                    raise ParseError("expected parameter type",
                                     self.cur.line)
                ptyp = _norm_type(self.advance().text)
                pname = self.expect_kind("id").text
                params.append((ptyp, pname))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.block()
        return A.FuncDef(_norm_type(ret), name, params, body, line)

    # ----------------------------------------------------------- statements

    def block(self) -> A.Block:
        line = self.cur.line
        self.expect("op", "{")
        stmts = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise ParseError("unterminated block", line)
            stmts.append(self.statement())
        self.expect("op", "}")
        return A.Block(stmts, line)

    def statement(self) -> A.Node:
        t = self.cur
        if t.kind == "pragma":
            return self._pragma_statement()
        if t.kind == "op" and t.text == "{":
            return self.block()
        if self._is_type():
            typ = self.advance().text
            name = self.expect_kind("id").text
            decls = self._global_declarators(typ, name)
            if len(decls) == 1:
                return decls[0]
            return A.Block(decls, t.line, is_scope=False)
        if t.kind == "kw":
            if t.text == "if":
                return self._if()
            if t.text == "for":
                return self._for()
            if t.text == "while":
                return self._while()
            if t.text == "return":
                self.advance()
                value = None if self.check("op", ";") else self.expression()
                self.expect("op", ";")
                return A.Return(value, t.line)
            if t.text == "break":
                self.advance()
                self.expect("op", ";")
                return A.Break(t.line)
            if t.text == "continue":
                self.advance()
                self.expect("op", ";")
                return A.Continue(t.line)
        if t.kind == "id" and t.text == "print":
            return self._print()
        stmt = self._simple_statement()
        self.expect("op", ";")
        return stmt

    def _simple_statement(self) -> A.Node:
        """Assignment or expression statement (no trailing ';')."""
        line = self.cur.line
        expr = self.expression()
        if self.cur.kind == "op" and self.cur.text in _ASSIGN_OPS:
            op = self.advance().text
            if not isinstance(expr, (A.Var, A.Index)):
                raise ParseError("invalid assignment target", line)
            rhs = self.expression()
            if op != "=":
                rhs = A.BinOp(op[0], _clone_lvalue(expr), rhs, line)
            return A.Assign(expr, rhs, line)
        return A.ExprStmt(expr, line)

    def _if(self) -> A.If:
        line = self.advance().line
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        then = self.statement()
        orelse = None
        if self.accept("kw", "else"):
            orelse = self.statement()
        return A.If(cond, then, orelse, line)

    def _for(self) -> A.For:
        line = self.advance().line
        self.expect("op", "(")
        init = None if self.check("op", ";") else self._simple_statement()
        self.expect("op", ";")
        cond = None if self.check("op", ";") else self.expression()
        self.expect("op", ";")
        step = None if self.check("op", ")") else self._simple_statement()
        self.expect("op", ")")
        body = self.statement()
        return A.For(init, cond, step, body, line)

    def _while(self) -> A.While:
        line = self.advance().line
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        return A.While(cond, self.statement(), line)

    def _print(self) -> A.Print:
        line = self.advance().line
        self.expect("op", "(")
        args = []
        if not self.check("op", ")"):
            while True:
                if self.cur.kind == "str":
                    args.append(A.Num(self.advance().text, line))
                else:
                    args.append(self.expression())
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        self.expect("op", ";")
        return A.Print(args, line)

    # ----------------------------------------------------------- directives

    def _pragma_statement(self) -> A.Node:
        dv = parse_pragma(self.cur.text, self.cur.line)
        self.advance()
        if dv is None:
            return self.statement()
        return self._directive_to_node(dv)

    def _directive_to_node(self, dv: Directive) -> A.Node:
        if dv.name == "slipstream":
            return _slipstream_node(dv)
        if dv.name == "barrier":
            return A.OmpBarrier(dv.line)
        if dv.name == "flush":
            return A.OmpFlush(dv.flush_names, dv.line)
        if dv.name in ("parallel", "parallel for", "parallel sections"):
            return self._parallel(dv)
        if dv.name == "for":
            return self._omp_for(dv)
        if dv.name == "single":
            return A.OmpSingle(self.statement(), dv.nowait, dv.line)
        if dv.name == "master":
            return A.OmpMaster(self.statement(), dv.line)
        if dv.name == "critical":
            return A.OmpCritical(self.statement(), dv.critical_name, dv.line)
        if dv.name == "atomic":
            stmt = self._simple_statement()
            self.expect("op", ";")
            if not isinstance(stmt, A.Assign):
                raise ParseError("atomic requires an update statement",
                                 dv.line)
            return A.OmpAtomic(stmt, dv.line)
        if dv.name == "sections":
            return self._sections(dv)
        if dv.name == "section":
            raise ParseError("omp section outside omp sections", dv.line)
        raise ParseError(f"unhandled directive {dv.name!r}", dv.line)

    def _parallel(self, dv: Directive) -> A.OmpParallel:
        if dv.name == "parallel for":
            body: A.Node = self._omp_for(dv)
        elif dv.name == "parallel sections":
            body = self._sections(dv)
        else:
            body = self.statement()
        return A.OmpParallel(
            body, private=dv.private, firstprivate=dv.firstprivate,
            shared=dv.shared, reductions=dv.reductions,
            if_expr=(parse_expression(dv.if_text, dv.line)
                     if dv.if_text else None),
            num_threads=(parse_expression(dv.num_threads, dv.line)
                         if dv.num_threads else None),
            line=dv.line)

    def _omp_for(self, dv: Directive) -> A.OmpFor:
        loop = self.statement()
        if not isinstance(loop, A.For):
            raise ParseError("omp for must be followed by a for loop",
                             dv.line)
        return A.OmpFor(loop, dv.schedule, dv.nowait, dv.private,
                        dv.reductions, dv.lastprivate, dv.line)

    def _sections(self, dv: Directive) -> A.OmpSections:
        line = self.cur.line
        self.expect("op", "{")
        sections = []
        while not self.check("op", "}"):
            if self.cur.kind != "pragma":
                raise ParseError("omp sections may only contain "
                                 "#pragma omp section blocks", self.cur.line)
            sub = parse_pragma(self.cur.text, self.cur.line)
            self.advance()
            if sub is None or sub.name != "section":
                raise ParseError("expected #pragma omp section", line)
            sections.append(A.OmpSection(self.statement(), sub.line))
        self.expect("op", "}")
        return A.OmpSections(sections, dv.nowait, dv.line)

    # ---------------------------------------------------------- expressions

    def expression(self) -> A.Node:
        return self._or()

    def _or(self) -> A.Node:
        node = self._and()
        while self.check("op", "||"):
            line = self.advance().line
            node = A.BinOp("||", node, self._and(), line)
        return node

    def _and(self) -> A.Node:
        node = self._equality()
        while self.check("op", "&&"):
            line = self.advance().line
            node = A.BinOp("&&", node, self._equality(), line)
        return node

    def _equality(self) -> A.Node:
        node = self._relational()
        while self.cur.kind == "op" and self.cur.text in ("==", "!="):
            op = self.advance()
            node = A.BinOp(op.text, node, self._relational(), op.line)
        return node

    def _relational(self) -> A.Node:
        node = self._additive()
        while self.cur.kind == "op" and self.cur.text in ("<", "<=", ">", ">="):
            op = self.advance()
            node = A.BinOp(op.text, node, self._additive(), op.line)
        return node

    def _additive(self) -> A.Node:
        node = self._multiplicative()
        while self.cur.kind == "op" and self.cur.text in ("+", "-"):
            op = self.advance()
            node = A.BinOp(op.text, node, self._multiplicative(), op.line)
        return node

    def _multiplicative(self) -> A.Node:
        node = self._unary()
        while self.cur.kind == "op" and self.cur.text in ("*", "/", "%"):
            op = self.advance()
            node = A.BinOp(op.text, node, self._unary(), op.line)
        return node

    def _unary(self) -> A.Node:
        if self.check("op", "-"):
            line = self.advance().line
            return A.UnOp("-", self._unary(), line)
        if self.check("op", "!"):
            line = self.advance().line
            return A.UnOp("!", self._unary(), line)
        return self._postfix()

    def _postfix(self) -> A.Node:
        t = self.cur
        if t.kind == "num":
            self.advance()
            text = t.text
            if "." in text or "e" in text or "E" in text:
                return A.Num(float(text), t.line)
            return A.Num(int(text), t.line)
        if t.kind == "op" and t.text == "(":
            self.advance()
            inner = self.expression()
            self.expect("op", ")")
            return inner
        if t.kind == "id":
            self.advance()
            if self.check("op", "("):
                self.advance()
                args = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return A.Call(t.text, args, t.line)
            if self.check("op", "["):
                indices = []
                while self.accept("op", "["):
                    indices.append(self.expression())
                    self.expect("op", "]")
                return A.Index(t.text, indices, t.line)
            return A.Var(t.text, t.line)
        raise ParseError(f"unexpected token {t.text!r}", t.line)


def _norm_type(t: str) -> str:
    return "double" if t == "float" else t


def _clone_lvalue(node: A.Node) -> A.Node:
    """Duplicate an lvalue for compound-assignment desugaring.

    Index expressions are shared structurally; the code generator
    evaluates index expressions once per occurrence, which matches C
    semantics for the side-effect-free index expressions SlipC allows.
    """
    if isinstance(node, A.Var):
        return A.Var(node.name, node.line)
    assert isinstance(node, A.Index)
    return A.Index(node.name, list(node.indices), node.line)


def _slipstream_node(dv: Directive) -> A.OmpSlipstream:
    return A.OmpSlipstream(
        dv.slip_type, dv.slip_tokens,
        if_expr=(parse_expression(dv.if_text, dv.line)
                 if dv.if_text else None),
        line=dv.line)
