"""SlipC front end: lexer, parser, OpenMP pragmas, semantic analysis."""

from . import ast
from .errors import CompileError, LexError, ParseError, SemanticError
from .lexer import Token, tokenize
from .parser import parse, parse_expression
from .pragmas import Directive, parse_pragma
from .sema import GlobalSym, RegionInfo, SemaInfo, analyze

__all__ = [
    "ast", "CompileError", "LexError", "ParseError", "SemanticError",
    "Token", "tokenize", "parse", "parse_expression",
    "Directive", "parse_pragma",
    "GlobalSym", "RegionInfo", "SemaInfo", "analyze",
]
