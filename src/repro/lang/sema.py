"""Semantic analysis: symbol resolution and shared/private classification.

The paper's central observation about OpenMP is that it "requires shared
data to be exposed explicitly to the compiler", which is what lets the
compiler apply slipstream unconditionally.  In SlipC the rule is:

* file-scope variables are **shared** (they live in the contiguous
  shared segment and every access is a simulated coherent memory op);
* function locals and parallel-region locals are **private** (CMP-local,
  charged as plain compute);
* ``private``/``firstprivate`` clauses give a region a private copy of a
  shared variable; ``reduction`` targets must be shared scalars;
* scalars of the enclosing function referenced inside a parallel region
  are captured **by value** at region entry (and may not be written
  inside the region) -- Omni's shared-stack pointer passing replaced by
  copy-in, which is equivalent for the read-only uses OpenMP programs
  make of them and keeps A- and R-streams trivially consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from . import ast as A
from .errors import SemanticError

__all__ = ["GlobalSym", "RegionInfo", "SemaInfo", "analyze",
           "collect_var_reads", "collect_var_writes", "declared_locals"]

INTRINSICS = {
    "sqrt": 1, "fabs": 1, "exp": 1, "log": 1, "pow": 2,
    "min": 2, "max": 2, "mod": 2, "floor": 1,
    "omp_get_thread_num": 0, "omp_get_num_threads": 0, "omp_get_wtime": 0,
    "read_input": 0,
    # Diagnostic / fault-injection intrinsic: 1 on an A-stream, 0 on an
    # R-stream.  Branching on it forces a divergence, which is how the
    # test suite exercises the recovery path deterministically.
    "astream_probe": 0,
}


@dataclass
class GlobalSym:
    """A file-scope (shared) variable's symbol record."""
    name: str
    typ: str
    dims: Tuple[int, ...]
    index: int

    @property
    def is_array(self) -> bool:
        """True for array globals."""
        return bool(self.dims)

    @property
    def size(self) -> int:
        """Element count (1 for scalars)."""
        n = 1
        for d in self.dims:
            n *= d
        return n


@dataclass
class RegionInfo:
    """Classification record for one parallel region."""

    line: int
    func: str
    shared_refs: Set[str] = field(default_factory=set)
    private: Set[str] = field(default_factory=set)
    firstprivate: Set[str] = field(default_factory=set)
    captured: Set[str] = field(default_factory=set)
    reductions: List[A.Reduction] = field(default_factory=list)
    schedules: List[A.Schedule] = field(default_factory=list)


@dataclass
class SemaInfo:
    """Analysis result: symbols plus per-region classification."""
    globals: Dict[str, GlobalSym]
    funcs: Dict[str, A.FuncDef]
    regions: List[RegionInfo]


# ------------------------------------------------------------------ walkers

def _children(node: A.Node):
    if isinstance(node, A.Program):
        yield from node.globals
        yield from node.funcs
    elif isinstance(node, A.FuncDef):
        yield node.body
    elif isinstance(node, A.Block):
        yield from node.stmts
    elif isinstance(node, A.VarDecl):
        if node.init is not None:
            yield node.init
    elif isinstance(node, A.Assign):
        yield node.target
        yield node.value
    elif isinstance(node, A.If):
        yield node.cond
        yield node.then
        if node.orelse is not None:
            yield node.orelse
    elif isinstance(node, A.For):
        for part in (node.init, node.cond, node.step, node.body):
            if part is not None:
                yield part
    elif isinstance(node, A.While):
        yield node.cond
        yield node.body
    elif isinstance(node, A.Return):
        if node.value is not None:
            yield node.value
    elif isinstance(node, A.ExprStmt):
        yield node.expr
    elif isinstance(node, A.Print):
        yield from node.args
    elif isinstance(node, A.Index):
        yield from node.indices
    elif isinstance(node, A.BinOp):
        yield node.lhs
        yield node.rhs
    elif isinstance(node, A.UnOp):
        yield node.operand
    elif isinstance(node, A.Call):
        yield from node.args
    elif isinstance(node, A.OmpParallel):
        yield node.body
    elif isinstance(node, A.OmpFor):
        yield node.loop
    elif isinstance(node, (A.OmpSingle, A.OmpMaster, A.OmpCritical,
                           A.OmpSection)):
        yield node.body
    elif isinstance(node, A.OmpAtomic):
        yield node.stmt
    elif isinstance(node, A.OmpSections):
        yield from node.sections
    # Num, Var, Break, Continue, OmpBarrier, OmpFlush, OmpSlipstream: leaves


def walk(node: A.Node):
    yield node
    for c in _children(node):
        yield from walk(c)


def collect_var_reads(node: A.Node) -> Set[str]:
    """All variable/array names referenced under ``node``."""
    names: Set[str] = set()
    for n in walk(node):
        if isinstance(n, (A.Var, A.Index)):
            names.add(n.name)
    return names


def collect_var_writes(node: A.Node) -> Set[str]:
    """Names written (assignment targets) under ``node``."""
    names: Set[str] = set()
    for n in walk(node):
        if isinstance(n, A.Assign) and isinstance(n.target, (A.Var, A.Index)):
            names.add(n.target.name)
    return names


def declared_locals(node: A.Node) -> Set[str]:
    """Names declared by VarDecls under ``node`` (not descending into
    nested parallel regions -- they have their own scopes)."""
    names: Set[str] = set()

    def rec(n):
        if isinstance(n, A.OmpParallel):
            return
        if isinstance(n, A.VarDecl):
            names.add(n.name)
        for c in _children(n):
            rec(c)

    rec(node)
    return names


# ------------------------------------------------------------------ analyze

def analyze(program: A.Program) -> SemaInfo:
    """Validate the program and compute classification info."""
    globals_: Dict[str, GlobalSym] = {}
    for i, g in enumerate(program.globals):
        if g.name in globals_:
            raise SemanticError(f"duplicate global {g.name!r}", g.line)
        if g.typ == "void":
            raise SemanticError("void variables are not allowed", g.line)
        globals_[g.name] = GlobalSym(g.name, g.typ, g.dims, i)

    funcs: Dict[str, A.FuncDef] = {}
    for f in program.funcs:
        if f.name in funcs:
            raise SemanticError(f"duplicate function {f.name!r}", f.line)
        if f.name in globals_:
            raise SemanticError(
                f"{f.name!r} is both a global and a function", f.line)
        funcs[f.name] = f
    if "main" not in funcs:
        raise SemanticError("program needs a main() function")

    info = SemaInfo(globals_, funcs, [])
    for f in program.funcs:
        _check_function(f, info)
    return info


def _check_function(f: A.FuncDef, info: SemaInfo,
                    inside_region: bool = False) -> None:
    local_scope = {name for _, name in f.params}
    _check_stmt(f.body, f, info, set(local_scope), inside_region)


def _check_stmt(node: A.Node, f: A.FuncDef, info: SemaInfo,
                scope: Set[str], in_region: bool) -> None:
    if isinstance(node, A.VarDecl):
        if node.typ == "void":
            raise SemanticError("void variables are not allowed", node.line)
        scope.add(node.name)
        return
    if isinstance(node, A.OmpParallel):
        if in_region:
            raise SemanticError("nested parallel regions are not supported",
                                node.line)
        _check_region(node, f, info, scope)
        return
    if isinstance(node, (A.OmpFor, A.OmpSingle, A.OmpMaster, A.OmpCritical,
                         A.OmpAtomic, A.OmpBarrier, A.OmpSections)):
        if not in_region:
            raise SemanticError(
                f"{type(node).__name__} outside a parallel region",
                node.line)
    if isinstance(node, A.OmpAtomic):
        tgt = node.stmt.target
        if not isinstance(tgt, (A.Var, A.Index)):
            raise SemanticError("atomic needs an lvalue target", node.line)
    if isinstance(node, (A.Var, A.Index)):
        if (node.name not in scope and node.name not in info.globals
                and node.name not in INTRINSICS):
            raise SemanticError(f"undeclared variable {node.name!r}",
                                node.line)
    if isinstance(node, A.Call):
        if node.name not in info.funcs and node.name not in INTRINSICS:
            raise SemanticError(f"undeclared function {node.name!r}",
                                node.line)
        if node.name in INTRINSICS and len(node.args) != INTRINSICS[node.name]:
            raise SemanticError(
                f"{node.name} takes {INTRINSICS[node.name]} argument(s)",
                node.line)
    for c in _children(node):
        _check_stmt(c, f, info, scope, in_region)


def _check_region(region: A.OmpParallel, f: A.FuncDef, info: SemaInfo,
                  scope: Set[str]) -> None:
    ri = RegionInfo(line=region.line, func=f.name)
    clause_names = (set(region.private) | set(region.firstprivate)
                    | set(region.shared))
    for red in region.reductions:
        ri.reductions.append(red)
        for name in red.names:
            g = info.globals.get(name)
            if g is None:
                raise SemanticError(
                    f"reduction target {name!r} must be a shared "
                    f"(file-scope) variable", region.line)
            if g.is_array:
                raise SemanticError(
                    f"reduction target {name!r} must be scalar", region.line)
    for name in region.shared:
        if name not in info.globals:
            raise SemanticError(
                f"shared({name}): only file-scope variables are shared "
                f"in this implementation", region.line)
    ri.private = set(region.private)
    ri.firstprivate = set(region.firstprivate)
    for name in ri.firstprivate:
        if name not in info.globals and name not in scope:
            raise SemanticError(f"firstprivate({name}): unknown variable",
                                region.line)

    region_locals = declared_locals(region.body)
    reduction_names = {n for r in region.reductions for n in r.names}
    # omp-for loop variables are automatically private (OpenMP rule).
    for n in walk(region.body):
        if isinstance(n, A.OmpFor):
            init = n.loop.init
            if isinstance(init, A.Assign) and isinstance(init.target, A.Var):
                ri.private.add(init.target.name)
    clause_names |= ri.private
    refs = collect_var_reads(region.body)
    writes = collect_var_writes(region.body)
    for name in refs:
        if name in region_locals or name in clause_names or \
           name in reduction_names or name in INTRINSICS or \
           name in info.funcs:
            continue
        if name in info.globals:
            ri.shared_refs.add(name)
        elif name in scope:
            ri.captured.add(name)
            if name in writes:
                raise SemanticError(
                    f"{name!r} is a captured enclosing local and may not "
                    f"be written inside the parallel region (add it to a "
                    f"private() clause or make it file-scope)", region.line)
    for n in walk(region.body):
        if isinstance(n, A.OmpFor):
            if n.schedule is not None:
                ri.schedules.append(n.schedule)
            for name in n.lastprivate:
                g = info.globals.get(name)
                if g is None or g.is_array:
                    raise SemanticError(
                        f"lastprivate({name}) must name a shared "
                        f"(file-scope) scalar", n.line)
        # The omp-for loop variable is auto-private: writing the captured
        # loop counter is the one sanctioned exception, handled by codegen
        # promoting it to a region-local slot.
    info.regions.append(ri)
    # Validate the region body in its own scope.
    inner = set(scope) | clause_names | reduction_names
    _check_stmt(region.body, f, info, inner, in_region=True)
