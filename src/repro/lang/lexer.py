"""Tokenizer for SlipC, the C-like subset our OpenMP compiler accepts.

SlipC is the stand-in for the C front end of the Omni compiler: enough C
to express the mini-NAS kernels (scalars, multi-dimensional arrays,
functions, control flow, arithmetic) plus ``#pragma omp`` lines, which
are lexed into a dedicated PRAGMA token carrying the raw directive text
(parsed separately by ``pragmas.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "int", "double", "float", "void", "if", "else", "for", "while",
    "return", "break", "continue",
}

_TWO_CHAR = {"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/="}
_ONE_CHAR = set("+-*/%<>=!(){}[];,&|")


@dataclass(frozen=True)
class Token:
    """One lexical token: kind, text, and source line."""
    kind: str       # 'id' | 'num' | 'str' | 'kw' | 'op' | 'pragma' | 'eof'
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind},{self.text!r},@{self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize a full SlipC translation unit."""
    return list(_scan(source))


def _scan(src: str) -> Iterator[Token]:
    i, n, line = 0, len(src), 1
    while i < n:
        c = src[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        # comments
        if src.startswith("//", i):
            j = src.find("\n", i)
            i = n if j < 0 else j
            continue
        if src.startswith("/*", i):
            j = src.find("*/", i)
            if j < 0:
                raise LexError("unterminated /* comment", line)
            line += src.count("\n", i, j)
            i = j + 2
            continue
        # pragma lines (may be continued with backslash-newline)
        if c == "#" :
            j = i
            while j < n:
                k = src.find("\n", j)
                if k < 0:
                    k = n
                if src[k - 1] == "\\" and k < n:
                    j = k + 1
                    continue
                break
            text = src[i:k].replace("\\\n", " ")
            yield Token("pragma", text, line)
            line += src.count("\n", i, k)
            i = k
            continue
        # identifiers / keywords
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            word = src[i:j]
            yield Token("kw" if word in KEYWORDS else "id", word, line)
            i = j
            continue
        # numbers (int or float, with optional exponent)
        if c.isdigit() or (c == "." and i + 1 < n and src[i + 1].isdigit()):
            j = i
            seen_dot = seen_exp = False
            while j < n:
                ch = src[j]
                if ch.isdigit():
                    j += 1
                elif ch == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif ch in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and src[j] in "+-":
                        j += 1
                else:
                    break
            yield Token("num", src[i:j], line)
            i = j
            continue
        # string literals (print formats)
        if c == '"':
            j = i + 1
            while j < n and src[j] != '"':
                if src[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise LexError("unterminated string literal", line)
            yield Token("str", src[i + 1:j], line)
            i = j + 1
            continue
        # operators
        if src[i:i + 2] in _TWO_CHAR:
            yield Token("op", src[i:i + 2], line)
            i += 2
            continue
        if c in _ONE_CHAR:
            yield Token("op", c, line)
            i += 1
            continue
        raise LexError(f"unexpected character {c!r}", line)
    yield Token("eof", "", line)
