"""Compiler diagnostics."""

from __future__ import annotations

__all__ = ["CompileError", "LexError", "ParseError", "SemanticError"]


class CompileError(Exception):
    """Base class for SlipC compilation errors, carrying a source line."""

    def __init__(self, msg: str, line: int = 0):
        self.msg = msg
        self.line = line
        super().__init__(f"line {line}: {msg}" if line else msg)


class LexError(CompileError):
    """Tokenizer error."""
    pass


class ParseError(CompileError):
    """Syntax or pragma error."""
    pass


class SemanticError(CompileError):
    """Symbol/classification/lowering error."""
    pass
