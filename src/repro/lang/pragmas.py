"""``#pragma omp`` directive parsing.

Turns the raw pragma text captured by the lexer into a structured
:class:`Directive` -- the directive name plus its clauses.  Expression
clauses (``if(...)``) keep their source text; the statement parser
converts them to AST with its own expression parser.

Supported directives: parallel, for, parallel for, single, master,
critical, atomic, barrier, flush, sections, section, parallel sections,
and the paper's ``slipstream`` extension.
"""

from __future__ import annotations

import re
from typing import List, Optional

from .ast import Reduction, Schedule
from .errors import ParseError

__all__ = ["Directive", "parse_pragma"]

_DIRECTIVES = (
    "parallel for", "parallel sections", "parallel", "for", "single",
    "master", "critical", "atomic", "barrier", "flush", "sections",
    "section", "slipstream",
)

_CLAUSE_RE = re.compile(r"\s*([a-z_]+)\s*(\(((?:[^()]|\([^()]*\))*)\))?",
                        re.IGNORECASE)


class Directive:
    """A parsed pragma: name + clause values."""

    __slots__ = ("name", "line", "private", "firstprivate",
                 "lastprivate", "shared", "reductions", "schedule",
                 "nowait", "if_text", "num_threads", "critical_name",
                 "flush_names", "slip_type", "slip_tokens")

    def __init__(self, name: str, line: int):
        self.name = name
        self.line = line
        self.private: List[str] = []
        self.firstprivate: List[str] = []
        self.lastprivate: List[str] = []
        self.shared: List[str] = []
        self.reductions: List[Reduction] = []
        self.schedule: Optional[Schedule] = None
        self.nowait = False
        self.if_text: Optional[str] = None
        self.num_threads: Optional[str] = None
        self.critical_name = ""
        self.flush_names: List[str] = []
        self.slip_type: Optional[str] = None
        self.slip_tokens = 0

    def __repr__(self) -> str:
        return f"Directive({self.name!r}@{self.line})"


def _split_names(body: str) -> List[str]:
    return [x.strip() for x in body.split(",") if x.strip()]


def parse_pragma(text: str, line: int) -> Optional[Directive]:
    """Parse one ``#pragma`` line.  Returns None for non-omp pragmas
    (which, like real compilers, we silently ignore)."""
    m = re.match(r"#\s*pragma\s+(\w+)\s*(.*)$", text.strip(), re.DOTALL)
    if not m:
        raise ParseError(f"malformed pragma: {text!r}", line)
    if m.group(1) != "omp":
        return None
    rest = m.group(2).strip()
    name = None
    for d in _DIRECTIVES:
        if rest == d or rest.startswith(d + " ") or rest.startswith(d + "("):
            name = d
            rest = rest[len(d):].strip()
            break
    if name is None:
        raise ParseError(f"unknown OpenMP directive in {text!r}", line)
    dv = Directive(name, line)

    if name == "slipstream":
        _parse_slipstream_args(dv, rest, line)
        return dv
    if name == "critical":
        cm = re.match(r"\(\s*(\w+)\s*\)\s*(.*)$", rest)
        if cm:
            dv.critical_name = cm.group(1)
            rest = cm.group(2)
    if name == "flush":
        if rest.startswith("("):
            if not rest.endswith(")"):
                raise ParseError("malformed flush variable list", line)
            dv.flush_names = _split_names(rest[1:-1])
        elif rest:
            raise ParseError(f"junk after flush: {rest!r}", line)
        return dv

    for cm in _CLAUSE_RE.finditer(rest):
        word = cm.group(1).lower()
        body = cm.group(3)
        if not word:
            continue
        if word == "private":
            dv.private += _split_names(_req(body, word, line))
        elif word == "firstprivate":
            dv.firstprivate += _split_names(_req(body, word, line))
        elif word == "lastprivate":
            dv.lastprivate += _split_names(_req(body, word, line))
        elif word == "shared":
            dv.shared += _split_names(_req(body, word, line))
        elif word == "reduction":
            op, _, names = _req(body, word, line).partition(":")
            dv.reductions.append(Reduction(op.strip(), _split_names(names)))
        elif word == "schedule":
            parts = _split_names(_req(body, word, line))
            kind = parts[0].lower()
            chunk = int(parts[1]) if len(parts) > 1 else None
            try:
                dv.schedule = Schedule(kind, chunk)
            except ValueError as e:
                raise ParseError(str(e), line) from None
        elif word == "nowait":
            dv.nowait = True
        elif word == "if":
            dv.if_text = _req(body, word, line)
        elif word == "num_threads":
            dv.num_threads = _req(body, word, line)
        elif word == "flush" or (name == "flush" and word == name):
            pass
        elif word == "default":
            pass  # default(shared) is our model anyway
        else:
            raise ParseError(f"unknown clause {word!r} on omp {name}", line)

    if name == "flush" and rest.startswith("("):
        dv.flush_names = _split_names(rest.strip("() "))
    return dv


def _req(body: Optional[str], word: str, line: int) -> str:
    if body is None:
        raise ParseError(f"clause {word!r} requires parentheses", line)
    return body


def _parse_slipstream_args(dv: Directive, rest: str, line: int) -> None:
    """slipstream(TYPE[, tokens]) [if(expr)]"""
    m = re.match(r"\(\s*([A-Za-z_]+)\s*(?:,\s*(\d+)\s*)?\)\s*(.*)$", rest,
                 re.DOTALL)
    if not m:
        raise ParseError(
            "slipstream directive needs (type[, tokens])", line)
    dv.slip_type = m.group(1).upper()
    if dv.slip_type not in ("GLOBAL_SYNC", "LOCAL_SYNC", "RUNTIME_SYNC",
                            "NONE"):
        raise ParseError(f"bad slipstream type {dv.slip_type!r}", line)
    dv.slip_tokens = int(m.group(2) or 0)
    tail = m.group(3).strip()
    if tail:
        im = re.match(r"if\s*\(((?:[^()]|\([^()]*\))*)\)\s*$", tail)
        if not im:
            raise ParseError(f"junk after slipstream directive: {tail!r}",
                             line)
        dv.if_text = im.group(1)
