"""repro: reproduction of "Extending OpenMP to Support Slipstream
Execution Mode" (Ibrahim & Byrd, IPPS 2003).

Public API quick tour::

    from repro import compile_source, run_program, PAPER_MACHINE

    image = compile_source(SLIPC_SOURCE)           # one binary ...
    base = run_program(image, mode="single")       # ... many modes
    slip = run_program(image, mode="slipstream")
    print(base.cycles / slip.cycles)               # slipstream speedup

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from .compiler import CompiledProgram, compile_source
from .config import PAPER_MACHINE, CacheConfig, MachineConfig
from .interp import FunctionalRunner
from .runtime import Machine, RunResult, RuntimeEnv, run_program

__version__ = "1.0.0"

__all__ = ["CompiledProgram", "compile_source", "PAPER_MACHINE",
           "CacheConfig", "MachineConfig", "FunctionalRunner", "Machine",
           "RunResult", "RuntimeEnv", "run_program", "__version__"]
