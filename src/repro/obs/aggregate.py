"""Aggregating collectors: counters, exclusive time clocks, classes.

These are the historical statistics primitives of the simulator
(previously ``repro.sim.stats`` and ``repro.mem.classify``), now owned
by the observability layer.  The paper's Figures 2 and 4 break
execution time into busy cycles, memory stalls, lock time, barrier
time, scheduling time, and job-wait time; :class:`TimeBreakdown`
implements that accounting as a stack of exclusive categories: a
processor is always "in" exactly one category, and nested activities
(e.g. a memory stall while spinning on a lock) attribute their time to
the innermost category.  :class:`ClassStats` implements the Figure 3/5
shared-data request taxonomy (Timely/Late/Only per fetching stream).
"""

from __future__ import annotations

from typing import Dict, Iterable, ItemsView, List, Tuple

__all__ = ["Counter", "TimeBreakdown", "ClassStats", "CATEGORIES",
           "FETCHERS", "KINDS", "OUTCOMES", "line_outcome"]

#: Display order for the paper's execution-time categories.
CATEGORIES: Tuple[str, ...] = (
    "busy", "memory", "lock", "barrier", "scheduling", "jobwait",
    "a_wait", "io", "idle",
)

FETCHERS = ("A", "R")
KINDS = ("read", "rdex")
OUTCOMES = ("timely", "late", "only")


class Counter:
    """A named bag of integer counters."""

    __slots__ = ("_c",)

    def __init__(self):
        self._c: Dict[str, int] = {}

    def add(self, key: str, n: int = 1) -> None:
        """Increment a named counter."""
        self._c[key] = self._c.get(key, 0) + n

    def get(self, key: str) -> int:
        """Read a named counter (0 if absent)."""
        return self._c.get(key, 0)

    def items(self) -> ItemsView[str, int]:
        """Live (key, value) view over all counters."""
        return self._c.items()

    def as_dict(self) -> Dict[str, int]:
        """Snapshot all counters."""
        return dict(self._c)

    def merge(self, other: "Counter") -> None:
        """Accumulate another counter bag."""
        for k, v in other.items():
            self.add(k, v)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._c.items()))
        return f"Counter({body})"


class TimeBreakdown:
    """Exclusive time accounting with a category stack.

    Usage from a processor coroutine::

        bd.push("barrier", now)      # entering barrier code
        ...                          # time accrues to "barrier"
        bd.push("memory", now)       # a miss inside the barrier spin
        ...                          # time accrues to "memory"
        bd.pop(now)                  # back to "barrier"
        bd.pop(now)                  # back to whatever was below

    The base category (when the stack is empty) is ``busy``.  After
    :meth:`close`, further ``push``/``switch``/``pop`` calls raise --
    accounting on a finished clock would silently corrupt the totals.
    """

    __slots__ = ("_times", "_stack", "_last", "_closed")

    def __init__(self, start: float = 0.0):
        self._times: Dict[str, float] = {}
        self._stack: List[str] = []
        self._last = start
        self._closed = False

    # -- internals -----------------------------------------------------------

    def _settle(self, now: float) -> None:
        cat = self._stack[-1] if self._stack else "busy"
        dt = now - self._last
        if dt < 0:
            raise ValueError(f"time went backwards: {self._last} -> {now}")
        if dt:
            self._times[cat] = self._times.get(cat, 0.0) + dt
        self._last = now

    def _check_open(self, op: str) -> None:
        if self._closed:
            raise ValueError(f"{op} on closed TimeBreakdown")

    # -- public API ------------------------------------------------------------

    def push(self, category: str, now: float) -> None:
        """Enter a category (settling elapsed time first)."""
        self._check_open("push")
        self._settle(now)
        self._stack.append(category)

    def pop(self, now: float) -> str:
        """Leave the current category; returns its name."""
        self._check_open("pop")
        self._settle(now)
        if not self._stack:
            raise ValueError("pop on empty category stack")
        return self._stack.pop()

    def switch(self, category: str, now: float) -> None:
        """Replace the top of the stack (settling time first)."""
        self._check_open("switch")
        self._settle(now)
        if self._stack:
            self._stack[-1] = category
        else:
            self._stack.append(category)

    def close(self, now: float) -> None:
        """Finalize accounting at ``now`` (end of simulation)."""
        self._check_open("close")
        self._settle(now)
        self._stack.clear()
        self._closed = True

    def reattribute(self, src: str, dst: str, amount: float) -> None:
        """Move ``amount`` time from one category to another.

        Post-hoc correction hook (e.g. cache-hit stall cycles that were
        lumped as ``busy`` by a synchronous fast path); allowed after
        :meth:`close` because it changes attribution, not the clock.
        """
        if amount == 0:
            return
        if amount < 0 or amount > self._times.get(src, 0.0):
            raise ValueError(
                f"cannot move {amount} from {src!r} "
                f"(has {self._times.get(src, 0.0)})")
        self._times[src] -= amount
        self._times[dst] = self._times.get(dst, 0.0) + amount

    @property
    def closed(self) -> bool:
        """Has :meth:`close` been called?"""
        return self._closed

    @property
    def current(self) -> str:
        """Innermost active category ('busy' at depth 0)."""
        return self._stack[-1] if self._stack else "busy"

    @property
    def depth(self) -> int:
        """Category-stack depth."""
        return len(self._stack)

    @property
    def stack(self) -> Tuple[str, ...]:
        """Snapshot of the open category stack, outermost first."""
        return tuple(self._stack)

    def total(self) -> float:
        """Sum of all attributed time."""
        return sum(self._times.values())

    def get(self, category: str) -> float:
        """Time attributed to one category."""
        return self._times.get(category, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of category -> time."""
        return dict(self._times)

    def fractions(self) -> Dict[str, float]:
        """Category shares of the total (empty if no time)."""
        tot = self.total()
        if tot <= 0:
            return {}
        return {k: v / tot for k, v in self._times.items()}

    @staticmethod
    def aggregate(parts: Iterable["TimeBreakdown"]) -> Dict[str, float]:
        """Sum categories across processors (for machine-wide breakdowns)."""
        out: Dict[str, float] = {}
        for p in parts:
            for k, v in p.as_dict().items():
                out[k] = out.get(k, 0.0) + v
        return out


def line_outcome(line) -> str:
    """Figure 3/5 outcome of a finished fill (any CacheLine-shaped
    object with ``merged_late`` / ``sibling_hit`` attributes)."""
    if line.merged_late:
        return "late"
    if line.sibling_hit:
        return "timely"
    return "only"


class ClassStats:
    """Counts of classified fills, keyed by (fetcher, kind, outcome).

    Every L2 fill of a shared line is eventually assigned exactly one
    label: ``A-Timely`` (fetched by the A-stream, referenced by the
    R-stream after the fill completed), ``A-Late`` (R referenced the
    line while A's miss was in flight -- MSHR merge), ``A-Only``
    (evicted or invalidated without an R reference: the harmful,
    traffic-increasing category) -- and symmetrically ``R-*`` for fills
    initiated by the R-stream.  Reads and read-exclusives are
    classified separately, as in the paper.
    """

    __slots__ = ("_c",)

    def __init__(self):
        self._c: Dict[Tuple[str, str, str], int] = {}

    def record(self, fetcher: str, kind: str, outcome: str, n: int = 1) -> None:
        """Count n fills of (fetcher, kind, outcome)."""
        if fetcher not in FETCHERS or kind not in KINDS or outcome not in OUTCOMES:
            raise ValueError(f"bad classification {(fetcher, kind, outcome)}")
        key = (fetcher, kind, outcome)
        self._c[key] = self._c.get(key, 0) + n

    def classify_line(self, line) -> None:
        """Finalize a CacheLine's fill at eviction/invalidation/teardown."""
        if line.fetcher is None:
            return
        self.record(line.fetcher, line.fill_kind, line_outcome(line))

    # -- queries ---------------------------------------------------------------

    def get(self, fetcher: str, kind: str, outcome: str) -> int:
        """Count for one (fetcher, kind, outcome) cell."""
        return self._c.get((fetcher, kind, outcome), 0)

    def items(self) -> ItemsView[Tuple[str, str, str], int]:
        """Live ((fetcher, kind, outcome), count) view."""
        return self._c.items()

    def total(self, kind: str) -> int:
        """All fills of one kind (read or rdex)."""
        return sum(v for (f, k, o), v in self._c.items() if k == kind)

    def fraction(self, fetcher: str, kind: str, outcome: str) -> float:
        """Share of all ``kind`` fills, e.g. the paper's '26% A-timely
        read requests'."""
        tot = self.total(kind)
        return self.get(fetcher, kind, outcome) / tot if tot else 0.0

    def breakdown(self, kind: str) -> Dict[str, float]:
        """{'A-Timely': 0.26, ...} over one request kind."""
        tot = self.total(kind)
        out = {}
        for f in FETCHERS:
            for o in OUTCOMES:
                label = f"{f}-{o.capitalize()}"
                out[label] = (self.get(f, kind, o) / tot) if tot else 0.0
        return out

    def coverage(self, kind: str) -> float:
        """Fraction of fills provided by the A-stream and used by R
        (timely + late) -- the paper's 'read exclusive coverage'."""
        tot = self.total(kind)
        if not tot:
            return 0.0
        return (self.get("A", kind, "timely") + self.get("A", kind, "late")) / tot

    def merge(self, other: "ClassStats") -> None:
        """Accumulate another collector's counts."""
        for (f, k, o), v in other.items():
            self.record(f, k, o, v)

    def as_dict(self) -> Dict[str, int]:
        """Flat {'A-read-timely': n, ...} view."""
        return {f"{f}-{k}-{o}": v for (f, k, o), v in sorted(self._c.items())}
