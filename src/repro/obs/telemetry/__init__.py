"""Harness-level (wall-clock) telemetry for the execution pipeline.

Where :mod:`repro.obs` proper observes *simulated* time inside a run,
this package observes the *harness* around runs: which worker executed
which unit when, how long queue wait / execution / memo lookups took,
whether the fleet is healthy.  Four surfaces, one session object
(:class:`Telemetry`):

* **event log** -- versioned JSONL lifecycle records, one file per
  writer in a shared ``telemetry/`` area (:mod:`.events`);
* **metrics** -- counters/gauges/histograms with exact p50/p90/p99,
  folded into ``ExecutionPipeline.rt_stats`` (:mod:`.metrics`);
* **heartbeats + fleet status** -- ``repro status DIR``
  (:mod:`.status`);
* **wall-clock Chrome trace** -- ``repro bench --harness-trace``
  (:mod:`.harness_trace`).

Disabled is the default and costs one no-op call per record site
(:data:`NULL_TELEMETRY`); enabling never perturbs the simulation, so
cycle counts are bit-identical either way.

Validate an event log (schema + every-started-unit-reaches-a-terminal
lifecycle) from the command line::

    python -m repro.obs.telemetry SPOOL/telemetry [--trace OUT.json]
"""

from .events import (EVENT_TYPES, SCHEMA_VERSION, TERMINAL_EVENTS, EventLog,
                     event_files, read_events, validate_events)
from .harness_trace import harness_trace_events
from .metrics import Histogram, MetricsRegistry
from .session import (NULL_TELEMETRY, NullTelemetry, Telemetry,
                      telemetry_area, worker_id)
from .status import (DEFAULT_STALL_S, FleetStatus, WorkerStatus,
                     claim_is_stalled, collect_status, heartbeat_age,
                     render_status)

__all__ = [
    "SCHEMA_VERSION", "EVENT_TYPES", "TERMINAL_EVENTS",
    "EventLog", "event_files", "read_events", "validate_events",
    "Histogram", "MetricsRegistry",
    "Telemetry", "NullTelemetry", "NULL_TELEMETRY", "worker_id",
    "telemetry_area",
    "FleetStatus", "WorkerStatus", "collect_status", "render_status",
    "claim_is_stalled", "heartbeat_age", "DEFAULT_STALL_S",
    "harness_trace_events",
]
