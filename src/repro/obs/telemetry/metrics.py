"""Wall-clock metrics registry: counters, gauges, histograms.

The cycle-exact observability layer (:mod:`repro.obs.aggregate`)
answers "where did the *simulated* time go"; this registry answers the
harness-side question "where did the *wall clock* go" -- queue wait,
per-unit execution time, memo lookup latency, retry counts.  It is
deliberately tiny: harness sweeps observe tens to a few thousand
samples, so histograms keep the raw values and report exact
nearest-rank percentiles instead of bucket estimates.

Nothing here touches the simulation: metrics are recorded by the
driver and spool workers between units, never inside a run, so cycle
counts are bit-identical with telemetry on or off.
"""

from __future__ import annotations

import math
from typing import Dict, List

__all__ = ["Histogram", "MetricsRegistry"]


class Histogram:
    """Exact sample-keeping histogram with nearest-rank percentiles."""

    __slots__ = ("values",)

    def __init__(self):
        self.values: List[float] = []

    def record(self, value: float) -> None:
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (0 < p <= 100); 0.0 when empty."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, min(len(ordered), math.ceil(p / 100.0 * len(ordered))))
        return ordered[rank - 1]

    def snapshot(self) -> Dict[str, float]:
        """Summary stats ({"count": 0} when nothing was observed)."""
        if not self.values:
            return {"count": 0}
        ordered = sorted(self.values)
        n = len(ordered)

        def pct(p: float) -> float:
            return ordered[max(1, min(n, math.ceil(p / 100.0 * n))) - 1]

        return {
            "count": n,
            "sum": round(sum(ordered), 6),
            "min": round(ordered[0], 6),
            "max": round(ordered[-1], 6),
            "mean": round(sum(ordered) / n, 6),
            "p50": round(pct(50), 6),
            "p90": round(pct(90), 6),
            "p99": round(pct(99), 6),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms for one telemetry session.

    ``flat()`` is the ``rt_stats`` folding shape: one flat
    ``name -> number`` dict (histograms expand to ``name.count`` /
    ``.mean`` / ``.p50`` / ``.p90`` / ``.p99`` / ``.max``), which is what
    :attr:`repro.harness.pipeline.ExecutionPipeline.rt_stats` and the
    BENCH_*.json emitters embed.
    """

    def __init__(self):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).record(value)

    # -- snapshots -----------------------------------------------------------

    def as_dict(self) -> Dict[str, dict]:
        """Full structured snapshot (the BENCH_*.json shape)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": {k: round(v, 6)
                       for k, v in sorted(self.gauges.items())},
            "histograms": {k: h.snapshot()
                           for k, h in sorted(self.histograms.items())},
        }

    def flat(self) -> Dict[str, float]:
        """Flattened ``name -> number`` view (the ``rt_stats`` shape)."""
        out: Dict[str, float] = {}
        out.update(sorted(self.counters.items()))
        for k, v in sorted(self.gauges.items()):
            out[k] = round(v, 6)
        for name, h in sorted(self.histograms.items()):
            snap = h.snapshot()
            for stat in ("count", "mean", "p50", "p90", "p99", "max"):
                if stat in snap:
                    out[f"{name}.{stat}"] = snap[stat]
        return out
