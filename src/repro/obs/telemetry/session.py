"""Telemetry sessions: the one object harness code records through.

A :class:`Telemetry` session belongs to one process playing one role
in a sweep -- the driver, or a spool worker -- and bundles the three
recording surfaces:

* **events** (:meth:`Telemetry.emit`) -- typed, versioned lifecycle
  records, kept in memory (:attr:`records`) and, when the session has
  a ``telemetry/`` area on disk, appended to this process's JSONL
  slice of the shared event log;
* **metrics** (:meth:`observe` / :meth:`count` / :meth:`gauge`) -- the
  wall-clock :class:`~repro.obs.telemetry.metrics.MetricsRegistry`
  folded into ``ExecutionPipeline.rt_stats`` and the sweep summary;
* **heartbeats** (:meth:`heartbeat`) -- small atomically-replaced
  status files under ``<area>/heartbeats/<worker>.json`` whose mtime
  is the worker's last-seen instant; ``repro status DIR`` renders the
  fleet from them.

The disabled path is :data:`NULL_TELEMETRY`, a shared do-nothing
session: every call is one attribute lookup plus an empty method, the
same zero-cost discipline as ``NullSink`` (guarded to <= 2% in
``benchmarks/bench_parallel_runner.py``).  Telemetry never touches the
simulation -- all recording happens between units in harness
processes -- so golden cycles and the merge contract are bit-identical
with telemetry on or off.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Union

from .events import EVENT_TYPES, SCHEMA_VERSION, EventLog
from .metrics import MetricsRegistry

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY", "worker_id",
           "telemetry_area"]

#: Seconds between heartbeat writes (unforced beats are throttled).
HEARTBEAT_S = 1.0


def worker_id() -> str:
    """A fleet-unique session id: ``<host>-<pid>-<nonce>``.

    The nonce keeps two sessions of one process (a sweep and its
    resume, a driver and an in-process worker in tests) from sharing
    an event file, which would break per-worker ``seq`` monotonicity.
    """
    host = socket.gethostname().split(".")[0]
    return f"{host}-{os.getpid()}-{os.urandom(3).hex()}"


def telemetry_area(spool_root: Union[str, Path]) -> Path:
    """The shared telemetry directory of a spool sweep."""
    return Path(spool_root) / "telemetry"


class NullTelemetry:
    """Telemetry off: drop everything, as close to free as possible."""

    enabled = False
    worker = "null"
    role = "off"
    dir: Optional[Path] = None
    records: tuple = ()
    metrics: Optional[MetricsRegistry] = None

    def emit(self, event: str, unit: Optional[str] = None,
             spec=None, **fields) -> Optional[dict]:
        return None

    def observe(self, name: str, value: float) -> None:
        pass

    def count(self, name: str, n: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def heartbeat(self, state: str = "idle", unit: Optional[str] = None,
                  done: Optional[int] = None, force: bool = False) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared disabled session (the default everywhere).
NULL_TELEMETRY = NullTelemetry()


class Telemetry(NullTelemetry):
    """A live telemetry session (see module docstring).

    ``root`` is the shared telemetry area (``<spool>/telemetry`` for
    spool sweeps, any directory otherwise); ``None`` keeps events
    in memory only -- enough for metrics, ``rt_stats`` folding and the
    ``--harness-trace`` exporter, with nothing written to disk.
    """

    enabled = True

    def __init__(self, root: Union[str, Path, None] = None,
                 worker: Optional[str] = None, role: str = "driver",
                 heartbeat_s: float = HEARTBEAT_S):
        self.dir = Path(root) if root is not None else None
        self.worker = worker or worker_id()
        self.role = role
        self.records: List[dict] = []
        self.metrics = MetricsRegistry()
        self.heartbeat_s = heartbeat_s
        self._log = (EventLog(self.dir, self.worker)
                     if self.dir is not None else None)
        self._seq = 0
        self._started = time.time()
        self._last_beat = 0.0
        self._done = 0

    # -- events --------------------------------------------------------------

    def emit(self, event: str, unit: Optional[str] = None,
             spec=None, **fields) -> Optional[dict]:
        """Record one typed event (see ``events.EVENT_TYPES``)."""
        if event not in EVENT_TYPES:
            raise ValueError(f"unknown telemetry event {event!r}")
        self._seq += 1
        rec = {"v": SCHEMA_VERSION, "seq": self._seq, "ts": time.time(),
               "worker": self.worker, "event": event}
        if unit is not None:
            rec["unit"] = unit
        if spec is not None:
            rec["spec"] = str(spec)
        rec.update(fields)
        self.records.append(rec)
        if self._log is not None:
            self._log.append(rec)
        return rec

    # -- metrics -------------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def count(self, name: str, n: float = 1) -> None:
        self.metrics.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    # -- heartbeats ----------------------------------------------------------

    @property
    def heartbeat_path(self) -> Optional[Path]:
        if self.dir is None:
            return None
        return self.dir / "heartbeats" / f"{self.worker}.json"

    def heartbeat(self, state: str = "idle", unit: Optional[str] = None,
                  done: Optional[int] = None, force: bool = False) -> None:
        """Refresh this session's liveness file (atomic replace).

        Throttled to one write per ``heartbeat_s`` unless ``force``;
        the file's mtime is the last-seen signal ``repro status``
        reads, its body the progress snapshot.
        """
        if self.dir is None:
            return
        now = time.time()
        if done is not None:
            self._done = done
        if not force and now - self._last_beat < self.heartbeat_s:
            return
        self._last_beat = now
        payload = {"v": SCHEMA_VERSION, "worker": self.worker,
                   "pid": os.getpid(), "role": self.role,
                   "started": self._started, "ts": now, "state": state,
                   "unit": unit, "done": self._done}
        path = self.heartbeat_path
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except OSError:
            # An unwritable heartbeat must never fail the sweep.
            pass

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Final heartbeat + event-log close (safe to call twice)."""
        self.heartbeat(state="stopped", force=True)
        if self._log is not None:
            self._log.close()
