"""Wall-clock Chrome-trace exporter for the harness timeline.

:func:`harness_trace_events` turns a merged telemetry record stream
(:func:`~repro.obs.telemetry.events.read_events`) into the same Chrome
trace-event JSON :mod:`repro.obs.trace` emits for simulated time --
so one toolchain (Perfetto, ``python -m repro.obs.trace``) views both
timelines.  The two exporters answer different questions and use
different clocks: ``obs/trace.py`` maps one *simulated cycle* to one
microsecond; this one maps one *wall-clock* microsecond to one
microsecond, showing where the sweep's real time went -- queue wait,
stragglers, reaped leases, worker overlap.

Layout: a single ``harness`` process (pid 1) with one thread row per
telemetry session (driver and each spool worker).  ``sweep.*`` /
``stage.*`` / ``unit.started``..terminal pairs become nested B/E
spans; everything else (claims, memo hits, reaped leases, watchdog
reports) becomes an instant.  SIGKILLed workers leave spans open --
the exporter closes them at the last timestamp seen, exactly like
``TraceSink.trace_events``, so the output always passes
:func:`repro.obs.trace.validate_trace`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

__all__ = ["harness_trace_events"]

#: Event pairs that open/close a span on their worker's track.
_OPENERS = {"sweep.started": "sweep", "stage.started": None,
            "unit.started": None}
_CLOSERS = {"sweep.finished": "sweep", "stage.finished": None,
            "unit.finished": None, "unit.failed": None}


def _span_name(rec: dict) -> str:
    """Display name for the span a record opens or closes."""
    event = rec["event"]
    if event.startswith("sweep."):
        return "sweep"
    if event.startswith("stage."):
        return f"stage:{rec.get('stage', '?')}"
    return str(rec.get("spec") or (rec.get("unit") or "unit")[:12])


def harness_trace_events(records: Iterable[dict]) -> List[dict]:
    """Render telemetry records as Chrome trace events (see module
    docstring).  ``records`` must be time-ordered, as
    :func:`read_events` returns them; unknown/malformed records are
    skipped rather than failing the export."""
    records = [r for r in records
               if isinstance(r, dict) and isinstance(r.get("event"), str)
               and isinstance(r.get("ts"), (int, float))]
    out: List[dict] = [{"ph": "M", "name": "process_name", "pid": 1,
                        "args": {"name": "harness"}}]
    if not records:
        return out

    t0 = min(r["ts"] for r in records)
    tids: Dict[str, int] = {}
    last_ts: Dict[int, float] = {}
    open_spans: Dict[int, List[Tuple[str, str]]] = {}

    def tid_for(rec: dict) -> int:
        worker = str(rec.get("worker", "?"))
        tid = tids.get(worker)
        if tid is None:
            tid = tids[worker] = len(tids) + 1
            out.append({"ph": "M", "name": "thread_name", "pid": 1,
                        "tid": tid, "args": {"name": worker}})
            open_spans[tid] = []
        return tid

    def stamp(tid: int, ts: float) -> float:
        """Microseconds since sweep start, clamped monotonic per track
        (merged multi-writer clocks can jitter by a few us)."""
        us = (ts - t0) * 1e6
        us = max(us, last_ts.get(tid, 0.0))
        last_ts[tid] = us
        return round(us, 3)

    def args_of(rec: dict) -> dict:
        return {k: v for k, v in rec.items()
                if k not in ("v", "seq", "ts", "worker", "event")}

    for rec in records:
        event = rec["event"]
        tid = tid_for(rec)
        ts = stamp(tid, rec["ts"])
        if event in _OPENERS:
            name = _span_name(rec)
            ev = {"ph": "B", "name": name, "cat": "harness",
                  "pid": 1, "tid": tid, "ts": ts}
            extra = args_of(rec)
            if extra:
                ev["args"] = extra
            out.append(ev)
            open_spans[tid].append((event.split(".")[0], name))
        elif event in _CLOSERS:
            kind = event.split(".")[0]
            # sweep/stage/unit spans nest; unwind to the matching
            # opener if it is on this track's stack, else (a pool
            # terminal with no instrumented started, a worker whose
            # started landed in a lost torn line) fall back to an
            # instant so the trace stays valid.
            stack = open_spans[tid]
            if any(k == kind for k, _ in stack):
                while stack:
                    k, name = stack.pop()
                    out.append({"ph": "E", "name": name, "cat": "harness",
                                "pid": 1, "tid": tid, "ts": ts})
                    if k == kind:
                        break
            else:
                ev = {"ph": "i", "name": event, "cat": "harness",
                      "s": "t", "pid": 1, "tid": tid, "ts": ts}
                extra = args_of(rec)
                if extra:
                    ev["args"] = extra
                out.append(ev)
        else:
            ev = {"ph": "i", "name": event, "cat": "harness", "s": "t",
                  "pid": 1, "tid": tid, "ts": ts}
            extra = args_of(rec)
            if extra:
                ev["args"] = extra
            out.append(ev)

    # Close whatever a SIGKILLed writer left open, at the last
    # timestamp on that track -- every B must have an E.
    for tid, stack in open_spans.items():
        while stack:
            _, name = stack.pop()
            out.append({"ph": "E", "name": name, "cat": "harness",
                        "pid": 1, "tid": tid,
                        "ts": last_ts.get(tid, 0.0)})
    return out
