"""The structured event log: versioned JSONL records of the unit
lifecycle, appended by every process of a sweep.

One record per line, schema version :data:`SCHEMA_VERSION`.  Every
record carries ``{v, seq, ts, worker, event}`` plus event-specific
fields (``unit`` -- the content key, ``spec`` -- the human-readable
spec string, ``wall_s``, ``error`` / ``error_kind``, ...).  ``ts`` is
wall-clock epoch seconds: this log explains the *harness* timeline
(who executed what, when, how long), never the simulated one -- that
is :mod:`repro.obs.trace`'s job.

Concurrency model: each process appends to its **own** file,
``events-<worker>.jsonl`` inside a shared ``telemetry/`` area (for a
spool sweep, ``<spool>/telemetry/``), one ``os.write`` per record on
an ``O_APPEND`` descriptor.  No locks, no interleaving hazards; a
SIGKILL can at worst truncate a process's final line, which readers
tolerate.  :func:`read_events` merges every per-worker file into one
``(ts, worker, seq)``-ordered stream.

:func:`validate_events` is the schema-plus-lifecycle checker CI runs
(``python -m repro.obs.telemetry DIR``): besides per-record shape it
demands that every unit a worker *started* reaches a terminal event
(``unit.finished`` / ``unit.failed``), and that every abandoned
execution (a SIGKILLed worker's half-run) is explained by a
``lease.reaped`` or ``unit.retried`` record.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = ["SCHEMA_VERSION", "EVENT_TYPES", "TERMINAL_EVENTS", "EventLog",
           "event_files", "read_events", "validate_events"]

#: Bump on any incompatible record-shape change; readers reject other
#: versions rather than misparse them.
SCHEMA_VERSION = 1

#: Every event type a telemetry session may emit.  The ``unit.*`` set
#: is the work-unit lifecycle; ``sweep.*`` / ``stage.*`` bracket the
#: driver's pipeline stages; ``worker.*`` bracket a spool worker's
#: attach/detach; the rest are health facts (reaped leases, pool
#: degradation, watchdog deadlock reports).
EVENT_TYPES = frozenset({
    "sweep.started", "sweep.finished",
    "stage.started", "stage.finished",
    "worker.started", "worker.stopped",
    "unit.planned", "unit.deduped",
    "memo.hit", "memo.miss",
    "unit.resumed",
    "unit.claimed", "unit.started",
    "unit.finished", "unit.failed",
    "unit.retried", "unit.skipped",
    "unit.quarantined",
    "pool.degraded", "lease.reaped",
    "watchdog.deadlock",
    "hazard.injected", "integrity.corrupt",
})

#: Events that settle a unit's fate for the sweep.  A quarantined
#: poison unit is settled too: its placeholder result reaches the
#: merge, nothing will execute it again this sweep.
TERMINAL_EVENTS = frozenset({"unit.finished", "unit.failed",
                             "unit.quarantined"})


class EventLog:
    """Appender for one process's slice of a shared event log.

    The file is opened lazily (``O_CREAT | O_APPEND``) on first emit
    and each record is written with a single ``os.write`` -- atomic
    with respect to other appenders and crash-safe up to the last
    complete line.
    """

    def __init__(self, root: Union[str, Path], worker: str):
        self.root = Path(root)
        self.worker = worker
        self._fd: Optional[int] = None

    @property
    def path(self) -> Path:
        return self.root / f"events-{self.worker}.jsonl"

    def append(self, record: dict) -> None:
        if self._fd is None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(self.path,
                               os.O_CREAT | os.O_APPEND | os.O_WRONLY,
                               0o644)
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True, default=str) + "\n"
        os.write(self._fd, line.encode())

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


# -- reading -----------------------------------------------------------------

def event_files(root: Union[str, Path]) -> List[Path]:
    """Per-worker event files under a telemetry area, sorted by name."""
    root = Path(root)
    if root.is_file():
        return [root]
    return sorted(root.glob("events-*.jsonl"))


def read_events(source: Union[str, Path],
                problems: Optional[List[str]] = None) -> List[dict]:
    """Merge a telemetry area (or one ``.jsonl`` file) into a single
    ``(ts, worker, seq)``-ordered record list.

    Undecodable lines -- a SIGKILLed writer's torn final line -- are
    skipped, with a note appended to ``problems`` when given; a
    half-written log must never be worse than an incomplete one.
    """
    records: List[dict] = []
    for path in event_files(source):
        try:
            text = path.read_text()
        except OSError as exc:
            if problems is not None:
                problems.append(f"{path.name}: unreadable: {exc}")
            continue
        for i, line in enumerate(text.splitlines()):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                if problems is not None:
                    problems.append(f"{path.name}:{i + 1}: torn or "
                                    f"non-JSON line (skipped)")
                continue
            if isinstance(rec, dict):
                records.append(rec)
            elif problems is not None:
                problems.append(f"{path.name}:{i + 1}: not a record object")
    records.sort(key=lambda r: (r.get("ts", 0.0), str(r.get("worker", "")),
                                r.get("seq", 0)))
    return records


# -- validation --------------------------------------------------------------

def validate_events(records: Iterable[dict]) -> List[str]:
    """Schema + lifecycle check; returns problems ([] = valid).

    Shape: every record carries ``v == SCHEMA_VERSION``, a known
    ``event``, numeric ``ts``, a ``worker`` string, and a per-worker
    strictly-increasing ``seq``.

    Lifecycle: a unit that any worker ``unit.started`` must reach a
    terminal event (``unit.finished`` / ``unit.failed``), and abandoned
    executions beyond the terminals (started N times, finished M < N)
    must be covered by ``lease.reaped`` / ``unit.retried`` records --
    i.e. a SIGKILLed worker's half-run is only acceptable when the
    harness *noticed* and re-dispatched.
    """
    problems: List[str] = []
    last_seq: Dict[str, int] = {}
    starts: Dict[str, int] = {}
    terminals: Dict[str, int] = {}
    explained: Dict[str, int] = {}
    claimed_only: Dict[str, int] = {}

    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            problems.append(f"record {i}: not an object")
            continue
        if rec.get("v") != SCHEMA_VERSION:
            problems.append(f"record {i}: schema version {rec.get('v')!r} "
                            f"!= {SCHEMA_VERSION}")
            continue
        event = rec.get("event")
        if event not in EVENT_TYPES:
            problems.append(f"record {i}: unknown event {event!r}")
            continue
        if not isinstance(rec.get("ts"), (int, float)):
            problems.append(f"record {i}: missing/non-numeric ts")
        worker = rec.get("worker")
        if not isinstance(worker, str) or not worker:
            problems.append(f"record {i}: missing worker id")
            worker = "?"
        seq = rec.get("seq")
        if not isinstance(seq, int):
            problems.append(f"record {i}: missing/non-integer seq")
        else:
            if seq <= last_seq.get(worker, 0) and worker in last_seq:
                problems.append(f"record {i}: seq {seq} not increasing "
                                f"for worker {worker}")
            last_seq[worker] = seq

        unit = rec.get("unit")
        if event.startswith(("unit.", "memo.", "lease.")) and not unit:
            problems.append(f"record {i}: {event} without a unit key")
            continue
        if event == "unit.started":
            starts[unit] = starts.get(unit, 0) + 1
        elif event == "unit.claimed":
            claimed_only[unit] = claimed_only.get(unit, 0) + 1
        elif event in TERMINAL_EVENTS:
            terminals[unit] = terminals.get(unit, 0) + 1
        elif event in ("lease.reaped", "unit.retried"):
            explained[unit] = explained.get(unit, 0) + 1

    for unit in sorted(set(starts) | set(claimed_only)):
        n_started = starts.get(unit, 0)
        n_done = terminals.get(unit, 0)
        if n_done == 0:
            problems.append(f"unit {unit[:12]}: claimed/started but never "
                            f"reached a terminal event")
        elif n_started - n_done > explained.get(unit, 0):
            problems.append(
                f"unit {unit[:12]}: {n_started} execution(s) but only "
                f"{n_done} terminal(s) and "
                f"{explained.get(unit, 0)} lease_reaped/retried "
                f"record(s) to explain the rest")
    return problems
