"""Event-log checker CLI (the telemetry analogue of
``python -m repro.obs.trace``)::

    python -m repro.obs.telemetry TELEMETRY_DIR_OR_FILE [--trace OUT.json]

Reads every ``events-*.jsonl`` slice, runs the schema + lifecycle
validation (:func:`~repro.obs.telemetry.events.validate_events` --
every claimed/started unit must reach a terminal event, abandoned
executions must be explained by lease reaps/retries), and exits 1 on
any problem.  ``--trace OUT.json`` additionally exports the wall-clock
Chrome trace, which ``python -m repro.obs.trace OUT.json`` can then
verify -- the pairing CI's resume-smoke job runs.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from ..trace import write_trace
from .events import read_events, validate_events
from .harness_trace import harness_trace_events


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    trace_out = None
    if "--trace" in argv:
        i = argv.index("--trace")
        if i + 1 >= len(argv):
            print("--trace needs an output path", file=sys.stderr)
            return 2
        trace_out = argv[i + 1]
        argv = argv[:i] + argv[i + 2:]
    if len(argv) != 1:
        print("usage: python -m repro.obs.telemetry DIR_OR_FILE "
              "[--trace OUT.json]", file=sys.stderr)
        return 2

    source = argv[0]
    problems: List[str] = []
    records = read_events(source, problems=problems)
    if not records:
        print(f"{source}: no telemetry records found", file=sys.stderr)
        return 1
    problems += validate_events(records)
    if trace_out is not None:
        write_trace(trace_out, harness_trace_events(records))
    if problems:
        for p in problems:
            print(f"{source}: {p}", file=sys.stderr)
        return 1
    workers = {r.get("worker") for r in records}
    units = {r["unit"] for r in records if r.get("unit")}
    print(f"{source}: OK ({len(records)} events, {len(workers)} "
          f"worker(s), {len(units)} unit(s))")
    if trace_out is not None:
        print(f"{source}: harness trace written to {trace_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
