"""Fleet status: render a live spool sweep from its on-disk traces.

``repro status DIR`` calls :func:`collect_status` on a spool root and
prints :func:`render_status`.  Everything is derived from files other
processes already maintain -- no RPC, no cooperation needed from a
wedged fleet:

* the spool itself (``units/*.spec``, ``claims/*.claim``,
  ``results/*.run``) gives queued / claimed / done counts and per-claim
  ages (a claim file's mtime is its lease start);
* worker **heartbeats** (``telemetry/heartbeats/*.json``, written
  atomically every second by live sessions) give per-worker last-seen,
  role, and progress;
* the **event log** (``telemetry/events-*.jsonl``) gives failure kinds
  and the mean unit wall time the ETA estimate uses.

The module reads the spool layout directly rather than importing
:mod:`repro.harness` (harness modules import ``repro.obs``; keeping
this one-way avoids an import cycle).  A fleet is **stalled** when
work remains but nothing is moving: a claim is stalled under
:func:`claim_is_stalled` -- the one shared heartbeat-aware predicate
both this status view and ``DirQueueTransport`` lease reaping apply,
so the claim ``repro status`` flags as a straggler is exactly the
claim the transport would reap -- or there are pending units with no
live worker and no fresh claim.  ``repro status`` exits nonzero on a
stalled fleet so scripts can alarm on it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .events import TERMINAL_EVENTS, read_events

__all__ = ["WorkerStatus", "FleetStatus", "collect_status",
           "render_status", "claim_is_stalled", "heartbeat_age",
           "DEFAULT_STALL_S"]

#: A claim or heartbeat older than this is considered stuck/dead.
DEFAULT_STALL_S = 30.0


def claim_is_stalled(claim_age_s: Optional[float],
                     heartbeat_age_s: Optional[float],
                     stall_s: float) -> bool:
    """The one definition of a stalled (reapable) claim, shared by
    ``repro status`` stall detection and ``DirQueueTransport`` /
    ``run_worker`` lease reaping.

    A claim is stalled when it has outlived ``stall_s`` **and** its
    owner shows no fresh heartbeat: a live worker grinding through a
    long unit keeps heartbeating, so its old claim is a straggler to
    watch, not a lease to steal.  No heartbeat at all (``None``) means
    presumed dead -- claims planted without telemetry, or by a worker
    SIGKILLed before its first beat, still reap by age alone.
    """
    if claim_age_s is None or claim_age_s <= stall_s:
        return False
    return heartbeat_age_s is None or heartbeat_age_s > stall_s


def heartbeat_age(heartbeats_dir: Union[str, Path, None],
                  worker: Optional[str],
                  _now: Optional[float] = None) -> Optional[float]:
    """Seconds since ``worker`` last heartbeat (file mtime), or None
    when unknown (no dir, no owner recorded, no beat written yet)."""
    if heartbeats_dir is None or not worker:
        return None
    try:
        mtime = (Path(heartbeats_dir) / f"{worker}.json").stat().st_mtime
    except OSError:
        return None
    now = time.time() if _now is None else _now
    return max(0.0, now - mtime)


@dataclass
class WorkerStatus:
    """One telemetry session's liveness, from its heartbeat file."""

    worker: str
    role: str = "?"
    pid: Optional[int] = None
    state: str = "?"
    unit: Optional[str] = None
    done: int = 0
    age_s: float = 0.0          #: seconds since the last heartbeat
    alive: bool = False         #: age_s <= stall threshold


@dataclass
class FleetStatus:
    """Snapshot of a spool sweep (see :func:`collect_status`)."""

    root: str
    units_total: int = 0
    units_done: int = 0
    units_failed: int = 0
    units_claimed: int = 0
    units_queued: int = 0       #: pending and unclaimed
    units_quarantined: int = 0  #: poison units settled by quarantine
    corrupt_entries: int = 0    #: files that failed integrity checks
    workers: List[WorkerStatus] = field(default_factory=list)
    stragglers: List[dict] = field(default_factory=list)
    eta_s: Optional[float] = None
    mean_unit_s: Optional[float] = None
    stalled: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def units_pending(self) -> int:
        return self.units_claimed + self.units_queued

    def to_json(self) -> dict:
        return {
            "root": self.root,
            "units": {"total": self.units_total, "done": self.units_done,
                      "failed": self.units_failed,
                      "claimed": self.units_claimed,
                      "queued": self.units_queued,
                      "quarantined": self.units_quarantined},
            "corrupt_entries": self.corrupt_entries,
            "workers": [vars(w) for w in self.workers],
            "stragglers": self.stragglers,
            "eta_s": self.eta_s,
            "mean_unit_s": self.mean_unit_s,
            "stalled": self.stalled,
            "notes": self.notes,
        }


def _read_heartbeats(area: Path, stall_s: float) -> List[WorkerStatus]:
    beats: List[WorkerStatus] = []
    hb_dir = area / "heartbeats"
    if not hb_dir.is_dir():
        return beats
    now = time.time()
    for path in sorted(hb_dir.glob("*.json")):
        try:
            body = json.loads(path.read_text())
            age = max(0.0, now - path.stat().st_mtime)
        except (OSError, ValueError):
            continue
        if not isinstance(body, dict):
            continue
        state = str(body.get("state", "?"))
        beats.append(WorkerStatus(
            worker=str(body.get("worker", path.stem)),
            role=str(body.get("role", "?")),
            pid=body.get("pid"),
            state=state,
            unit=body.get("unit"),
            done=int(body.get("done") or 0),
            age_s=round(age, 3),
            alive=(state != "stopped" and age <= stall_s),
        ))
    return beats


def collect_status(spool_root: Union[str, Path],
                   stall_s: float = DEFAULT_STALL_S) -> FleetStatus:
    """Assemble a :class:`FleetStatus` for the spool at ``spool_root``.

    Raises :class:`FileNotFoundError` when the directory does not look
    like a spool (no ``units/`` and no ``telemetry/`` area).
    """
    root = Path(spool_root)
    units_dir = root / "units"
    area = root / "telemetry"
    if not units_dir.is_dir() and not area.is_dir():
        raise FileNotFoundError(
            f"{root}: not a spool directory (no units/ or telemetry/)")

    status = FleetStatus(root=str(root))
    now = time.time()

    keys = (sorted(p.name[:-5] for p in units_dir.glob("*.spec"))
            if units_dir.is_dir() else [])
    results_dir = root / "results"
    claims_dir = root / "claims"
    hb_dir = area / "heartbeats"
    status.units_total = len(keys)
    for key in keys:
        if (results_dir / f"{key}.run").is_file():
            status.units_done += 1
            continue
        claim = claims_dir / f"{key}.claim"
        owner = None
        try:
            claim_age = max(0.0, now - claim.stat().st_mtime)
        except OSError:
            claim_age = None
        if claim_age is not None:
            try:
                body = json.loads(claim.read_text())
                if isinstance(body, dict):
                    owner = body.get("worker")
            except (OSError, ValueError):
                pass
        if claim_age is None:
            status.units_queued += 1
        else:
            status.units_claimed += 1
            hb_age = heartbeat_age(hb_dir, owner, _now=now)
            if claim_is_stalled(claim_age, hb_age, stall_s):
                status.stragglers.append(
                    {"unit": key, "claim_age_s": round(claim_age, 3),
                     "owner": owner,
                     "heartbeat_age_s": (round(hb_age, 3)
                                         if hb_age is not None else None)})

    status.workers = _read_heartbeats(area, stall_s)

    # Event log: failure kinds + the mean wall time ETA extrapolates.
    wall: List[float] = []
    failed = set()
    quarantined = set()
    corrupt = 0
    if area.is_dir():
        for rec in read_events(area):
            ev = rec.get("event")
            if ev in TERMINAL_EVENTS and isinstance(
                    rec.get("wall_s"), (int, float)):
                wall.append(float(rec["wall_s"]))
            if ev == "unit.failed" and rec.get("unit"):
                failed.add(rec["unit"])
            elif ev == "unit.quarantined" and rec.get("unit"):
                quarantined.add(rec["unit"])
            elif ev == "integrity.corrupt":
                corrupt += 1
    status.units_failed = len(failed)
    status.units_quarantined = len(quarantined)
    status.corrupt_entries = corrupt
    if wall:
        status.mean_unit_s = round(sum(wall) / len(wall), 3)

    live = [w for w in status.workers if w.alive]
    pending = status.units_pending
    if pending and status.mean_unit_s is not None:
        status.eta_s = round(
            pending * status.mean_unit_s / max(1, len(live)), 3)

    fresh_claims = status.units_claimed - len(status.stragglers)
    if pending:
        if status.stragglers:
            status.stalled = True
            status.notes.append(
                f"{len(status.stragglers)} claim(s) older than "
                f"{stall_s:g}s")
        if not live and not fresh_claims:
            status.stalled = True
            status.notes.append("pending units but no live worker and "
                                "no fresh claim")
    return status


def render_status(status: FleetStatus) -> str:
    """Human-readable multi-line fleet report."""
    lines = [f"spool {status.root}"]
    done = status.units_done
    total = status.units_total
    pct = (100.0 * done / total) if total else 0.0
    summary = (f"  units: {done}/{total} done ({pct:.0f}%), "
               f"{status.units_claimed} claimed, "
               f"{status.units_queued} queued")
    if status.units_failed:
        summary += f", {status.units_failed} failed"
    if status.units_quarantined:
        summary += f", {status.units_quarantined} QUARANTINED"
    lines.append(summary)
    if status.corrupt_entries:
        lines.append(f"  integrity: {status.corrupt_entries} corrupt "
                     f"file(s) quarantined")
    if status.mean_unit_s is not None:
        lines.append(f"  mean unit wall time: {status.mean_unit_s:.3f}s")
    if status.eta_s is not None:
        lines.append(f"  eta: ~{status.eta_s:.1f}s "
                     f"({status.units_pending} pending)")
    if status.workers:
        lines.append("  workers:")
        for w in status.workers:
            mark = "+" if w.alive else "-"
            what = f" unit {w.unit[:12]}" if w.unit else ""
            lines.append(
                f"    {mark} {w.worker} [{w.role}] {w.state}{what}, "
                f"{w.done} done, last seen {w.age_s:.1f}s ago")
    else:
        lines.append("  workers: none seen (no heartbeats)")
    for s in status.stragglers:
        lines.append(f"  straggler: unit {s['unit'][:12]} claimed "
                     f"{s['claim_age_s']:.1f}s ago")
    if status.stalled:
        lines.append("  STALLED: " + "; ".join(status.notes))
    elif status.units_pending == 0 and total:
        lines.append("  complete")
    return "\n".join(lines)
