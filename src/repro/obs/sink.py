"""Sinks: per-run policy for where probe recordings go.

A machine owns exactly one sink for its whole run and mints one
:class:`~repro.obs.probe.Probe` per track from it.  The sink decides
which facilities are live by what it places in the probe's slots:

* :class:`AggregateSink` -- totals only; reproduces the historical
  ``Counter`` / ``TimeBreakdown`` / ``ClassStats`` outputs exactly.
  This is the default, because every figure in the paper is built from
  these aggregates.
* :class:`NullSink` -- observability off; every probe is the shared
  do-nothing :data:`~repro.obs.probe.NULL_PROBE`.
* :class:`~repro.obs.trace.TraceSink` -- an :class:`AggregateSink`
  that additionally records a Chrome trace-event timeline.

Sinks are cheap, single-process objects; results that must cross a
process boundary (``ProcessPoolContext``) travel as plain data inside
``RunResult``, never as the sink itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .aggregate import ClassStats, Counter, TimeBreakdown
from .probe import NULL_PROBE, Probe

__all__ = ["Sink", "NullSink", "AggregateSink", "TeeSink", "make_sink"]


class Sink:
    """Base sink: mints probes and owns the run-wide collectors.

    Subclasses override :meth:`_make_probe` (and optionally
    :meth:`_on_new_track`) -- the caching in :meth:`probe` and the
    public query surface are shared.
    """

    def __init__(self):
        self.classes = ClassStats()
        self.counters: Dict[str, Counter] = {}
        self.breakdowns: Dict[str, TimeBreakdown] = {}
        self._probes: Dict[str, Probe] = {}

    def probe(self, track: str, start: float = 0.0) -> Probe:
        """The probe for ``track`` (created on first request; the
        ``start`` of later requests for the same track is ignored)."""
        p = self._probes.get(track)
        if p is None:
            p = self._probes[track] = self._make_probe(track, start)
            self._on_new_track(track, start)
        return p

    def counter(self, track: str) -> Counter:
        """The counter bag backing ``track`` (shared with its probe,
        so reads through it see everything ``probe.count`` recorded)."""
        c = self.counters.get(track)
        if c is None:
            c = self.counters[track] = Counter()
        return c

    def trace_events(self) -> Optional[List[dict]]:
        """Finalized timeline events, or None for non-tracing sinks."""
        return None

    def profile_data(self) -> Optional[Dict[str, dict]]:
        """Per-track line-profile data, or None for non-profiling
        sinks (see :class:`~repro.obs.profile.ProfileSink`)."""
        return None

    # -- subclass hooks ------------------------------------------------------

    def _make_probe(self, track: str, start: float) -> Probe:
        raise NotImplementedError

    def _on_new_track(self, track: str, start: float) -> None:
        pass


class NullSink(Sink):
    """Observability off: drop everything, as close to free as a call
    into a probe can be.

    Every track shares :data:`NULL_PROBE`, whose collector slots are
    all ``None`` -- each record call is one attribute test.  Queries
    (``counter(track)``, ``classes``) still answer, with zeros.
    """

    def _make_probe(self, track: str, start: float) -> Probe:
        return NULL_PROBE


class AggregateSink(Sink):
    """Totals-only sink: the historical statistics behaviour.

    Each track gets its own :class:`TimeBreakdown` (started at the
    track's first-probe time) and :class:`Counter`; classification
    records from every track pool into one run-wide
    :class:`ClassStats`, exactly as the old per-machine collector did.
    """

    def _make_probe(self, track: str, start: float) -> Probe:
        bd = self.breakdowns[track] = TimeBreakdown(start=start)
        return Probe(track, bd=bd, counters=self.counter(track),
                     classes=self.classes, emitter=self._emitter())

    def _emitter(self):
        return None


class TeeSink(Sink):
    """Compose several sinks behind one probe per track.

    Each child mints its own probe for a track; the tee then hands out
    a single :class:`Probe` carrying the union of the children's
    collector slots (first child providing a facility wins), so
    producers record once and every child sees it.  The run-wide query
    surface (``classes`` / ``counters`` / ``breakdowns``) aliases the
    first child's collectors, which keeps consumers written against
    :class:`AggregateSink` working unchanged when it is the primary.
    """

    _SLOTS = ("bd", "counters", "classes", "emitter", "prof")

    def __init__(self, *children: Sink):
        if not children:
            raise ValueError("TeeSink needs at least one child sink")
        super().__init__()
        self.children = children
        primary = children[0]
        self.classes = primary.classes
        self.counters = primary.counters
        self.breakdowns = primary.breakdowns

    def _make_probe(self, track: str, start: float) -> Probe:
        probes = [c.probe(track, start) for c in self.children]
        slots = {}
        for name in self._SLOTS:
            slots[name] = next(
                (getattr(p, name) for p in probes
                 if getattr(p, name) is not None), None)
        return Probe(track, **slots)

    def trace_events(self) -> Optional[List[dict]]:
        for c in self.children:
            events = c.trace_events()
            if events is not None:
                return events
        return None

    def profile_data(self) -> Optional[Dict[str, dict]]:
        for c in self.children:
            data = c.profile_data()
            if data is not None:
                return data
        return None


def make_sink(spec: Union[None, str, Sink] = None) -> Sink:
    """Resolve a sink selection: None / "aggregate" (default),
    "null"/"off", "trace", "profile", or an already-built
    :class:`Sink`."""
    if isinstance(spec, Sink):
        return spec
    if spec is None or spec == "aggregate":
        return AggregateSink()
    if spec in ("null", "off", "none"):
        return NullSink()
    if spec == "trace":
        from .trace import TraceSink  # deferred: trace builds on this module
        return TraceSink()
    if spec == "profile":
        from .profile import ProfileSink  # deferred, like trace
        return TeeSink(AggregateSink(), ProfileSink())
    raise ValueError(f"unknown sink spec {spec!r} (expected 'aggregate', "
                     "'null', 'trace', 'profile', or a Sink)")
