"""Chrome trace-event timeline export.

:class:`TraceSink` records every span and instant a run's probes see as
Chrome trace-event JSON -- the format read by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``.  Each track (one
simulated processor, one CMP's memory side, one pair channel) becomes
one named thread row; time-category spans appear as nested "B"/"E"
duration events and point facts (coherence transactions, token
insert/consume, A-stream skips, divergence/recovery) as "i" instants.
One simulated cycle is exported as one microsecond, so Perfetto's "ms"
readout is kilocycles.

The module is also a checker, usable as a script::

    python -m repro.obs.trace out.json

exits non-zero if the file is not structurally valid trace JSON
(parseable, per-track monotonic timestamps, matched B/E pairs) -- the
same :func:`validate_trace` the CI smoke job runs.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .sink import AggregateSink

__all__ = ["TraceSink", "trace_json", "write_trace", "merge_traces",
           "validate_trace"]


class TraceSink(AggregateSink):
    """An :class:`AggregateSink` that also records the timeline.

    Aggregation still happens (a traced run loses no figure data); on
    top of it every probe event is appended to :attr:`events`.  Each
    track gets a tid in creation order plus a ``thread_name`` metadata
    event, and is wrapped in one run-long ``busy`` span so nested
    category spans have a visible base row.
    """

    def __init__(self, pid: int = 1):
        super().__init__()
        self.pid = pid
        self.events: List[dict] = []
        self._tids: Dict[str, int] = {}
        self._open: Dict[str, List[str]] = {}
        self._last_ts = 0.0
        self._finalized = False

    # -- sink hooks ----------------------------------------------------------

    def _emitter(self):
        return self

    def _on_new_track(self, track: str, start: float) -> None:
        tid = self._tids[track] = len(self._tids) + 1
        self.events.append({"ph": "M", "name": "thread_name",
                            "pid": self.pid, "tid": tid,
                            "args": {"name": track}})
        self._open[track] = []
        self.emit_begin(track, "busy", start)

    # -- emitter interface (called from Probe) -------------------------------

    def _stamp(self, ts: float) -> float:
        if ts > self._last_ts:
            self._last_ts = ts
        return ts

    def emit_begin(self, track: str, category: str, now: float) -> None:
        self.events.append({"ph": "B", "name": category, "cat": "span",
                            "pid": self.pid, "tid": self._tids[track],
                            "ts": self._stamp(now)})
        self._open[track].append(category)

    def emit_end(self, track: str, category: Optional[str], now: float) -> None:
        self.events.append({"ph": "E", "name": category or "", "cat": "span",
                            "pid": self.pid, "tid": self._tids[track],
                            "ts": self._stamp(now)})
        if self._open[track]:
            self._open[track].pop()

    def emit_instant(self, track: str, name: str, now: float,
                     args: Optional[dict]) -> None:
        ev = {"ph": "i", "name": name, "cat": "mark", "s": "t",
              "pid": self.pid, "tid": self._tids[track],
              "ts": self._stamp(now)}
        if args:
            ev["args"] = args
        self.events.append(ev)

    def emit_close(self, track: str, open_cats: Tuple[str, ...],
                   now: float) -> None:
        """End-of-run close of a track: unwind the categories still on
        its stack, then the run-long busy wrapper."""
        for cat in reversed(open_cats):
            self.emit_end(track, cat, now)
        self.emit_end(track, "busy", now)

    # -- output --------------------------------------------------------------

    def trace_events(self) -> List[dict]:
        """The finalized event list.

        Tracks that are never explicitly closed (memory sides,
        channels, the engine) get their open spans ended at the last
        timestamp seen anywhere in the run, so every B has an E.
        """
        if not self._finalized:
            self._finalized = True
            end = self._last_ts
            for track, open_cats in self._open.items():
                for cat in reversed(open_cats):
                    self.events.append({"ph": "E", "name": cat, "cat": "span",
                                        "pid": self.pid,
                                        "tid": self._tids[track], "ts": end})
                open_cats.clear()
        return self.events


def trace_json(events: List[dict]) -> str:
    """Serialize events in the JSON-object trace format."""
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                      separators=(",", ":"))


def write_trace(path: str, events: List[dict]) -> None:
    """Write events to ``path`` as Chrome trace JSON."""
    with open(path, "w") as fh:
        fh.write(trace_json(events))


def merge_traces(items: Iterable[Tuple[str, List[dict]]]) -> List[dict]:
    """Combine per-run traces into one multi-process trace.

    ``items`` is (label, events) per run in submission order; run *i*
    becomes pid ``i + 1`` with a ``process_name`` metadata row, so a
    swept benchmark opens in Perfetto as one process per run.  Input
    event dicts are not mutated (pool-returned results may be shared).
    """
    merged: List[dict] = []
    for i, (label, events) in enumerate(items):
        pid = i + 1
        merged.append({"ph": "M", "name": "process_name", "pid": pid,
                       "args": {"name": label}})
        for ev in events:
            if ev.get("pid") != pid:
                ev = dict(ev, pid=pid)
            merged.append(ev)
    return merged


def validate_trace(data: Union[dict, list]) -> List[str]:
    """Structurally check trace JSON; returns problems ([] = valid).

    Checks the invariants the exporter guarantees and viewers rely on:
    every non-metadata event carries numeric pid/tid/ts and a name;
    timestamps never go backwards within one (pid, tid) track; every
    "E" matches the innermost open "B" on its track and no "B" is left
    open at end of trace.
    """
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            return ["no 'traceEvents' array"]
    elif isinstance(data, list):
        events = data
    else:
        return [f"trace must be an object or array, got {type(data).__name__}"]

    problems: List[str] = []
    last_ts: Dict[Tuple[int, int], float] = {}
    open_spans: Dict[Tuple[int, int], List[str]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            problems.append(f"event {i}: not an event object")
            continue
        ph = ev["ph"]
        if ph == "M":
            continue
        key = (ev.get("pid"), ev.get("tid"))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or None in key:
            problems.append(f"event {i}: missing pid/tid/ts")
            continue
        if not ev.get("name") and ph != "E":
            problems.append(f"event {i}: unnamed {ph!r} event")
        if ts < last_ts.get(key, float("-inf")):
            problems.append(
                f"event {i}: ts {ts} < {last_ts[key]} on track {key}")
        last_ts[key] = ts
        if ph == "B":
            open_spans.setdefault(key, []).append(ev.get("name", ""))
        elif ph == "E":
            stack = open_spans.get(key)
            if not stack:
                problems.append(f"event {i}: 'E' with no open 'B' on {key}")
                continue
            begun = stack.pop()
            name = ev.get("name")
            if name and name != begun:
                problems.append(
                    f"event {i}: 'E' {name!r} closes 'B' {begun!r} on {key}")
    for key, stack in open_spans.items():
        if stack:
            problems.append(f"track {key}: unclosed 'B' spans {stack}")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.trace TRACE.json", file=sys.stderr)
        return 2
    try:
        with open(argv[0]) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"{argv[0]}: unreadable trace: {exc}", file=sys.stderr)
        return 1
    problems = validate_trace(data)
    if problems:
        for p in problems:
            print(f"{argv[0]}: {p}", file=sys.stderr)
        return 1
    events = data["traceEvents"] if isinstance(data, dict) else data
    tracks = {(e.get("pid"), e.get("tid")) for e in events if e.get("ph") != "M"}
    print(f"{argv[0]}: OK ({len(events)} events, {len(tracks)} tracks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
